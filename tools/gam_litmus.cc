/**
 * @file
 * gam-litmus: the litmus-test command line frontend.
 *
 *   gam-litmus list
 *       List the built-in suites (name, paper reference, description).
 *
 *   gam-litmus run <test|file.litmus>... [--model M]...
 *                  [--engine {axiomatic,operational,auto}]
 *                  [--threads N] [--budget M] [--stats]
 *       Decide each test and print the verdict matrix.  By default
 *       every engine supporting the model runs; --engine restricts to
 *       one engine or lets the registry pick (auto).  --threads sets
 *       the decision pool width (MatrixOptions::poolThreads); --budget
 *       sets the explorer state budget (RunOptions::stateBudget);
 *       --stats appends decision-cache hit/miss counts.
 *       Arguments naming a file (anything with a '.' or '/') are
 *       parsed from the litmus text format; anything else must be a
 *       built-in test name.  Exits 1 on a verdict mismatching a
 *       recorded expectation, 2 on bad input.
 *
 *   gam-litmus print <test|file.litmus>...
 *       Re-emit tests in the canonical litmus text form (exports the
 *       built-in suites to text; normalises hand-written files).
 *
 *   gam-litmus gen [--tests N] [--seed S] [--out DIR] [--no-verdicts]
 *       Emit generated tests as litmus documents (stdout, or one file
 *       per test under DIR), annotated with axiomatically-derived
 *       expect verdicts unless --no-verdicts.
 *
 *   gam-litmus fuzz [--tests N] [--seed S] [--threads N]
 *                   [--max-states M] [--no-shrink]
 *       Differential-fuzz the operational/axiomatic equivalence on
 *       generated tests.  Exits 1 if any divergence was found.
 *
 * Every input error (unknown test, malformed file, bad flag) is
 * reported and turned into a nonzero exit; nothing aborts the process.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "harness/fuzz.hh"
#include "harness/litmus_runner.hh"
#include "litmus/generator.hh"
#include "litmus/parser.hh"
#include "litmus/suite.hh"

namespace
{

using namespace gam;
using model::ModelKind;

int
usage()
{
    std::fprintf(stderr,
                 "usage: gam-litmus <command> [options]\n"
                 "\n"
                 "commands:\n"
                 "  list                      list built-in tests\n"
                 "  run <test|file>...        decide tests and print "
                 "the verdict matrix\n"
                 "      [--model M]...        SC TSO GAM0 GAM ARM "
                 "Alpha* PerLocSC\n"
                 "      [--engine E]          axiomatic, operational "
                 "or auto (default: all)\n"
                 "      [--threads N]         worker threads (0 = "
                 "hardware)\n"
                 "      [--budget M]          explorer visited-state "
                 "budget\n"
                 "      [--stats]             print decision-cache "
                 "hit/miss counts\n"
                 "  print <test|file>...      re-emit tests in "
                 "canonical text form\n"
                 "  gen [--tests N] [--seed S] [--out DIR] "
                 "[--no-verdicts]\n"
                 "                            emit generated litmus "
                 "documents\n"
                 "  fuzz [--tests N] [--seed S] [--threads N]\n"
                 "       [--max-states M] [--no-shrink]\n"
                 "                            differential-fuzz the "
                 "engines\n");
    return 2;
}

std::optional<uint64_t>
parseCount(const char *arg)
{
    uint64_t value = 0;
    std::istringstream is(arg);
    is >> value;
    if (!is || !is.eof())
        return std::nullopt;
    return value;
}

/** Next flag value or nullptr (with a message) when it is missing. */
const char *
flagValue(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "gam-litmus: %s needs a value\n", flag);
        return nullptr;
    }
    return argv[++i];
}

int
cmdList()
{
    for (const auto &t : litmus::allTests()) {
        std::printf("  %-20s %-12s %s\n", t.name.c_str(),
                    t.paperRef.c_str(), t.description.c_str());
    }
    return 0;
}

/** Load one `run` argument: a built-in name or a .litmus file. */
std::optional<litmus::LitmusTest>
loadTest(const std::string &arg)
{
    const bool is_file =
        arg.find('.') != std::string::npos
        || arg.find('/') != std::string::npos;
    if (!is_file) {
        if (const litmus::LitmusTest *t = litmus::findTest(arg))
            return *t;
        std::fprintf(stderr,
                     "gam-litmus: unknown test '%s'; available tests:\n",
                     arg.c_str());
        for (const auto &t : litmus::allTests())
            std::fprintf(stderr, "  %s\n", t.name.c_str());
        return std::nullopt;
    }

    std::ifstream in(arg);
    if (!in) {
        std::fprintf(stderr, "gam-litmus: cannot open '%s'\n",
                     arg.c_str());
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = litmus::parseLitmus(text.str());
    if (!parsed) {
        std::fprintf(stderr, "gam-litmus: %s: %s\n", arg.c_str(),
                     parsed.error.toString().c_str());
        return std::nullopt;
    }
    return *std::move(parsed.test);
}

int
cmdRun(int argc, char **argv)
{
    std::vector<litmus::LitmusTest> tests;
    std::vector<ModelKind> models;
    harness::MatrixOptions options;
    bool stats = false;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--model") {
            const char *value = flagValue(argc, argv, i, "--model");
            if (!value)
                return 2;
            auto kind = model::modelFromName(value);
            if (!kind) {
                std::fprintf(stderr, "gam-litmus: unknown model '%s'\n",
                             value);
                return 2;
            }
            models.push_back(*kind);
        } else if (arg == "--engine") {
            const char *value = flagValue(argc, argv, i, "--engine");
            if (!value)
                return 2;
            if (std::string(value) == "auto") {
                options.engine = harness::EngineSelect::Auto;
            } else if (auto engine = model::engineFromName(value)) {
                options.engine = *engine == model::Engine::Axiomatic
                    ? harness::EngineSelect::Axiomatic
                    : harness::EngineSelect::Operational;
            } else {
                std::fprintf(stderr, "gam-litmus: unknown engine '%s' "
                             "(expected axiomatic, operational or "
                             "auto)\n", value);
                return 2;
            }
        } else if (arg == "--threads" || arg == "--budget") {
            const char *value = flagValue(argc, argv, i, arg.c_str());
            if (!value)
                return 2;
            auto n = parseCount(value);
            if (!n) {
                std::fprintf(stderr, "gam-litmus: bad %s value '%s'\n",
                             arg.c_str(), value);
                return 2;
            }
            if (arg == "--threads")
                options.poolThreads = static_cast<unsigned>(*n);
            else
                options.run.stateBudget = *n;
        } else if (arg == "--stats") {
            stats = true;
        } else {
            auto test = loadTest(arg);
            if (!test)
                return 2;
            tests.push_back(*std::move(test));
        }
    }
    if (tests.empty()) {
        std::fprintf(stderr, "gam-litmus: run needs at least one test "
                             "name or .litmus file\n");
        return 2;
    }
    if (models.empty()) {
        models = {ModelKind::SC, ModelKind::TSO, ModelKind::GAM0,
                  ModelKind::GAM, ModelKind::ARM};
    }

    const auto before = harness::globalDecisionCache().stats();
    auto verdicts = harness::runLitmusMatrix(tests, models, options);
    if (verdicts.empty()) {
        // Everything was skipped (e.g. --model PerLocSC --engine
        // operational); an empty matrix must not read as success.
        std::fprintf(stderr, "gam-litmus: no decidable (model, engine) "
                             "combination for the given tests\n");
        return 2;
    }
    std::printf("%s", harness::formatLitmusMatrix(verdicts).c_str());
    if (stats) {
        const auto after = harness::globalDecisionCache().stats();
        std::printf("decision cache: %llu hits, %llu misses, "
                    "%llu resident\n",
                    (unsigned long long)(after.hits - before.hits),
                    (unsigned long long)(after.misses - before.misses),
                    (unsigned long long)
                        harness::globalDecisionCache().size());
    }
    for (const auto &v : verdicts)
        if (!v.matchesPaper())
            return 1;
    return 0;
}

int
cmdPrint(int argc, char **argv)
{
    bool first = true;
    for (int i = 0; i < argc; ++i) {
        auto test = loadTest(argv[i]);
        if (!test)
            return 2;
        if (!first)
            std::printf("\n");
        first = false;
        std::printf("%s", litmus::printLitmus(*test).c_str());
    }
    if (first) {
        std::fprintf(stderr, "gam-litmus: print needs at least one "
                             "test name or .litmus file\n");
        return 2;
    }
    return 0;
}

int
cmdGen(int argc, char **argv)
{
    uint64_t tests = 10, seed = 1;
    bool verdicts = true;
    std::string out_dir;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *value = nullptr;
        if (arg == "--tests" || arg == "--seed") {
            value = flagValue(argc, argv, i, arg.c_str());
            if (!value)
                return 2;
            auto n = parseCount(value);
            if (!n) {
                std::fprintf(stderr, "gam-litmus: bad %s value '%s'\n",
                             arg.c_str(), value);
                return 2;
            }
            (arg == "--tests" ? tests : seed) = *n;
        } else if (arg == "--out") {
            value = flagValue(argc, argv, i, "--out");
            if (!value)
                return 2;
            out_dir = value;
        } else if (arg == "--no-verdicts") {
            verdicts = false;
        } else {
            std::fprintf(stderr, "gam-litmus: unknown gen option "
                                 "'%s'\n", arg.c_str());
            return 2;
        }
    }

    const std::vector<ModelKind> models = {
        ModelKind::SC, ModelKind::TSO, ModelKind::GAM0, ModelKind::GAM,
        ModelKind::ARM,
    };
    for (uint64_t i = 0; i < tests; ++i) {
        litmus::LitmusTest test = litmus::generateTest(seed, i);
        if (verdicts)
            harness::annotateExpected(test, models);
        const std::string text = litmus::printLitmus(test);
        if (out_dir.empty()) {
            if (i > 0)
                std::printf("\n");
            std::printf("%s", text.c_str());
            continue;
        }
        const std::string path = out_dir + "/" + test.name + ".litmus";
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "gam-litmus: cannot write '%s'\n",
                         path.c_str());
            return 2;
        }
        out << text;
    }
    return 0;
}

int
cmdFuzz(int argc, char **argv)
{
    harness::FuzzOptions options;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--no-shrink") {
            options.shrink = false;
            continue;
        }
        if (arg != "--tests" && arg != "--seed" && arg != "--threads"
            && arg != "--max-states") {
            std::fprintf(stderr, "gam-litmus: unknown fuzz option "
                                 "'%s'\n", arg.c_str());
            return 2;
        }
        const char *value = flagValue(argc, argv, i, arg.c_str());
        if (!value)
            return 2;
        auto n = parseCount(value);
        if (!n) {
            std::fprintf(stderr, "gam-litmus: bad %s value '%s'\n",
                         arg.c_str(), value);
            return 2;
        }
        if (arg == "--tests")
            options.tests = *n;
        else if (arg == "--seed")
            options.seed = *n;
        else if (arg == "--threads")
            options.threads = static_cast<unsigned>(*n);
        else
            options.maxStates = *n;
    }

    harness::FuzzReport report = harness::fuzzDifferential(options);
    std::printf("%s", report.toString().c_str());
    return report.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    if (command == "list")
        return cmdList();
    if (command == "run")
        return cmdRun(argc - 2, argv + 2);
    if (command == "print")
        return cmdPrint(argc - 2, argv + 2);
    if (command == "gen")
        return cmdGen(argc - 2, argv + 2);
    if (command == "fuzz")
        return cmdFuzz(argc - 2, argv + 2);
    std::fprintf(stderr, "gam-litmus: unknown command '%s'\n",
                 command.c_str());
    return usage();
}
