/**
 * @file
 * gam-litmus: the litmus-test command line frontend.
 *
 *   gam-litmus list
 *       List the built-in suites (name, paper reference, description).
 *
 *   gam-litmus run <test|file.litmus>... [--model M]...
 *                  [--engine {axiomatic,operational,auto}]
 *                  [--threads N] [--budget M] [--stats] [--json]
 *                  [--trace FILE]
 *       Decide each test and print the verdict matrix.  By default
 *       every engine supporting the model runs; --engine restricts to
 *       one engine or lets the registry pick (auto).  --threads sets
 *       the decision pool width (MatrixOptions::poolThreads); --budget
 *       sets the explorer state budget (RunOptions::stateBudget);
 *       --stats appends decision-cache hit/miss counts; --json prints
 *       the run's metrics-registry delta (gam-metrics-v1 JSON) instead
 *       of the text output; --trace writes a Chrome trace_event JSON
 *       of every decide() pipeline span.
 *       Arguments naming a file (anything with a '.' or '/') are
 *       parsed from the litmus text format; anything else must be a
 *       built-in test name.  Exits 1 on a verdict mismatching a
 *       recorded expectation, 2 on bad input.
 *
 *   gam-litmus print <test|file.litmus>...
 *       Re-emit tests in the canonical litmus text form (exports the
 *       built-in suites to text; normalises hand-written files).
 *
 *   gam-litmus gen [--tests N] [--seed S] [--out DIR] [--no-verdicts]
 *                  [--four-thread]
 *       Emit generated tests as litmus documents (stdout, or one file
 *       per test under DIR), annotated with axiomatically-derived
 *       expect verdicts unless --no-verdicts.  --four-thread replaces
 *       the random stream with the named IRIW/WRC+/W+RWC cycle
 *       families (litmus::fourThreadSuite), annotated for the four
 *       models the pinned corpus records.
 *
 *   gam-litmus fuzz [--tests N] [--seed S] [--threads N]
 *                   [--max-states M] [--no-shrink] [--engine E]
 *       Differential-fuzz the operational explorer against a spec
 *       engine (axiomatic by default, or the cat engine over the
 *       shipped model files) on generated tests.  Exits 1 if any
 *       divergence was found.
 *
 *   gam-litmus campaign run [--max-cycle-len N] [--min-cycle-len N]
 *                           [--models A,B,..] [--engines A,B,..]
 *                           [--canonical rotation|full]
 *                           [--shards N] [--threads N] [--limit N]
 *                           [--store FILE] [--checkpoint FILE]
 *                           [--resume] [--verify N]
 *                           [--min-store-hit-rate P] [--quiet]
 *                           [--no-fences] [--no-deps] [--no-rmws]
 *                           [--no-batching]
 *                           [--metrics FILE] [--trace FILE]
 *       Decide the exhaustive canonical test universe up to the given
 *       cycle length under every requested (model, engine) pair, with
 *       batched decides work-stolen over a thread pool.  --canonical
 *       full shrinks the universe by the symmetry quotient
 *       (campaign/symmetry.hh) before deciding; --no-batching falls
 *       back to the one-decide-per-query pipeline.  --store appends
 *       every decision to a crash-safe persistent store consulted
 *       before the engines; --resume skips shards the checkpoint
 *       (FILE.ckpt by default) records as finished; --verify N
 *       re-decides every Nth decision from scratch and compares it
 *       against the store (exit 1 on any mismatch);
 *       --min-store-hit-rate P exits 1 when fewer than P percent of
 *       decisions were served by the store.  The run's registry delta
 *       is written as gam-metrics-v1 JSON to --metrics
 *       (campaign_metrics.json by default); --trace exports the run's
 *       spans as Chrome trace_event JSON.
 *
 *   gam-litmus campaign status --store FILE [--json]
 *       Summarise a store: records and distinct tests per
 *       (model, engine), plus any torn tail dropped during recovery.
 *
 *   gam-litmus campaign query --store FILE [--model M]
 *                             [--allowed|--forbidden]
 *                             [--disagree MODEL_A MODEL_B]
 *       The status summary restricted to matching records; with
 *       --disagree, the tests both models have persisted verdicts for
 *       that they decide differently.
 *
 *   gam-litmus campaign compact --output FILE INPUT...
 *       Merge store files into one fresh log, deduping by query key
 *       (first input wins) and healing torn tails; records are
 *       written in key order so the output is reproducible.
 *
 *   gam-litmus model list
 *       List the cat models shipped with the library.
 *
 *   gam-litmus model show <name|file.cat> [--plan]
 *       Print a model's source; with --plan, the compiled evaluation
 *       plan instead (cat/compile.hh): stratified definitions,
 *       per-epoch constant slots, and the incremental pass each axiom
 *       lowered to.
 *
 *   gam-litmus model check <name|file.cat>
 *       Parse and statically check a model, then run it over every
 *       built-in litmus test; when the model names a built-in
 *       ModelKind, cross-check each verdict against the hand-coded
 *       axiomatic checker.  Exits 1 on a diagnostic or mismatch.
 *
 *   gam-litmus model lint <name|file.cat>...
 *       Static analysis over the checked AST (analysis/lint.hh):
 *       unused definitions, shadowing, statically-empty relations,
 *       vacuous or redundant axioms, non-productive recursion.  Exits
 *       1 when any model produces a warning (CI lints the shipped
 *       models with exactly this), 2 on unparseable input.
 *
 * Every input error (unknown test, malformed file, bad flag) is
 * reported and turned into a nonzero exit; nothing aborts the process.
 * Unknown --engine/--model values list what is available.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/lint.hh"
#include "base/table.hh"
#include "campaign/driver.hh"
#include "cat/compile.hh"
#include "cat/engine.hh"
#include "harness/fuzz.hh"
#include "harness/litmus_runner.hh"
#include "litmus/generator.hh"
#include "litmus/parser.hh"
#include "litmus/suite.hh"
#include "model/engine.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace
{

using namespace gam;
using model::ModelKind;

int
usage()
{
    std::fprintf(stderr,
                 "usage: gam-litmus <command> [options]\n"
                 "\n"
                 "commands:\n"
                 "  list                      list built-in tests\n"
                 "  run <test|file>...        decide tests and print "
                 "the verdict matrix\n"
                 "      [--model M]...        SC TSO GAM0 GAM ARM "
                 "Alpha* PerLocSC\n"
                 "      [--engine E]          axiomatic, operational, "
                 "cat or auto (default: all)\n"
                 "      [--threads N]         worker threads (0 = "
                 "hardware)\n"
                 "      [--budget M]          explorer visited-state "
                 "budget\n"
                 "      [--stats]             print decision-cache, "
                 "prescreen and\n"
                 "                            enumeration counters\n"
                 "      [--json]              print this run's metrics "
                 "registry delta as\n"
                 "                            gam-metrics-v1 JSON "
                 "instead of text output\n"
                 "      [--trace FILE]        write a Chrome "
                 "trace_event JSON of the run\n"
                 "      [--no-prescreen]      disable the static "
                 "pre-screen in decide()\n"
                 "      [--no-cat-compile]    run cat queries through "
                 "the interpreting\n"
                 "                            evaluator instead of the "
                 "compiled plan\n"
                 "  print <test|file>...      re-emit tests in "
                 "canonical text form\n"
                 "  gen [--tests N] [--seed S] [--out DIR] "
                 "[--no-verdicts] [--four-thread]\n"
                 "                            emit generated litmus "
                 "documents (--four-thread:\n"
                 "                            the named IRIW/WRC+/W+RWC "
                 "cycle families)\n"
                 "  fuzz [--tests N] [--seed S] [--threads N]\n"
                 "       [--max-states M] [--no-shrink] [--engine E]\n"
                 "                            differential-fuzz a spec "
                 "engine (axiomatic or\n"
                 "                            cat) against the "
                 "operational explorer\n"
                 "  campaign run              decide the exhaustive "
                 "canonical test universe\n"
                 "      [--max-cycle-len N]   cycle length bound "
                 "(default 6)\n"
                 "      [--models A,B,..]     default SC,TSO,GAM0,GAM\n"
                 "      [--engines A,B,..]    default axiomatic\n"
                 "      [--shards N] [--threads N] [--limit N]\n"
                 "      [--store FILE]        persistent decision "
                 "store (append-log)\n"
                 "      [--resume]            skip checkpointed shards\n"
                 "      [--verify N]          re-decide every Nth "
                 "decision from scratch\n"
                 "      [--min-store-hit-rate P]  exit 1 below P%% "
                 "store hits\n"
                 "      [--metrics FILE]      write the run's registry "
                 "delta as JSON\n"
                 "                            (default "
                 "campaign_metrics.json)\n"
                 "      [--trace FILE]        write a Chrome "
                 "trace_event JSON of the run\n"
                 "  campaign status --store FILE [--json]\n"
                 "                            summarise a decision "
                 "store\n"
                 "  campaign query --store FILE [--model M] "
                 "[--allowed|--forbidden]\n"
                 "                            summarise matching "
                 "records\n"
                 "  model list                list the shipped cat "
                 "models\n"
                 "  model show <name|file>    print a cat model's "
                 "source\n"
                 "      [--plan]              print the compiled plan "
                 "instead: strata,\n"
                 "                            constant slots and fused "
                 "axiom passes\n"
                 "  model check <name|file>   validate a cat model "
                 "and cross-check its\n"
                 "                            verdicts on the "
                 "built-in tests\n"
                 "  model lint <name|file>... lint cat models "
                 "(unused/shadowed definitions,\n"
                 "                            empty relations, vacuous/"
                 "redundant axioms)\n");
    return 2;
}

/** Print every engine name a frontend flag accepts. */
void
listEngines(bool include_auto = true)
{
    std::fprintf(stderr, "available engines:\n");
    for (model::Engine engine : model::allEngines)
        std::fprintf(stderr, "  %s\n",
                     model::engineName(engine).c_str());
    if (include_auto)
        std::fprintf(stderr, "  auto\n");
}

/** Print every memory-model name --model accepts. */
void
listModels()
{
    std::fprintf(stderr, "available models:\n");
    for (ModelKind kind : model::allModelKinds)
        std::fprintf(stderr, "  %s\n",
                     model::modelName(kind).c_str());
}

/** Print every shipped cat model name. */
void
listCatModels()
{
    std::fprintf(stderr, "shipped cat models:\n");
    for (const cat::CatModel *m : cat::builtinCatModels())
        std::fprintf(stderr, "  %s\n", m->name.c_str());
}

std::optional<uint64_t>
parseCount(const char *arg)
{
    uint64_t value = 0;
    std::istringstream is(arg);
    is >> value;
    if (!is || !is.eof())
        return std::nullopt;
    return value;
}

/** Next flag value or nullptr (with a message) when it is missing. */
const char *
flagValue(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "gam-litmus: %s needs a value\n", flag);
        return nullptr;
    }
    return argv[++i];
}

/**
 * Export the collected trace to @p path (call only after worker pools
 * have drained).  Returns false (with a message) on I/O failure.
 */
bool
writeTrace(const std::string &path)
{
    const obs::TraceCollector &tc = obs::TraceCollector::instance();
    if (!tc.writeChromeJson(path)) {
        std::fprintf(stderr, "gam-litmus: cannot write trace '%s'\n",
                     path.c_str());
        return false;
    }
    std::fprintf(stderr, "trace: %llu spans written to %s",
                 (unsigned long long)tc.retainedEvents(), path.c_str());
    if (tc.droppedEvents())
        std::fprintf(stderr, " (%llu oldest spans dropped)",
                     (unsigned long long)tc.droppedEvents());
    std::fprintf(stderr, "\n");
    return true;
}

int
cmdList()
{
    for (const auto &t : litmus::allTests()) {
        std::printf("  %-20s %-12s %s\n", t.name.c_str(),
                    t.paperRef.c_str(), t.description.c_str());
    }
    return 0;
}

/** Load one `run` argument: a built-in name or a .litmus file. */
std::optional<litmus::LitmusTest>
loadTest(const std::string &arg)
{
    const bool is_file =
        arg.find('.') != std::string::npos
        || arg.find('/') != std::string::npos;
    if (!is_file) {
        if (const litmus::LitmusTest *t = litmus::findTest(arg))
            return *t;
        std::fprintf(stderr,
                     "gam-litmus: unknown test '%s'; available tests:\n",
                     arg.c_str());
        for (const auto &t : litmus::allTests())
            std::fprintf(stderr, "  %s\n", t.name.c_str());
        return std::nullopt;
    }

    std::ifstream in(arg);
    if (!in) {
        std::fprintf(stderr, "gam-litmus: cannot open '%s'\n",
                     arg.c_str());
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = litmus::parseLitmus(text.str());
    if (!parsed) {
        std::fprintf(stderr, "gam-litmus: %s: %s\n", arg.c_str(),
                     parsed.error.toString().c_str());
        return std::nullopt;
    }
    return *std::move(parsed.test);
}

int
cmdRun(int argc, char **argv)
{
    std::vector<litmus::LitmusTest> tests;
    std::vector<ModelKind> models;
    harness::MatrixOptions options;
    bool stats = false;
    bool json = false;
    std::string trace_path;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--model") {
            const char *value = flagValue(argc, argv, i, "--model");
            if (!value)
                return 2;
            auto kind = model::modelFromName(value);
            if (!kind) {
                std::fprintf(stderr, "gam-litmus: unknown model '%s'\n",
                             value);
                listModels();
                return 2;
            }
            models.push_back(*kind);
        } else if (arg == "--engine") {
            const char *value = flagValue(argc, argv, i, "--engine");
            if (!value)
                return 2;
            if (std::string(value) == "auto") {
                options.engine = harness::EngineSelect::Auto;
            } else if (auto engine = model::engineFromName(value)) {
                options.engine = harness::engineSelectOf(*engine);
            } else {
                std::fprintf(stderr, "gam-litmus: unknown engine "
                             "'%s'\n", value);
                listEngines();
                return 2;
            }
        } else if (arg == "--threads" || arg == "--budget") {
            const char *value = flagValue(argc, argv, i, arg.c_str());
            if (!value)
                return 2;
            auto n = parseCount(value);
            if (!n) {
                std::fprintf(stderr, "gam-litmus: bad %s value '%s'\n",
                             arg.c_str(), value);
                return 2;
            }
            if (arg == "--threads")
                options.poolThreads = static_cast<unsigned>(*n);
            else
                options.run.stateBudget = *n;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--trace") {
            const char *value = flagValue(argc, argv, i, "--trace");
            if (!value)
                return 2;
            trace_path = value;
        } else if (arg == "--no-prescreen") {
            options.run.prescreen = false;
        } else if (arg == "--no-cat-compile") {
            options.run.catCompile = false;
        } else {
            auto test = loadTest(arg);
            if (!test)
                return 2;
            tests.push_back(*std::move(test));
        }
    }
    if (tests.empty()) {
        std::fprintf(stderr, "gam-litmus: run needs at least one test "
                             "name or .litmus file\n");
        return 2;
    }
    if (models.empty()) {
        models = {ModelKind::SC, ModelKind::TSO, ModelKind::GAM0,
                  ModelKind::GAM, ModelKind::ARM};
    }

    const auto before = harness::globalDecisionCache().stats();
    const obs::MetricSnapshot metrics_before = obs::metrics().snapshot();
    if (!trace_path.empty())
        obs::TraceCollector::instance().enable();
    auto verdicts = harness::runLitmusMatrix(tests, models, options);
    if (!trace_path.empty()) {
        // The matrix pool has drained: the rings are quiescent.
        obs::TraceCollector::instance().disable();
        if (!writeTrace(trace_path))
            return 1;
    }
    if (verdicts.empty()) {
        // Everything was skipped (e.g. --model PerLocSC --engine
        // operational); an empty matrix must not read as success.
        std::fprintf(stderr, "gam-litmus: no decidable (model, engine) "
                             "combination for the given tests\n");
        return 2;
    }
    if (json) {
        // The machine-readable twin of the text output: exactly this
        // run's registry delta in the gam-metrics-v1 schema.
        std::printf("%s", obs::metrics()
                              .snapshot()
                              .delta(metrics_before)
                              .toJson()
                              .c_str());
        for (const auto &v : verdicts)
            if (!v.matchesPaper())
                return 1;
        return 0;
    }
    std::printf("%s", harness::formatLitmusMatrix(verdicts).c_str());
    if (stats) {
        const auto after = harness::globalDecisionCache().stats();
        const size_t resident = harness::globalDecisionCache().size();
        const size_t capacity = harness::globalDecisionCache().capacity();
        std::printf("decision cache: %llu hits, %llu misses, "
                    "%llu evictions, %llu/%llu resident (%.1f%% "
                    "occupancy)\n",
                    (unsigned long long)(after.hits - before.hits),
                    (unsigned long long)(after.misses - before.misses),
                    (unsigned long long)(after.evictions
                                         - before.evictions),
                    (unsigned long long)resident,
                    (unsigned long long)capacity,
                    capacity ? 100.0 * double(resident) / double(capacity)
                             : 0.0);
        std::printf("cache shards: %u shards, max %llu residents, "
                    "mean %.1f (skew %.2f)\n",
                    after.shardCount,
                    (unsigned long long)after.shardMax, after.shardMean,
                    after.shardMean > 0.0
                        ? double(after.shardMax) / after.shardMean
                        : 0.0);
        size_t value_cover = 0;
        size_t sc_delegate = 0;
        for (const auto &v : verdicts) {
            value_cover +=
                v.prescreened == harness::PrescreenKind::ValueCover;
            sc_delegate +=
                v.prescreened == harness::PrescreenKind::ScDelegate;
        }
        std::printf("prescreen: %zu/%zu decisions short-circuited "
                    "(%zu value-cover, %zu sc-delegate)\n",
                    value_cover + sc_delegate, verdicts.size(),
                    value_cover, sc_delegate);
        // Aggregate the incremental-enumeration counters over the
        // axiomatic/cat rows (operational rows carry none).
        axiomatic::CheckerStats enum_stats;
        size_t enum_rows = 0;
        for (const auto &v : verdicts) {
            if (!model::engineUsesCandidateEnumeration(v.engine))
                continue;
            ++enum_rows;
            enum_stats.merge(v.enumStats);
        }
        if (enum_rows > 0) {
            std::printf(
                "enumeration (%zu rows): %llu rf maps tried "
                "(%llu skipped statically), %llu value-consistent, "
                "%llu candidates checked, %llu accepted\n"
                "pruning: %llu rf prefixes cut, %llu partials pruned, "
                "%llu complete candidates never built, "
                "max backtrack depth %llu\n",
                enum_rows,
                (unsigned long long)enum_stats.rfCandidates,
                (unsigned long long)enum_stats.rfStaticSkipped,
                (unsigned long long)enum_stats.valueConsistent,
                (unsigned long long)enum_stats.coCandidates,
                (unsigned long long)enum_stats.accepted,
                (unsigned long long)enum_stats.rfPruned,
                (unsigned long long)enum_stats.partialsPruned,
                (unsigned long long)enum_stats.subtreesSkipped,
                (unsigned long long)enum_stats.maxBacktrackDepth);
        }
    }
    for (const auto &v : verdicts)
        if (!v.matchesPaper())
            return 1;
    return 0;
}

int
cmdPrint(int argc, char **argv)
{
    bool first = true;
    for (int i = 0; i < argc; ++i) {
        auto test = loadTest(argv[i]);
        if (!test)
            return 2;
        if (!first)
            std::printf("\n");
        first = false;
        std::printf("%s", litmus::printLitmus(*test).c_str());
    }
    if (first) {
        std::fprintf(stderr, "gam-litmus: print needs at least one "
                             "test name or .litmus file\n");
        return 2;
    }
    return 0;
}

int
cmdGen(int argc, char **argv)
{
    uint64_t tests = 10, seed = 1;
    bool verdicts = true;
    bool four_thread = false;
    bool stream_flags = false;
    std::string out_dir;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *value = nullptr;
        if (arg == "--four-thread") {
            four_thread = true;
        } else if (arg == "--tests" || arg == "--seed") {
            value = flagValue(argc, argv, i, arg.c_str());
            if (!value)
                return 2;
            auto n = parseCount(value);
            if (!n) {
                std::fprintf(stderr, "gam-litmus: bad %s value '%s'\n",
                             arg.c_str(), value);
                return 2;
            }
            (arg == "--tests" ? tests : seed) = *n;
            stream_flags = true;
        } else if (arg == "--out") {
            value = flagValue(argc, argv, i, "--out");
            if (!value)
                return 2;
            out_dir = value;
        } else if (arg == "--no-verdicts") {
            verdicts = false;
        } else {
            std::fprintf(stderr, "gam-litmus: unknown gen option "
                                 "'%s'\n", arg.c_str());
            return 2;
        }
    }

    if (four_thread && stream_flags) {
        std::fprintf(stderr,
                     "gam-litmus: --four-thread emits the fixed named "
                     "families; --tests/--seed do not apply\n");
        return 2;
    }

    // Random-stream tests are annotated against every model; the
    // named four-thread families against the four models their corpus
    // copies pin (the satellite IRIW/WRC+/W+RWC verdicts).
    const std::vector<ModelKind> models = four_thread
        ? std::vector<ModelKind>{ModelKind::SC, ModelKind::TSO,
                                 ModelKind::GAM0, ModelKind::GAM}
        : std::vector<ModelKind>{ModelKind::SC, ModelKind::TSO,
                                 ModelKind::GAM0, ModelKind::GAM,
                                 ModelKind::ARM};

    std::vector<litmus::LitmusTest> emitted;
    if (four_thread) {
        emitted = litmus::fourThreadSuite();
    } else {
        for (uint64_t i = 0; i < tests; ++i)
            emitted.push_back(litmus::generateTest(seed, i));
    }

    bool first = true;
    for (litmus::LitmusTest &test : emitted) {
        if (verdicts)
            harness::annotateExpected(test, models);
        const std::string text = litmus::printLitmus(test);
        if (out_dir.empty()) {
            if (!first)
                std::printf("\n");
            first = false;
            std::printf("%s", text.c_str());
            continue;
        }
        const std::string path = out_dir + "/" + test.name + ".litmus";
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "gam-litmus: cannot write '%s'\n",
                         path.c_str());
            return 2;
        }
        out << text;
    }
    return 0;
}

int
cmdFuzz(int argc, char **argv)
{
    harness::FuzzOptions options;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--no-shrink") {
            options.shrink = false;
            continue;
        }
        if (arg == "--engine") {
            const char *value = flagValue(argc, argv, i, "--engine");
            if (!value)
                return 2;
            auto engine = model::engineFromName(value);
            if (!engine || *engine == model::Engine::Operational) {
                std::fprintf(stderr, "gam-litmus: fuzz --engine picks "
                             "the spec side checked against the "
                             "operational explorer; '%s' is not one\n",
                             value);
                std::fprintf(stderr, "available spec engines:\n");
                for (model::Engine spec : model::allEngines) {
                    if (spec != model::Engine::Operational) {
                        std::fprintf(stderr, "  %s\n",
                                     model::engineName(spec).c_str());
                    }
                }
                return 2;
            }
            options.spec = *engine;
            continue;
        }
        if (arg != "--tests" && arg != "--seed" && arg != "--threads"
            && arg != "--max-states") {
            std::fprintf(stderr, "gam-litmus: unknown fuzz option "
                                 "'%s'\n", arg.c_str());
            return 2;
        }
        const char *value = flagValue(argc, argv, i, arg.c_str());
        if (!value)
            return 2;
        auto n = parseCount(value);
        if (!n) {
            std::fprintf(stderr, "gam-litmus: bad %s value '%s'\n",
                         arg.c_str(), value);
            return 2;
        }
        if (arg == "--tests")
            options.tests = *n;
        else if (arg == "--seed")
            options.seed = *n;
        else if (arg == "--threads")
            options.threads = static_cast<unsigned>(*n);
        else
            options.maxStates = *n;
    }

    harness::FuzzReport report = harness::fuzzDifferential(options);
    std::printf("%s", report.toString().c_str());
    return report.ok() ? 0 : 1;
}

/**
 * Load a cat model: a shipped name or (anything with a '.' or '/') a
 * file parsed from source.  Diagnoses failures and lists the shipped
 * models on an unknown name.  Returns nullptr on failure; shipped
 * models alias the library's registry (no-op deleter).
 */
std::shared_ptr<const cat::CatModel>
loadCatModel(const std::string &arg)
{
    const bool is_file = arg.find('.') != std::string::npos
        || arg.find('/') != std::string::npos;
    if (!is_file) {
        if (const cat::CatModel *m = cat::findBuiltinCatModel(arg)) {
            return std::shared_ptr<const cat::CatModel>(
                m, [](const cat::CatModel *) {});
        }
        std::fprintf(stderr, "gam-litmus: unknown cat model '%s'\n",
                     arg.c_str());
        listCatModels();
        return nullptr;
    }
    std::ifstream in(arg);
    if (!in) {
        std::fprintf(stderr, "gam-litmus: cannot open '%s'\n",
                     arg.c_str());
        return nullptr;
    }
    std::ostringstream text;
    text << in.rdbuf();
    // Default the model name to the file stem.
    std::string stem = arg;
    if (auto slash = stem.find_last_of('/'); slash != std::string::npos)
        stem = stem.substr(slash + 1);
    if (auto dot = stem.find_last_of('.'); dot != std::string::npos)
        stem = stem.substr(0, dot);
    cat::CatParseResult parsed = cat::parseCat(text.str(), stem);
    if (!parsed.ok()) {
        std::fprintf(stderr, "gam-litmus: %s: %s\n", arg.c_str(),
                     parsed.error.toString().c_str());
        return nullptr;
    }
    return std::make_shared<cat::CatModel>(std::move(*parsed.model));
}

int
cmdModelList()
{
    for (const cat::CatModel *m : cat::builtinCatModels()) {
        std::string axioms;
        for (const std::string &name : m->axiomNames) {
            if (!axioms.empty())
                axioms += ", ";
            axioms += name;
        }
        std::printf("  %-8s %2zu definitions, %zu axioms (%s)\n",
                    m->name.c_str(), m->definitionNames.size(),
                    m->axiomNames.size(), axioms.c_str());
    }
    return 0;
}

int
cmdModelShow(const std::string &arg, bool plan)
{
    auto m = loadCatModel(arg);
    if (!m)
        return 2;
    if (plan) {
        // The compiler's own view of the model: what the incremental
        // filter evaluates once per epoch, per push, and at leaves.
        std::printf("%s", cat::compileCatModel(*m)->describe().c_str());
        return 0;
    }
    std::printf("%s", m->source.c_str());
    return 0;
}

int
cmdModelCheck(const std::string &arg)
{
    auto m = loadCatModel(arg);
    if (!m)
        return 2;
    std::printf("model %s: parsed OK (%zu definitions, %zu axioms)\n",
                m->name.c_str(), m->definitionNames.size(),
                m->axiomNames.size());

    // Run every built-in litmus test under the model; when the model
    // names a built-in kind with an axiomatic definition, cross-check
    // verdict-for-verdict against the hand-coded checker.
    const auto kind = cat::catModelKind(*m);
    const bool compare = kind.has_value()
        && model::supportsEngine(*kind, model::Engine::Axiomatic);
    if (compare) {
        std::printf("cross-checking against the hand-coded axiomatic "
                    "checker for %s\n",
                    model::modelName(*kind).c_str());
    } else {
        std::printf("custom model (no hand-coded reference); "
                    "reporting verdicts only\n");
    }

    Table t;
    t.header(compare
                 ? std::vector<std::string>{"test", "cat", "axiomatic",
                                            "match"}
                 : std::vector<std::string>{"test", "cat"});
    int mismatches = 0;
    for (const auto &test : litmus::allTests()) {
        // Both sides go through the unified decide() API (and its
        // cache); the explicit catModel also covers custom files
        // whose name maps to no builtin ModelKind.
        harness::Query query;
        query.test = &test;
        query.model = kind.value_or(model::ModelKind::GAM);
        query.engine = harness::EngineSelect::Cat;
        query.catModel = m.get();
        const bool cat_allowed = harness::decide(query).allowed;
        const char *cat_text = cat_allowed ? "allowed" : "forbidden";
        if (!compare) {
            t.row({test.name, cat_text});
            continue;
        }
        query.engine = harness::EngineSelect::Axiomatic;
        query.catModel = nullptr;
        const bool ax_allowed = harness::decide(query).allowed;
        const bool ok = cat_allowed == ax_allowed;
        if (!ok)
            ++mismatches;
        t.row({test.name, cat_text,
               ax_allowed ? "allowed" : "forbidden",
               ok ? "yes" : "MISMATCH"});
    }
    std::printf("%s", t.render().c_str());
    if (compare) {
        std::printf("%zu tests, %d mismatches\n",
                    litmus::allTests().size(), mismatches);
        return mismatches == 0 ? 0 : 1;
    }
    return 0;
}

int
cmdModelLint(const std::string &arg)
{
    auto m = loadCatModel(arg);
    if (!m)
        return 2;
    const auto diags = analysis::lint(*m);
    for (const auto &d : diags)
        std::printf("%s: %s\n", arg.c_str(), d.toString().c_str());
    bool warned = false;
    for (const auto &d : diags)
        warned |= d.severity == analysis::LintSeverity::Warning;
    if (diags.empty())
        std::printf("%s: clean\n", arg.c_str());
    return warned ? 1 : 0;
}

/** Parse one comma-separated --models value into ModelKinds. */
std::optional<std::vector<ModelKind>>
parseModelList(const char *value)
{
    std::vector<ModelKind> models;
    std::istringstream is(value);
    std::string name;
    while (std::getline(is, name, ',')) {
        auto kind = model::modelFromName(name);
        if (!kind) {
            std::fprintf(stderr, "gam-litmus: unknown model '%s'\n",
                         name.c_str());
            listModels();
            return std::nullopt;
        }
        models.push_back(*kind);
    }
    return models;
}

/** Parse one comma-separated --engines value into Engines. */
std::optional<std::vector<model::Engine>>
parseEngineList(const char *value)
{
    std::vector<model::Engine> engines;
    std::istringstream is(value);
    std::string name;
    while (std::getline(is, name, ',')) {
        auto engine = model::engineFromName(name);
        if (!engine) {
            std::fprintf(stderr, "gam-litmus: unknown engine '%s'\n",
                         name.c_str());
            listEngines(false);
            return std::nullopt;
        }
        engines.push_back(*engine);
    }
    return engines;
}

std::string
formatEta(double seconds)
{
    const auto s = uint64_t(seconds);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu:%02llu:%02llu",
                  (unsigned long long)(s / 3600),
                  (unsigned long long)(s / 60 % 60),
                  (unsigned long long)(s % 60));
    return buf;
}

int
cmdCampaignRun(int argc, char **argv)
{
    campaign::CampaignOptions options;
    std::string store_path;
    std::string metrics_path = "campaign_metrics.json";
    std::string trace_path;
    double min_store_hit_rate = -1.0;
    bool quiet = false;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--resume") {
            options.resume = true;
            continue;
        }
        if (arg == "--quiet") {
            quiet = true;
            continue;
        }
        if (arg == "--no-fences") {
            options.enumerate.fences = false;
            continue;
        }
        if (arg == "--no-deps") {
            options.enumerate.deps = false;
            continue;
        }
        if (arg == "--no-rmws") {
            options.enumerate.rmws = false;
            continue;
        }
        if (arg == "--no-batching") {
            options.batching = false;
            continue;
        }
        const char *value = flagValue(argc, argv, i, arg.c_str());
        if (!value)
            return 2;
        if (arg == "--canonical") {
            const std::string form = value;
            if (form == "rotation") {
                options.enumerate.canonical =
                    campaign::CanonicalForm::Rotation;
            } else if (form == "full") {
                options.enumerate.canonical =
                    campaign::CanonicalForm::Full;
            } else {
                std::fprintf(stderr,
                             "gam-litmus: --canonical wants 'rotation' "
                             "or 'full', got '%s'\n",
                             value);
                return 2;
            }
        } else if (arg == "--models") {
            auto models = parseModelList(value);
            if (!models)
                return 2;
            options.models = *std::move(models);
        } else if (arg == "--engines") {
            auto engines = parseEngineList(value);
            if (!engines)
                return 2;
            options.engines = *std::move(engines);
        } else if (arg == "--store") {
            store_path = value;
        } else if (arg == "--checkpoint") {
            options.checkpointPath = value;
        } else if (arg == "--metrics") {
            metrics_path = value;
        } else if (arg == "--trace") {
            trace_path = value;
        } else if (arg == "--min-store-hit-rate") {
            char *end = nullptr;
            min_store_hit_rate = std::strtod(value, &end);
            if (end == value || *end != '\0' || min_store_hit_rate < 0
                || min_store_hit_rate > 100) {
                std::fprintf(stderr,
                             "gam-litmus: --min-store-hit-rate wants a "
                             "percentage, got '%s'\n",
                             value);
                return 2;
            }
        } else {
            auto n = parseCount(value);
            if (!n) {
                std::fprintf(stderr, "gam-litmus: bad %s value '%s'\n",
                             arg.c_str(), value);
                return 2;
            }
            if (arg == "--max-cycle-len")
                options.enumerate.maxLen = int(*n);
            else if (arg == "--min-cycle-len")
                options.enumerate.minLen = int(*n);
            else if (arg == "--shards")
                options.shards = unsigned(*n);
            else if (arg == "--threads")
                options.threads = unsigned(*n);
            else if (arg == "--limit")
                options.limit = *n;
            else if (arg == "--verify")
                options.verifySample = *n;
            else {
                std::fprintf(stderr,
                             "gam-litmus: unknown campaign run option "
                             "'%s'\n",
                             arg.c_str());
                return 2;
            }
        }
    }

    if (store_path.empty() && options.resume
        && options.checkpointPath.empty()) {
        std::fprintf(stderr, "gam-litmus: --resume needs --store or "
                             "--checkpoint to resume from\n");
        return 2;
    }
    if (!store_path.empty() && options.checkpointPath.empty())
        options.checkpointPath = store_path + ".ckpt";

    std::unique_ptr<campaign::DecisionStore> store;
    if (!store_path.empty())
        store = std::make_unique<campaign::DecisionStore>(store_path);
    if (store) {
        const auto s = store->stats();
        std::fprintf(stderr,
                     "store: %llu records recovered from %s (%llu "
                     "torn-tail bytes dropped)\n",
                     (unsigned long long)s.loaded, store_path.c_str(),
                     (unsigned long long)s.droppedBytes);
    }

    auto progress = [&](const campaign::CampaignProgress &p) {
        const double rate = p.seconds > 0
            ? double(p.decisionsDone) / p.seconds : 0.0;
        const uint64_t left = p.decisionsTotal - p.decisionsDone;
        std::fprintf(stderr,
                     "campaign: %llu/%llu decisions (%.0f/s, %.1f%% "
                     "store hits), %u/%u shards, ETA %s\n",
                     (unsigned long long)p.decisionsDone,
                     (unsigned long long)p.decisionsTotal, rate,
                     p.decisionsDone ? 100.0 * double(p.storeHits)
                             / double(p.decisionsDone)
                                     : 0.0,
                     p.shardsDone, p.shardsTotal,
                     rate > 0 ? formatEta(double(left) / rate).c_str()
                              : "--");
    };
    if (!trace_path.empty())
        obs::TraceCollector::instance().enable();
    const campaign::CampaignResult result = campaign::runCampaign(
        options, store.get(),
        quiet ? std::function<void(const campaign::CampaignProgress &)>{}
              : progress);
    if (!trace_path.empty()) {
        // runCampaign() has joined its shard workers.
        obs::TraceCollector::instance().disable();
        if (!writeTrace(trace_path))
            return 1;
    }
    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path, std::ios::trunc);
        out << result.metrics.toJson();
        if (!out.good()) {
            std::fprintf(stderr,
                         "gam-litmus: cannot write metrics '%s'\n",
                         metrics_path.c_str());
            return 1;
        }
        std::fprintf(stderr, "metrics: registry delta written to %s\n",
                     metrics_path.c_str());
    }

    std::printf("%s", campaign::formatCampaign(result).c_str());
    if (store) {
        const auto s = store->stats();
        std::printf("store: %llu appended this run, %zu resident, "
                    "%llu duplicate offers\n",
                    (unsigned long long)s.appended, store->size(),
                    (unsigned long long)s.duplicates);
    }

    if (result.verifyMismatches > 0) {
        std::fprintf(stderr,
                     "gam-litmus: %llu verification samples disagreed "
                     "with the store\n",
                     (unsigned long long)result.verifyMismatches);
        return 1;
    }
    if (min_store_hit_rate >= 0.0) {
        const double rate = result.decisions
            ? 100.0 * double(result.storeHits) / double(result.decisions)
            : 0.0;
        if (rate < min_store_hit_rate) {
            std::fprintf(stderr,
                         "gam-litmus: store hit rate %.2f%% below the "
                         "required %.2f%%\n",
                         rate, min_store_hit_rate);
            return 1;
        }
    }
    return 0;
}

int
cmdCampaignStatus(int argc, char **argv, bool query)
{
    std::string store_path;
    std::optional<ModelKind> model_filter;
    std::optional<bool> allowed_filter;
    std::optional<std::pair<ModelKind, ModelKind>> disagree;
    bool json = false;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (query && arg == "--disagree") {
            const char *a = flagValue(argc, argv, i, "--disagree");
            const char *b = a ? flagValue(argc, argv, i, "--disagree")
                              : nullptr;
            if (!a || !b)
                return 2;
            auto ka = model::modelFromName(a);
            auto kb = model::modelFromName(b);
            if (!ka || !kb) {
                std::fprintf(stderr, "gam-litmus: unknown model '%s'\n",
                             !ka ? a : b);
                listModels();
                return 2;
            }
            disagree = {{*ka, *kb}};
            continue;
        }
        if (query && arg == "--allowed") {
            allowed_filter = true;
            continue;
        }
        if (query && arg == "--forbidden") {
            allowed_filter = false;
            continue;
        }
        if (arg == "--json") {
            json = true;
            continue;
        }
        const char *value = flagValue(argc, argv, i, arg.c_str());
        if (!value)
            return 2;
        if (arg == "--store") {
            store_path = value;
        } else if (query && arg == "--model") {
            auto kind = model::modelFromName(value);
            if (!kind) {
                std::fprintf(stderr, "gam-litmus: unknown model '%s'\n",
                             value);
                listModels();
                return 2;
            }
            model_filter = *kind;
        } else {
            std::fprintf(stderr,
                         "gam-litmus: unknown campaign %s option '%s'\n",
                         query ? "query" : "status", arg.c_str());
            return 2;
        }
    }
    if (store_path.empty()) {
        std::fprintf(stderr, "gam-litmus: campaign %s needs --store\n",
                     query ? "query" : "status");
        return 2;
    }
    campaign::DecisionStore store(store_path);
    const auto s = store.stats();
    if (disagree) {
        const auto [a, b] = *disagree;
        if (json) {
            // Count-only JSON view: enough for CI gates to pin the
            // GAM-vs-GAM0 disagreement count without parsing text.
            obs::MetricRegistry reg;
            const auto list = campaign::disagreeingTests(store, a, b);
            reg.counter("store.disagree.tests").inc(list.size());
            std::printf("%s", reg.snapshot().toJson().c_str());
            return 0;
        }
        std::printf("%s",
                    campaign::formatDisagreements(store, a, b).c_str());
        return 0;
    }
    if (json) {
        // The machine-readable twin of the text summary: a local
        // registry (not the process-wide one) holding per-(model,
        // engine) record counts, emitted in the gam-metrics-v1 schema.
        // Model names are folded through metricSegment ("Alpha*" ->
        // "alpha_") so every key is a well-formed metric name.
        obs::MetricRegistry reg;
        std::unordered_set<uint64_t> tests;
        uint64_t matched = 0;
        store.forEach([&](const campaign::StoreRecord &rec) {
            if (model_filter && rec.model != *model_filter)
                return;
            if (allowed_filter && rec.allowed != *allowed_filter)
                return;
            ++matched;
            tests.insert(rec.testFingerprint);
            const std::string prefix = "store."
                + obs::metricSegment(model::modelName(rec.model)) + "."
                + obs::metricSegment(model::engineName(rec.engine));
            reg.counter(prefix + ".records").inc();
            if (rec.allowed)
                reg.counter(prefix + ".allowed").inc();
            if (rec.prescreened != harness::PrescreenKind::None)
                reg.counter(prefix + ".prescreened").inc();
        });
        reg.counter("store.records").inc(matched);
        reg.counter("store.tests").inc(tests.size());
        reg.counter("store.resident").inc(store.size());
        reg.counter("store.recovery.dropped_bytes").inc(s.droppedBytes);
        std::printf("%s", reg.snapshot().toJson().c_str());
        return 0;
    }
    std::printf("%s", campaign::formatStoreSummary(store, model_filter,
                                                   allowed_filter)
                          .c_str());
    if (s.droppedBytes)
        std::printf("recovery: %llu torn-tail bytes dropped at open\n",
                    (unsigned long long)s.droppedBytes);
    return 0;
}

int
cmdCampaignCompact(int argc, char **argv)
{
    std::string output;
    std::vector<std::string> inputs;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--output" || arg == "-o") {
            const char *value = flagValue(argc, argv, i, arg.c_str());
            if (!value)
                return 2;
            output = value;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr,
                         "gam-litmus: unknown campaign compact option "
                         "'%s'\n",
                         arg.c_str());
            return 2;
        } else {
            inputs.push_back(arg);
        }
    }
    if (output.empty() || inputs.empty()) {
        std::fprintf(stderr,
                     "gam-litmus: campaign compact --output FILE "
                     "INPUT...\n");
        return 2;
    }
    const campaign::CompactStats stats =
        campaign::compactStores(inputs, output);
    std::printf("compacted %llu inputs: %llu records scanned, %llu "
                "merged, %llu duplicates dropped -> %s\n",
                (unsigned long long)stats.inputs,
                (unsigned long long)stats.scanned,
                (unsigned long long)stats.merged,
                (unsigned long long)stats.duplicates, output.c_str());
    return 0;
}

int
cmdCampaign(int argc, char **argv)
{
    if (argc < 1) {
        std::fprintf(stderr, "gam-litmus: campaign needs a subcommand "
                             "(run, status, query, compact)\n");
        return 2;
    }
    const std::string sub = argv[0];
    if (sub == "run")
        return cmdCampaignRun(argc - 1, argv + 1);
    if (sub == "status")
        return cmdCampaignStatus(argc - 1, argv + 1, false);
    if (sub == "query")
        return cmdCampaignStatus(argc - 1, argv + 1, true);
    if (sub == "compact")
        return cmdCampaignCompact(argc - 1, argv + 1);
    std::fprintf(stderr, "gam-litmus: unknown campaign subcommand '%s' "
                         "(expected run, status, query or compact)\n",
                 sub.c_str());
    return 2;
}

int
cmdModel(int argc, char **argv)
{
    if (argc < 1) {
        std::fprintf(stderr, "gam-litmus: model needs a subcommand "
                             "(list, show, check, lint)\n");
        return 2;
    }
    const std::string sub = argv[0];
    if (sub == "list")
        return cmdModelList();
    if (sub == "show" || sub == "check" || sub == "lint") {
        bool plan = false;
        std::vector<std::string> names;
        for (int i = 1; i < argc; ++i) {
            if (std::string(argv[i]) == "--plan" && sub == "show")
                plan = true;
            else
                names.push_back(argv[i]);
        }
        if (names.empty()) {
            std::fprintf(stderr, "gam-litmus: model %s needs a model "
                         "name or .cat file\n", sub.c_str());
            listCatModels();
            return 2;
        }
        int rc = 0;
        for (const std::string &name : names) {
            const int one = sub == "show"
                ? cmdModelShow(name, plan)
                : sub == "check" ? cmdModelCheck(name)
                                 : cmdModelLint(name);
            rc = std::max(rc, one);
        }
        return rc;
    }
    std::fprintf(stderr, "gam-litmus: unknown model subcommand '%s' "
                         "(expected list, show, check or lint)\n",
                 sub.c_str());
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    if (command == "list")
        return cmdList();
    if (command == "run")
        return cmdRun(argc - 2, argv + 2);
    if (command == "print")
        return cmdPrint(argc - 2, argv + 2);
    if (command == "gen")
        return cmdGen(argc - 2, argv + 2);
    if (command == "fuzz")
        return cmdFuzz(argc - 2, argv + 2);
    if (command == "campaign")
        return cmdCampaign(argc - 2, argv + 2);
    if (command == "model")
        return cmdModel(argc - 2, argv + 2);
    std::fprintf(stderr, "gam-litmus: unknown command '%s'\n",
                 command.c_str());
    return usage();
}
