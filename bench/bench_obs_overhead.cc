/**
 * @file
 * Observability overhead of the instrumented decide() pipeline.
 *
 * The same source builds two binaries:
 *
 *   bench_obs_overhead_notrace   linked against gam_notrace (the
 *                                library compiled with GAM_NO_TRACING,
 *                                so TraceSpan is an empty class).
 *                                Measures the compiled-out baseline
 *                                and writes it as
 *                                BENCH_obs_overhead_baseline.json.
 *   bench_obs_overhead           linked against the normal library.
 *                                Measures decide() with tracing
 *                                disabled (the production default) and
 *                                enabled, reads the baseline file, and
 *                                gates disabled/baseline at <= 1.03:
 *                                a disabled span must cost one relaxed
 *                                load and a branch, nothing more.
 *
 * The workload is every <= 3-thread built-in litmus test decided under
 * the four cat-and-axiom models with the axiomatic engine and no
 * cache, so every decision walks the whole instrumented pipeline
 * (spans at decide/cache/store/prescreen/engine plus the per-epoch
 * enumerator spans).  Timing is min-of-N passes: the minimum is the
 * run least disturbed by the machine, which is exactly the comparison
 * the gate wants.
 *
 * Both artifacts use the gam-metrics-v1 snapshot schema, so the
 * instrumented binary parses the baseline with
 * MetricSnapshot::fromJson rather than a bespoke parser.  When the
 * baseline file is absent (a local build that never compiled
 * gam_notrace) the bench still reports and writes its artifact but
 * exits 0 without gating.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "harness/decision.hh"
#include "litmus/suite.hh"
#include "model/engine.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace
{

using namespace gam;

constexpr int Passes = 7;
constexpr double GateRatioMax = 1.03;
constexpr const char *BaselinePath = "BENCH_obs_overhead_baseline.json";

/** One full sweep: every test x model through decide(), no cache. */
double
sweep(const std::vector<litmus::LitmusTest> &tests,
      const std::vector<model::ModelKind> &models)
{
    const auto start = std::chrono::steady_clock::now();
    for (const litmus::LitmusTest &test : tests) {
        for (model::ModelKind model : models) {
            harness::Query query;
            query.test = &test;
            query.model = model;
            query.engine = harness::EngineSelect::Axiomatic;
            (void)harness::decide(query, nullptr);
        }
    }
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Best (minimum) sweep time of Passes runs, after one warmup. */
double
minSweep(const std::vector<litmus::LitmusTest> &tests,
         const std::vector<model::ModelKind> &models)
{
    (void)sweep(tests, models);
    double best = sweep(tests, models);
    for (int i = 1; i < Passes; ++i)
        best = std::min(best, sweep(tests, models));
    return best;
}

bool
writeSnapshot(const char *path, const obs::MetricSnapshot &snap)
{
    std::ofstream out(path, std::ios::trunc);
    out << snap.toJson();
    out.flush();
    return out.good();
}

} // namespace

int
main()
{
    std::vector<litmus::LitmusTest> tests;
    for (const litmus::LitmusTest &test : litmus::allTests())
        if (test.threads.size() <= 3)
            tests.push_back(test);
    const std::vector<model::ModelKind> models = {
        model::ModelKind::SC, model::ModelKind::TSO,
        model::ModelKind::GAM0, model::ModelKind::GAM,
    };
    const uint64_t decisions = tests.size() * models.size();

    obs::MetricRegistry reg;
    reg.counter("obs_overhead.tests").inc(tests.size());
    reg.counter("obs_overhead.models").inc(models.size());
    reg.counter("obs_overhead.passes").inc(Passes);
    reg.counter("obs_overhead.decisions_per_pass").inc(decisions);

#ifdef GAM_NO_TRACING
    // ------------------------------------------- compiled-out baseline
    std::printf("obs-overhead baseline (GAM_NO_TRACING): %zu tests x "
                "%zu models, min of %d passes\n",
                tests.size(), models.size(), Passes);
    const double baseline_s = minSweep(tests, models);
    std::printf("baseline sweep: %.6fs (%llu decisions)\n", baseline_s,
                static_cast<unsigned long long>(decisions));

    reg.gauge("obs_overhead.seconds").set(baseline_s);
    if (!writeSnapshot(BaselinePath, reg.snapshot())) {
        std::printf("FAIL: cannot write %s\n", BaselinePath);
        return 1;
    }
    std::printf("baseline written to %s\nPASS\n", BaselinePath);
    return 0;
#else
    // -------------------------------------- instrumented measurements
    std::printf("obs-overhead benchmark: %zu tests x %zu models, min "
                "of %d passes\n",
                tests.size(), models.size(), Passes);

    const double disabled_s = minSweep(tests, models);

    obs::TraceCollector::instance().enable();
    const double enabled_s = minSweep(tests, models);
    obs::TraceCollector::instance().disable();
    obs::TraceCollector::instance().clear();

    std::printf("tracing disabled: %.6fs   tracing enabled: %.6fs "
                "(%.2fx)\n",
                disabled_s, enabled_s,
                disabled_s > 0 ? enabled_s / disabled_s : 0.0);

    reg.gauge("obs_overhead.seconds").set(disabled_s);
    reg.gauge("obs_overhead.enabled_seconds").set(enabled_s);
    reg.gauge("obs_overhead.gate_ratio_max").set(GateRatioMax);

    // The gate needs the compiled-out twin's artifact; CI runs
    // bench_obs_overhead_notrace first in the same directory.
    double baseline_s = 0.0;
    bool have_baseline = false;
    if (std::ifstream in{BaselinePath}) {
        std::ostringstream text;
        text << in.rdbuf();
        const auto parsed = obs::MetricSnapshot::fromJson(text.str());
        if (!parsed) {
            std::printf("FAIL: %s is not a gam-metrics-v1 document\n",
                        BaselinePath);
            return 1;
        }
        baseline_s = parsed->gauge("obs_overhead.seconds");
        have_baseline = baseline_s > 0.0;
    }

    double ratio = 0.0;
    if (have_baseline) {
        ratio = disabled_s / baseline_s;
        reg.gauge("obs_overhead.baseline_seconds").set(baseline_s);
        reg.gauge("obs_overhead.ratio").set(ratio);
        std::printf("compiled-out baseline: %.6fs   "
                    "instrumented/baseline: %.4fx (gate <= %.2fx)\n",
                    baseline_s, ratio, GateRatioMax);
    }

    if (!writeSnapshot("BENCH_obs_overhead.json", reg.snapshot())) {
        std::printf("FAIL: cannot write BENCH_obs_overhead.json\n");
        return 1;
    }

    if (!have_baseline) {
        std::printf("no %s -- run bench_obs_overhead_notrace first to "
                    "gate; reporting only\nPASS\n",
                    BaselinePath);
        return 0;
    }
    if (ratio > GateRatioMax) {
        std::printf("FAIL: instrumented decide() is %.2f%% over the "
                    "compiled-out build (gate: %.0f%%) -- a disabled "
                    "span must cost one relaxed load and a branch\n",
                    (ratio - 1.0) * 100.0, (GateRatioMax - 1.0) * 100.0);
        return 1;
    }
    std::printf("PASS\n");
    return 0;
#endif
}
