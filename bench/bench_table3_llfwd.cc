/**
 * @file
 * Reproduces Table III: effects of load-load forwarding in Alpha* --
 * forwardings happen frequently, yet they almost never remove an L1
 * load miss, which is why Alpha* gains nothing over GAM (Figure 18).
 */

#include <cstdio>

#include "base/table.hh"
#include "harness/experiments.hh"

int
main()
{
    using namespace gam;
    using model::ModelKind;

    harness::CampaignConfig config;
    config.verbose = true;
    auto results = harness::runCampaign(
        {ModelKind::GAM, ModelKind::AlphaStar}, config);

    std::printf("%s\n", harness::formatTable3(results).c_str());

    Table t;
    t.header({"benchmark", "LL fwd/1K", "L1 miss delta/1K",
              "fwd w/ line absent/1K"});
    for (const auto &spec : workload::workloadSuite()) {
        const auto &alpha =
            harness::find(results, spec.name, ModelKind::AlphaStar).stats;
        const auto &gam =
            harness::find(results, spec.name, ModelKind::GAM).stats;
        t.row({spec.name, Table::num(alpha.perKuops(alpha.llForwards), 2),
               Table::num(gam.perKuops(gam.l1dLoadMisses)
                          - alpha.perKuops(alpha.l1dLoadMisses), 3),
               Table::num(alpha.perKuops(alpha.llForwardsSavedMiss), 3)});
    }
    std::printf("Per-workload detail:\n%s\n", t.render().c_str());
    return 0;
}
