/**
 * @file
 * Campaign cold vs. store-resumed throughput.
 *
 * Runs the same bounded campaign (every canonical cycle up to length
 * 4, the four cat-and-axiom models, axiomatic engine) twice against
 * one decision store: the first run decides every (test, model) pair
 * through the engines and persists the verdicts; the second run should
 * answer ~everything from the store without touching an engine.
 *
 * Two properties are gated:
 *
 *   hit rate   the second run must serve >= 99% of its decisions from
 *              the store -- a drop means persisted keys stopped
 *              matching decide()'s query keys (a silently cold store).
 *   speedup    the store-served run must be >= 3x faster than the
 *              engine run.  Verdict-only reconstruction is hash-map
 *              lookups; if it is within 3x of running the engines,
 *              the store is doing real work per hit and resume has
 *              quietly lost its point.
 *
 * Also emits BENCH_campaign.json (universe size, decisions, seconds,
 * throughput, hit rate, speedup) in the gam-metrics-v1 snapshot
 * schema for CI artifact upload and trend tracking; the gates ride
 * along as gauges (bench.campaign.gate_*).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>

#include "campaign/driver.hh"
#include "campaign/store.hh"
#include "obs/registry.hh"

namespace
{

using namespace gam;

campaign::CampaignResult
pass(const campaign::CampaignOptions &options,
     campaign::DecisionStore *store, double *wall)
{
    const auto start = std::chrono::steady_clock::now();
    const campaign::CampaignResult result =
        campaign::runCampaign(options, store);
    *wall = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
    return result;
}

} // namespace

int
main()
{
    const char *store_path = "bench_campaign.store";
    std::remove(store_path);

    campaign::CampaignOptions options;
    options.enumerate.maxLen = 4;
    options.shards = 16;
    options.threads = 2;

    double cold_s = 0.0, resumed_s = 0.0;

    campaign::CampaignResult cold, resumed;
    {
        campaign::DecisionStore store(store_path);
        cold = pass(options, &store, &cold_s);
    }
    {
        // Reopen: the resumed pass also pays the store's recovery
        // scan, exactly like a restarted campaign would.
        campaign::DecisionStore store(store_path);
        resumed = pass(options, &store, &resumed_s);
    }
    std::remove(store_path);

    const double cold_rate =
        cold_s > 0 ? double(cold.decisions) / cold_s : 0.0;
    const double resumed_rate =
        resumed_s > 0 ? double(resumed.decisions) / resumed_s : 0.0;
    const double hit_rate = resumed.decisions > 0
        ? double(resumed.storeHits) / double(resumed.decisions)
        : 0.0;
    const double speedup = resumed_s > 0 ? cold_s / resumed_s : 0.0;

    std::printf("campaign benchmark: %llu canonical tests (cycles up "
                "to length %u) x %zu models, %u shards\n\n",
                static_cast<unsigned long long>(cold.units),
                options.enumerate.maxLen, options.models.size(),
                options.shards);
    std::printf("cold    pass: %8llu decisions in %7.3fs  (%9.0f "
                "dec/s, %llu store hits)\n",
                static_cast<unsigned long long>(cold.decisions), cold_s,
                cold_rate,
                static_cast<unsigned long long>(cold.storeHits));
    std::printf("resumed pass: %8llu decisions in %7.3fs  (%9.0f "
                "dec/s, %llu store hits)\n",
                static_cast<unsigned long long>(resumed.decisions),
                resumed_s, resumed_rate,
                static_cast<unsigned long long>(resumed.storeHits));
    std::printf("\nstore hit rate %.2f%%, store-resumed speedup "
                "%.2fx\n",
                hit_rate * 100.0, speedup);

    {
        obs::MetricRegistry reg;
        reg.counter("bench.campaign.max_cycle_len")
            .inc(options.enumerate.maxLen);
        reg.counter("bench.campaign.tests").inc(cold.units);
        reg.counter("bench.campaign.models").inc(options.models.size());
        reg.counter("bench.campaign.decisions").inc(cold.decisions);
        reg.gauge("bench.campaign.cold_seconds").set(cold_s);
        reg.gauge("bench.campaign.cold_decisions_per_second")
            .set(cold_rate);
        reg.gauge("bench.campaign.resumed_seconds").set(resumed_s);
        reg.gauge("bench.campaign.resumed_decisions_per_second")
            .set(resumed_rate);
        reg.gauge("bench.campaign.store_hit_rate").set(hit_rate);
        reg.gauge("bench.campaign.resumed_speedup").set(speedup);
        reg.gauge("bench.campaign.gate_hit_rate_min").set(0.99);
        reg.gauge("bench.campaign.gate_resumed_speedup_min").set(3.0);
        std::ofstream json("BENCH_campaign.json", std::ios::trunc);
        json << reg.snapshot().toJson();
    }

    bool ok = true;
    if (hit_rate < 0.99) {
        std::printf("FAIL: store hit rate %.2f%% below 99%% -- "
                    "persisted keys no longer match decide()'s query "
                    "keys\n",
                    hit_rate * 100.0);
        ok = false;
    }
    if (speedup < 3.0) {
        std::printf("FAIL: store-resumed speedup %.2fx below 3x\n",
                    speedup);
        ok = false;
    }
    if (!ok)
        return 1;
    std::printf("PASS\n");
    return 0;
}
