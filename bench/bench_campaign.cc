/**
 * @file
 * Campaign throughput: batched pipeline vs. its pre-batching
 * baseline, cold vs. store-resumed, and the symmetry quotient.
 *
 * Three sections, each printing its numbers and contributing gates:
 *
 *  1. **Batched pipeline speedup.**  The same bounded campaign (every
 *     canonical cycle up to length 4, the four cat-and-axiom models,
 *     axiomatic engine) runs once in the pre-batching configuration
 *     -- per-query decide() loop, per-record-flushing store -- and
 *     once with today's defaults (fused decideBatch pipeline,
 *     group-buffered store).  Gate: the batched cold pass must be
 *     >= 2x the baseline's decisions/second, or the fused enumeration
 *     (one shared walk deciding every model of a test) has quietly
 *     stopped paying for itself.
 *
 *  2. **Store resume.**  The batched campaign runs again against its
 *     populated store.  Gates: >= 99% of the resumed decisions served
 *     from the store (a drop means persisted keys stopped matching
 *     decide()'s query keys), and the resumed pass >= 3x faster than
 *     the cold one (verdict-only reconstruction is hash-map lookups).
 *
 *  3. **Symmetry quotient.**  Enumerates the length-<=6 universe in
 *     both canonical forms and a length-7 fence/dep-free slice, then
 *     decides the slice.  Gate: the full quotient (rotation x
 *     reversal x value/address renaming) must shrink the rotation
 *     universe >= 1.5x at length <= 6 -- the reduction that makes
 *     length 7 reachable at all.
 *
 * Emits BENCH_campaign.json (sections 1-2) and
 * BENCH_campaign_symmetry.json (section 3) in the gam-metrics-v1
 * snapshot schema for CI artifact upload and trend tracking; the
 * gates ride along as gauges (bench.campaign.gate_*).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>

#include "campaign/driver.hh"
#include "campaign/store.hh"
#include "obs/registry.hh"

namespace
{

using namespace gam;

campaign::CampaignResult
pass(const campaign::CampaignOptions &options,
     campaign::DecisionStore *store, double *wall)
{
    const auto start = std::chrono::steady_clock::now();
    const campaign::CampaignResult result =
        campaign::runCampaign(options, store);
    *wall = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
    return result;
}

uint64_t
countClasses(campaign::EnumerateOptions options,
             campaign::CanonicalForm form, double *wall)
{
    options.canonical = form;
    const auto start = std::chrono::steady_clock::now();
    const campaign::EnumerateStats stats = campaign::enumerateCycles(
        options, [](const campaign::CanonicalCycle &) { return true; });
    *wall = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
    return stats.emitted;
}

} // namespace

int
main()
{
    const char *store_path = "bench_campaign.store";
    const char *baseline_path = "bench_campaign_baseline.store";
    std::remove(store_path);
    std::remove(baseline_path);

    campaign::CampaignOptions options;
    options.enumerate.maxLen = 4;
    options.shards = 16;
    options.threads = 2;

    // -------- section 1: batched pipeline vs. pre-batching baseline
    double baseline_s = 0.0, cold_s = 0.0, resumed_s = 0.0;
    campaign::CampaignResult baseline, cold, resumed;
    {
        // The baseline is the campaign as it shipped before the fused
        // decideBatch pipeline: one decide() per (test, model) and a
        // store that flushes every record.
        campaign::StoreOptions per_record;
        per_record.flushEveryRecords = 1;
        per_record.flushIntervalMs = 0;
        campaign::DecisionStore store(baseline_path, per_record);
        campaign::CampaignOptions legacy = options;
        legacy.batching = false;
        baseline = pass(legacy, &store, &baseline_s);
    }
    std::remove(baseline_path);

    // ------------------------- section 2: cold vs. store-resumed
    {
        campaign::DecisionStore store(store_path);
        cold = pass(options, &store, &cold_s);
    }
    {
        // Reopen: the resumed pass also pays the store's recovery
        // scan, exactly like a restarted campaign would.
        campaign::DecisionStore store(store_path);
        resumed = pass(options, &store, &resumed_s);
    }
    std::remove(store_path);

    const double baseline_rate =
        baseline_s > 0 ? double(baseline.decisions) / baseline_s : 0.0;
    const double cold_rate =
        cold_s > 0 ? double(cold.decisions) / cold_s : 0.0;
    const double resumed_rate =
        resumed_s > 0 ? double(resumed.decisions) / resumed_s : 0.0;
    const double batch_speedup =
        baseline_rate > 0 ? cold_rate / baseline_rate : 0.0;
    const double hit_rate = resumed.decisions > 0
        ? double(resumed.storeHits) / double(resumed.decisions)
        : 0.0;
    const double speedup = resumed_s > 0 ? cold_s / resumed_s : 0.0;

    std::printf("campaign benchmark: %llu canonical tests (cycles up "
                "to length %u) x %zu models, %u shards\n\n",
                static_cast<unsigned long long>(cold.units),
                options.enumerate.maxLen, options.models.size(),
                options.shards);
    std::printf("baseline pass: %8llu decisions in %7.3fs  (%9.0f "
                "dec/s, per-query loop, per-record flush)\n",
                static_cast<unsigned long long>(baseline.decisions),
                baseline_s, baseline_rate);
    std::printf("cold     pass: %8llu decisions in %7.3fs  (%9.0f "
                "dec/s, %llu store hits)\n",
                static_cast<unsigned long long>(cold.decisions), cold_s,
                cold_rate,
                static_cast<unsigned long long>(cold.storeHits));
    std::printf("resumed  pass: %8llu decisions in %7.3fs  (%9.0f "
                "dec/s, %llu store hits)\n",
                static_cast<unsigned long long>(resumed.decisions),
                resumed_s, resumed_rate,
                static_cast<unsigned long long>(resumed.storeHits));
    std::printf("\nbatched-pipeline speedup %.2fx, store hit rate "
                "%.2f%%, store-resumed speedup %.2fx\n",
                batch_speedup, hit_rate * 100.0, speedup);

    {
        obs::MetricRegistry reg;
        reg.counter("bench.campaign.max_cycle_len")
            .inc(options.enumerate.maxLen);
        reg.counter("bench.campaign.tests").inc(cold.units);
        reg.counter("bench.campaign.models").inc(options.models.size());
        reg.counter("bench.campaign.decisions").inc(cold.decisions);
        reg.gauge("bench.campaign.baseline_seconds").set(baseline_s);
        reg.gauge("bench.campaign.baseline_decisions_per_second")
            .set(baseline_rate);
        reg.gauge("bench.campaign.cold_seconds").set(cold_s);
        reg.gauge("bench.campaign.cold_decisions_per_second")
            .set(cold_rate);
        reg.gauge("bench.campaign.resumed_seconds").set(resumed_s);
        reg.gauge("bench.campaign.resumed_decisions_per_second")
            .set(resumed_rate);
        reg.gauge("bench.campaign.batch_speedup").set(batch_speedup);
        reg.gauge("bench.campaign.store_hit_rate").set(hit_rate);
        reg.gauge("bench.campaign.resumed_speedup").set(speedup);
        reg.gauge("bench.campaign.gate_batch_speedup_min").set(2.0);
        reg.gauge("bench.campaign.gate_hit_rate_min").set(0.99);
        reg.gauge("bench.campaign.gate_resumed_speedup_min").set(3.0);
        std::ofstream json("BENCH_campaign.json", std::ios::trunc);
        json << reg.snapshot().toJson();
    }

    // ------------------------------- section 3: symmetry quotient
    campaign::EnumerateOptions six = options.enumerate;
    six.maxLen = 6;
    double rot6_s = 0.0, full6_s = 0.0;
    const uint64_t rot6 =
        countClasses(six, campaign::CanonicalForm::Rotation, &rot6_s);
    const uint64_t full6 =
        countClasses(six, campaign::CanonicalForm::Full, &full6_s);
    const double shrink6 = full6 > 0 ? double(rot6) / double(full6) : 0.0;

    campaign::CampaignOptions seven;
    seven.enumerate.minLen = 7;
    seven.enumerate.maxLen = 7;
    seven.enumerate.fences = false;
    seven.enumerate.deps = false;
    seven.enumerate.canonical = campaign::CanonicalForm::Full;
    seven.shards = 16;
    seven.threads = 2;
    double rot7_s = 0.0, full7_s = 0.0, seven_s = 0.0;
    const uint64_t rot7 = countClasses(
        seven.enumerate, campaign::CanonicalForm::Rotation, &rot7_s);
    const uint64_t full7 = countClasses(
        seven.enumerate, campaign::CanonicalForm::Full, &full7_s);
    const campaign::CampaignResult r7 =
        pass(seven, nullptr, &seven_s);
    const double seven_rate =
        seven_s > 0 ? double(r7.decisions) / seven_s : 0.0;

    std::printf("\nsymmetry quotient, length <= 6: %llu rotation "
                "classes -> %llu full classes (%.2fx shrink, "
                "%.2fs/%.2fs to enumerate)\n",
                static_cast<unsigned long long>(rot6),
                static_cast<unsigned long long>(full6), shrink6,
                rot6_s, full6_s);
    std::printf("length-7 slice (no fences, no deps): %llu rotation "
                "-> %llu full classes; %llu tests, %llu decisions in "
                "%.2fs (%.0f dec/s)\n",
                static_cast<unsigned long long>(rot7),
                static_cast<unsigned long long>(full7),
                static_cast<unsigned long long>(r7.units),
                static_cast<unsigned long long>(r7.decisions), seven_s,
                seven_rate);

    {
        obs::MetricRegistry reg;
        reg.counter("bench.campaign_symmetry.len6_rotation_classes")
            .inc(rot6);
        reg.counter("bench.campaign_symmetry.len6_full_classes")
            .inc(full6);
        reg.gauge("bench.campaign_symmetry.len6_shrink").set(shrink6);
        reg.counter("bench.campaign_symmetry.len7_rotation_classes")
            .inc(rot7);
        reg.counter("bench.campaign_symmetry.len7_full_classes")
            .inc(full7);
        reg.counter("bench.campaign_symmetry.len7_tests").inc(r7.units);
        reg.counter("bench.campaign_symmetry.len7_decisions")
            .inc(r7.decisions);
        reg.gauge("bench.campaign_symmetry.len7_seconds").set(seven_s);
        reg.gauge("bench.campaign_symmetry.len7_decisions_per_second")
            .set(seven_rate);
        reg.gauge("bench.campaign_symmetry.gate_len6_shrink_min")
            .set(1.5);
        std::ofstream json("BENCH_campaign_symmetry.json",
                           std::ios::trunc);
        json << reg.snapshot().toJson();
    }

    bool ok = true;
    if (batch_speedup < 2.0) {
        std::printf("FAIL: batched cold throughput %.2fx the "
                    "pre-batching baseline, below 2x\n",
                    batch_speedup);
        ok = false;
    }
    if (hit_rate < 0.99) {
        std::printf("FAIL: store hit rate %.2f%% below 99%% -- "
                    "persisted keys no longer match decide()'s query "
                    "keys\n",
                    hit_rate * 100.0);
        ok = false;
    }
    if (speedup < 3.0) {
        std::printf("FAIL: store-resumed speedup %.2fx below 3x\n",
                    speedup);
        ok = false;
    }
    if (shrink6 < 1.5) {
        std::printf("FAIL: full canonicalization shrinks the "
                    "length-<=6 rotation universe only %.2fx, below "
                    "1.5x\n",
                    shrink6);
        ok = false;
    }
    if (!ok)
        return 1;
    std::printf("PASS\n");
    return 0;
}
