/**
 * @file
 * Prints the simulated processor configuration (paper Table I).
 */

#include <cstdio>

#include "harness/experiments.hh"

int
main()
{
    gam::sim::CoreParams core;
    gam::mem::MemSystemParams mem;
    std::printf("%s\n",
                gam::harness::formatTable1(core, mem).c_str());
    return 0;
}
