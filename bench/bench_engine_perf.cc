/**
 * @file
 * Engine micro-benchmarks (google-benchmark): throughput of the
 * axiomatic checker, the operational explorer and the cycle simulator
 * as program size grows.
 */

#include <benchmark/benchmark.h>

#include "axiomatic/checker.hh"
#include "litmus/suite.hh"
#include "operational/explorer.hh"
#include "operational/gam_machine.hh"
#include "sim/core.hh"
#include "sim/trace_gen.hh"
#include "workload/workloads.hh"

namespace
{

using namespace gam;

void
BM_AxiomaticChecker(benchmark::State &state)
{
    const auto &tests = litmus::paperSuite();
    const litmus::LitmusTest &test =
        tests[size_t(state.range(0)) % tests.size()];
    for (auto _ : state) {
        axiomatic::Checker checker(test, model::ModelKind::GAM);
        benchmark::DoNotOptimize(checker.enumerate().size());
    }
    state.SetLabel(test.name);
}
BENCHMARK(BM_AxiomaticChecker)->DenseRange(0, 9);

void
BM_OperationalExplorer(benchmark::State &state)
{
    // Scale with the number of threads: dekker (2) .. iriw (4).
    const char *names[] = {"corr", "dekker", "wrc_dep", "iriw"};
    const litmus::LitmusTest &test =
        litmus::testByName(names[size_t(state.range(0))]);
    uint64_t states = 0;
    for (auto _ : state) {
        operational::GamOptions opts;
        auto result = operational::exploreAll(
            operational::GamMachine(test, opts));
        states = result.statesVisited;
        benchmark::DoNotOptimize(result.outcomes.size());
    }
    state.SetLabel(test.name + (" states=" + std::to_string(states)));
}
BENCHMARK(BM_OperationalExplorer)->DenseRange(0, 3);

void
BM_CycleSimulator(benchmark::State &state)
{
    const auto &spec = workload::workloadByName("histogram");
    auto built = spec.build();
    sim::DynTrace trace =
        sim::generateTrace(built.program, built.mem, 50000);
    for (auto _ : state) {
        sim::Core core(trace, model::ModelKind::GAM);
        auto stats = core.run();
        benchmark::DoNotOptimize(stats.cycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations())
                            * int64_t(trace.uops.size()));
}
BENCHMARK(BM_CycleSimulator);

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &spec = workload::workloadByName("stream_triad");
    auto built = spec.build();
    for (auto _ : state) {
        auto trace = sim::generateTrace(built.program, built.mem,
                                        spec.maxUops);
        benchmark::DoNotOptimize(trace.uops.size());
    }
}
BENCHMARK(BM_TraceGeneration);

} // namespace

BENCHMARK_MAIN();
