/**
 * @file
 * Engine micro-benchmarks (google-benchmark): throughput of the
 * axiomatic checker, the operational explorer and the cycle simulator
 * as program size grows.
 */

#include <benchmark/benchmark.h>

#include "axiomatic/checker.hh"
#include "litmus/suite.hh"
#include "operational/explorer.hh"
#include "operational/gam_machine.hh"
#include "sim/core.hh"
#include "sim/trace_gen.hh"
#include "workload/workloads.hh"

namespace
{

using namespace gam;

void
BM_AxiomaticChecker(benchmark::State &state)
{
    const auto &tests = litmus::paperSuite();
    const litmus::LitmusTest &test =
        tests[size_t(state.range(0)) % tests.size()];
    for (auto _ : state) {
        axiomatic::Checker checker(test, model::ModelKind::GAM);
        benchmark::DoNotOptimize(checker.enumerate().size());
    }
    state.SetLabel(test.name);
}
BENCHMARK(BM_AxiomaticChecker)->DenseRange(0, 9);

// Scale with the number of threads -- dekker (2) .. iriw (4) -- plus
// the two largest Figure-14 state spaces (corr: 14a, rsw: 14c).
const char *kExplorerTests[] = {"corr", "dekker", "wrc_dep", "iriw",
                                "rsw"};

void
BM_OperationalExplorer(benchmark::State &state)
{
    const litmus::LitmusTest &test =
        litmus::testByName(kExplorerTests[size_t(state.range(0))]);
    uint64_t states = 0;
    for (auto _ : state) {
        operational::GamOptions opts;
        auto result = operational::exploreAll(
            operational::GamMachine(test, opts));
        states = result.statesVisited;
        benchmark::DoNotOptimize(result.outcomes.size());
    }
    state.SetLabel(test.name + (" states=" + std::to_string(states)));
}
BENCHMARK(BM_OperationalExplorer)->DenseRange(0, 4);

/**
 * The seed's explorer: serial, memoising full string encodings.  The
 * baseline every other explorer variant is compared against.
 */
void
BM_ExplorerStringSetBaseline(benchmark::State &state)
{
    const litmus::LitmusTest &test =
        litmus::testByName(kExplorerTests[size_t(state.range(0))]);
    for (auto _ : state) {
        auto result = operational::exploreAllStringSet(
            operational::GamMachine(test, {}));
        benchmark::DoNotOptimize(result.outcomes.size());
    }
    state.SetLabel(test.name);
}
BENCHMARK(BM_ExplorerStringSetBaseline)->DenseRange(0, 4);

/** Serial exploration with 64-bit interned states. */
void
BM_ExplorerInterned(benchmark::State &state)
{
    const litmus::LitmusTest &test =
        litmus::testByName(kExplorerTests[size_t(state.range(0))]);
    for (auto _ : state) {
        auto result = operational::exploreAll(
            operational::GamMachine(test, {}));
        benchmark::DoNotOptimize(result.outcomes.size());
    }
    state.SetLabel(test.name);
}
BENCHMARK(BM_ExplorerInterned)->DenseRange(0, 4);

/**
 * Interned states on a worker team.  range(0) picks the litmus test,
 * range(1) the thread count: serial-vs-parallel on the same workload.
 */
void
BM_ExplorerParallel(benchmark::State &state)
{
    const litmus::LitmusTest &test =
        litmus::testByName(kExplorerTests[size_t(state.range(0))]);
    const unsigned threads = unsigned(state.range(1));
    for (auto _ : state) {
        auto result = operational::exploreAllParallel(
            operational::GamMachine(test, {}), threads);
        benchmark::DoNotOptimize(result.outcomes.size());
    }
    state.SetLabel(test.name + (" threads="
                                + std::to_string(threads)));
}
BENCHMARK(BM_ExplorerParallel)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1, 2, 4, 8}});

void
BM_CycleSimulator(benchmark::State &state)
{
    const auto &spec = workload::workloadByName("histogram");
    auto built = spec.build();
    sim::DynTrace trace =
        sim::generateTrace(built.program, built.mem, 50000);
    for (auto _ : state) {
        sim::Core core(trace, model::ModelKind::GAM);
        auto stats = core.run();
        benchmark::DoNotOptimize(stats.cycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations())
                            * int64_t(trace.uops.size()));
}
BENCHMARK(BM_CycleSimulator);

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &spec = workload::workloadByName("stream_triad");
    auto built = spec.build();
    for (auto _ : state) {
        auto trace = sim::generateTrace(built.program, built.mem,
                                        spec.maxUops);
        benchmark::DoNotOptimize(trace.uops.size());
    }
}
BENCHMARK(BM_TraceGeneration);

} // namespace

BENCHMARK_MAIN();
