/**
 * @file
 * Ablation: value of SB store-to-load forwarding (Section III-A).
 * The paper's OOOU forwards from not-yet-performed stores; disabling
 * it forces loads to wait for same-address stores to drain.
 */

#include <cstdio>

#include "base/table.hh"
#include "harness/experiments.hh"

int
main()
{
    using namespace gam;
    using model::ModelKind;

    Table t;
    t.header({"benchmark", "uPC fwd on", "uPC fwd off", "slowdown"});
    for (const auto &spec : workload::workloadSuite()) {
        harness::CampaignConfig on;
        auto with = harness::runOne(spec, ModelKind::GAM, on);
        harness::CampaignConfig off;
        off.core.storeForwarding = false;
        auto without = harness::runOne(spec, ModelKind::GAM, off);
        const double slowdown = without.stats.upc() > 0
            ? with.stats.upc() / without.stats.upc() : 0.0;
        t.row({spec.name, Table::num(with.stats.upc(), 3),
               Table::num(without.stats.upc(), 3),
               Table::num(slowdown, 3) + "x"});
    }
    std::printf("Ablation: store-to-load forwarding (GAM pipeline)\n");
    std::printf("%s\n", t.render().c_str());
    return 0;
}
