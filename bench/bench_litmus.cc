/**
 * @file
 * Reproduces every litmus-test verdict printed in the paper
 * (Figures 2, 5, 13a-d and 14a-d) plus the classical suite, under both
 * the axiomatic checker and the operational explorer, and checks each
 * against the paper's claim.  Also times whole-suite exploration:
 * serial vs. thread-pool batch runner, and string-set vs. interned
 * visited states.
 */

#include <chrono>
#include <cstdio>

#include "base/thread_pool.hh"
#include "harness/litmus_runner.hh"
#include "litmus/suite.hh"
#include "operational/explorer.hh"
#include "operational/gam_machine.hh"

namespace
{

using namespace gam;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
}

/** Time one full-suite sweep of a verdict-matrix runner. */
template <typename Fn>
double
timeSweep(const Fn &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return secondsSince(start);
}

void
timingReport()
{
    std::vector<litmus::LitmusTest> all = litmus::paperSuite();
    const auto &classics = litmus::classicSuite();
    all.insert(all.end(), classics.begin(), classics.end());

    std::printf("--- whole-suite timing (%zu tests) ---\n", all.size());

    const double string_set = timeSweep([&] {
        for (const auto &t : all)
            operational::exploreAllStringSet(
                operational::GamMachine(t, {}));
    });
    std::printf("  string-set explorer (seed baseline): %7.3f s\n",
                string_set);

    const double interned = timeSweep([&] {
        for (const auto &t : all)
            operational::exploreAll(operational::GamMachine(t, {}));
    });
    std::printf("  interned explorer:                   %7.3f s "
                "(%.2fx)\n", interned, string_set / interned);

    // Time real engine work: the decision cache would otherwise serve
    // rows warmed by the verdict sections above (bench_decision_cache
    // measures the cache itself).
    harness::MatrixOptions uncached;
    uncached.cache = nullptr;

    uncached.poolThreads = 1;
    const double serial_matrix =
        timeSweep([&] { harness::runPaperMatrix(all, uncached); });
    std::printf("  verdict matrix, serial:              %7.3f s\n",
                serial_matrix);

    const unsigned threads = ThreadPool::defaultThreadCount();
    uncached.poolThreads = threads;
    const double parallel_matrix = timeSweep(
        [&] { harness::runPaperMatrix(all, uncached); });
    std::printf("  verdict matrix, %2u-thread pool:      %7.3f s "
                "(%.2fx)\n", threads, parallel_matrix,
                serial_matrix / parallel_matrix);
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("==============================================\n");
    std::printf("Litmus-test verdicts (paper Figures 2, 5, 13, 14)\n");
    std::printf("==============================================\n\n");

    std::printf("--- paper suite ---\n");
    auto paper = harness::runLitmusMatrixParallel(litmus::paperSuite());
    std::printf("%s\n", harness::formatLitmusMatrix(paper).c_str());

    std::printf("--- classical suite ---\n");
    auto classics =
        harness::runLitmusMatrixParallel(litmus::classicSuite());
    std::printf("%s\n", harness::formatLitmusMatrix(classics).c_str());

    timingReport();

    int mismatches = 0;
    for (const auto &v : paper)
        mismatches += !v.matchesPaper();
    for (const auto &v : classics)
        mismatches += !v.matchesPaper();
    return mismatches == 0 ? 0 : 1;
}
