/**
 * @file
 * Reproduces every litmus-test verdict printed in the paper
 * (Figures 2, 5, 13a-d and 14a-d) plus the classical suite, under both
 * the axiomatic checker and the operational explorer, and checks each
 * against the paper's claim.
 */

#include <cstdio>

#include "harness/litmus_runner.hh"
#include "litmus/suite.hh"

int
main()
{
    using namespace gam;

    std::printf("==============================================\n");
    std::printf("Litmus-test verdicts (paper Figures 2, 5, 13, 14)\n");
    std::printf("==============================================\n\n");

    std::printf("--- paper suite ---\n");
    auto paper = harness::runLitmusMatrix(litmus::paperSuite());
    std::printf("%s\n", harness::formatLitmusMatrix(paper).c_str());

    std::printf("--- classical suite ---\n");
    auto classics = harness::runLitmusMatrix(litmus::classicSuite());
    std::printf("%s\n", harness::formatLitmusMatrix(classics).c_str());

    int mismatches = 0;
    for (const auto &v : paper)
        mismatches += !v.matchesPaper();
    for (const auto &v : classics)
        mismatches += !v.matchesPaper();
    return mismatches == 0 ? 0 : 1;
}
