/**
 * @file
 * Cold vs. warm decision-cache timing.
 *
 * Runs the full litmus verdict matrix (every built-in test under every
 * model, both engines) three times against one DecisionCache: a cold
 * pass that populates it, then warm passes served from memory.  The
 * matrix is exactly the workload the litmus runner, the fuzzer's
 * shrinker and fence synthesis keep re-issuing, so the warm/cold ratio
 * here is the speedup those frontends see on repeated queries.  The
 * acceptance bar for the cache is a >= 5x warm speedup.
 */

#include <chrono>
#include <cstdio>

#include "harness/decision.hh"
#include "harness/litmus_runner.hh"
#include "litmus/suite.hh"

namespace
{

using namespace gam;

double
seconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

double
matrixPass(const std::vector<litmus::LitmusTest> &tests,
           const std::vector<model::ModelKind> &models,
           harness::DecisionCache &cache)
{
    harness::MatrixOptions options;
    options.cache = &cache;
    const auto start = std::chrono::steady_clock::now();
    harness::runLitmusMatrix(tests, models, options);
    return seconds(start);
}

} // namespace

int
main()
{
    const std::vector<litmus::LitmusTest> tests = litmus::allTests();
    const std::vector<model::ModelKind> models = {
        model::ModelKind::SC,   model::ModelKind::TSO,
        model::ModelKind::GAM0, model::ModelKind::GAM,
        model::ModelKind::ARM,  model::ModelKind::AlphaStar,
        model::ModelKind::PerLocSC,
    };

    harness::DecisionCache cache;
    std::printf("decision-cache benchmark: %zu tests x %zu models, "
                "both engines\n\n", tests.size(), models.size());

    const double cold = matrixPass(tests, models, cache);
    const auto after_cold = cache.stats();
    std::printf("  cold matrix: %8.3f s  (%llu misses, %llu resident)\n",
                cold, (unsigned long long)after_cold.misses,
                (unsigned long long)cache.size());

    double warm_best = -1.0;
    for (int pass = 1; pass <= 2; ++pass) {
        const double warm = matrixPass(tests, models, cache);
        if (warm_best < 0 || warm < warm_best)
            warm_best = warm;
        std::printf("  warm pass %d: %8.3f s  (%.1fx speedup)\n", pass,
                    warm, warm > 0 ? cold / warm : 0.0);
    }

    const auto stats = cache.stats();
    std::printf("\n  cache: %llu hits, %llu misses, %llu uncached\n",
                (unsigned long long)stats.hits,
                (unsigned long long)stats.misses,
                (unsigned long long)stats.uncached);

    const double speedup = warm_best > 0 ? cold / warm_best : 0.0;
    std::printf("  best warm speedup: %.1fx (target: >= 5x)\n", speedup);
    return speedup >= 5.0 ? 0 : 1;
}
