/**
 * @file
 * Pruned vs. legacy candidate enumeration.
 *
 * Runs the hand-coded axiomatic checker both ways over the 3-thread
 * suite -- every built-in litmus test with at most three threads plus
 * three store-heavy 3-thread stressors -- under SC, TSO, GAM0 and GAM,
 * asserting outcome-set equality and comparing
 *
 *   - complete candidates materialized (the deterministic measure:
 *     the legacy pipeline builds every value-consistent (rf, co)
 *     combination; the incremental search only reaches the leaves its
 *     partial-candidate checks could not rule out), and
 *   - wall time.
 *
 * The CI acceptance bar is a >= 5x reduction in candidates
 * materialized across the suite (wall time is reported but not gated:
 * it tracks the same ratio on the stressors while the tiny builtins
 * are noise-bound).  The cat engine is run over the same suite and
 * reported for reference.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "axiomatic/checker.hh"
#include "cat/engine.hh"
#include "isa/program.hh"
#include "litmus/generator.hh"
#include "litmus/suite.hh"
#include "model/engine.hh"
#include "obs/registry.hh"

namespace
{

using namespace gam;
using litmus::LitmusTest;
using model::ModelKind;

double
seconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * A 3-thread coherence stressor: every thread issues two stores to
 * one shared location, then reads it.  One location keeps the
 * coherence enumeration maximal (6! = 720 legacy permutations per
 * read-from candidate) while per-thread same-address store chains
 * give every model ppo edges to prune on.
 */
LitmusTest
storeStress()
{
    using isa::ProgramBuilder;
    using isa::R;
    litmus::LitmusBuilder builder("store_stress", "generated");
    builder.location("a", litmus::LOC_A);
    for (int tid = 0; tid < 3; ++tid) {
        ProgramBuilder b;
        b.li(R(8), litmus::LOC_A);
        for (int s = 0; s < 2; ++s) {
            b.li(R(12), tid * 2 + s + 1);
            b.st(R(8), R(12));
        }
        b.ld(R(1), R(8));
        builder.thread(b.build());
    }
    return builder.requireReg(0, R(1), 1).done();
}

/**
 * A 3-thread read-from stressor: four loads over two locations, so
 * the legacy odometer tries 5^4 = 625 read-from maps while the static
 * address-feasibility analysis collapses each load to its three
 * same-address choices (81 maps).
 */
LitmusTest
loadStress()
{
    using isa::ProgramBuilder;
    using isa::R;
    litmus::LitmusBuilder builder("load_stress", "generated");
    builder.location("a", litmus::LOC_A).location("b", litmus::LOC_B);
    ProgramBuilder t0;
    t0.li(R(8), litmus::LOC_A).li(R(9), litmus::LOC_B);
    t0.li(R(12), 1).st(R(8), R(12)).ld(R(1), R(9)).ld(R(2), R(8));
    ProgramBuilder t1;
    t1.li(R(8), litmus::LOC_A).li(R(9), litmus::LOC_B);
    t1.li(R(12), 1).st(R(9), R(12)).ld(R(1), R(8)).ld(R(2), R(9));
    ProgramBuilder t2;
    t2.li(R(8), litmus::LOC_A).li(R(9), litmus::LOC_B);
    t2.li(R(12), 2).st(R(8), R(12)).st(R(9), R(12));
    return builder.thread(t0.build()).thread(t1.build())
        .thread(t2.build())
        .requireReg(0, R(1), 0).requireReg(1, R(1), 0)
        .done();
}

struct Totals
{
    uint64_t legacyCandidates = 0;
    uint64_t prunedCandidates = 0;
    uint64_t partialsPruned = 0;
    uint64_t subtreesSkipped = 0;
    double legacySeconds = 0;
    double prunedSeconds = 0;
};

} // namespace

int
main()
{
    constexpr ModelKind models[] = {ModelKind::SC, ModelKind::TSO,
                                    ModelKind::GAM0, ModelKind::GAM};

    std::vector<LitmusTest> suite;
    for (const LitmusTest &test : litmus::allTests())
        if (test.threads.size() <= 3)
            suite.push_back(test);
    const size_t builtin_count = suite.size();
    suite.push_back(storeStress());
    suite.push_back(loadStress());
    const auto &four = litmus::fourThreadSuite();
    const auto wrc = std::find_if(
        four.begin(), four.end(),
        [](const LitmusTest &t) { return t.name == "wrc_data_addr"; });
    if (wrc == four.end()) {
        std::printf("wrc_data_addr missing from fourThreadSuite()\n");
        return 1;
    }
    suite.push_back(*wrc);

    std::printf("candidate-pruning benchmark: %zu tests "
                "(%zu 3-thread builtins + %zu stressors) x %zu models, "
                "axiomatic engine\n\n",
                suite.size(), builtin_count,
                suite.size() - builtin_count, std::size(models));

    Totals ax, cat;
    int mismatches = 0;
    for (const LitmusTest &test : suite) {
        for (ModelKind model : models) {
            axiomatic::Checker legacy(test, model);
            auto t0 = std::chrono::steady_clock::now();
            const litmus::OutcomeSet legacy_out =
                legacy.enumerateLegacy();
            ax.legacySeconds += seconds(t0);
            ax.legacyCandidates += legacy.stats().coCandidates;

            axiomatic::Checker pruned(test, model);
            t0 = std::chrono::steady_clock::now();
            const litmus::OutcomeSet pruned_out = pruned.enumerate();
            ax.prunedSeconds += seconds(t0);
            ax.prunedCandidates += pruned.stats().coCandidates;
            ax.partialsPruned += pruned.stats().partialsPruned;
            ax.subtreesSkipped += pruned.stats().subtreesSkipped;

            if (legacy_out != pruned_out) {
                ++mismatches;
                std::printf("  OUTCOME MISMATCH: %s under %s\n",
                            test.name.c_str(),
                            model::modelName(model).c_str());
            }

            // The cat engine drives the same pruned search; time both
            // of its paths for the reference report.
            const cat::CatModel &cm = cat::builtinCatModel(model);
            cat::CatEngine legacy_cat(test, cm);
            t0 = std::chrono::steady_clock::now();
            (void)legacy_cat.enumerateLegacy();
            cat.legacySeconds += seconds(t0);
            cat.legacyCandidates += legacy_cat.stats().coCandidates;

            cat::CatEngine pruned_cat(test, cm);
            t0 = std::chrono::steady_clock::now();
            (void)pruned_cat.enumerate();
            cat.prunedSeconds += seconds(t0);
            cat.prunedCandidates += pruned_cat.stats().coCandidates;
        }
    }

    const double work_ratio = ax.prunedCandidates
        ? double(ax.legacyCandidates) / double(ax.prunedCandidates)
        : 0.0;
    const double time_ratio = ax.prunedSeconds > 0
        ? ax.legacySeconds / ax.prunedSeconds : 0.0;
    const double cat_work_ratio = cat.prunedCandidates
        ? double(cat.legacyCandidates) / double(cat.prunedCandidates)
        : 0.0;
    const double cat_time_ratio = cat.prunedSeconds > 0
        ? cat.legacySeconds / cat.prunedSeconds : 0.0;

    std::printf("  axiomatic legacy: %10llu candidates  %8.3f s\n",
                (unsigned long long)ax.legacyCandidates,
                ax.legacySeconds);
    std::printf("  axiomatic pruned: %10llu candidates  %8.3f s  "
                "(%llu partials pruned, %llu subtrees skipped)\n",
                (unsigned long long)ax.prunedCandidates,
                ax.prunedSeconds,
                (unsigned long long)ax.partialsPruned,
                (unsigned long long)ax.subtreesSkipped);
    std::printf("  axiomatic ratios: %.1fx fewer candidates, "
                "%.1fx wall time\n\n", work_ratio, time_ratio);
    std::printf("  cat legacy:       %10llu candidates  %8.3f s\n",
                (unsigned long long)cat.legacyCandidates,
                cat.legacySeconds);
    std::printf("  cat pruned:       %10llu candidates  %8.3f s  "
                "(%.1fx fewer, %.1fx wall time)\n\n",
                (unsigned long long)cat.prunedCandidates,
                cat.prunedSeconds, cat_work_ratio, cat_time_ratio);
    // Machine-readable artifact (gam-metrics-v1 snapshot schema) for
    // CI upload and trend tracking; the gate rides along as a gauge.
    {
        obs::MetricRegistry reg;
        reg.counter("bench.candidate_prune.tests").inc(suite.size());
        reg.counter("bench.candidate_prune.models")
            .inc(std::size(models));
        reg.counter("bench.candidate_prune.axiomatic_legacy_candidates")
            .inc(ax.legacyCandidates);
        reg.counter("bench.candidate_prune.axiomatic_pruned_candidates")
            .inc(ax.prunedCandidates);
        reg.counter("bench.candidate_prune.cat_legacy_candidates")
            .inc(cat.legacyCandidates);
        reg.counter("bench.candidate_prune.cat_pruned_candidates")
            .inc(cat.prunedCandidates);
        reg.counter("bench.candidate_prune.outcome_mismatches")
            .inc(uint64_t(mismatches));
        reg.gauge("bench.candidate_prune.axiomatic_legacy_seconds")
            .set(ax.legacySeconds);
        reg.gauge("bench.candidate_prune.axiomatic_pruned_seconds")
            .set(ax.prunedSeconds);
        reg.gauge("bench.candidate_prune.axiomatic_candidate_reduction")
            .set(work_ratio);
        reg.gauge("bench.candidate_prune.cat_legacy_seconds")
            .set(cat.legacySeconds);
        reg.gauge("bench.candidate_prune.cat_pruned_seconds")
            .set(cat.prunedSeconds);
        reg.gauge("bench.candidate_prune.cat_candidate_reduction")
            .set(cat_work_ratio);
        reg.gauge("bench.candidate_prune.gate_candidate_reduction_min")
            .set(5.0);
        std::ofstream json("BENCH_candidate_prune.json",
                           std::ios::trunc);
        json << reg.snapshot().toJson();
    }

    std::printf("  gate: axiomatic candidate reduction %.1fx "
                "(target: >= 5x), outcome mismatches %d\n",
                work_ratio, mismatches);
    return work_ratio >= 5.0 && mismatches == 0 ? 0 : 1;
}
