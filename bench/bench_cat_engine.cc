/**
 * @file
 * Cat engine vs. hand-coded axiomatic checker wall time.
 *
 * Decides every built-in litmus test under every cat-supported model
 * (SC, TSO, GAM0, GAM) twice -- once through the hand-coded axiomatic
 * checker, once through the cat engine evaluating the shipped model
 * files -- with caching disabled, and reports per-model and total
 * wall times plus the cat/axiomatic ratio.  Both engines enumerate
 * the same (rf, co) candidates, so the ratio isolates the cost of
 * interpreting the model as data (bitset relation algebra per
 * candidate) against the compiled-in axioms.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "harness/decision.hh"
#include "litmus/suite.hh"
#include "model/engine.hh"

namespace
{

using namespace gam;

double
seconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Decide every test under @p model with @p engine; cache disabled. */
double
enginePass(const std::vector<litmus::LitmusTest> &tests,
           model::ModelKind model, harness::EngineSelect engine,
           uint64_t *candidates)
{
    const auto start = std::chrono::steady_clock::now();
    for (const auto &test : tests) {
        harness::Query query;
        query.test = &test;
        query.model = model;
        query.engine = engine;
        const harness::Decision d = harness::decide(query, nullptr);
        if (candidates)
            *candidates += d.statesVisited;
    }
    return seconds(start);
}

} // namespace

int
main()
{
    const std::vector<litmus::LitmusTest> tests = litmus::allTests();
    const std::vector<model::ModelKind> models = {
        model::ModelKind::SC, model::ModelKind::TSO,
        model::ModelKind::GAM0, model::ModelKind::GAM,
    };

    std::printf("cat-engine benchmark: %zu tests x %zu models, "
                "cache disabled\n\n", tests.size(), models.size());
    std::printf("%-6s %12s %12s %8s %14s\n", "model", "axiomatic",
                "cat", "ratio", "candidates");

    double ax_total = 0.0, cat_total = 0.0;
    for (model::ModelKind model : models) {
        uint64_t candidates = 0;
        const double ax = enginePass(tests, model,
                                     harness::EngineSelect::Axiomatic,
                                     nullptr);
        const double ct = enginePass(tests, model,
                                     harness::EngineSelect::Cat,
                                     &candidates);
        ax_total += ax;
        cat_total += ct;
        std::printf("%-6s %11.3fs %11.3fs %7.2fx %14llu\n",
                    model::modelName(model).c_str(), ax, ct,
                    ax > 0 ? ct / ax : 0.0,
                    static_cast<unsigned long long>(candidates));
    }

    const double ratio = ax_total > 0 ? cat_total / ax_total : 0.0;
    std::printf("\ntotal: axiomatic %.3fs, cat %.3fs -> the cat "
                "engine costs %.2fx the hand-coded checker\n",
                ax_total, cat_total, ratio);

    // Sanity floor, not a perf gate: interpreting the model as data
    // must stay within two orders of magnitude of the compiled axioms
    // on the built-in suite, or something is broken (e.g. the
    // trace-level view cache not keying on the rf epoch).
    if (ratio > 100.0) {
        std::printf("FAIL: cat/axiomatic ratio %.2fx exceeds 100x\n",
                    ratio);
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
