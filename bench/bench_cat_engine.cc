/**
 * @file
 * Compiled cat engine vs. hand-coded axiomatic checker wall time.
 *
 * Decides the 3-thread suite (every built-in litmus test with at most
 * three threads) under every cat-supported model (SC, TSO, GAM0, GAM)
 * three ways -- the hand-coded axiomatic checker, the cat engine
 * running the compiled plan (cat/compile.hh), and the cat engine
 * interpreting the model through the generic evaluator -- with caching
 * disabled, and reports per-model wall times plus the two ratios that
 * matter:
 *
 *   compiled/axiomatic    the cost of the model being *data*.  The
 *                         compiled plan maintains the same closed
 *                         reachability bitsets as the hand-written
 *                         BuiltinAxiomFilter, so this is gated at 2x:
 *                         compiling the model must actually close the
 *                         interpreter gap, not just narrow it.
 *   compiled/interpreted  what the compiler buys over re-evaluating
 *                         relation algebra per candidate (reported,
 *                         not gated: it grows with test size).
 *
 * Also emits BENCH_cat_compile.json (test count, wall seconds,
 * candidates, ratios) in the gam-metrics-v1 snapshot schema for CI
 * artifact upload and trend tracking; the gate rides along as the
 * gauge bench.cat_compile.gate_compiled_vs_axiomatic_max.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "harness/decision.hh"
#include "litmus/suite.hh"
#include "model/engine.hh"
#include "obs/registry.hh"

namespace
{

using namespace gam;

double
seconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Decide every test under @p model with @p engine; cache disabled. */
double
enginePass(const std::vector<litmus::LitmusTest> &tests,
           model::ModelKind model, harness::EngineSelect engine,
           bool cat_compile, uint64_t *candidates)
{
    const auto start = std::chrono::steady_clock::now();
    for (const auto &test : tests) {
        harness::Query query;
        query.test = &test;
        query.model = model;
        query.engine = engine;
        query.options.catCompile = cat_compile;
        const harness::Decision d = harness::decide(query, nullptr);
        if (candidates)
            *candidates += d.statesVisited;
    }
    return seconds(start);
}

} // namespace

int
main()
{
    std::vector<litmus::LitmusTest> tests;
    for (const litmus::LitmusTest &test : litmus::allTests())
        if (test.threads.size() <= 3)
            tests.push_back(test);
    const std::vector<model::ModelKind> models = {
        model::ModelKind::SC, model::ModelKind::TSO,
        model::ModelKind::GAM0, model::ModelKind::GAM,
    };

    std::printf("cat-engine benchmark: %zu 3-thread tests x %zu "
                "models, cache disabled\n\n",
                tests.size(), models.size());
    std::printf("%-6s %12s %12s %12s %9s %9s %12s\n", "model",
                "axiomatic", "compiled", "interpreted", "cmp/ax",
                "cmp/int", "candidates");

    double ax_total = 0.0, compiled_total = 0.0, interp_total = 0.0;
    uint64_t candidates_total = 0;
    for (model::ModelKind model : models) {
        uint64_t candidates = 0;
        const double ax = enginePass(tests, model,
                                     harness::EngineSelect::Axiomatic,
                                     true, nullptr);
        const double compiled =
            enginePass(tests, model, harness::EngineSelect::Cat, true,
                       &candidates);
        const double interp =
            enginePass(tests, model, harness::EngineSelect::Cat, false,
                       nullptr);
        ax_total += ax;
        compiled_total += compiled;
        interp_total += interp;
        candidates_total += candidates;
        std::printf("%-6s %11.3fs %11.3fs %11.3fs %8.2fx %8.2fx "
                    "%12llu\n",
                    model::modelName(model).c_str(), ax, compiled,
                    interp, ax > 0 ? compiled / ax : 0.0,
                    interp > 0 ? compiled / interp : 0.0,
                    static_cast<unsigned long long>(candidates));
    }

    const double vs_ax =
        ax_total > 0 ? compiled_total / ax_total : 0.0;
    const double vs_interp =
        interp_total > 0 ? compiled_total / interp_total : 0.0;
    std::printf("\ntotal: axiomatic %.3fs, compiled cat %.3fs, "
                "interpreted cat %.3fs\n"
                "the compiled plan costs %.2fx the hand-coded checker "
                "and %.2fx the interpreter\n",
                ax_total, compiled_total, interp_total, vs_ax,
                vs_interp);

    {
        obs::MetricRegistry reg;
        reg.counter("bench.cat_compile.tests").inc(tests.size());
        reg.counter("bench.cat_compile.models").inc(models.size());
        reg.counter("bench.cat_compile.candidates")
            .inc(candidates_total);
        reg.gauge("bench.cat_compile.axiomatic_seconds").set(ax_total);
        reg.gauge("bench.cat_compile.compiled_cat_seconds")
            .set(compiled_total);
        reg.gauge("bench.cat_compile.interpreted_cat_seconds")
            .set(interp_total);
        reg.gauge("bench.cat_compile.compiled_vs_axiomatic").set(vs_ax);
        reg.gauge("bench.cat_compile.compiled_vs_interpreted")
            .set(vs_interp);
        reg.gauge("bench.cat_compile.gate_compiled_vs_axiomatic_max")
            .set(2.0);
        std::ofstream json("BENCH_cat_compile.json", std::ios::trunc);
        json << reg.snapshot().toJson();
    }

    // The gate: the compiled plan does the same incremental bitset
    // work as the hand-written filter, so it must land within 2x of
    // it (per-epoch plan setup is the only extra cost).  A regression
    // here means a pass stopped fusing.
    if (vs_ax > 2.0) {
        std::printf("FAIL: compiled-cat/axiomatic ratio %.2fx exceeds "
                    "2x\n",
                    vs_ax);
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
