/**
 * @file
 * Ablation: how do SALdLd kills and stalls scale with the out-of-order
 * window (ROB + load-queue size)?  Larger windows keep more
 * same-address loads in flight simultaneously, so the event rates of
 * Table II should grow with window size while staying rare.
 */

#include <cstdio>

#include "base/table.hh"
#include "harness/experiments.hh"

int
main()
{
    using namespace gam;
    using model::ModelKind;

    struct WindowPoint
    {
        int rob, rs, lq, sq;
    };
    const WindowPoint points[] = {
        {48, 16, 18, 12},
        {96, 30, 36, 24},
        {192, 60, 72, 42},  // Table I baseline
        {384, 120, 144, 84},
    };

    // The same-address-heavy workloads show the effect best.
    const char *loads[] = {"late_addr", "histogram", "stack_mix",
                           "queue_ring"};

    Table t;
    t.header({"window (ROB)", "workload", "kills/1K", "stalls/1K",
              "uPC"});
    for (const auto &p : points) {
        harness::CampaignConfig config;
        config.core.robSize = p.rob;
        config.core.rsSize = p.rs;
        config.core.lqSize = p.lq;
        config.core.sqSize = p.sq;
        for (const char *name : loads) {
            auto r = harness::runOne(workload::workloadByName(name),
                                     ModelKind::GAM, config);
            t.row({std::to_string(p.rob), name,
                   Table::num(r.stats.perKuops(r.stats.saLdLdKills), 3),
                   Table::num(r.stats.perKuops(r.stats.saLdLdStalls), 3),
                   Table::num(r.stats.upc(), 3)});
        }
        t.separator();
    }
    std::printf("Ablation: SALdLd event rates vs out-of-order window\n");
    std::printf("%s\n", t.render().c_str());
    return 0;
}
