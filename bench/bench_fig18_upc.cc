/**
 * @file
 * Reproduces Figure 18: uPC of ARM, GAM0 and Alpha* normalized to GAM
 * for every workload, plus the average.  The paper's result is that
 * the three relaxations buy essentially nothing: all normalized values
 * sit at ~1.0 (average < 0.3%, never more than 3%).
 */

#include <cstdio>

#include "harness/experiments.hh"

int
main()
{
    using namespace gam;
    using model::ModelKind;

    harness::CampaignConfig config;
    config.verbose = true;
    std::fprintf(stderr, "running %zu workloads x 4 models...\n",
                 workload::workloadSuite().size());
    auto results = harness::runCampaign(
        {ModelKind::GAM, ModelKind::ARM, ModelKind::GAM0,
         ModelKind::AlphaStar},
        config);

    std::printf("%s\n", harness::formatFig18(results).c_str());
    return 0;
}
