/**
 * @file
 * Reproduces Table II: the number of kills and stalls caused by
 * same-address load-load ordering (constraint SALdLd) per 1000
 * committed uops, in GAM and in the ARM variant, averaged and maxed
 * across the workload suite.  The paper's result: both are rare.
 */

#include <cstdio>

#include "base/table.hh"
#include "harness/experiments.hh"

int
main()
{
    using namespace gam;
    using model::ModelKind;

    harness::CampaignConfig config;
    config.verbose = true;
    auto results = harness::runCampaign(
        {ModelKind::GAM, ModelKind::ARM}, config);

    std::printf("%s\n", harness::formatTable2(results).c_str());

    // Per-workload breakdown (the data behind the summary).
    Table t;
    t.header({"benchmark", "GAM kills/1K", "GAM stalls/1K",
              "ARM stalls/1K"});
    for (const auto &spec : workload::workloadSuite()) {
        const auto &gam =
            harness::find(results, spec.name, ModelKind::GAM).stats;
        const auto &arm =
            harness::find(results, spec.name, ModelKind::ARM).stats;
        t.row({spec.name, Table::num(gam.perKuops(gam.saLdLdKills), 3),
               Table::num(gam.perKuops(gam.saLdLdStalls), 3),
               Table::num(arm.perKuops(arm.saLdLdStalls), 3)});
    }
    std::printf("Per-workload detail:\n%s\n", t.render().c_str());
    return 0;
}
