/**
 * @file
 * Ablation: value of speculative load issue (Figure 9).  The paper's
 * OOOU issues loads before older store addresses are known, repairing
 * violations with squashes; the conservative alternative waits.
 */

#include <cstdio>

#include "base/table.hh"
#include "harness/experiments.hh"

int
main()
{
    using namespace gam;
    using model::ModelKind;

    Table t;
    t.header({"benchmark", "uPC spec", "uPC conserv", "speedup",
              "violations/1K"});
    for (const auto &spec : workload::workloadSuite()) {
        harness::CampaignConfig spec_on;
        auto with = harness::runOne(spec, ModelKind::GAM, spec_on);
        harness::CampaignConfig spec_off;
        spec_off.core.speculativeLoadIssue = false;
        auto without = harness::runOne(spec, ModelKind::GAM, spec_off);
        const double speedup = without.stats.upc() > 0
            ? with.stats.upc() / without.stats.upc() : 0.0;
        t.row({spec.name, Table::num(with.stats.upc(), 3),
               Table::num(without.stats.upc(), 3),
               Table::num(speedup, 3) + "x",
               Table::num(with.stats.perKuops(
                   with.stats.memOrderSquashes), 3)});
    }
    std::printf("Ablation: speculative load issue (GAM pipeline)\n");
    std::printf("%s\n", t.render().c_str());
    return 0;
}
