/**
 * @file
 * Static lint over a parsed, checked cat model (cat/parser.hh).
 *
 * parseCat() guarantees a model is *well-formed*: every name resolves,
 * every operator is sorted correctly, every recursion is monotone.  It
 * says nothing about whether the model is *sensible*.  This pass finds
 * the statically detectable ways a model can be broken or misleading
 * while still parsing:
 *
 *   L001 unused-definition        a let binding no axiom (transitively)
 *                                 depends on
 *   L002 shadowed-name            a binding re-using the name of an
 *                                 earlier binding or a builtin
 *   L003 empty-relation           a definition or axiom subexpression
 *                                 that is empty in *every* candidate
 *                                 execution (e.g. [F] & [M])
 *   L004 vacuous-axiom            an axiom satisfied by construction:
 *                                 acyclic/irreflexive/empty over a
 *                                 provably empty relation, irreflexive
 *                                 over an irreflexive-by-construction
 *                                 one, acyclic over an acyclic one
 *   L005 redundant-axiom          an axiom implied by another via
 *                                 subset reasoning on the algebra
 *   L006 non-productive-recursion a `let rec` that never recurses, or
 *                                 whose least fixpoint is statically
 *                                 empty
 *   L007 invariant-recomputation  candidate-invariant work in a
 *                                 coherence-dependent context: a
 *                                 co/fr-independent subexpression (per-
 *                                 node cat::Polarity dataflow) that the
 *                                 interpreting evaluator recomputes for
 *                                 every coherence candidate of an rf
 *                                 epoch -- either a duplicate of a
 *                                 named definition (reference the name)
 *                                 or a multi-operator subtree worth
 *                                 hoisting into its own `let`.  The
 *                                 model compiler (cat/compile.hh) folds
 *                                 these automatically; the lint keeps
 *                                 the source honest about the cost.
 *
 * Every claim is *sound*: a relation is only called empty (resp.
 * irreflexive, acyclic) when it is so in every candidate execution of
 * every litmus test, by abstract interpretation over the seven event
 * classes {pure load, pure store, RMW, FenceLL/LS/SL/SS} plus
 * per-primitive structural facts (po is a union of per-thread strict
 * orders, hence acyclic; fr excludes the identity; ...).  The linter
 * can therefore miss dynamically dead constructs, but it never flags a
 * live one.
 */

#ifndef GAM_ANALYSIS_LINT_HH
#define GAM_ANALYSIS_LINT_HH

#include <string>
#include <vector>

#include "cat/parser.hh"

namespace gam::analysis
{

/** Diagnostic severity; CI treats every Warning as fatal. */
enum class LintSeverity { Info, Warning };

/** One lint finding with a 1-based source position. */
struct LintDiagnostic
{
    /** Stable rule ID ("L001" ... "L007"). */
    const char *rule;
    /** Rule slug ("unused-definition"). */
    const char *ruleName;
    LintSeverity severity = LintSeverity::Warning;
    int line = 0;
    int col = 0;
    std::string message;

    /** "3:5: warning: let 'dead' is never used [L001 unused-definition]" */
    std::string toString() const;
};

/**
 * Lint @p model.  Diagnostics come back in source order (line, then
 * column, then rule ID).  A clean model yields an empty vector.
 */
std::vector<LintDiagnostic> lint(const cat::CatModel &model);

} // namespace gam::analysis

#endif // GAM_ANALYSIS_LINT_HH
