#include "analysis/lint.hh"

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <string_view>
#include <tuple>

#include "base/logging.hh"

namespace gam::analysis
{

using cat::Builtin;
using cat::CatModel;
using cat::Expr;
using cat::Stmt;

namespace
{

/**
 * The set abstraction: a bitmask over the seven event classes.  Every
 * event of a candidate execution belongs to exactly one class, and
 * every builtin set is a union of whole classes, so boolean set
 * algebra on masks is *exact*: mask == 0 iff the set is empty in every
 * candidate execution.
 */
enum : uint8_t {
    C_LD = 1 << 0,  ///< pure load (LD)
    C_ST = 1 << 1,  ///< pure store (ST)
    C_RMW = 1 << 2, ///< atomic read-modify-write (both R and W)
    C_FLL = 1 << 3,
    C_FLS = 1 << 4,
    C_FSL = 1 << 5,
    C_FSS = 1 << 6,
    C_ALL = (1 << 7) - 1,
};

constexpr uint8_t C_R = C_LD | C_RMW;
constexpr uint8_t C_W = C_ST | C_RMW;
constexpr uint8_t C_M = C_LD | C_ST | C_RMW;
constexpr uint8_t C_F = C_FLL | C_FLS | C_FSL | C_FSS;

/**
 * The relation abstraction.  Boolean fields are *definite* claims,
 * quantified over every candidate execution of every litmus test;
 * false means "unknown", never "definitely not".  The masks
 * over-approximate which event classes the endpoints can belong to.
 */
struct RelAbs
{
    bool empty = false;  ///< no pairs, ever
    bool irrefl = false; ///< never relates an event to itself
    bool acyc = false;   ///< the edge digraph is acyclic, always
    bool subId = false;  ///< subset of the identity relation
    uint8_t dom = C_ALL; ///< classes the sources can inhabit
    uint8_t rng = C_ALL; ///< classes the targets can inhabit
};

/** Close @p r under the facts the fields imply about each other. */
RelAbs
norm(RelAbs r)
{
    if (r.subId) {
        // Pairs are (x, x): both endpoints share one class.
        r.dom &= r.rng;
        r.rng = r.dom;
    }
    if (r.dom == 0 || r.rng == 0 || (r.subId && r.irrefl))
        r.empty = true;
    if (r.empty) {
        r.dom = r.rng = 0;
        r.irrefl = r.acyc = r.subId = true;
    }
    if ((r.dom & r.rng) == 0) {
        // Every edge ends in a class no edge starts from: no two
        // consecutive edges, no self-loop -- acyclic outright.
        r.irrefl = r.acyc = true;
    }
    if (r.acyc)
        r.irrefl = true;
    return r;
}

RelAbs
bottomRel()
{
    RelAbs r;
    r.empty = true;
    return norm(r);
}

/**
 * Facts about the evaluator's primitives, mirroring cat/exec.cc:
 * po is a union of per-thread strict orders (acyclic); co a union of
 * per-address total store orders (acyclic); rf maps stores to the
 * loads they feed (an event never supplies its own read, but seeded
 * candidates may carry rf cycles); fr excludes the identity but can
 * cycle through RMWs; addr/data/ctrl point strictly forward in program
 * order (acyclic); loc/ext/int relate *distinct* events symmetrically.
 */
RelAbs
builtinRel(Builtin b)
{
    RelAbs r;
    switch (b) {
      case Builtin::Po:
        r.irrefl = r.acyc = true;
        break;
      case Builtin::Rf:
        r.irrefl = true;
        r.dom = C_W;
        r.rng = C_R;
        break;
      case Builtin::Co:
        r.irrefl = r.acyc = true;
        r.dom = C_W;
        r.rng = C_W;
        break;
      case Builtin::Fr:
        r.irrefl = true;
        r.dom = C_R;
        r.rng = C_W;
        break;
      case Builtin::Loc:
        r.irrefl = true;
        r.dom = C_M;
        r.rng = C_M;
        break;
      case Builtin::Ext:
      case Builtin::Int:
        r.irrefl = true;
        break;
      case Builtin::Addr:
        r.irrefl = r.acyc = true;
        r.dom = C_R;
        r.rng = C_M;
        break;
      case Builtin::Data:
        r.irrefl = r.acyc = true;
        r.dom = C_R;
        r.rng = C_W;
        break;
      case Builtin::Ctrl:
        r.irrefl = r.acyc = true;
        r.dom = C_R;
        break;
      case Builtin::Id:
        r.subId = true;
        break;
      default:
        panic("builtinRel: not a relation builtin");
    }
    return norm(r);
}

uint8_t
builtinSet(Builtin b)
{
    switch (b) {
      case Builtin::R: return C_R;
      case Builtin::W: return C_W;
      case Builtin::M: return C_M;
      case Builtin::F: return C_F;
      case Builtin::RMW: return C_RMW;
      case Builtin::FLL: return C_FLL;
      case Builtin::FLS: return C_FLS;
      case Builtin::FSL: return C_FSL;
      case Builtin::FSS: return C_FSS;
      default:
        panic("builtinSet: not a set builtin");
    }
}

bool
isSetExpr(const Expr &e)
{
    return e.type == cat::Type::Set;
}

/** Abstract values of every let slot, by sort. */
struct SlotEnv
{
    std::vector<RelAbs> rel;
    std::vector<uint8_t> set;
    std::vector<char> isSet;
};

uint8_t evalSet(const Expr &e, const SlotEnv &env);

RelAbs
evalRel(const Expr &e, const SlotEnv &env)
{
    using K = Expr::Kind;
    RelAbs r;
    switch (e.kind) {
      case K::Name:
        if (e.builtin)
            return builtinRel(*e.builtin);
        return env.rel[size_t(e.slot)];
      case K::EmptyRel:
        return bottomRel();
      case K::Union: {
        const RelAbs a = evalRel(*e.a, env), b = evalRel(*e.b, env);
        if (a.empty)
            return b;
        if (b.empty)
            return a;
        r.empty = false;
        r.irrefl = a.irrefl && b.irrefl;
        r.acyc = false; // a cycle can alternate between the operands
        r.subId = a.subId && b.subId;
        r.dom = a.dom | b.dom;
        r.rng = a.rng | b.rng;
        break;
      }
      case K::Seq: {
        const RelAbs a = evalRel(*e.a, env), b = evalRel(*e.b, env);
        r.empty = a.empty || b.empty || (a.rng & b.dom) == 0;
        r.dom = a.subId ? uint8_t(a.dom & b.dom) : a.dom;
        r.rng = b.subId ? uint8_t(b.rng & a.rng) : b.rng;
        // (x, y) in a;b starts in dom(a) and ends in rng(b): when those
        // class sets are disjoint no self-loop or two-edge path exists.
        const bool endpointsDisjoint = (a.dom & b.rng) == 0;
        r.irrefl = endpointsDisjoint || (a.subId && b.irrefl)
            || (b.subId && a.irrefl);
        r.acyc = endpointsDisjoint || (a.subId && b.acyc)
            || (b.subId && a.acyc);
        r.subId = a.subId && b.subId;
        break;
      }
      case K::Inter: {
        const RelAbs a = evalRel(*e.a, env), b = evalRel(*e.b, env);
        r.empty = a.empty || b.empty || (a.subId && b.irrefl)
            || (b.subId && a.irrefl);
        r.irrefl = a.irrefl || b.irrefl;
        r.acyc = a.acyc || b.acyc;
        r.subId = a.subId || b.subId;
        r.dom = a.dom & b.dom;
        r.rng = a.rng & b.rng;
        break;
      }
      case K::Diff:
        // a \ b keeps a subset of a; every definite claim survives.
        r = evalRel(*e.a, env);
        break;
      case K::Product: {
        const uint8_t s1 = evalSet(*e.a, env), s2 = evalSet(*e.b, env);
        r.empty = s1 == 0 || s2 == 0;
        r.dom = s1;
        r.rng = s2;
        break;
      }
      case K::Compl:
        break; // no claims about a complement
      case K::Plus: {
        const RelAbs a = evalRel(*e.a, env);
        r.empty = a.empty;
        r.irrefl = a.acyc; // irreflexive(a+) iff acyclic(a)
        r.acyc = a.acyc;
        r.subId = a.subId;
        r.dom = a.dom;
        r.rng = a.rng;
        break;
      }
      case K::Star: {
        const RelAbs a = evalRel(*e.a, env);
        // a* contains the identity: never empty or irreflexive, and
        // full-universe endpoints.
        r.subId = a.subId || a.empty;
        break;
      }
      case K::Inverse: {
        r = evalRel(*e.a, env);
        std::swap(r.dom, r.rng);
        break;
      }
      case K::Diag: {
        const uint8_t s = evalSet(*e.a, env);
        r.empty = s == 0;
        r.subId = true;
        r.dom = r.rng = s;
        break;
      }
    }
    return norm(r);
}

uint8_t
evalSet(const Expr &e, const SlotEnv &env)
{
    using K = Expr::Kind;
    switch (e.kind) {
      case K::Name:
        if (e.builtin)
            return builtinSet(*e.builtin);
        return env.set[size_t(e.slot)];
      case K::EmptyRel:
        return 0;
      case K::Union:
        return evalSet(*e.a, env) | evalSet(*e.b, env);
      case K::Inter:
        return evalSet(*e.a, env) & evalSet(*e.b, env);
      case K::Diff:
        return evalSet(*e.a, env) & uint8_t(~evalSet(*e.b, env));
      case K::Compl:
        return uint8_t(~evalSet(*e.a, env)) & C_ALL;
      default:
        panic("evalSet: operator cannot yield a set");
    }
}

/** All let slots @p e references, recursively. */
void
collectSlots(const Expr &e, std::set<int> &out)
{
    if (e.kind == Expr::Kind::Name && !e.builtin)
        out.insert(e.slot);
    if (e.a)
        collectSlots(*e.a, out);
    if (e.b)
        collectSlots(*e.b, out);
}

// ------------------------------------------------- subset reasoning

/** Structural equality (modulo commuting | and &). */
bool
exprEqual(const Expr &a, const Expr &b)
{
    if (a.kind != b.kind)
        return false;
    if (a.kind == Expr::Kind::Name)
        return a.builtin == b.builtin && a.slot == b.slot;
    const bool sub = (!a.a || (b.a && exprEqual(*a.a, *b.a)))
        && (!a.b || (b.b && exprEqual(*a.b, *b.b)));
    if (sub)
        return true;
    if (a.kind == Expr::Kind::Union || a.kind == Expr::Kind::Inter) {
        return a.a && a.b && b.a && b.b && exprEqual(*a.a, *b.b)
            && exprEqual(*a.b, *b.a);
    }
    return false;
}

/** Binding bodies by slot, for inlining names during subset checks. */
struct SubsetCtx
{
    std::vector<const Expr *> body; ///< nullptr for `let rec` slots
    int depth = 0;
};

/**
 * Sound structural subset test: true implies @p small is a subset of
 * @p big in every candidate execution.  False means "could not prove".
 */
bool
isSubset(const Expr &small, const Expr &big, SubsetCtx &ctx)
{
    using K = Expr::Kind;
    if (ctx.depth > 64)
        return false;
    ++ctx.depth;
    struct Pop
    {
        int &d;
        ~Pop() { --d; }
    } pop{ctx.depth};

    if (exprEqual(small, big))
        return true;
    // Decompose the large side first: a subset of one union arm is a
    // subset of the union; an intersection bounds from both sides.
    switch (big.kind) {
      case K::Union:
        if (isSubset(small, *big.a, ctx) || isSubset(small, *big.b, ctx))
            return true;
        break;
      case K::Inter:
        if (isSubset(small, *big.a, ctx) && isSubset(small, *big.b, ctx))
            return true;
        break;
      case K::Plus:
      case K::Star:
        if (isSubset(small, *big.a, ctx))
            return true;
        if ((small.kind == K::Plus
             || (small.kind == K::Star && big.kind == K::Star))
            && isSubset(*small.a, *big.a, ctx)) {
            return true;
        }
        break;
      case K::Name:
        if (!big.builtin && ctx.body[size_t(big.slot)]
            && isSubset(small, *ctx.body[size_t(big.slot)], ctx)) {
            return true;
        }
        break;
      default:
        break;
    }
    switch (small.kind) {
      case K::Union:
        return isSubset(*small.a, big, ctx)
            && isSubset(*small.b, big, ctx);
      case K::Inter:
        return isSubset(*small.a, big, ctx)
            || isSubset(*small.b, big, ctx);
      case K::Diff:
        return isSubset(*small.a, big, ctx);
      case K::Name:
        return !small.builtin && ctx.body[size_t(small.slot)]
            && isSubset(*ctx.body[size_t(small.slot)], big, ctx);
      default:
        return false;
    }
}

// ----------------------------------------------------------- driver

const char *const builtinNames[] = {
    "R", "W", "M", "F", "RMW", "FLL", "FLS", "FSL", "FSS",
    "po", "rf", "co", "fr", "loc", "ext", "int", "addr", "data",
    "ctrl", "id",
};

struct Linter
{
    const CatModel &model;
    std::vector<LintDiagnostic> diags;
    SlotEnv env;
    /** Definition site of each slot. */
    std::vector<const cat::Binding *> def;
    /** Slots bound by `let rec`. */
    std::vector<char> isRec;
    SubsetCtx subset;

    explicit Linter(const CatModel &m) : model(m)
    {
        const size_t n = size_t(m.slotCount);
        env.rel.assign(n, bottomRel());
        env.set.assign(n, 0);
        env.isSet.assign(n, 0);
        def.assign(n, nullptr);
        isRec.assign(n, 0);
        subset.body.assign(n, nullptr);
    }

    void
    report(const char *rule, const char *name, int line, int col,
           std::string message)
    {
        diags.push_back({rule, name, LintSeverity::Warning, line, col,
                         std::move(message)});
    }

    void
    evalBindings()
    {
        for (const Stmt &stmt : model.statements) {
            if (stmt.kind == Stmt::Kind::Let) {
                for (const cat::Binding &b : stmt.bindings) {
                    def[size_t(b.slot)] = &b;
                    subset.body[size_t(b.slot)] = b.body.get();
                    if (isSetExpr(*b.body)) {
                        env.isSet[size_t(b.slot)] = 1;
                        env.set[size_t(b.slot)] = evalSet(*b.body, env);
                    } else {
                        env.rel[size_t(b.slot)] = evalRel(*b.body, env);
                    }
                }
            } else if (stmt.kind == Stmt::Kind::LetRec) {
                for (const cat::Binding &b : stmt.bindings) {
                    def[size_t(b.slot)] = &b;
                    isRec[size_t(b.slot)] = 1;
                    env.isSet[size_t(b.slot)] = isSetExpr(*b.body);
                }
                // Ascending Kleene iteration from bottom (empty): the
                // abstract lattice is finite (flags only clear, masks
                // only grow), so this converges in a few rounds and
                // soundly bounds the least fixpoint.
                for (int round = 0; round < 64; ++round) {
                    bool changed = false;
                    for (const cat::Binding &b : stmt.bindings) {
                        const size_t s = size_t(b.slot);
                        if (env.isSet[s]) {
                            const uint8_t v = evalSet(*b.body, env);
                            changed |= v != env.set[s];
                            env.set[s] = v;
                        } else {
                            const RelAbs v = evalRel(*b.body, env);
                            const RelAbs &o = env.rel[s];
                            changed |= v.empty != o.empty
                                || v.irrefl != o.irrefl
                                || v.acyc != o.acyc
                                || v.subId != o.subId || v.dom != o.dom
                                || v.rng != o.rng;
                            env.rel[s] = v;
                        }
                    }
                    if (!changed)
                        break;
                }
            }
        }
    }

    void
    checkShadowing()
    {
        std::set<std::string> seen(std::begin(builtinNames),
                                   std::end(builtinNames));
        std::set<std::string> builtins = seen;
        for (const Stmt &stmt : model.statements) {
            if (stmt.kind != Stmt::Kind::Let
                && stmt.kind != Stmt::Kind::LetRec) {
                continue;
            }
            for (const cat::Binding &b : stmt.bindings) {
                if (!seen.insert(b.name).second) {
                    std::ostringstream os;
                    os << "definition of '" << b.name << "' shadows ";
                    os << (builtins.count(b.name)
                               ? "the builtin of the same name"
                               : "an earlier definition");
                    report("L002", "shadowed-name", b.line, b.col,
                           os.str());
                }
            }
        }
    }

    void
    checkUnused()
    {
        // Liveness: slots reachable from any axiom through binding
        // bodies.  Self-references inside a rec group do not keep the
        // group alive.
        std::vector<std::set<int>> refs(size_t(model.slotCount));
        std::set<int> live;
        for (const Stmt &stmt : model.statements) {
            if (stmt.check) {
                collectSlots(*stmt.check, live);
                continue;
            }
            for (const cat::Binding &b : stmt.bindings)
                collectSlots(*b.body, refs[size_t(b.slot)]);
        }
        std::vector<int> work(live.begin(), live.end());
        while (!work.empty()) {
            const int s = work.back();
            work.pop_back();
            for (int t : refs[size_t(s)])
                if (live.insert(t).second)
                    work.push_back(t);
        }
        for (int s = 0; s < model.slotCount; ++s) {
            if (live.count(s) || !def[size_t(s)])
                continue;
            const cat::Binding &b = *def[size_t(s)];
            report("L001", "unused-definition", b.line, b.col,
                   "definition '" + b.name
                       + "' is never used by an axiom");
        }
    }

    /** The shadowed-definition problem aside, is a slot's value empty? */
    bool
    slotEmpty(int slot) const
    {
        return env.isSet[size_t(slot)] ? env.set[size_t(slot)] == 0
                                       : env.rel[size_t(slot)].empty;
    }

    bool
    exprEmpty(const Expr &e) const
    {
        return isSetExpr(e) ? evalSet(e, env) == 0
                            : evalRel(e, env).empty;
    }

    /**
     * Report the *maximal* statically-empty subexpressions of an axiom
     * body, skipping the root (L004 territory), literal `0` (an
     * intentional empty) and bare names (reported at their binding).
     */
    void
    scanEmptySubexprs(const Expr &e, bool isRoot)
    {
        if (exprEmpty(e)) {
            if (!isRoot && e.kind != Expr::Kind::EmptyRel
                && e.kind != Expr::Kind::Name) {
                report("L003", "empty-relation", e.line, e.col,
                       "subexpression is empty in every candidate "
                       "execution");
            }
            if (!isRoot)
                return; // children are subsumed
        }
        if (e.a)
            scanEmptySubexprs(*e.a, false);
        if (e.b)
            scanEmptySubexprs(*e.b, false);
    }

    void
    checkEmptyDefinitions()
    {
        for (int s = 0; s < model.slotCount; ++s) {
            if (!def[size_t(s)] || isRec[size_t(s)])
                continue; // rec groups report through L006
            if (!slotEmpty(s))
                continue;
            const cat::Binding &b = *def[size_t(s)];
            report("L003", "empty-relation", b.line, b.col,
                   "definition '" + b.name
                       + "' is empty in every candidate execution");
        }
        for (const Stmt &stmt : model.statements)
            if (stmt.check && !exprEmpty(*stmt.check))
                scanEmptySubexprs(*stmt.check, true);
    }

    void
    checkVacuousAxioms()
    {
        for (const Stmt &stmt : model.statements) {
            if (!stmt.check)
                continue;
            const RelAbs a = evalRel(*stmt.check, env);
            const char *why = nullptr;
            if (a.empty) {
                why = "the relation is empty in every candidate "
                      "execution";
            } else if (stmt.kind == Stmt::Kind::Irreflexive
                       && a.irrefl) {
                why = "the relation is irreflexive by construction";
            } else if (stmt.kind == Stmt::Kind::Acyclic && a.acyc) {
                why = "the relation is acyclic by construction";
            }
            if (why) {
                report("L004", "vacuous-axiom", stmt.check->line,
                       stmt.check->col,
                       "axiom '" + stmt.axiomName
                           + "' always holds: " + std::string(why));
            }
        }
    }

    /** Does axiom @p a (holding) force axiom @p b to hold? */
    bool
    axiomImplies(const Stmt &a, const Stmt &b)
    {
        if (!isSubset(*b.check, *a.check, subset))
            return false;
        switch (a.kind) {
          case Stmt::Kind::Empty:
            return true; // a subset of an empty relation satisfies all
          case Stmt::Kind::Acyclic:
            return b.kind == Stmt::Kind::Acyclic
                || b.kind == Stmt::Kind::Irreflexive;
          case Stmt::Kind::Irreflexive:
            return b.kind == Stmt::Kind::Irreflexive;
          default:
            return false;
        }
    }

    void
    checkRedundantAxioms()
    {
        std::vector<const Stmt *> axioms;
        for (const Stmt &stmt : model.statements)
            if (stmt.check)
                axioms.push_back(&stmt);
        for (size_t j = 0; j < axioms.size(); ++j) {
            for (size_t i = 0; i < axioms.size(); ++i) {
                if (i == j || !axiomImplies(*axioms[i], *axioms[j]))
                    continue;
                // Mutually implied (identical) axioms: keep the first.
                if (i > j && axiomImplies(*axioms[j], *axioms[i]))
                    continue;
                report("L005", "redundant-axiom",
                       axioms[j]->check->line, axioms[j]->check->col,
                       "axiom '" + axioms[j]->axiomName
                           + "' is implied by axiom '"
                           + axioms[i]->axiomName + "'");
                break;
            }
        }
    }

    /** Operator (internal node) count of @p e. */
    static int
    opCount(const Expr &e)
    {
        if (e.kind == Expr::Kind::Name
            || e.kind == Expr::Kind::EmptyRel)
            return 0;
        int n = 1;
        if (e.a)
            n += opCount(*e.a);
        if (e.b)
            n += opCount(*e.b);
        return n;
    }

    /**
     * L007 walk: the *maximal* co/fr-independent subtrees of a
     * coherence-dependent expression (per-node Expr::polarity, the
     * same dataflow the model compiler folds constants with).  The
     * interpreting evaluator recomputes such a subtree for every
     * coherence candidate of an rf epoch even though its value is
     * fixed per epoch.  @p context is the enclosing binding (nullptr
     * for an axiom), which bounds the definitions in scope.
     */
    void
    scanInvariant(const Expr &e, const cat::Binding *context)
    {
        if (e.polarity == cat::Polarity::Independent) {
            if (e.kind == Expr::Kind::Name
                || e.kind == Expr::Kind::EmptyRel)
                return; // a lookup or literal: free either way
            for (int s = 0; s < model.slotCount; ++s) {
                const cat::Binding *b = def[size_t(s)];
                if (!b || b->coDependent()
                    || (context && b->slot >= context->slot))
                    continue;
                if (exprEqual(e, *b->body)) {
                    report("L007", "invariant-recomputation", e.line,
                           e.col,
                           "candidate-invariant subexpression "
                           "duplicates definition '"
                               + b->name
                               + "'; reference the name instead");
                    return;
                }
            }
            if (opCount(e) >= 2) {
                report("L007", "invariant-recomputation", e.line,
                       e.col,
                       "candidate-invariant subexpression is "
                       "recomputed for every coherence candidate; "
                       "hoist it into its own 'let' so it is "
                       "evaluated once per read-from epoch");
            }
            return; // maximal: children are subsumed
        }
        if (e.a)
            scanInvariant(*e.a, context);
        if (e.b)
            scanInvariant(*e.b, context);
    }

    void
    checkInvariantRecomputation()
    {
        for (const Stmt &stmt : model.statements) {
            for (const cat::Binding &b : stmt.bindings)
                if (b.coDependent())
                    scanInvariant(*b.body, &b);
            if (stmt.check
                && stmt.check->polarity
                       != cat::Polarity::Independent)
                scanInvariant(*stmt.check, nullptr);
        }
    }

    void
    checkRecursion()
    {
        for (const Stmt &stmt : model.statements) {
            if (stmt.kind != Stmt::Kind::LetRec)
                continue;
            std::set<int> group;
            for (const cat::Binding &b : stmt.bindings)
                group.insert(b.slot);
            bool recurses = false;
            for (const cat::Binding &b : stmt.bindings) {
                std::set<int> refs;
                collectSlots(*b.body, refs);
                for (int s : refs)
                    recurses |= group.count(s) != 0;
            }
            const cat::Binding &head = stmt.bindings.front();
            if (!recurses) {
                report("L006", "non-productive-recursion", head.line,
                       head.col,
                       "'let rec' group starting at '" + head.name
                           + "' never references its own names; plain "
                             "'let' would do");
                continue;
            }
            bool allEmpty = true;
            for (const cat::Binding &b : stmt.bindings)
                allEmpty &= slotEmpty(b.slot);
            if (allEmpty) {
                report("L006", "non-productive-recursion", head.line,
                       head.col,
                       "the least fixpoint of the 'let rec' group "
                       "starting at '"
                           + head.name + "' is statically empty");
            }
        }
    }
};

} // anonymous namespace

std::string
LintDiagnostic::toString() const
{
    std::ostringstream os;
    os << line << ':' << col << ": "
       << (severity == LintSeverity::Warning ? "warning" : "info")
       << ": " << message << " [" << rule << ' ' << ruleName << ']';
    return os.str();
}

std::vector<LintDiagnostic>
lint(const CatModel &model)
{
    Linter linter(model);
    linter.evalBindings();
    linter.checkShadowing();
    linter.checkUnused();
    linter.checkEmptyDefinitions();
    linter.checkVacuousAxioms();
    linter.checkRedundantAxioms();
    linter.checkRecursion();
    linter.checkInvariantRecomputation();
    std::stable_sort(linter.diags.begin(), linter.diags.end(),
                     [](const LintDiagnostic &a, const LintDiagnostic &b) {
                         return std::tuple(a.line, a.col,
                                           std::string_view(a.rule))
                             < std::tuple(b.line, b.col,
                                          std::string_view(b.rule));
                     });
    return linter.diags;
}

} // namespace gam::analysis
