/**
 * @file
 * Sound static pre-screening of litmus queries: verdict bounds computed
 * from the test's static skeleton, with no candidate enumeration and no
 * machine exploration.
 *
 * Two analyses, both *sound* (they only claim what holds in every
 * execution any engine can produce) but incomplete (Unknown is always a
 * legal answer):
 *
 *  - **Value cover** (model-independent): a bounded-set abstract
 *    interpretation of the mini-ISA over the exact isa/semantics.hh
 *    operations.  Per-address universes of storable values are iterated
 *    to a fixpoint across threads; loads draw from the universe of
 *    every address they may access.  If a required final register or
 *    memory value lies outside its (non-saturated) abstract set, no
 *    execution can satisfy the condition: the behavior is *forbidden*
 *    under every model and engine.
 *
 *  - **No relaxed edge** (TSO / GAM0 / GAM): if every program-order
 *    adjacent pair of memory accesses is provably preserved program
 *    order under the model -- fences between them, syntactic
 *    dependencies, same-address ordering rules -- then po restricted to
 *    memory events is contained in ppo+, so the model's axiom
 *    `acyclic(ppo | co | (rf \ po) | fr)` coincides with SC's and the
 *    *entire outcome set* equals the SC outcome set.  decide() then
 *    answers the query by deciding the (much cheaper, and much more
 *    cache-friendly) SC query instead.  Threads containing branches
 *    contribute soundly only when they perform at most one memory
 *    access.
 *
 * What the pre-screen may decide: ValueCover may only assert
 * *forbidden* (it bounds the value space, it enumerates no outcomes);
 * ScDelegate yields the full exact SC outcome set.  What it may not
 * decide: anything about a user-supplied .cat model, or about runs with
 * the InstOrder axiom ablated -- harness::decide() gates it off for
 * those (out-of-thin-air candidates are only provably rejected under
 * the shipped models with their ordering axiom intact).
 */

#ifndef GAM_ANALYSIS_PRESCREEN_HH
#define GAM_ANALYSIS_PRESCREEN_HH

#include <memory>
#include <string>

#include "litmus/test.hh"
#include "model/kind.hh"

namespace gam::analysis
{

/** What a pre-screen concluded about a query. */
enum class PrescreenVerdict {
    /** No sound shortcut applies; run an engine. */
    Unknown,
    /**
     * The test condition requires a value no execution can produce:
     * forbidden under every model, with an empty witness set.
     */
    Forbidden,
    /**
     * Every po-adjacent memory pair is preserved program order under
     * the queried model: its outcome set equals SC's exactly.
     */
    ScEquivalent,
};

/** Display name ("value-cover" / "sc-delegate" / ""). */
std::string prescreenVerdictName(PrescreenVerdict verdict);

/** The result of prescreen(): a verdict and a short justification. */
struct PrescreenResult
{
    PrescreenVerdict verdict = PrescreenVerdict::Unknown;
    /** One-line human-readable justification of a non-Unknown verdict. */
    std::string detail;
};

/**
 * The model-independent half of prescreen(), computed once per test
 * and reusable across models: the abstract value-cover fixpoint and
 * its Forbidden verdict.  screen(model) then only runs the (cheap)
 * per-model preserved-program-order walk.  The batched decide
 * pipeline keys one of these per test, turning N prescreen() fixpoint
 * runs into one.  Holds a reference to @p test: must not outlive it.
 */
class PrescreenAnalysis
{
  public:
    explicit PrescreenAnalysis(const litmus::LitmusTest &test);
    ~PrescreenAnalysis();

    PrescreenAnalysis(const PrescreenAnalysis &) = delete;
    PrescreenAnalysis &operator=(const PrescreenAnalysis &) = delete;

    /** Exactly prescreen(test, model), with the fixpoint amortized. */
    PrescreenResult screen(model::ModelKind model) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/**
 * Statically pre-screen @p test under @p model.  Sound for every
 * engine deciding the builtin @p model with the InstOrder axiom
 * enforced; the caller is responsible for that gate (decide() applies
 * it).  Never enumerates candidates; cost is linear-ish in program
 * size.
 */
PrescreenResult prescreen(const litmus::LitmusTest &test,
                          model::ModelKind model);

} // namespace gam::analysis

#endif // GAM_ANALYSIS_PRESCREEN_HH
