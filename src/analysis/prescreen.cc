#include "analysis/prescreen.hh"

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "isa/instruction.hh"
#include "isa/semantics.hh"

namespace gam::analysis
{

using isa::Addr;
using isa::FenceKind;
using isa::Instruction;
using isa::Opcode;
using isa::Reg;
using isa::Value;
using litmus::LitmusTest;
using model::ModelKind;

namespace
{

/**
 * A bounded set of 64-bit values: either an explicit sorted set of at
 * most Cap values, or Top (any value).  The abstraction is a plain
 * powerset domain with a cardinality widening, so every operation is
 * a sound over-approximation of the concrete operation.
 */
struct ValSet
{
    static constexpr size_t Cap = 24;

    bool top = false;
    std::vector<Value> vals; ///< sorted, unique; empty+!top = bottom

    static ValSet
    singleton(Value v)
    {
        ValSet s;
        s.vals.push_back(v);
        return s;
    }

    static ValSet
    topSet()
    {
        ValSet s;
        s.top = true;
        return s;
    }

    bool isSingleton() const { return !top && vals.size() == 1; }

    bool
    contains(Value v) const
    {
        return top
            || std::binary_search(vals.begin(), vals.end(), v);
    }

    void
    add(Value v)
    {
        if (top)
            return;
        auto it = std::lower_bound(vals.begin(), vals.end(), v);
        if (it != vals.end() && *it == v)
            return;
        vals.insert(it, v);
        if (vals.size() > Cap) {
            top = true;
            vals.clear();
        }
    }

    void
    join(const ValSet &other)
    {
        if (top)
            return;
        if (other.top) {
            top = true;
            vals.clear();
            return;
        }
        for (Value v : other.vals)
            add(v);
    }

    bool operator==(const ValSet &other) const = default;
};

/** Pointwise map of @p f over @p s (Top maps to Top). */
template <typename F>
ValSet
mapSet(const ValSet &s, F f)
{
    if (s.top)
        return ValSet::topSet();
    ValSet out;
    for (Value v : s.vals)
        out.add(f(v));
    return out;
}

/** Pointwise map of @p f over the product of two sets. */
template <typename F>
ValSet
mapSet2(const ValSet &a, const ValSet &b, F f)
{
    if (a.top || b.top)
        return ValSet::topSet();
    ValSet out;
    for (Value va : a.vals) {
        for (Value vb : b.vals) {
            out.add(f(va, vb));
            if (out.top)
                return out;
        }
    }
    return out;
}

bool
setsOverlap(const ValSet &a, const ValSet &b)
{
    if (a.top || b.top)
        return true; // conservative
    for (Value v : a.vals)
        if (b.contains(v))
            return true;
    return false;
}

/** Abstract register file. */
using RegState = std::vector<ValSet>;

void
joinInto(std::optional<RegState> &dst, const RegState &src)
{
    if (!dst) {
        dst = src;
        return;
    }
    for (size_t r = 0; r < src.size(); ++r)
        (*dst)[r].join(src[r]);
}

/**
 * Per-address universes of values stores can write, iterated to a
 * cross-thread fixpoint.  A store whose address set saturates
 * contributes to every address through the wild bucket.
 */
struct Universe
{
    std::map<Addr, ValSet> perAddr;
    bool wildStore = false;
    ValSet wildVals;

    bool operator==(const Universe &other) const = default;
};

struct ValueAnalysis
{
    const LitmusTest &test;
    Universe uni;
    bool bailed = false;

    /** Abstract register file *before* each instruction (final pass). */
    std::vector<std::vector<std::optional<RegState>>> before;
    /** Abstract register file at each thread's exit (final pass). */
    std::vector<std::optional<RegState>> exit;

    explicit ValueAnalysis(const LitmusTest &t) : test(t) {}

    void
    bail()
    {
        bailed = true;
    }

    /** Values a load with abstract address set @p addrs can observe. */
    ValSet
    loadFrom(const ValSet &addrs) const
    {
        if (addrs.top)
            return ValSet::topSet();
        ValSet out;
        for (Value a : addrs.vals) {
            if (a & 7)
                continue; // no well-formed execution reaches it
            out.add(test.initialMem.load(a));
            auto it = uni.perAddr.find(a);
            if (it != uni.perAddr.end())
                out.join(it->second);
        }
        if (uni.wildStore)
            out.join(uni.wildVals);
        return out;
    }

    /** All values the final memory word at @p a can hold. */
    ValSet
    finalMemValues(Addr a) const
    {
        ValSet out;
        out.add(test.initialMem.load(a));
        auto it = uni.perAddr.find(a);
        if (it != uni.perAddr.end())
            out.join(it->second);
        if (uni.wildStore)
            out.join(uni.wildVals);
        return out;
    }

    void
    contributeStore(const ValSet &addrs, const ValSet &data)
    {
        if (addrs.top) {
            uni.wildStore = true;
            uni.wildVals.join(data);
            return;
        }
        for (Value a : addrs.vals) {
            if (a & 7)
                continue;
            uni.perAddr[a].join(data);
        }
    }

    ValSet
    addrSetOf(const Instruction &in, const RegState &st) const
    {
        return mapSet(st[size_t(in.src1)],
                      [&](Value base) { return in.imm + base; });
    }

    /**
     * One abstract pass over thread @p tid, joining over all forward
     * branch outcomes.  Contributes store values to the universe; when
     * @p record, also captures per-instruction and exit states.
     */
    void
    interpretThread(int tid, bool record)
    {
        const isa::Program &prog = test.threads[size_t(tid)];
        const size_t n = prog.size();
        std::vector<std::optional<RegState>> pending(n + 1);
        pending[0] = RegState(isa::NUM_REGS, ValSet::singleton(0));
        std::optional<RegState> exitState;

        for (size_t k = 0; k < n && !bailed; ++k) {
            if (record)
                before[size_t(tid)][k] = pending[k];
            if (!pending[k])
                continue; // statically unreachable
            RegState st = *pending[k];
            const Instruction &in = prog[k];
            bool fallThrough = true;

            auto branchTo = [&](int64_t target) {
                if (target <= int64_t(k) || target > int64_t(n)) {
                    bail(); // engines require strictly forward targets
                    return;
                }
                joinInto(pending[size_t(target)], st);
            };

            if (in.isRegToReg() || in.op == Opcode::LI) {
                ValSet v = mapSet2(st[size_t(in.src1)],
                                   st[size_t(in.src2)],
                                   [&](Value a, Value b) {
                                       return isa::evalRegToReg(in, a,
                                                                b);
                                   });
                st[size_t(in.dst)] = std::move(v);
            } else if (in.op == Opcode::LD) {
                st[size_t(in.dst)] = loadFrom(addrSetOf(in, st));
            } else if (in.op == Opcode::ST) {
                contributeStore(addrSetOf(in, st), st[size_t(in.src2)]);
            } else if (in.isRmw()) {
                const ValSet addrs = addrSetOf(in, st);
                const ValSet loaded = loadFrom(addrs);
                const ValSet stored =
                    mapSet2(loaded, st[size_t(in.src2)],
                            [&](Value old_v, Value s2) {
                                return isa::evalRmwStored(in, old_v,
                                                          s2);
                            });
                contributeStore(addrs, stored);
                st[size_t(in.dst)] = loaded;
            } else if (in.isCondBranch()) {
                branchTo(in.imm); // both directions stay joined
            } else if (in.op == Opcode::JMP) {
                branchTo(in.imm);
                fallThrough = false;
            } else if (in.op == Opcode::HALT) {
                joinInto(exitState, st);
                fallThrough = false;
            }
            // NOP and FENCE leave the register file untouched.

            if (fallThrough)
                joinInto(pending[k + 1], st);
        }
        if (pending[n])
            joinInto(exitState, *pending[n]);
        if (record)
            exit[size_t(tid)] = std::move(exitState);
    }

    /** @return false when the analysis bailed (make no claims). */
    bool
    run()
    {
        const size_t nthreads = test.threads.size();
        // Universes only grow and saturate at Cap values per address;
        // the loop terminates long before the safety bound.
        for (int round = 0; round < 100 && !bailed; ++round) {
            const Universe snapshot = uni;
            for (size_t tid = 0; tid < nthreads; ++tid)
                interpretThread(int(tid), false);
            if (uni == snapshot)
                break;
        }
        if (bailed)
            return false;
        before.assign(nthreads, {});
        exit.assign(nthreads, std::nullopt);
        for (size_t tid = 0; tid < nthreads; ++tid) {
            before[tid].assign(test.threads[tid].size(), std::nullopt);
            interpretThread(int(tid), true);
        }
        return !bailed;
    }
};

// ----------------------------------------------------- value cover

/**
 * A condition conjunct whose required value lies outside the abstract
 * cover can never be satisfied.  Returns a justification, or nullopt.
 */
std::optional<std::string>
valueCoverForbidden(const ValueAnalysis &va)
{
    const LitmusTest &test = va.test;
    for (const auto &rc : test.regCond) {
        if (rc.tid < 0 || size_t(rc.tid) >= test.threads.size()
            || rc.reg < 0 || rc.reg >= isa::NUM_REGS) {
            return std::nullopt; // malformed; let the engine assert
        }
        const auto &ex = va.exit[size_t(rc.tid)];
        if (!ex)
            continue;
        const ValSet &s = (*ex)[size_t(rc.reg)];
        if (!s.contains(rc.value)) {
            std::ostringstream os;
            os << "no execution can leave "
               << isa::regName(rc.reg) << " of thread " << rc.tid
               << " holding " << rc.value;
            return os.str();
        }
    }
    for (const auto &mc : test.memCond) {
        if (mc.addr & 7)
            return std::nullopt;
        if (!va.finalMemValues(mc.addr).contains(mc.value)) {
            std::ostringstream os;
            os << "no execution can leave [0x" << std::hex << mc.addr
               << std::dec << "] holding " << mc.value;
            return os.str();
        }
    }
    return std::nullopt;
}

// ------------------------------------------------------ sc delegate

/** Static po-forward load-value flow, as cat/exec.cc computes it. */
struct FlowInfo
{
    /** Loads (instruction indices) feeding each instr's address regs. */
    std::vector<std::set<size_t>> addrFlow;
    /** Loads feeding each instr's store-data regs. */
    std::vector<std::set<size_t>> dataFlow;
};

FlowInfo
computeFlow(const isa::Program &prog, size_t limit)
{
    FlowInfo info;
    info.addrFlow.assign(limit, {});
    info.dataFlow.assign(limit, {});
    std::array<std::set<size_t>, isa::NUM_REGS> flow;
    auto readFlow = [&](const std::vector<Reg> &regs) {
        std::set<size_t> s;
        for (Reg r : regs)
            s.insert(flow[size_t(r)].begin(), flow[size_t(r)].end());
        return s;
    };
    for (size_t k = 0; k < limit; ++k) {
        const Instruction &in = prog[k];
        if (in.isMem()) {
            info.addrFlow[k] = readFlow(in.addrReadSet());
            info.dataFlow[k] = readFlow(in.dataReadSet());
            if (in.isLoad() && in.dst != isa::REG_ZERO)
                flow[size_t(in.dst)] = {k};
        } else if (in.isRegToReg() || in.op == Opcode::LI) {
            if (in.dst != isa::REG_ZERO)
                flow[size_t(in.dst)] = readFlow(in.readSet());
        }
    }
    return info;
}

struct DelegateChecker
{
    const ValueAnalysis &va;
    const ModelKind model;

    bool
    sameSingletonAddr(const ValSet &a, const ValSet &b) const
    {
        return a.isSingleton() && b.isSingleton()
            && a.vals[0] == b.vals[0];
    }

    /**
     * Is the po-adjacent memory pair (i, j) of a branchless thread
     * provably preserved program order under the model?  @p addrs
     * holds each memory instruction's abstract address set.
     */
    bool
    pairPreserved(const isa::Program &prog, const FlowInfo &flow,
                  const std::map<size_t, ValSet> &addrs, size_t i,
                  size_t j) const
    {
        const Instruction &a = prog[i];
        const Instruction &b = prog[j];

        // FenceOrd / the TSO fence rule: a FenceXY between the pair
        // with matching endpoint types.
        for (size_t k = i + 1; k < j; ++k) {
            const Instruction &f = prog[k];
            if (f.isFence() && a.isMemType(isa::fencePre(f.fence))
                && b.isMemType(isa::fencePost(f.fence))) {
                return true;
            }
        }
        if (model == ModelKind::TSO) {
            // Everything but the pure-store -> pure-load relaxation.
            return !(a.isStore() && !a.isRmw() && b.isLoad()
                     && !b.isRmw());
        }

        // GAM0 / GAM Definition 6 cases.
        const ValSet &addrA = addrs.at(i);
        const ValSet &addrB = addrs.at(j);
        // SAMemSt: a store after an older same-address access.
        if (b.isStore() && sameSingletonAddr(addrA, addrB))
            return true;
        // RegRAW: the pair's own address/data dependency.
        if (a.isLoad()
            && (flow.addrFlow[j].count(i) || flow.dataFlow[j].count(i)))
            return true;
        // AddrSt: a store after the address producers of any older
        // memory access.
        if (b.isStore() && a.isLoad()) {
            for (const auto &[m, unused] : addrs) {
                (void)unused;
                if (m < j && flow.addrFlow[m].count(i))
                    return true;
            }
        }
        // SAStLd: a load after the address/data producers of the
        // immediately preceding same-address store.
        if (b.isLoad() && a.isLoad()) {
            for (const auto &[s, saddr] : addrs) {
                if (s <= i || s >= j || !prog[s].isStore())
                    continue;
                if (!sameSingletonAddr(saddr, addrB))
                    continue;
                if (!flow.addrFlow[s].count(i)
                    && !flow.dataFlow[s].count(i)) {
                    continue;
                }
                bool shielded = false;
                for (const auto &[t, taddr] : addrs) {
                    if (t > s && t < j && prog[t].isStore()
                        && setsOverlap(taddr, saddr)) {
                        shielded = true;
                        break;
                    }
                }
                if (!shielded)
                    return true;
            }
        }
        // SALdLd (GAM only): consecutive same-address loads with no
        // same-address store between.
        if (model == ModelKind::GAM && a.isLoad() && b.isLoad()
            && sameSingletonAddr(addrA, addrB)) {
            bool shielded = false;
            for (const auto &[t, taddr] : addrs) {
                if (t > i && t < j && prog[t].isStore()
                    && setsOverlap(taddr, addrA)) {
                    shielded = true;
                    break;
                }
            }
            if (!shielded)
                return true;
        }
        return false;
    }

    /**
     * True when po restricted to memory events is provably inside
     * ppo+, making the model's ordering axiom coincide with SC's.
     */
    bool
    delegates() const
    {
        const LitmusTest &test = va.test;
        for (size_t tid = 0; tid < test.threads.size(); ++tid) {
            const isa::Program &prog = test.threads[tid];
            // Scan the whole program: a branch can jump over a HALT,
            // so instructions after one may still execute.
            bool branchy = false;
            size_t memCount = 0;
            for (size_t k = 0; k < prog.size(); ++k) {
                branchy |= prog[k].isBranch();
                memCount += prog[k].isMem();
            }
            if (branchy) {
                // Path-sensitive ordering evidence is out of scope; a
                // thread with at most one access has no pair to order.
                if (memCount <= 1)
                    continue;
                return false;
            }
            // Branchless: execution is the static prefix up to the
            // first HALT; anything past it never runs.
            size_t limit = prog.size();
            for (size_t k = 0; k < prog.size(); ++k) {
                if (prog[k].op == Opcode::HALT) {
                    limit = k;
                    break;
                }
            }
            std::map<size_t, ValSet> addrs;
            std::vector<size_t> mems;
            for (size_t k = 0; k < limit; ++k) {
                if (!prog[k].isMem())
                    continue;
                const auto &st = va.before[tid][k];
                if (!st)
                    return false; // unreachable state: be conservative
                addrs.emplace(k, va.addrSetOf(prog[k], *st));
                mems.push_back(k);
            }
            const FlowInfo flow = computeFlow(prog, limit);
            for (size_t t = 0; t + 1 < mems.size(); ++t) {
                if (!pairPreserved(prog, flow, addrs, mems[t],
                                   mems[t + 1])) {
                    return false;
                }
            }
        }
        return true;
    }
};

} // anonymous namespace

std::string
prescreenVerdictName(PrescreenVerdict verdict)
{
    switch (verdict) {
      case PrescreenVerdict::Forbidden: return "value-cover";
      case PrescreenVerdict::ScEquivalent: return "sc-delegate";
      case PrescreenVerdict::Unknown: break;
    }
    return "";
}

struct PrescreenAnalysis::Impl
{
    /** The value fixpoint; disengaged when it bailed (no claims). */
    std::optional<ValueAnalysis> va;
    /** The model-independent verdict: Forbidden or Unknown. */
    PrescreenResult base;
};

PrescreenAnalysis::PrescreenAnalysis(const LitmusTest &test)
    : impl(std::make_unique<Impl>())
{
    if (test.threads.empty())
        return;
    impl->va.emplace(test);
    if (!impl->va->run()) {
        impl->va.reset();
        return;
    }
    if (!test.regCond.empty() || !test.memCond.empty()) {
        if (auto why = valueCoverForbidden(*impl->va)) {
            impl->base.verdict = PrescreenVerdict::Forbidden;
            impl->base.detail = *why;
        }
    }
}

PrescreenAnalysis::~PrescreenAnalysis() = default;

PrescreenResult
PrescreenAnalysis::screen(ModelKind model) const
{
    PrescreenResult result = impl->base;
    if (!impl->va || result.verdict == PrescreenVerdict::Forbidden)
        return result;

    if (model == ModelKind::TSO || model == ModelKind::GAM0
        || model == ModelKind::GAM) {
        DelegateChecker checker{*impl->va, model};
        if (checker.delegates()) {
            result.verdict = PrescreenVerdict::ScEquivalent;
            result.detail = "every po-adjacent memory pair is "
                            "preserved program order; outcomes equal "
                            "SC's";
        }
    }
    return result;
}

PrescreenResult
prescreen(const LitmusTest &test, ModelKind model)
{
    return PrescreenAnalysis(test).screen(model);
}

} // namespace gam::analysis
