/**
 * @file
 * Cycle-level out-of-order uniprocessor (the OOOU of Section III-A).
 *
 * The pipeline models fetch (with gshare prediction and an L1I),
 * 4-wide rename/dispatch into ROB + reservation station + load/store
 * queues, 6-wide issue over the Table I function units, a load/store
 * unit with store-to-load forwarding and speculative load issue, and
 * 4-wide in-order commit with a post-commit store buffer draining into
 * the data cache hierarchy.
 *
 * The four evaluated models differ *only* through LsqPolicy:
 *
 *  - GAM    : same-address load-load kills + stalls (constraint SALdLd)
 *  - ARM    : stalls only (optimistic SALdLdARM, as in the paper)
 *  - GAM0   : neither
 *  - Alpha* : neither, plus load-load forwarding
 *
 * All models keep the universal ordering machinery: memory-order
 * violation squashes when a store address resolves under an already-
 * executed younger same-address load (Compute-Mem-Addr in Figure 17),
 * branch-misprediction squashes, and fence draining.
 */

#ifndef GAM_SIM_CORE_HH
#define GAM_SIM_CORE_HH

#include <deque>
#include <optional>

#include "base/stats.hh"
#include "mem/mem_system.hh"
#include "sim/bpred.hh"
#include "sim/params.hh"
#include "sim/trace_gen.hh"

namespace gam::sim
{

/** Counters reported by one simulation run (post-warmup). */
struct SimStats
{
    uint64_t cycles = 0;
    uint64_t committedUops = 0;
    uint64_t fetchedUops = 0;

    uint64_t branchMispredicts = 0;
    uint64_t condBranches = 0;
    uint64_t memOrderSquashes = 0;
    uint64_t saLdLdKills = 0;
    uint64_t saLdLdStalls = 0;
    uint64_t llForwards = 0;
    uint64_t llForwardsSavedMiss = 0;
    uint64_t storeForwards = 0;
    uint64_t loadsExecuted = 0;
    uint64_t storesCommitted = 0;

    uint64_t l1dLoadAccesses = 0;
    uint64_t l1dLoadMisses = 0;
    uint64_t l2Misses = 0;
    uint64_t l3Misses = 0;

    double upc() const
    {
        return cycles ? double(committedUops) / double(cycles) : 0.0;
    }
    /** Events per 1000 committed uops (the paper's Tables II/III unit). */
    double perKuops(uint64_t events) const
    {
        return committedUops ? 1000.0 * double(events)
                                   / double(committedUops)
                             : 0.0;
    }
    StatGroup toStatGroup() const;
};

/** One out-of-order core driven by a dynamic trace. */
class Core
{
  public:
    Core(const DynTrace &trace, model::ModelKind kind,
         CoreParams params = {}, mem::MemSystemParams mem_params = {});

    /**
     * Simulate until the trace commits fully or @p max_cycles elapse.
     * Statistics cover only commits after @p warmup_uops.
     */
    SimStats run(uint64_t warmup_uops = 0,
                 uint64_t max_cycles = UINT64_MAX);

    model::ModelKind modelKind() const { return kind; }

  private:
    struct InFlight
    {
        uint64_t seq = 0;          ///< trace index (stable across squash)
        const DynUop *u = nullptr;

        bool inRs = false;         ///< occupying a reservation station
        bool issued = false;       ///< sent to a function unit / AGU
        bool execDone = false;
        uint64_t readyCycle = 0;   ///< result availability (scheduled)

        bool addrReady = false;
        uint64_t addrReadyCycle = 0;
        bool addrScanDone = false; ///< kill/violation scan performed
        bool memIssued = false;    ///< load obtained a data source
        int64_t fwdStoreSeq = -1;  ///< store it forwarded from (-1: mem)
        bool stallCounted = false;

        bool dataReady = false;    ///< store data captured
        uint64_t dataReadyCycle = 0;

        int64_t src1Seq = -1;      ///< producer of src1 (-1: committed)
        int64_t src2Seq = -1;
        bool mispredicted = false;
    };

    /** A committed store draining to the cache. */
    struct PendingStore
    {
        isa::Addr addr;
        isa::Value value;
        int64_t seq;
        bool issuedToMem = false;
        uint64_t doneCycle = 0;
    };

    InFlight *bySeq(int64_t seq);
    const DynUop &uopAt(uint64_t seq) const { return trace.uops[seq]; }

    bool producerReady(int64_t seq) const;
    uint64_t producerReadyCycle(int64_t seq) const;

    void doFetch();
    void doRename();
    void doComplete();
    void doIssue();
    void doMemStage();
    void doCommit();

    /** Flush seq >= @p from, redirect fetch, rebuild the rename map. */
    void squash(uint64_t from);
    void rebuildRenameMap();

    /** Try to give a load a data source; returns true when sourced. */
    bool tryIssueLoad(InFlight &ld);

    const DynTrace &trace;
    model::ModelKind kind;
    CoreParams params;
    LsqPolicy policy;
    mem::MemSystem memsys;
    BranchPredictor bpred;

    uint64_t cycle = 0;
    uint64_t fetchCursor = 0;     ///< next trace index to fetch
    uint64_t fetchResumeCycle = 0;
    uint64_t lastFetchLine = UINT64_MAX;
    uint64_t fetchLineReady = 0;

    std::deque<uint64_t> fetchQueue; ///< trace indices awaiting rename
    std::deque<InFlight> rob;        ///< oldest first
    uint64_t headSeq = 0;            ///< seq of rob.front()

    int rsUsed = 0;
    int lqUsed = 0;
    int sqUsed = 0; ///< speculative + committed (post-commit pending)
    std::deque<PendingStore> sbQueue;

    std::array<int64_t, isa::NUM_REGS> renameMap;

    uint64_t divBusyUntil = 0;
    uint64_t fpDivBusyUntil = 0;

    SimStats stats;
    uint64_t warmupUops = 0;
    bool statsArmed = false;
    uint64_t statsStartCycle = 0;
    mem::CacheStats l1dBase; ///< L1D stats snapshot at warmup boundary
};

} // namespace gam::sim

#endif // GAM_SIM_CORE_HH
