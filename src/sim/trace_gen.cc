#include "sim/trace_gen.hh"

#include "isa/semantics.hh"

namespace gam::sim
{

DynTrace
generateTrace(const isa::Program &program, isa::MemImage initial_mem,
              uint64_t max_uops)
{
    DynTrace trace;
    trace.uops.reserve(max_uops);
    isa::Emulator emu(program, std::move(initial_mem));

    while (trace.uops.size() < max_uops && !emu.halted()
           && emu.pc() < program.size()) {
        const uint64_t pc = emu.pc();
        const isa::Instruction &in = program[pc];
        if (in.op == isa::Opcode::HALT) {
            emu.step();
            trace.programCompleted = true;
            break;
        }

        DynUop u;
        u.instr = in;
        u.pc = uint32_t(pc);
        if (in.isMem())
            u.addr = isa::effectiveAddr(in, emu.reg(in.src1));
        if (in.isStore())
            u.value = emu.reg(in.src2);

        emu.step();

        if (in.isLoad())
            u.value = emu.reg(in.dst);
        u.nextPc = uint32_t(emu.pc());
        u.taken = in.isBranch() && u.nextPc != pc + 1;
        trace.uops.push_back(u);
    }
    if (emu.halted() || emu.pc() >= program.size())
        trace.programCompleted = true;
    trace.finalState = emu.archState();
    return trace;
}

} // namespace gam::sim
