/**
 * @file
 * A gshare conditional-branch direction predictor.  All branches in the
 * mini-ISA are direct, so no BTB is needed: targets are known at decode
 * and only the direction can mispredict.
 */

#ifndef GAM_SIM_BPRED_HH
#define GAM_SIM_BPRED_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gam::sim
{

/** gshare: global history XOR pc indexing a 2-bit counter table. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(int index_bits = 12);

    /** Predicted direction for the conditional branch at @p pc. */
    bool predict(uint64_t pc) const;

    /** Train with the resolved direction and advance global history. */
    void update(uint64_t pc, bool taken);

    uint64_t lookups() const { return _lookups; }

  private:
    size_t index(uint64_t pc) const;

    int indexBits;
    uint64_t history = 0;
    std::vector<uint8_t> table; ///< 2-bit saturating counters
    mutable uint64_t _lookups = 0;
};

} // namespace gam::sim

#endif // GAM_SIM_BPRED_HH
