#include "sim/bpred.hh"

namespace gam::sim
{

BranchPredictor::BranchPredictor(int index_bits)
    : indexBits(index_bits),
      table(size_t(1) << index_bits, 1) // weakly not-taken
{
}

size_t
BranchPredictor::index(uint64_t pc) const
{
    const uint64_t mask = (uint64_t(1) << indexBits) - 1;
    return size_t((pc ^ history) & mask);
}

bool
BranchPredictor::predict(uint64_t pc) const
{
    ++_lookups;
    return table[index(pc)] >= 2;
}

void
BranchPredictor::update(uint64_t pc, bool taken)
{
    uint8_t &ctr = table[index(pc)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    const uint64_t mask = (uint64_t(1) << indexBits) - 1;
    history = ((history << 1) | (taken ? 1 : 0)) & mask;
}

} // namespace gam::sim
