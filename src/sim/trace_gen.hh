/**
 * @file
 * Dynamic-trace generation: the functional emulator unrolls a program
 * into the committed uop stream the timing core then schedules.  Since
 * the paper's evaluation is single-threaded (Section V-A), values are
 * execution-order independent and can be bound functionally; the timing
 * model reproduces only *when* things happen (including squashes, which
 * re-play trace segments).
 */

#ifndef GAM_SIM_TRACE_GEN_HH
#define GAM_SIM_TRACE_GEN_HH

#include <cstdint>
#include <vector>

#include "isa/emulator.hh"
#include "isa/program.hh"

namespace gam::sim
{

/** One committed micro-op of the dynamic instruction stream. */
struct DynUop
{
    isa::Instruction instr;
    uint32_t pc = 0;        ///< static instruction index
    uint32_t nextPc = 0;    ///< actual successor (branch resolved)
    isa::Addr addr = 0;     ///< memory ops: effective address
    isa::Value value = 0;   ///< load result or store data
    bool taken = false;     ///< branches: actual direction
};

/** The committed stream plus the final architectural state. */
struct DynTrace
{
    std::vector<DynUop> uops;
    /** True when the program halted within the uop budget. */
    bool programCompleted = false;
    isa::ArchState finalState;
};

/**
 * Execute @p program on the functional emulator and record up to
 * @p max_uops committed micro-ops.
 */
DynTrace generateTrace(const isa::Program &program,
                       isa::MemImage initial_mem, uint64_t max_uops);

} // namespace gam::sim

#endif // GAM_SIM_TRACE_GEN_HH
