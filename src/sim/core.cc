#include "sim/core.hh"

#include <algorithm>

#include "base/logging.hh"

namespace gam::sim
{

using isa::Instruction;
using isa::Opcode;

namespace
{

/** Instruction memory is disjoint from data memory. */
constexpr uint64_t instFetchBase = 0x4000'0000ull;

/** Function-unit classes of the Table I configuration. */
enum class FuClass { IntAlu, IntMul, IntDiv, FpAlu, FpMul, FpDiv, Mem };

FuClass
fuClassOf(const Instruction &in)
{
    if (in.isMem())
        return FuClass::Mem;
    switch (in.op) {
      case Opcode::MUL:
        return FuClass::IntMul;
      case Opcode::DIV: case Opcode::DIVU:
      case Opcode::REM: case Opcode::REMU:
        return FuClass::IntDiv;
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMIN:
      case Opcode::FMAX: case Opcode::FMOV: case Opcode::FCVT_I2F:
      case Opcode::FCVT_F2I:
        return FuClass::FpAlu;
      case Opcode::FMUL:
        return FuClass::FpMul;
      case Opcode::FDIV: case Opcode::FSQRT:
        return FuClass::FpDiv;
      default:
        return FuClass::IntAlu; // ALU ops, branches, fences, NOP
    }
}

} // anonymous namespace

StatGroup
SimStats::toStatGroup() const
{
    StatGroup g;
    g.set("cycles", double(cycles));
    g.set("committed_uops", double(committedUops));
    g.set("upc", upc());
    g.set("branch_mispredicts", double(branchMispredicts));
    g.set("cond_branches", double(condBranches));
    g.set("mem_order_squashes", double(memOrderSquashes));
    g.set("sa_ldld_kills", double(saLdLdKills));
    g.set("sa_ldld_stalls", double(saLdLdStalls));
    g.set("sa_ldld_kills_per_kuops", perKuops(saLdLdKills));
    g.set("sa_ldld_stalls_per_kuops", perKuops(saLdLdStalls));
    g.set("ll_forwards", double(llForwards));
    g.set("ll_forwards_per_kuops", perKuops(llForwards));
    g.set("ll_forwards_saved_miss", double(llForwardsSavedMiss));
    g.set("store_forwards", double(storeForwards));
    g.set("loads_committed", double(loadsExecuted));
    g.set("stores_committed", double(storesCommitted));
    g.set("l1d_load_accesses", double(l1dLoadAccesses));
    g.set("l1d_load_misses", double(l1dLoadMisses));
    g.set("l1d_load_misses_per_kuops", perKuops(l1dLoadMisses));
    g.set("l2_misses", double(l2Misses));
    g.set("l3_misses", double(l3Misses));
    return g;
}

Core::Core(const DynTrace &trace, model::ModelKind kind, CoreParams params,
           mem::MemSystemParams mem_params)
    : trace(trace), kind(kind), params(params),
      policy(LsqPolicy::forModel(kind)), memsys(mem_params),
      bpred(params.bpredBits)
{
    renameMap.fill(-1);
    for (const DynUop &u : trace.uops) {
        if (u.instr.isRmw()) {
            fatal("the cycle simulator does not model RMW operations "
                  "(the paper's evaluation has none); use the abstract "
                  "machines for RMW programs");
        }
    }
}

Core::InFlight *
Core::bySeq(int64_t seq)
{
    if (seq < int64_t(headSeq)
        || seq >= int64_t(headSeq + rob.size())) {
        return nullptr;
    }
    return &rob[size_t(seq - int64_t(headSeq))];
}

bool
Core::producerReady(int64_t seq) const
{
    if (seq < int64_t(headSeq))
        return true; // committed (or no producer)
    const InFlight &p = rob[size_t(seq - int64_t(headSeq))];
    return p.execDone;
}

void
Core::rebuildRenameMap()
{
    renameMap.fill(-1);
    for (const InFlight &f : rob)
        for (isa::Reg w : f.u->instr.writeSet())
            renameMap[size_t(w)] = int64_t(f.seq);
}

void
Core::squash(uint64_t from)
{
    while (!rob.empty() && rob.back().seq >= from) {
        InFlight &f = rob.back();
        if (f.inRs)
            --rsUsed;
        if (f.u->instr.isLoad())
            --lqUsed;
        if (f.u->instr.isStore())
            --sqUsed;
        rob.pop_back();
    }
    fetchQueue.clear();
    fetchCursor = from;
    fetchResumeCycle = cycle + uint64_t(params.redirectPenalty);
    lastFetchLine = UINT64_MAX;
    rebuildRenameMap();
}

void
Core::doFetch()
{
    if (cycle < fetchResumeCycle)
        return;
    int budget = params.fetchWidth;
    while (budget > 0 && fetchQueue.size() < size_t(params.fetchQueueSize)
           && fetchCursor < trace.uops.size()) {
        const DynUop &u = trace.uops[fetchCursor];
        const uint64_t inst_addr = instFetchBase + uint64_t(u.pc) * 8;
        const uint64_t line = inst_addr / 64;
        if (line != lastFetchLine) {
            const uint64_t ready =
                memsys.fetch(isa::Addr(inst_addr), cycle);
            lastFetchLine = line;
            if (ready > cycle) {
                fetchResumeCycle = ready;
                return;
            }
        }
        fetchQueue.push_back(fetchCursor);
        ++fetchCursor;
        --budget;
        if (statsArmed)
            ++stats.fetchedUops;
        if (u.taken)
            break; // a taken branch ends the fetch group
    }
}

void
Core::doRename()
{
    int budget = params.renameWidth;
    while (budget > 0 && !fetchQueue.empty()) {
        const uint64_t seq = fetchQueue.front();
        const DynUop &u = trace.uops[seq];
        const Instruction &in = u.instr;

        if (rob.size() >= size_t(params.robSize) || rsUsed >= params.rsSize)
            return;
        if (in.isLoad() && lqUsed >= params.lqSize)
            return;
        if (in.isStore() && sqUsed >= params.sqSize)
            return;

        InFlight f;
        f.seq = seq;
        f.u = &trace.uops[seq];
        f.src1Seq = in.src1 != isa::REG_ZERO
            ? renameMap[size_t(in.src1)] : -1;
        f.src2Seq = in.src2 != isa::REG_ZERO
            ? renameMap[size_t(in.src2)] : -1;
        if (in.isCondBranch())
            f.mispredicted = bpred.predict(u.pc) != u.taken;
        for (isa::Reg w : in.writeSet())
            renameMap[size_t(w)] = int64_t(seq);

        f.inRs = true;
        ++rsUsed;
        if (in.isLoad())
            ++lqUsed;
        if (in.isStore())
            ++sqUsed;
        if (rob.empty())
            headSeq = seq;
        rob.push_back(f);
        fetchQueue.pop_front();
        --budget;
    }
}

void
Core::doIssue()
{
    int budget = params.issueWidth;
    int alu = params.intAlu, mul = params.intMul;
    int fpalu = params.fpAlu, fpmul = params.fpMul;
    int mem_ports = params.memPorts;

    for (InFlight &f : rob) {
        if (budget <= 0)
            break;
        if (!f.inRs || f.issued)
            continue;
        const Instruction &in = f.u->instr;

        // Operand readiness: memory ops need the address operand only
        // (store data is captured on the side), others need all sources.
        bool ready;
        if (in.isMem()) {
            ready = producerReady(f.src1Seq);
        } else {
            ready = producerReady(f.src1Seq) && producerReady(f.src2Seq);
        }
        if (!ready)
            continue;

        const FuClass cls = fuClassOf(in);
        int lat = params.aluLat;
        switch (cls) {
          case FuClass::IntAlu:
            if (alu <= 0)
                continue;
            --alu;
            lat = params.aluLat;
            break;
          case FuClass::IntMul:
            if (mul <= 0)
                continue;
            --mul;
            lat = params.mulLat;
            break;
          case FuClass::IntDiv:
            if (divBusyUntil > cycle)
                continue;
            divBusyUntil = cycle + uint64_t(params.divLat);
            lat = params.divLat;
            break;
          case FuClass::FpAlu:
            if (fpalu <= 0)
                continue;
            --fpalu;
            lat = params.fpAluLat;
            break;
          case FuClass::FpMul:
            if (fpmul <= 0)
                continue;
            --fpmul;
            lat = params.fpMulLat;
            break;
          case FuClass::FpDiv:
            if (fpDivBusyUntil > cycle)
                continue;
            fpDivBusyUntil = cycle + uint64_t(params.fpDivLat);
            lat = params.fpDivLat;
            break;
          case FuClass::Mem:
            if (mem_ports <= 0)
                continue;
            --mem_ports;
            lat = params.agenLat;
            break;
        }

        f.issued = true;
        f.inRs = false;
        --rsUsed;
        --budget;
        if (in.isMem())
            f.addrReadyCycle = cycle + uint64_t(lat);
        else
            f.readyCycle = cycle + uint64_t(lat);
    }
}

void
Core::doComplete()
{
    for (InFlight &f : rob) {
        const Instruction &in = f.u->instr;

        // Capture store data as soon as its producer resolves.
        if (in.isStore() && !f.dataReady && producerReady(f.src2Seq)) {
            f.dataReady = true;
            f.dataReadyCycle = cycle;
        }

        // Address generation completion + ordering scans.
        if (in.isMem() && f.issued && !f.addrReady
            && f.addrReadyCycle <= cycle) {
            f.addrReady = true;
        }
        if (in.isMem() && f.addrReady && !f.addrScanDone) {
            f.addrScanDone = true;
            const bool scan = in.isStore() || policy.saLdLdKills;
            if (scan) {
                for (InFlight &y : rob) {
                    if (y.seq <= f.seq || !y.u->instr.isLoad())
                        continue;
                    if (!y.memIssued || y.u->addr != f.u->addr)
                        continue;
                    if (y.fwdStoreSeq >= int64_t(f.seq))
                        continue; // sourced by a younger store: exempt
                    if (statsArmed) {
                        if (in.isStore())
                            ++stats.memOrderSquashes;
                        else
                            ++stats.saLdLdKills;
                    }
                    squash(y.seq);
                    return; // ROB changed: stop this cycle's scan
                }
            }
        }

        if (f.execDone)
            continue;

        if (in.isStore()) {
            if (f.addrReady && f.dataReady) {
                f.execDone = true;
                f.readyCycle = std::max(f.addrReadyCycle,
                                        f.dataReadyCycle);
            }
            continue;
        }
        if (in.isLoad()) {
            if (f.memIssued && f.readyCycle <= cycle)
                f.execDone = true;
            continue;
        }
        if (f.issued && f.readyCycle <= cycle) {
            f.execDone = true;
            if (in.isCondBranch()) {
                bpred.update(f.u->pc, f.u->taken);
                if (f.mispredicted) {
                    if (statsArmed)
                        ++stats.branchMispredicts;
                    squash(f.seq + 1);
                    return;
                }
            }
        }
    }
}

bool
Core::tryIssueLoad(InFlight &ld)
{
    // 1. Search older stores, youngest first: in-flight SQ ...  A
    // matching store is the prospective data source whether or not its
    // data is ready yet; the SALdLd stall check below needs it either
    // way.
    int64_t fwd_seq = -1;       // prospective forwarding source
    bool store_blocked = false; // must wait for that source
    for (auto it = rob.rbegin(); it != rob.rend(); ++it) {
        const InFlight &s = *it;
        if (s.seq >= ld.seq || !s.u->instr.isStore())
            continue;
        if (!s.addrReady) {
            if (!params.speculativeLoadIssue) {
                store_blocked = true; // wait for all older addresses
                break;
            }
            continue;             // speculate past the unknown address
        }
        if (s.u->addr != ld.u->addr)
            continue;
        fwd_seq = int64_t(s.seq);
        store_blocked = !params.storeForwarding || !s.dataReady;
        break;
    }

    // ... then the post-commit store buffer.
    if (fwd_seq < 0 && !store_blocked) {
        for (auto it = sbQueue.rbegin(); it != sbQueue.rend(); ++it) {
            if (it->addr != ld.u->addr)
                continue;
            fwd_seq = it->seq;
            store_blocked = !params.storeForwarding;
            break;
        }
    }

    // 2. Same-address load-load stall (GAM and ARM).
    if (policy.saLdLdStalls) {
        for (const InFlight &o : rob) {
            if (o.seq >= ld.seq)
                break;
            if (!o.u->instr.isLoad() || o.memIssued || !o.addrReady)
                continue;
            if (o.u->addr != ld.u->addr)
                continue;
            if (fwd_seq >= 0 && fwd_seq > int64_t(o.seq))
                continue; // forwarding from a younger store: exempt
            if (!ld.stallCounted && statsArmed) {
                ++stats.saLdLdStalls;
            }
            ld.stallCounted = true;
            return false;
        }
    }

    if (store_blocked)
        return false; // wait for the source store's data (or drain)

    // 3. Store-to-load forwarding.
    if (fwd_seq >= 0) {
        ld.fwdStoreSeq = fwd_seq;
        ld.readyCycle = cycle + uint64_t(params.fwdLat);
        ld.memIssued = true;
        if (statsArmed)
            ++stats.storeForwards;
        return true;
    }

    // 4. Load-load forwarding (Alpha* only).
    if (policy.llForwarding) {
        for (auto it = rob.rbegin(); it != rob.rend(); ++it) {
            const InFlight &o = *it;
            if (o.seq >= ld.seq || !o.u->instr.isLoad())
                continue;
            if (!o.execDone || o.u->addr != ld.u->addr)
                continue;
            ld.fwdStoreSeq = o.fwdStoreSeq;
            ld.readyCycle = cycle + uint64_t(params.fwdLat);
            ld.memIssued = true;
            if (statsArmed) {
                ++stats.llForwards;
                if (!memsys.probeL1D(ld.u->addr))
                    ++stats.llForwardsSavedMiss;
            }
            return true;
        }
    }

    // 5. Read the cache hierarchy.
    ld.fwdStoreSeq = -1;
    ld.readyCycle = memsys.load(ld.u->addr, cycle);
    ld.memIssued = true;
    return true;
}

void
Core::doMemStage()
{
    // Drain the post-commit store buffer: one new cache write per cycle.
    if (!sbQueue.empty()) {
        PendingStore &head = sbQueue.front();
        if (!head.issuedToMem) {
            head.doneCycle = memsys.store(head.addr, cycle);
            head.issuedToMem = true;
        }
        if (head.doneCycle <= cycle) {
            sbQueue.pop_front();
            --sqUsed;
        }
    }

    // Give address-ready loads a data source (bounded cache ports).
    int cache_issues = params.memPorts;
    for (InFlight &f : rob) {
        if (cache_issues <= 0)
            break;
        if (!f.u->instr.isLoad() || !f.addrReady || f.memIssued)
            continue;
        if (tryIssueLoad(f)) {
            if (f.fwdStoreSeq == -1)
                --cache_issues;
        }
    }
}

void
Core::doCommit()
{
    int budget = params.commitWidth;
    while (budget > 0 && !rob.empty()) {
        InFlight &head = rob.front();
        if (!head.execDone || head.readyCycle > cycle)
            return;
        const Instruction &in = head.u->instr;

        if (!statsArmed && headSeq + 1 > warmupUops) {
            // Arm exact accounting at the warmup boundary.
            statsArmed = true;
            stats = SimStats{};
            statsStartCycle = cycle;
            l1dBase = memsys.l1d().stats();
        }
        if (statsArmed) {
            ++stats.committedUops;
            if (in.isCondBranch())
                ++stats.condBranches;
            if (in.isLoad())
                ++stats.loadsExecuted;
            if (in.isStore())
                ++stats.storesCommitted;
        }

        if (in.isLoad())
            --lqUsed;
        if (in.isStore())
            sbQueue.push_back({head.u->addr, head.u->value,
                               int64_t(head.seq)});
        rob.pop_front();
        ++headSeq;
        --budget;
    }
}

SimStats
Core::run(uint64_t warmup_uops, uint64_t max_cycles)
{
    warmupUops = std::min(warmup_uops, uint64_t(trace.uops.size()));
    statsArmed = warmupUops == 0;
    statsStartCycle = 0;
    l1dBase = memsys.l1d().stats();

    uint64_t last_commit_cycle = 0;
    uint64_t last_head = 0;
    while (headSeq < trace.uops.size() || !rob.empty()
           || !fetchQueue.empty() || fetchCursor < trace.uops.size()) {
        doCommit();
        doComplete();
        doMemStage();
        doIssue();
        doRename();
        doFetch();
        ++cycle;

        if (headSeq != last_head) {
            last_head = headSeq;
            last_commit_cycle = cycle;
        }
        GAM_ASSERT(cycle - last_commit_cycle < 200000,
                   "no forward progress at cycle %llu (head seq %llu)",
                   (unsigned long long)cycle, (unsigned long long)headSeq);
        if (cycle >= max_cycles)
            break;
    }

    stats.cycles = cycle - statsStartCycle;
    const auto &l1d = memsys.l1d().stats();
    stats.l1dLoadAccesses =
        l1d.demandLoadAccesses - l1dBase.demandLoadAccesses;
    stats.l1dLoadMisses = l1d.demandLoadMisses - l1dBase.demandLoadMisses;
    stats.l2Misses = memsys.l2().stats().misses;
    stats.l3Misses = memsys.l3().stats().misses;
    return stats;
}

} // namespace gam::sim
