/**
 * @file
 * Core configuration (paper Table I) and the per-model LSQ ordering
 * policy differences evaluated in Section V.
 */

#ifndef GAM_SIM_PARAMS_HH
#define GAM_SIM_PARAMS_HH

#include "model/kind.hh"

namespace gam::sim
{

/**
 * Out-of-order core parameters.  Defaults follow Table I: 4-wide
 * fetch/rename/commit, 6-wide issue, 192-entry ROB, 60-entry
 * reservation station, 72-entry load buffer, 42-entry store buffer
 * (holding both speculative and committed stores), and the listed
 * function units.
 */
struct CoreParams
{
    int fetchWidth = 4;
    int renameWidth = 4;
    int commitWidth = 4;
    int issueWidth = 6;

    int robSize = 192;
    int rsSize = 60;
    int lqSize = 72;
    int sqSize = 42;
    int fetchQueueSize = 32;

    /** Front-end refill bubble after any squash (redirect penalty). */
    int redirectPenalty = 10;

    int intAlu = 4;
    int intMul = 1;
    int intDiv = 1;
    int fpAlu = 2;
    int fpMul = 1;
    int fpDiv = 1;
    int memPorts = 2;

    int aluLat = 1;
    int mulLat = 3;
    int divLat = 20;
    int fpAluLat = 3;
    int fpMulLat = 5;
    int fpDivLat = 20;
    int agenLat = 1;
    /** Store-to-load (and load-to-load) forwarding latency. */
    int fwdLat = 1;

    /** gshare history/index bits. */
    int bpredBits = 12;

    /** Ablation: forward store data from the SB to younger loads. */
    bool storeForwarding = true;
    /** Ablation: issue loads past older stores with unknown addresses. */
    bool speculativeLoadIssue = true;
};

/**
 * The implementation differences between the four evaluated models
 * (Section V-A).  Everything else about the pipeline is identical.
 */
struct LsqPolicy
{
    /** GAM: a load resolving its address kills younger executed
     *  same-address loads that did not forward from a younger store. */
    bool saLdLdKills = false;
    /** GAM and ARM: a load ready to issue stalls behind an older
     *  unissued same-address load (unless forwarding exempts it). */
    bool saLdLdStalls = false;
    /** Alpha*: loads may forward from older executed loads. */
    bool llForwarding = false;

    static LsqPolicy
    forModel(model::ModelKind kind)
    {
        LsqPolicy p;
        switch (kind) {
          case model::ModelKind::GAM:
            p.saLdLdKills = true;
            p.saLdLdStalls = true;
            break;
          case model::ModelKind::ARM:
            // Optimistic ARM (paper Section V-A): stalls, no kills.
            p.saLdLdStalls = true;
            break;
          case model::ModelKind::AlphaStar:
            p.llForwarding = true;
            break;
          default: // GAM0 and anything else: no same-address policy
            break;
        }
        return p;
    }
};

} // namespace gam::sim

#endif // GAM_SIM_PARAMS_HH
