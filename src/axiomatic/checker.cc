#include "axiomatic/checker.hh"

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <set>

#include "base/hashing.hh"
#include "base/logging.hh"
#include "cat/rel.hh"
#include "isa/semantics.hh"
#include "model/ppo.hh"
#include "obs/trace.hh"

namespace gam::axiomatic
{

using isa::Addr;
using isa::Instruction;
using isa::Value;
using model::InitStore;
using model::StoreId;

namespace
{

/**
 * The hand-coded Figure-15 axioms as an incremental filter.
 *
 * The constraint graph of the classic reduction -- ppo edges, rf
 * edges, LoadValue (fr) edges and coherence edges -- is maintained as
 * a transitively-closed bitset reachability relation (cat::Rel).
 * Permutation-independent constraints are installed once per read-from
 * candidate in beginRf(); each coherence extension adds its co edge,
 * its newly-implied fr edges and the RMW atomicity check in
 * pushStore(), failing the instant an edge closes a cycle.  accept()
 * is then trivially true: a complete candidate that survived every
 * extension has an acyclic constraint graph, i.e. a witness mo exists.
 */
class BuiltinAxiomFilter final : public IncrementalFilter
{
  public:
    BuiltinAxiomFilter(model::ModelKind model, bool enforce_inst_order,
                       PpoCache *ppo_shapes = nullptr)
        : model(model), enforceInstOrder(enforce_inst_order),
          ppoShapes(ppo_shapes)
    {}

    bool
    beginRf(const CandidateExecution &cand) override
    {
        n = cand.events.size();
        reach = cat::Rel(n);
        snapshots.clear();
        nodeOfStore.clear();
        for (size_t v = 0; v < n; ++v)
            if (cand.events[v].isStore)
                nodeOfStore[cand.events[v].sid] = int(v);

        // ppo projected onto memory events (InstOrder axiom).
        if (enforceInstOrder) {
            for (size_t tid = 0; tid < cand.traces.size(); ++tid) {
                const model::Trace &trace = *cand.traces[tid];
                // Events carry their rf; rebuild the per-trace rf map
                // ppo computation expects (ARM's SALdLdARM reads it).
                model::RfMap rfTrace(trace.size(), InitStore);
                std::map<int, int> nodeAt; // traceIdx -> event index
                for (size_t v = 0; v < n; ++v) {
                    const CandidateEvent &ev = cand.events[v];
                    if (ev.tid != int(tid))
                        continue;
                    nodeAt[ev.traceIdx] = int(v);
                    if (ev.isLoad)
                        rfTrace[size_t(ev.traceIdx)] = ev.rf;
                }
                const std::vector<std::pair<size_t, size_t>> &ppo =
                    cachedPpoPairs(trace, tid, rfTrace);
                for (auto [i, j] : ppo) {
                    auto it1 = nodeAt.find(int(i));
                    auto it2 = nodeAt.find(int(j));
                    if (it1 == nodeAt.end() || it2 == nodeAt.end())
                        continue;
                    if (!addEdge(size_t(it1->second),
                                 size_t(it2->second)))
                        return false;
                }
            }
        }

        // Permutation-independent halves of LoadValue: the rf edge
        // itself, and -- for loads reading the initial memory -- the
        // requirement that *no* same-address store is po-before or
        // mo-before the load (the store *set* per address is fixed;
        // only its order varies).
        for (size_t l = 0; l < n; ++l) {
            const CandidateEvent &ld = cand.events[l];
            if (!ld.isLoad)
                continue;
            if (ld.rf == InitStore) {
                for (size_t s = 0; s < n; ++s) {
                    const CandidateEvent &st = cand.events[s];
                    if (!st.isStore || st.addr != ld.addr || s == l)
                        continue;
                    if (poBefore(cand, s, l))
                        return false; // rejected: C(L) nonempty
                    if (!addEdge(l, s))
                        return false;
                }
            } else {
                auto sit = nodeOfStore.find(ld.rf);
                GAM_ASSERT(sit != nodeOfStore.end(), "rf store missing");
                const size_t s = size_t(sit->second);
                if (!poBefore(cand, s, l) && !addEdge(s, l))
                    return false;
            }
        }
        return true;
    }

    bool
    pushStore(const CandidateExecution &cand, Addr addr,
              int eventIdx) override
    {
        snapshots.push_back(reach);
        const auto &p = cand.coOrder.at(addr);
        const size_t v = size_t(eventIdx);

        // Coherence edge from the previous store in this address's
        // order.
        if (p.size() >= 2
            && !addEdge(size_t(p[p.size() - 2]), v))
            return false;

        // Atomicity (Section III-C): an RMW's read source must be its
        // immediate coherence predecessor -- no store may slip between
        // the read and the write.
        const CandidateEvent &ev = cand.events[v];
        if (ev.isLoad && ev.isStore) {
            if (ev.rf == InitStore) {
                if (p.size() != 1)
                    return false; // something precedes the write
            } else {
                auto sit = nodeOfStore.find(ev.rf);
                GAM_ASSERT(sit != nodeOfStore.end(), "rf store missing");
                if (p.size() < 2 || p[p.size() - 2] != sit->second)
                    return false; // read and write not co-adjacent
            }
        }

        // LoadValue: every load whose source now precedes this store
        // in coherence must be mo-before it (fr), and must not be
        // po-after it.
        for (size_t l = 0; l < n; ++l) {
            const CandidateEvent &ld = cand.events[l];
            if (!ld.isLoad || ld.addr != addr || l == v
                || ld.rf == InitStore) // handled in beginRf
                continue;
            auto sit = nodeOfStore.find(ld.rf);
            GAM_ASSERT(sit != nodeOfStore.end(), "rf store missing");
            if (sit->second == eventIdx)
                continue; // stores after the source arrive later
            const bool source_placed_before =
                std::find(p.begin(), p.end() - 1, sit->second)
                != p.end() - 1;
            if (!source_placed_before)
                continue;
            if (poBefore(cand, v, l))
                return false; // rejected: a newer po-before store
            if (!addEdge(l, v))
                return false;
        }
        return true;
    }

    void
    popStore(const CandidateExecution &, Addr, int) override
    {
        reach = std::move(snapshots.back());
        snapshots.pop_back();
    }

    bool
    accept(const CandidateExecution &) override
    {
        // Every constraint was checked as it appeared.
        return true;
    }

  private:
    static bool
    poBefore(const CandidateExecution &cand, size_t a, size_t b)
    {
        return cand.events[a].tid == cand.events[b].tid
            && cand.events[a].traceIdx < cand.events[b].traceIdx;
    }

    /**
     * preservedProgramOrder() edges through the shared shape cache
     * (when the filter was given one): ppo depends on the executed
     * instruction sequence, the resolved addresses and the thread's
     * own read-from sources -- never on data values (model/ppo.cc
     * reads neither TraceInstr::value nor rmwStored) -- so the key
     * hashes exactly those.  The cache stores the materialized pair
     * list (the only form beginRf() consumes), so a hit also skips
     * Relation::pairs().  Without a cache, compute directly: the
     * un-batched pipeline's cost model is unchanged.
     */
    const std::vector<std::pair<size_t, size_t>> &
    cachedPpoPairs(const model::Trace &trace, size_t tid,
                   const model::RfMap &rfTrace)
    {
        if (!ppoShapes) {
            ppoScratch =
                model::preservedProgramOrder(trace, model, &rfTrace)
                    .pairs();
            return ppoScratch;
        }
        StateHasher h;
        h.add(uint64_t(model));
        h.add(uint64_t(tid));
        for (const model::TraceInstr &ti : trace) {
            h.add(uint64_t(ti.instr.op));
            h.add(uint64_t(ti.instr.dst));
            h.add(uint64_t(ti.instr.src1));
            h.add(uint64_t(ti.instr.src2));
            h.add(uint64_t(ti.instr.imm));
            h.add(uint64_t(ti.instr.fence));
            h.add(ti.isMem() ? uint64_t(ti.addr) + 1 : 0);
        }
        h.separator();
        for (model::StoreId s : rfTrace)
            h.add(uint64_t(uint32_t(s)));
        const uint64_t key = h.digest();
        auto it = ppoShapes->find(key);
        if (it == ppoShapes->end()) {
            it = ppoShapes
                     ->emplace(key, model::preservedProgramOrder(
                                        trace, model, &rfTrace)
                                        .pairs())
                     .first;
        }
        return it->second;
    }

    /**
     * Add u -> v to the closed reachability relation.  False when the
     * edge closes a cycle (including u == v); the relation is left
     * unchanged in that case only up to the snapshot discipline --
     * pushStore() snapshots before any mutation, so a failed push is
     * rolled back wholesale by popStore().
     */
    bool
    addEdge(size_t u, size_t v)
    {
        if (u == v || reach.test(v, u))
            return false;
        if (reach.test(u, v))
            return true; // already implied
        for (size_t x = 0; x < n; ++x) {
            if (x != u && !reach.test(x, u))
                continue;
            reach.orRowInto(v, x);
            reach.set(x, v);
        }
        return true;
    }

    const model::ModelKind model;
    const bool enforceInstOrder;
    PpoCache *ppoShapes;
    /** Holds the uncached ppo edges so cachedPpoPairs() can return a
     *  reference on both paths; valid until the next call. */
    std::vector<std::pair<size_t, size_t>> ppoScratch;

    size_t n = 0;
    cat::Rel reach;
    std::vector<cat::Rel> snapshots;
    std::map<StoreId, int> nodeOfStore;
};

} // anonymous namespace

Checker::Checker(const litmus::LitmusTest &test, model::ModelKind model,
                 Options options)
    : test(test), model(model), options(std::move(options))
{
    // Screen programmatic misuse eagerly, exactly as the pre-refactor
    // constructor did (CandidateBuilder repeats this screen, but each
    // enumerate*() call constructs its own -- too late for a
    // constructor-time contract and too wasteful to run here in full).
    for (size_t tid = 0; tid < test.threads.size(); ++tid) {
        const auto &prog = test.threads[tid];
        GAM_ASSERT(prog.size() < 1024, "thread too long for StoreId");
        for (size_t idx = 0; idx < prog.size(); ++idx) {
            const Instruction &instr = prog[idx];
            if (instr.isBranch()
                && instr.imm <= static_cast<int64_t>(idx)) {
                fatal("axiomatic checker requires forward branches "
                      "(thread %zu instr %zu)", tid, idx);
            }
        }
    }
}

litmus::OutcomeSet
Checker::enumerate()
{
    GAM_TRACE_SCOPE("axiomatic.enumerate");
    CandidateEnumerator enumerator(test, options);
    litmus::OutcomeSet outcomes = enumerator.run([&] {
        return std::make_unique<BuiltinAxiomFilter>(
            model, options.enforceInstOrder);
    });
    _stats = enumerator.stats();
    return outcomes;
}

litmus::OutcomeSet
Checker::enumerateOn(CandidateEnumerator &enumerator)
{
    GAM_TRACE_SCOPE("axiomatic.enumerate");
    litmus::OutcomeSet outcomes = enumerator.run([&] {
        return std::make_unique<BuiltinAxiomFilter>(
            model, options.enforceInstOrder);
    });
    _stats = enumerator.stats();
    return outcomes;
}

litmus::OutcomeSet
Checker::enumerateFiltered(const CandidateFilter &accept)
{
    GAM_ASSERT(accept != nullptr, "enumerateFiltered: null filter");
    CandidateEnumerator enumerator(test, options);
    litmus::OutcomeSet outcomes = enumerator.runAll(accept);
    _stats = enumerator.stats();
    return outcomes;
}

litmus::OutcomeSet
Checker::enumerateIncremental(const FilterFactory &factory)
{
    GAM_ASSERT(factory != nullptr, "enumerateIncremental: null factory");
    CandidateEnumerator enumerator(test, options);
    litmus::OutcomeSet outcomes = enumerator.run(factory);
    _stats = enumerator.stats();
    return outcomes;
}

litmus::OutcomeSet
Checker::enumerateLegacy()
{
    return enumerateLegacyImpl(nullptr);
}

litmus::OutcomeSet
Checker::enumerateFilteredLegacy(const CandidateFilter &accept)
{
    GAM_ASSERT(accept != nullptr, "enumerateFilteredLegacy: null filter");
    return enumerateLegacyImpl(&accept);
}

bool
Checker::isAllowed()
{
    // Seed undetermined-value candidates with the condition's constants
    // so OOTA-style conditions are decided by the axioms.
    options = withConditionSeeds(test, std::move(options));
    litmus::OutcomeSet outcomes = enumerate();
    for (const auto &o : outcomes)
        if (test.conditionMatches(o))
            return true;
    return false;
}

// ------------------------------------------------- legacy enumeration
//
// The pre-incremental pipeline, preserved verbatim: every complete
// (rf, co) candidate is materialized, the whole constraint graph is
// built, and acyclicity is tested at the end.  Differential tests
// assert outcome-set equality against the pruned search above, and
// bench_candidate_prune measures what the pruning buys.

void
Checker::checkCandidate(
    const std::vector<CandidateBuilder::ThreadExec> &exec,
    litmus::OutcomeSet &outcomes, const CandidateFilter *accept,
    uint64_t rfEpoch)
{
    // ---- Collect memory events and per-thread ppo. ----
    std::vector<CandidateEvent> events;
    collectCandidateEvents(exec, events);
    std::map<std::pair<int, int>, int> nodeOf; // (tid, traceIdx) -> node
    for (size_t v = 0; v < events.size(); ++v)
        nodeOf[{events[v].tid, events[v].traceIdx}] = int(v);
    const size_t n = events.size();

    // The committed traces, for filters that derive their own
    // relations (dependencies, fences) from the instruction stream.
    std::vector<const model::Trace *> traces;
    for (const auto &te : exec)
        traces.push_back(&te.trace);

    // ppo projected onto memory events (built-in axiom path only; a
    // filter embodies its own model).
    std::vector<std::pair<int, int>> ppoEdges;
    if (!accept && options.enforceInstOrder) {
        for (size_t tid = 0; tid < exec.size(); ++tid) {
            const auto &te = exec[tid];
            model::Relation ppo = model::preservedProgramOrder(
                te.trace, model, &te.rfTrace);
            for (auto [i, j] : ppo.pairs()) {
                auto it1 = nodeOf.find({int(tid), int(i)});
                auto it2 = nodeOf.find({int(tid), int(j)});
                if (it1 != nodeOf.end() && it2 != nodeOf.end())
                    ppoEdges.emplace_back(it1->second, it2->second);
            }
        }
    }

    // Group stores by address for coherence-order enumeration.
    std::map<Addr, std::vector<int>> storesByAddr;
    for (size_t v = 0; v < n; ++v)
        if (events[v].isStore)
            storesByAddr[events[v].addr].push_back(int(v));

    // Map store id -> node.
    std::map<StoreId, int> nodeOfStore;
    for (size_t v = 0; v < n; ++v)
        if (events[v].isStore)
            nodeOfStore[events[v].sid] = int(v);

    auto po_before = [&](int s, int l) {
        return events[s].tid == events[l].tid
            && events[s].traceIdx < events[l].traceIdx;
    };

    // ---- Enumerate coherence orders (one permutation per address). ----
    std::vector<Addr> addrs;
    for (auto &[a, v] : storesByAddr)
        addrs.push_back(a);

    std::map<Addr, std::vector<int>> perm = storesByAddr;

    // ---- Accepted-candidate outcome recording (both paths). ----
    auto record = [&]() {
        ++_stats.accepted;
        recordCandidateOutcome(test, exec, events, perm, outcomes);
    };

    auto try_combo = [&]() {
        ++_stats.coCandidates;

        if (accept) {
            const CandidateExecution candidate{events, perm, traces,
                                               rfEpoch};
            if ((*accept)(candidate))
                record();
            return;
        }

        std::vector<std::vector<int>> adj(n);
        auto edge = [&](int u, int v) { adj[size_t(u)].push_back(v); };

        for (auto [u, v] : ppoEdges)
            edge(u, v);
        // Coherence edges (consecutive).
        for (const auto &a : addrs) {
            const auto &p = perm[a];
            for (size_t i = 0; i + 1 < p.size(); ++i)
                edge(p[i], p[i + 1]);
        }
        // Atomicity (Section III-C): an RMW's read source must be its
        // immediate coherence predecessor -- no store may slip between
        // the read and the write.
        for (size_t v = 0; v < n; ++v) {
            const CandidateEvent &ev = events[v];
            if (!(ev.isLoad && ev.isStore))
                continue;
            const auto &p = perm[ev.addr];
            size_t pos = 0;
            while (pos < p.size() && p[pos] != int(v))
                ++pos;
            GAM_ASSERT(pos < p.size(), "RMW missing from its co");
            if (ev.rf == InitStore) {
                if (pos != 0)
                    return; // something intervened before the write
            } else {
                auto sit = nodeOfStore.find(ev.rf);
                GAM_ASSERT(sit != nodeOfStore.end(), "rf store missing");
                if (pos == 0 || p[pos - 1] != sit->second)
                    return; // read and write are not co-adjacent
            }
        }

        // rf and fr edges per the LoadValue axiom (the load side of
        // every event, including RMWs; an RMW's own store side is
        // always coherence-after its read and is skipped).
        for (size_t v = 0; v < n; ++v) {
            const CandidateEvent &ld = events[v];
            if (!ld.isLoad)
                continue;
            const auto &p = perm[ld.addr];
            if (ld.rf == InitStore) {
                // No store may be mo-before or po-before this load.
                for (int s : p) {
                    if (s == int(v))
                        continue; // an RMW's own write
                    if (po_before(s, int(v)))
                        return; // rejected: C(L) nonempty
                    edge(int(v), s);
                }
            } else {
                auto sit = nodeOfStore.find(ld.rf);
                GAM_ASSERT(sit != nodeOfStore.end(), "rf store missing");
                int s = sit->second;
                if (!po_before(s, int(v)))
                    edge(s, int(v));
                // Stores coherence-after the source must be outside C(L).
                bool after = false;
                for (int s2 : p) {
                    if (s2 == s) {
                        after = true;
                        continue;
                    }
                    if (!after || s2 == int(v))
                        continue;
                    if (po_before(s2, int(v)))
                        return; // rejected: a newer po-before store exists
                    edge(int(v), s2);
                }
            }
        }

        // Acyclicity via iterative DFS.
        std::vector<int> state(n, 0);
        std::vector<int> stack;
        for (size_t root = 0; root < n; ++root) {
            if (state[root])
                continue;
            stack.push_back(int(root));
            while (!stack.empty()) {
                int u = stack.back();
                if (state[u] == 0) {
                    state[u] = 1;
                    for (int w : adj[size_t(u)]) {
                        if (state[w] == 1)
                            return; // cycle: candidate rejected
                        if (state[w] == 0)
                            stack.push_back(w);
                    }
                } else {
                    if (state[u] == 1)
                        state[u] = 2;
                    stack.pop_back();
                }
            }
        }

        // ---- Accepted by the built-in axioms. ----
        record();
    };

    // Recursive product of per-address permutations.
    std::function<void(size_t)> rec = [&](size_t ai) {
        if (ai == addrs.size()) {
            try_combo();
            return;
        }
        auto &p = perm[addrs[ai]];
        std::sort(p.begin(), p.end());
        do {
            rec(ai + 1);
        } while (std::next_permutation(p.begin(), p.end()));
    };
    rec(0);
}

litmus::OutcomeSet
Checker::enumerateLegacyImpl(const CandidateFilter *accept)
{
    _stats = CheckerStats{};
    litmus::OutcomeSet outcomes;

    CandidateBuilder builder(test, options);
    const size_t nloads = builder.loadSites().size();
    std::vector<StoreId> rf(nloads, InitStore);
    // Choice list per load: InitStore plus every store site.
    std::vector<StoreId> choices;
    choices.push_back(InitStore);
    choices.insert(choices.end(), builder.storeSites().begin(),
                   builder.storeSites().end());

    std::vector<size_t> odo(nloads, 0);
    for (;;) {
        for (size_t i = 0; i < nloads; ++i)
            rf[i] = choices[odo[i]];

        ++_stats.rfCandidates;
        std::vector<CandidateBuilder::ThreadExec> exec;
        if (builder.computeExecution(rf, exec)) {
            ++_stats.valueConsistent;
            checkCandidate(exec, outcomes, accept,
                           _stats.valueConsistent);
        } else {
            ++_stats.valueCycles;
        }

        // Advance the odometer.
        size_t pos = 0;
        while (pos < nloads) {
            if (++odo[pos] < choices.size())
                break;
            odo[pos] = 0;
            ++pos;
        }
        if (pos == nloads || nloads == 0)
            break;
    }
    return outcomes;
}

// --------------------------------------------- fused multi-model pass

std::vector<litmus::OutcomeSet>
enumerateModels(CandidateEnumerator &enumerator,
                const std::vector<model::ModelKind> &models,
                bool enforceInstOrder,
                std::vector<CheckerStats> *stats, PpoCache *ppoShapes)
{
    GAM_TRACE_SCOPE("axiomatic.enumerate_multi");
    std::vector<FilterFactory> factories;
    factories.reserve(models.size());
    for (model::ModelKind m : models) {
        factories.push_back([m, enforceInstOrder, ppoShapes] {
            return std::make_unique<BuiltinAxiomFilter>(
                m, enforceInstOrder, ppoShapes);
        });
    }
    return enumerator.runMulti(factories, stats);
}

} // namespace gam::axiomatic
