#include "axiomatic/checker.hh"

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <set>

#include "base/logging.hh"
#include "isa/semantics.hh"
#include "model/ppo.hh"

namespace gam::axiomatic
{

using isa::Addr;
using isa::Instruction;
using isa::Value;
using model::InitStore;
using model::StoreId;

/** Per-thread symbolic execution state for one rf candidate. */
struct Checker::ThreadExec
{
    /** Reached the end of the program (no value-blocked branch). */
    bool complete = false;
    /** Static indices of executed instructions, in order. */
    std::vector<int> executedIdx;
    /** Committed trace (parallel to executedIdx). */
    model::Trace trace;
    /** rf per trace entry (loads only; InitStore elsewhere). */
    model::RfMap rfTrace;
    /** Final register values (all known when complete). */
    std::array<std::optional<Value>, isa::NUM_REGS> regs;
};

namespace
{

/** Alignment-tolerant initial-memory read (bogus rf guesses may compute
 *  unaligned addresses; those candidates are discarded later). */
Value
initRead(const isa::MemImage &mem, Addr addr)
{
    if (addr & 7)
        return 0;
    return mem.load(addr);
}

/** Per static site: resolved address / data where known. */
struct SiteVals
{
    bool executed = false;
    std::optional<Value> addr;  // memory instructions
    std::optional<Value> data;  // store data or load(ed) value
    std::optional<Value> data2; // RMWs: the value written to memory
};

} // anonymous namespace

Checker::Checker(const litmus::LitmusTest &test, model::ModelKind model,
                 Options options)
    : test(test), model(model), options(std::move(options))
{
    for (size_t tid = 0; tid < test.threads.size(); ++tid) {
        const auto &prog = test.threads[tid];
        GAM_ASSERT(prog.size() < 1024, "thread too long for StoreId");
        for (size_t idx = 0; idx < prog.size(); ++idx) {
            const Instruction &instr = prog[idx];
            // Untrusted tests (parsed or generated) are screened by
            // LitmusTest::check() before reaching any engine; this
            // fatal() only fires on programmatic misuse.
            if (instr.isBranch() && instr.imm <= static_cast<int64_t>(idx))
                fatal("axiomatic checker requires forward branches "
                      "(thread %zu instr %zu)", tid, idx);
            if (instr.isLoad())
                loadSites.emplace_back(static_cast<int>(tid),
                                       static_cast<int>(idx));
            if (instr.isStore())
                storeSites.push_back(storeId(static_cast<int>(tid),
                                             static_cast<int>(idx)));
        }
    }
}

bool
Checker::computeExecution(const std::vector<StoreId> &rf,
                          const std::vector<Value> &seeds,
                          std::vector<ThreadExec> &out) const
{
    const size_t nthreads = test.threads.size();

    // rf lookup: (tid, idx) -> ordinal in loadSites.
    auto load_ordinal = [&](int tid, int idx) -> int {
        for (size_t i = 0; i < loadSites.size(); ++i)
            if (loadSites[i].first == tid && loadSites[i].second == idx)
                return static_cast<int>(i);
        panic("load site (%d, %d) not found", tid, idx);
    };

    // Site tables, keyed by (tid, static idx).
    std::vector<std::vector<SiteVals>> sites(nthreads);
    for (size_t tid = 0; tid < nthreads; ++tid)
        sites[tid].resize(test.threads[tid].size());

    // The value a store site supplies to readers: an RMW supplies what
    // it wrote, not what it loaded.
    auto supplied_value = [&](StoreId src) -> std::optional<Value> {
        auto [stid, sidx] = storeIdParts(src);
        const SiteVals &sv = sites[size_t(stid)][size_t(sidx)];
        return test.threads[size_t(stid)][size_t(sidx)].isRmw()
            ? sv.data2 : sv.data;
    };

    // Seed overrides for value-cycle recovery: load site -> value.
    std::map<std::pair<int, int>, Value> seedOverride;

    auto run_fixpoint = [&]() -> bool {
        // Iterate thread executions until site values stabilise.
        size_t total_instrs = 0;
        for (const auto &prog : test.threads)
            total_instrs += prog.size();
        for (size_t round = 0; round <= total_instrs + 1; ++round) {
            bool changed = false;
            for (size_t tid = 0; tid < nthreads; ++tid) {
                const auto &prog = test.threads[tid];
                std::array<std::optional<Value>, isa::NUM_REGS> regs;
                regs.fill(Value{0});
                std::vector<SiteVals> next(prog.size());

                auto get = [&](isa::Reg r) { return regs[size_t(r)]; };
                auto set = [&](isa::Reg r, std::optional<Value> v) {
                    if (r != isa::REG_ZERO)
                        regs[size_t(r)] = v;
                };

                size_t idx = 0;
                while (idx < prog.size()) {
                    const Instruction &in = prog[idx];
                    SiteVals &sv = next[idx];
                    sv.executed = true;
                    if (in.isRegToReg()) {
                        auto a = get(in.src1), b = get(in.src2);
                        if (a && b)
                            set(in.dst, isa::evalRegToReg(in, *a, *b));
                        else
                            set(in.dst, std::nullopt);
                    } else if (in.isRmw()) {
                        auto base = get(in.src1);
                        if (base)
                            sv.addr = isa::effectiveAddr(in, *base);
                        StoreId src =
                            rf[load_ordinal(int(tid), int(idx))];
                        std::optional<Value> old;
                        auto seeded = seedOverride.find({int(tid),
                                                         int(idx)});
                        if (seeded != seedOverride.end()) {
                            old = seeded->second;
                        } else if (src == InitStore) {
                            if (sv.addr)
                                old = initRead(test.initialMem, *sv.addr);
                        } else {
                            old = supplied_value(src);
                        }
                        sv.data = old; // the loaded value
                        auto operand = get(in.src2);
                        if (old && operand) {
                            sv.data2 =
                                isa::evalRmwStored(in, *old, *operand);
                        }
                        set(in.dst, old);
                    } else if (in.isLoad()) {
                        auto base = get(in.src1);
                        if (base)
                            sv.addr = isa::effectiveAddr(in, *base);
                        StoreId src =
                            rf[load_ordinal(int(tid), int(idx))];
                        std::optional<Value> v;
                        auto seeded = seedOverride.find({int(tid),
                                                         int(idx)});
                        if (seeded != seedOverride.end()) {
                            v = seeded->second;
                        } else if (src == InitStore) {
                            if (sv.addr)
                                v = initRead(test.initialMem, *sv.addr);
                        } else {
                            v = supplied_value(src);
                        }
                        sv.data = v;
                        set(in.dst, v);
                    } else if (in.isStore()) {
                        auto base = get(in.src1);
                        if (base)
                            sv.addr = isa::effectiveAddr(in, *base);
                        sv.data = get(in.src2);
                    } else if (in.isBranch()) {
                        auto a = get(in.src1), b = get(in.src2);
                        if (in.op != isa::Opcode::JMP && !(a && b)) {
                            // Direction unknown: stop here this round.
                            sv.executed = true;
                            break;
                        }
                        Value va = a ? *a : 0, vb = b ? *b : 0;
                        if (isa::evalBranchTaken(in, va, vb)) {
                            idx = size_t(in.imm);
                            continue;
                        }
                    } else if (in.op == isa::Opcode::HALT) {
                        break;
                    }
                    ++idx;
                }

                for (size_t i = 0; i < prog.size(); ++i) {
                    if (next[i].executed != sites[tid][i].executed
                        || next[i].addr != sites[tid][i].addr
                        || next[i].data != sites[tid][i].data
                        || next[i].data2 != sites[tid][i].data2) {
                        changed = true;
                    }
                }
                sites[tid] = std::move(next);
            }
            if (!changed)
                return true;
        }
        return true; // stabilised by instruction-count bound
    };

    run_fixpoint();

    // Identify executed loads whose value is still undetermined.
    auto undetermined_loads = [&]() {
        std::vector<std::pair<int, int>> blocked;
        for (auto [tid, idx] : loadSites) {
            const SiteVals &sv = sites[size_t(tid)][size_t(idx)];
            if (sv.executed && !sv.data)
                blocked.emplace_back(tid, idx);
        }
        return blocked;
    };

    if (!undetermined_loads().empty() && !seeds.empty()) {
        // Try each seed value for the whole undetermined set; keep the
        // first consistent assignment.
        for (Value seed : seeds) {
            seedOverride.clear();
            for (auto [tid, idx] : undetermined_loads())
                seedOverride[{tid, idx}] = seed;
            run_fixpoint();
            // Consistency: every seeded load's rf source must actually
            // supply the seeded value.
            bool ok = true;
            for (auto [tid, idx] : loadSites) {
                const SiteVals &sv = sites[size_t(tid)][size_t(idx)];
                if (!sv.executed)
                    continue;
                StoreId src = rf[load_ordinal(tid, idx)];
                if (!sv.addr || !sv.data) {
                    ok = false;
                    break;
                }
                std::optional<Value> expect;
                if (src == InitStore) {
                    expect = initRead(test.initialMem, *sv.addr);
                } else {
                    expect = supplied_value(src);
                }
                if (!expect || *expect != *sv.data) {
                    ok = false;
                    break;
                }
            }
            if (ok)
                break;
            seedOverride.clear();
        }
    }

    // Final validation and trace construction.
    out.clear();
    out.resize(nthreads);
    for (size_t tid = 0; tid < nthreads; ++tid) {
        const auto &prog = test.threads[tid];
        ThreadExec &te = out[tid];
        te.regs.fill(Value{0});

        size_t idx = 0;
        bool complete = false;
        while (true) {
            if (idx >= prog.size()) {
                complete = true;
                break;
            }
            const Instruction &in = prog[idx];
            const SiteVals &sv = sites[tid][idx];
            if (!sv.executed)
                break;

            model::TraceInstr ti;
            ti.instr = in;
            StoreId rf_src = InitStore;
            size_t next_idx = idx + 1;

            if (in.isRegToReg()) {
                auto a = te.regs[size_t(in.src1)];
                auto b = te.regs[size_t(in.src2)];
                if (!(a && b))
                    return false;
                if (in.dst != isa::REG_ZERO)
                    te.regs[size_t(in.dst)] =
                        isa::evalRegToReg(in, *a, *b);
            } else if (in.isMem()) {
                if (!sv.addr || !sv.data)
                    return false; // undetermined value cycle remains
                if (in.isRmw() && !sv.data2)
                    return false;
                if (*sv.addr & 7)
                    return false; // bogus rf guess computed a bad address
                ti.addr = *sv.addr;
                ti.value = *sv.data;
                if (in.isRmw())
                    ti.rmwStored = *sv.data2;
                if (in.isLoad()) {
                    rf_src = rf[load_ordinal(int(tid), int(idx))];
                    if (in.dst != isa::REG_ZERO)
                        te.regs[size_t(in.dst)] = *sv.data;
                }
            } else if (in.isBranch()) {
                auto a = te.regs[size_t(in.src1)];
                auto b = te.regs[size_t(in.src2)];
                if (in.op != isa::Opcode::JMP && !(a && b))
                    return false;
                if (isa::evalBranchTaken(in, a ? *a : 0, b ? *b : 0))
                    next_idx = size_t(in.imm);
            } else if (in.op == isa::Opcode::HALT) {
                te.executedIdx.push_back(int(idx));
                te.trace.push_back(ti);
                te.rfTrace.push_back(InitStore);
                complete = true;
                break;
            }

            te.executedIdx.push_back(int(idx));
            te.trace.push_back(ti);
            te.rfTrace.push_back(rf_src);
            idx = next_idx;
        }
        if (!complete)
            return false;
        te.complete = true;
    }

    // rf validity: executed loads read executed same-address stores;
    // unexecuted loads must use the canonical InitStore choice.
    for (size_t i = 0; i < loadSites.size(); ++i) {
        auto [tid, idx] = loadSites[i];
        const SiteVals &sv = sites[size_t(tid)][size_t(idx)];
        if (!sv.executed) {
            if (rf[i] != InitStore)
                return false; // canonical duplicate
            continue;
        }
        if (rf[i] == InitStore) {
            // (Relevant after seeding:) the load's value must really be
            // the initial memory value of its address.
            if (*sv.data != initRead(test.initialMem, *sv.addr))
                return false;
            continue;
        }
        auto [stid, sidx] = storeIdParts(rf[i]);
        const SiteVals &ss = sites[size_t(stid)][size_t(sidx)];
        if (!ss.executed || !ss.addr || *ss.addr != *sv.addr)
            return false;
        auto supplied = supplied_value(rf[i]);
        if (!supplied || *supplied != *sv.data)
            return false;
    }
    return true;
}

void
Checker::checkCandidate(const std::vector<ThreadExec> &exec,
                        const std::vector<StoreId> & /* rf */,
                        litmus::OutcomeSet &outcomes,
                        const CandidateFilter *accept, uint64_t rfEpoch)
{
    // ---- Collect memory events and per-thread ppo. ----
    std::vector<CandidateEvent> events;
    std::map<std::pair<int, int>, int> nodeOf; // (tid, traceIdx) -> node

    for (size_t tid = 0; tid < exec.size(); ++tid) {
        const auto &te = exec[tid];
        for (size_t k = 0; k < te.trace.size(); ++k) {
            const auto &ti = te.trace[k];
            if (!ti.isMem())
                continue;
            CandidateEvent ev;
            ev.tid = int(tid);
            ev.traceIdx = int(k);
            ev.isStore = ti.isStore();
            ev.isLoad = ti.isLoad();
            ev.addr = ti.addr;
            ev.value = ti.instr.isRmw() ? ti.rmwStored : ti.value;
            ev.sid = ti.isStore()
                ? storeId(int(tid), te.executedIdx[k]) : InitStore;
            ev.rf = ti.isLoad() ? te.rfTrace[k] : InitStore;
            nodeOf[{int(tid), int(k)}] = int(events.size());
            events.push_back(ev);
        }
    }
    const size_t n = events.size();

    // The committed traces, for filters that derive their own
    // relations (dependencies, fences) from the instruction stream.
    std::vector<const model::Trace *> traces;
    for (const auto &te : exec)
        traces.push_back(&te.trace);

    // ppo projected onto memory events (built-in axiom path only; a
    // filter embodies its own model).
    std::vector<std::pair<int, int>> ppoEdges;
    if (!accept && options.enforceInstOrder) {
        for (size_t tid = 0; tid < exec.size(); ++tid) {
            const auto &te = exec[tid];
            model::Relation ppo = model::preservedProgramOrder(
                te.trace, model, &te.rfTrace);
            for (auto [i, j] : ppo.pairs()) {
                auto it1 = nodeOf.find({int(tid), int(i)});
                auto it2 = nodeOf.find({int(tid), int(j)});
                if (it1 != nodeOf.end() && it2 != nodeOf.end())
                    ppoEdges.emplace_back(it1->second, it2->second);
            }
        }
    }

    // Group stores by address for coherence-order enumeration.
    std::map<Addr, std::vector<int>> storesByAddr;
    for (size_t v = 0; v < n; ++v)
        if (events[v].isStore)
            storesByAddr[events[v].addr].push_back(int(v));

    // Map store id -> node.
    std::map<StoreId, int> nodeOfStore;
    for (size_t v = 0; v < n; ++v)
        if (events[v].isStore)
            nodeOfStore[events[v].sid] = int(v);

    auto po_before = [&](int s, int l) {
        return events[s].tid == events[l].tid
            && events[s].traceIdx < events[l].traceIdx;
    };

    // ---- Enumerate coherence orders (one permutation per address). ----
    std::vector<Addr> addrs;
    for (auto &[a, v] : storesByAddr)
        addrs.push_back(a);

    std::map<Addr, std::vector<int>> perm = storesByAddr;

    // ---- Accepted-candidate outcome recording (both paths). ----
    auto record = [&]() {
        ++_stats.accepted;
        litmus::Outcome outcome;
        for (auto [tid, reg] : test.observedRegs) {
            auto v = exec[size_t(tid)].regs[size_t(reg)];
            GAM_ASSERT(v.has_value(), "unresolved observed register");
            outcome.regs.push_back({tid, reg, *v});
        }
        for (Addr a : test.addressUniverse) {
            Value v = initRead(test.initialMem, a);
            auto it = perm.find(a);
            if (it != perm.end() && !it->second.empty())
                v = events[size_t(it->second.back())].value;
            outcome.mem.push_back({a, v});
        }
        outcome.canonicalize();
        outcomes.insert(outcome);
    };

    auto try_combo = [&]() {
        ++_stats.coCandidates;

        if (accept) {
            const CandidateExecution candidate{events, perm, traces,
                                               rfEpoch};
            if ((*accept)(candidate))
                record();
            return;
        }

        std::vector<std::vector<int>> adj(n);
        auto edge = [&](int u, int v) { adj[size_t(u)].push_back(v); };

        for (auto [u, v] : ppoEdges)
            edge(u, v);
        // Coherence edges (consecutive).
        for (const auto &a : addrs) {
            const auto &p = perm[a];
            for (size_t i = 0; i + 1 < p.size(); ++i)
                edge(p[i], p[i + 1]);
        }
        // Atomicity (Section III-C): an RMW's read source must be its
        // immediate coherence predecessor -- no store may slip between
        // the read and the write.
        for (size_t v = 0; v < n; ++v) {
            const CandidateEvent &ev = events[v];
            if (!(ev.isLoad && ev.isStore))
                continue;
            const auto &p = perm[ev.addr];
            size_t pos = 0;
            while (pos < p.size() && p[pos] != int(v))
                ++pos;
            GAM_ASSERT(pos < p.size(), "RMW missing from its co");
            if (ev.rf == InitStore) {
                if (pos != 0)
                    return; // something intervened before the write
            } else {
                auto sit = nodeOfStore.find(ev.rf);
                GAM_ASSERT(sit != nodeOfStore.end(), "rf store missing");
                if (pos == 0 || p[pos - 1] != sit->second)
                    return; // read and write are not co-adjacent
            }
        }

        // rf and fr edges per the LoadValue axiom (the load side of
        // every event, including RMWs; an RMW's own store side is
        // always coherence-after its read and is skipped).
        for (size_t v = 0; v < n; ++v) {
            const CandidateEvent &ld = events[v];
            if (!ld.isLoad)
                continue;
            const auto &p = perm[ld.addr];
            if (ld.rf == InitStore) {
                // No store may be mo-before or po-before this load.
                for (int s : p) {
                    if (s == int(v))
                        continue; // an RMW's own write
                    if (po_before(s, int(v)))
                        return; // rejected: C(L) nonempty
                    edge(int(v), s);
                }
            } else {
                auto sit = nodeOfStore.find(ld.rf);
                GAM_ASSERT(sit != nodeOfStore.end(), "rf store missing");
                int s = sit->second;
                if (!po_before(s, int(v)))
                    edge(s, int(v));
                // Stores coherence-after the source must be outside C(L).
                bool after = false;
                for (int s2 : p) {
                    if (s2 == s) {
                        after = true;
                        continue;
                    }
                    if (!after || s2 == int(v))
                        continue;
                    if (po_before(s2, int(v)))
                        return; // rejected: a newer po-before store exists
                    edge(int(v), s2);
                }
            }
        }

        // Acyclicity via iterative DFS.
        std::vector<int> state(n, 0);
        std::vector<int> stack;
        for (size_t root = 0; root < n; ++root) {
            if (state[root])
                continue;
            stack.push_back(int(root));
            while (!stack.empty()) {
                int u = stack.back();
                if (state[u] == 0) {
                    state[u] = 1;
                    for (int w : adj[size_t(u)]) {
                        if (state[w] == 1)
                            return; // cycle: candidate rejected
                        if (state[w] == 0)
                            stack.push_back(w);
                    }
                } else {
                    if (state[u] == 1)
                        state[u] = 2;
                    stack.pop_back();
                }
            }
        }

        // ---- Accepted by the built-in axioms. ----
        record();
    };

    // Recursive product of per-address permutations.
    std::function<void(size_t)> rec = [&](size_t ai) {
        if (ai == addrs.size()) {
            try_combo();
            return;
        }
        auto &p = perm[addrs[ai]];
        std::sort(p.begin(), p.end());
        do {
            rec(ai + 1);
        } while (std::next_permutation(p.begin(), p.end()));
    };
    rec(0);
}

litmus::OutcomeSet
Checker::enumerate()
{
    return enumerateImpl(nullptr);
}

litmus::OutcomeSet
Checker::enumerateFiltered(const CandidateFilter &accept)
{
    GAM_ASSERT(accept != nullptr, "enumerateFiltered: null filter");
    return enumerateImpl(&accept);
}

litmus::OutcomeSet
Checker::enumerateImpl(const CandidateFilter *accept)
{
    _stats = CheckerStats{};
    litmus::OutcomeSet outcomes;

    const size_t nloads = loadSites.size();
    std::vector<StoreId> rf(nloads, InitStore);
    // Choice list per load: InitStore plus every store site.
    std::vector<StoreId> choices;
    choices.push_back(InitStore);
    choices.insert(choices.end(), storeSites.begin(), storeSites.end());

    std::vector<size_t> odo(nloads, 0);
    for (;;) {
        for (size_t i = 0; i < nloads; ++i)
            rf[i] = choices[odo[i]];

        ++_stats.rfCandidates;
        std::vector<ThreadExec> exec;
        if (computeExecution(rf, options.seedValues, exec)) {
            ++_stats.valueConsistent;
            checkCandidate(exec, rf, outcomes, accept,
                           _stats.valueConsistent);
        } else {
            ++_stats.valueCycles;
        }

        // Advance the odometer.
        size_t pos = 0;
        while (pos < nloads) {
            if (++odo[pos] < choices.size())
                break;
            odo[pos] = 0;
            ++pos;
        }
        if (pos == nloads || nloads == 0)
            break;
    }
    return outcomes;
}

Options
withConditionSeeds(const litmus::LitmusTest &test, Options options)
{
    if (options.seedValues.empty()) {
        std::set<Value> seeds;
        for (const auto &rc : test.regCond)
            seeds.insert(rc.value);
        for (const auto &mc : test.memCond)
            seeds.insert(mc.value);
        options.seedValues.assign(seeds.begin(), seeds.end());
    }
    return options;
}

bool
Checker::isAllowed()
{
    // Seed undetermined-value candidates with the condition's constants
    // so OOTA-style conditions are decided by the axioms.
    options = withConditionSeeds(test, std::move(options));
    litmus::OutcomeSet outcomes = enumerate();
    for (const auto &o : outcomes)
        if (test.conditionMatches(o))
            return true;
    return false;
}

} // namespace gam::axiomatic
