#include "axiomatic/enumerate.hh"

#include <algorithm>
#include <cstddef>
#include <set>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "isa/semantics.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace gam::axiomatic
{

using isa::Addr;
using isa::Instruction;
using isa::Value;
using model::InitStore;
using model::StoreId;

isa::Value
initialMemValue(const isa::MemImage &mem, Addr addr)
{
    if (addr & 7)
        return 0;
    return mem.load(addr);
}

void
CheckerStats::merge(const CheckerStats &other)
{
    rfCandidates += other.rfCandidates;
    valueConsistent += other.valueConsistent;
    coCandidates += other.coCandidates;
    accepted += other.accepted;
    valueCycles += other.valueCycles;
    rfStaticSkipped += other.rfStaticSkipped;
    rfPruned += other.rfPruned;
    partialsPruned += other.partialsPruned;
    subtreesSkipped += other.subtreesSkipped;
    maxBacktrackDepth =
        std::max(maxBacktrackDepth, other.maxBacktrackDepth);
}

Options
withConditionSeeds(const litmus::LitmusTest &test, Options options)
{
    if (options.seedValues.empty()) {
        std::set<Value> seeds;
        for (const auto &rc : test.regCond)
            seeds.insert(rc.value);
        for (const auto &mc : test.memCond)
            seeds.insert(mc.value);
        options.seedValues.assign(seeds.begin(), seeds.end());
    }
    return options;
}

namespace
{

/** Per static site: resolved address / data where known. */
struct SiteVals
{
    bool executed = false;
    std::optional<Value> addr;  // memory instructions
    std::optional<Value> data;  // store data or load(ed) value
    std::optional<Value> data2; // RMWs: the value written to memory
};

/** a * b, saturating at UINT64_MAX (subtree-size accounting). */
uint64_t
satMul(uint64_t a, uint64_t b)
{
    if (a != 0 && b > ~uint64_t(0) / a)
        return ~uint64_t(0);
    return a * b;
}

/** a + b, saturating. */
uint64_t
satAdd(uint64_t a, uint64_t b)
{
    return b > ~uint64_t(0) - a ? ~uint64_t(0) : a + b;
}

/** n!, saturating. */
uint64_t
satFactorial(uint64_t n)
{
    uint64_t f = 1;
    for (uint64_t k = 2; k <= n; ++k)
        f = satMul(f, k);
    return f;
}

} // anonymous namespace

// ---------------------------------------------------- CandidateBuilder

CandidateBuilder::CandidateBuilder(const litmus::LitmusTest &test,
                                   Options options)
    : _test(test), _options(std::move(options))
{
    for (size_t tid = 0; tid < test.threads.size(); ++tid) {
        const auto &prog = test.threads[tid];
        GAM_ASSERT(prog.size() < 1024, "thread too long for StoreId");
        for (size_t idx = 0; idx < prog.size(); ++idx) {
            const Instruction &instr = prog[idx];
            // Untrusted tests (parsed or generated) are screened by
            // LitmusTest::check() before reaching any engine; this
            // fatal() only fires on programmatic misuse.
            if (instr.isBranch() && instr.imm <= static_cast<int64_t>(idx))
                fatal("axiomatic checker requires forward branches "
                      "(thread %zu instr %zu)", tid, idx);
            if (instr.isLoad())
                _loadSites.emplace_back(static_cast<int>(tid),
                                        static_cast<int>(idx));
            if (instr.isStore())
                _storeSites.push_back(storeId(static_cast<int>(tid),
                                              static_cast<int>(idx)));
        }
    }
    computeStaticFeasibility();
}

void
CandidateBuilder::computeStaticFeasibility()
{
    // Per-site address when it is a function of constants only: such
    // an address is the same in every execution in which the site
    // executes, so a load whose constant address differs from a
    // store's constant address can never read from it.  Loaded values
    // are unknown, and the walk stops at the first branch whose
    // direction depends on one (everything after keeps an unknown
    // address) -- conservative, but enough to collapse the read-from
    // space of the common litmus shape where addresses come from
    // constant preludes.
    //
    // This walk is a deliberately separate abstract interpreter from
    // computeExecution()'s run_fixpoint below (unknown load values,
    // single prefix, no rf): keep their opcode dispatch in sync when
    // the ISA changes.  Drift is unsound only in the skipping
    // direction and shows up immediately as an outcome-set difference
    // in tests/enumerate_test.cc's pruned-vs-legacy parity suites.
    std::vector<std::vector<std::optional<Value>>> staticAddr(
        _test.threads.size());
    for (size_t tid = 0; tid < _test.threads.size(); ++tid) {
        const auto &prog = _test.threads[tid];
        auto &addrs = staticAddr[tid];
        addrs.assign(prog.size(), std::nullopt);

        std::array<std::optional<Value>, isa::NUM_REGS> regs;
        regs.fill(Value{0});
        auto get = [&](isa::Reg r) { return regs[size_t(r)]; };
        auto set = [&](isa::Reg r, std::optional<Value> v) {
            if (r != isa::REG_ZERO)
                regs[size_t(r)] = v;
        };

        size_t idx = 0;
        while (idx < prog.size()) {
            const Instruction &in = prog[idx];
            if (in.isRegToReg()) {
                auto a = get(in.src1), b = get(in.src2);
                set(in.dst, a && b
                    ? std::optional(isa::evalRegToReg(in, *a, *b))
                    : std::nullopt);
            } else if (in.isMem()) {
                if (auto base = get(in.src1))
                    addrs[idx] = isa::effectiveAddr(in, *base);
                if (in.isLoad())
                    set(in.dst, std::nullopt);
            } else if (in.isBranch()) {
                bool taken;
                if (in.op == isa::Opcode::JMP) {
                    taken = true;
                } else if (in.src1 == in.src2) {
                    // x ? x is value-independent: BEQ/BGE taken,
                    // BNE/BLT fall through.
                    taken = in.op == isa::Opcode::BEQ
                        || in.op == isa::Opcode::BGE;
                } else if (auto a = get(in.src1), b = get(in.src2);
                           a && b) {
                    taken = isa::evalBranchTaken(in, *a, *b);
                } else {
                    break; // direction value-dependent: stop the walk
                }
                if (taken) {
                    idx = size_t(in.imm);
                    continue;
                }
            } else if (in.op == isa::Opcode::HALT) {
                break;
            }
            ++idx;
        }
    }

    auto addrOf = [&](StoreId sid) {
        auto [tid, idx] = storeIdParts(sid);
        return staticAddr[size_t(tid)][size_t(idx)];
    };

    _rfChoices.resize(_loadSites.size());
    uint64_t full = 1, feasible = 1;
    for (size_t i = 0; i < _loadSites.size(); ++i) {
        auto [tid, idx] = _loadSites[i];
        const auto loadAddr = staticAddr[size_t(tid)][size_t(idx)];
        auto &choices = _rfChoices[i];
        choices.push_back(InitStore);
        for (StoreId sid : _storeSites) {
            const auto storeAddr = addrOf(sid);
            if (loadAddr && storeAddr && *loadAddr != *storeAddr)
                continue; // provably different addresses
            choices.push_back(sid);
        }
        full = satMul(full, uint64_t(_storeSites.size()) + 1);
        feasible = satMul(feasible, uint64_t(choices.size()));
    }
    _rfStaticSkipped = full - feasible;
}

bool
CandidateBuilder::computeExecution(const std::vector<StoreId> &rf,
                                   std::vector<ThreadExec> &out) const
{
    const size_t nthreads = _test.threads.size();
    const std::vector<Value> &seeds = _options.seedValues;

    // rf lookup: (tid, idx) -> ordinal in loadSites.
    auto load_ordinal = [&](int tid, int idx) -> int {
        for (size_t i = 0; i < _loadSites.size(); ++i)
            if (_loadSites[i].first == tid
                && _loadSites[i].second == idx)
                return static_cast<int>(i);
        panic("load site (%d, %d) not found", tid, idx);
    };

    // Site tables, keyed by (tid, static idx).
    std::vector<std::vector<SiteVals>> sites(nthreads);
    for (size_t tid = 0; tid < nthreads; ++tid)
        sites[tid].resize(_test.threads[tid].size());

    // The value a store site supplies to readers: an RMW supplies what
    // it wrote, not what it loaded.
    auto supplied_value = [&](StoreId src) -> std::optional<Value> {
        auto [stid, sidx] = storeIdParts(src);
        const SiteVals &sv = sites[size_t(stid)][size_t(sidx)];
        return _test.threads[size_t(stid)][size_t(sidx)].isRmw()
            ? sv.data2 : sv.data;
    };

    // Seed overrides for value-cycle recovery: load site -> value.
    std::map<std::pair<int, int>, Value> seedOverride;

    auto run_fixpoint = [&]() -> bool {
        // Iterate thread executions until site values stabilise.
        size_t total_instrs = 0;
        for (const auto &prog : _test.threads)
            total_instrs += prog.size();
        for (size_t round = 0; round <= total_instrs + 1; ++round) {
            bool changed = false;
            for (size_t tid = 0; tid < nthreads; ++tid) {
                const auto &prog = _test.threads[tid];
                std::array<std::optional<Value>, isa::NUM_REGS> regs;
                regs.fill(Value{0});
                std::vector<SiteVals> next(prog.size());

                auto get = [&](isa::Reg r) { return regs[size_t(r)]; };
                auto set = [&](isa::Reg r, std::optional<Value> v) {
                    if (r != isa::REG_ZERO)
                        regs[size_t(r)] = v;
                };

                size_t idx = 0;
                while (idx < prog.size()) {
                    const Instruction &in = prog[idx];
                    SiteVals &sv = next[idx];
                    sv.executed = true;
                    if (in.isRegToReg()) {
                        auto a = get(in.src1), b = get(in.src2);
                        if (a && b)
                            set(in.dst, isa::evalRegToReg(in, *a, *b));
                        else
                            set(in.dst, std::nullopt);
                    } else if (in.isRmw()) {
                        auto base = get(in.src1);
                        if (base)
                            sv.addr = isa::effectiveAddr(in, *base);
                        StoreId src =
                            rf[load_ordinal(int(tid), int(idx))];
                        std::optional<Value> old;
                        auto seeded = seedOverride.find({int(tid),
                                                         int(idx)});
                        if (seeded != seedOverride.end()) {
                            old = seeded->second;
                        } else if (src == InitStore) {
                            if (sv.addr)
                                old = initialMemValue(_test.initialMem,
                                                      *sv.addr);
                        } else {
                            old = supplied_value(src);
                        }
                        sv.data = old; // the loaded value
                        auto operand = get(in.src2);
                        if (old && operand) {
                            sv.data2 =
                                isa::evalRmwStored(in, *old, *operand);
                        }
                        set(in.dst, old);
                    } else if (in.isLoad()) {
                        auto base = get(in.src1);
                        if (base)
                            sv.addr = isa::effectiveAddr(in, *base);
                        StoreId src =
                            rf[load_ordinal(int(tid), int(idx))];
                        std::optional<Value> v;
                        auto seeded = seedOverride.find({int(tid),
                                                         int(idx)});
                        if (seeded != seedOverride.end()) {
                            v = seeded->second;
                        } else if (src == InitStore) {
                            if (sv.addr)
                                v = initialMemValue(_test.initialMem,
                                                    *sv.addr);
                        } else {
                            v = supplied_value(src);
                        }
                        sv.data = v;
                        set(in.dst, v);
                    } else if (in.isStore()) {
                        auto base = get(in.src1);
                        if (base)
                            sv.addr = isa::effectiveAddr(in, *base);
                        sv.data = get(in.src2);
                    } else if (in.isBranch()) {
                        auto a = get(in.src1), b = get(in.src2);
                        if (in.op != isa::Opcode::JMP && !(a && b)) {
                            // Direction unknown: stop here this round.
                            sv.executed = true;
                            break;
                        }
                        Value va = a ? *a : 0, vb = b ? *b : 0;
                        if (isa::evalBranchTaken(in, va, vb)) {
                            idx = size_t(in.imm);
                            continue;
                        }
                    } else if (in.op == isa::Opcode::HALT) {
                        break;
                    }
                    ++idx;
                }

                for (size_t i = 0; i < prog.size(); ++i) {
                    if (next[i].executed != sites[tid][i].executed
                        || next[i].addr != sites[tid][i].addr
                        || next[i].data != sites[tid][i].data
                        || next[i].data2 != sites[tid][i].data2) {
                        changed = true;
                    }
                }
                sites[tid] = std::move(next);
            }
            if (!changed)
                return true;
        }
        return true; // stabilised by instruction-count bound
    };

    run_fixpoint();

    // Identify executed loads whose value is still undetermined.
    auto undetermined_loads = [&]() {
        std::vector<std::pair<int, int>> blocked;
        for (auto [tid, idx] : _loadSites) {
            const SiteVals &sv = sites[size_t(tid)][size_t(idx)];
            if (sv.executed && !sv.data)
                blocked.emplace_back(tid, idx);
        }
        return blocked;
    };

    if (!undetermined_loads().empty() && !seeds.empty()) {
        // Try each seed value for the whole undetermined set; keep the
        // first consistent assignment.
        for (Value seed : seeds) {
            seedOverride.clear();
            for (auto [tid, idx] : undetermined_loads())
                seedOverride[{tid, idx}] = seed;
            run_fixpoint();
            // Consistency: every seeded load's rf source must actually
            // supply the seeded value.
            bool ok = true;
            for (auto [tid, idx] : _loadSites) {
                const SiteVals &sv = sites[size_t(tid)][size_t(idx)];
                if (!sv.executed)
                    continue;
                StoreId src = rf[load_ordinal(tid, idx)];
                if (!sv.addr || !sv.data) {
                    ok = false;
                    break;
                }
                std::optional<Value> expect;
                if (src == InitStore) {
                    expect = initialMemValue(_test.initialMem, *sv.addr);
                } else {
                    expect = supplied_value(src);
                }
                if (!expect || *expect != *sv.data) {
                    ok = false;
                    break;
                }
            }
            if (ok)
                break;
            seedOverride.clear();
        }
    }

    // Final validation and trace construction.
    out.clear();
    out.resize(nthreads);
    for (size_t tid = 0; tid < nthreads; ++tid) {
        const auto &prog = _test.threads[tid];
        ThreadExec &te = out[tid];
        te.regs.fill(Value{0});

        size_t idx = 0;
        bool complete = false;
        while (true) {
            if (idx >= prog.size()) {
                complete = true;
                break;
            }
            const Instruction &in = prog[idx];
            const SiteVals &sv = sites[tid][idx];
            if (!sv.executed)
                break;

            model::TraceInstr ti;
            ti.instr = in;
            StoreId rf_src = InitStore;
            size_t next_idx = idx + 1;

            if (in.isRegToReg()) {
                auto a = te.regs[size_t(in.src1)];
                auto b = te.regs[size_t(in.src2)];
                if (!(a && b))
                    return false;
                if (in.dst != isa::REG_ZERO)
                    te.regs[size_t(in.dst)] =
                        isa::evalRegToReg(in, *a, *b);
            } else if (in.isMem()) {
                if (!sv.addr || !sv.data)
                    return false; // undetermined value cycle remains
                if (in.isRmw() && !sv.data2)
                    return false;
                if (*sv.addr & 7)
                    return false; // bogus rf guess computed a bad address
                ti.addr = *sv.addr;
                ti.value = *sv.data;
                if (in.isRmw())
                    ti.rmwStored = *sv.data2;
                if (in.isLoad()) {
                    rf_src = rf[load_ordinal(int(tid), int(idx))];
                    if (in.dst != isa::REG_ZERO)
                        te.regs[size_t(in.dst)] = *sv.data;
                }
            } else if (in.isBranch()) {
                auto a = te.regs[size_t(in.src1)];
                auto b = te.regs[size_t(in.src2)];
                if (in.op != isa::Opcode::JMP && !(a && b))
                    return false;
                if (isa::evalBranchTaken(in, a ? *a : 0, b ? *b : 0))
                    next_idx = size_t(in.imm);
            } else if (in.op == isa::Opcode::HALT) {
                te.executedIdx.push_back(int(idx));
                te.trace.push_back(ti);
                te.rfTrace.push_back(InitStore);
                complete = true;
                break;
            }

            te.executedIdx.push_back(int(idx));
            te.trace.push_back(ti);
            te.rfTrace.push_back(rf_src);
            idx = next_idx;
        }
        if (!complete)
            return false;
        te.complete = true;
    }

    // rf validity: executed loads read executed same-address stores;
    // unexecuted loads must use the canonical InitStore choice.
    for (size_t i = 0; i < _loadSites.size(); ++i) {
        auto [tid, idx] = _loadSites[i];
        const SiteVals &sv = sites[size_t(tid)][size_t(idx)];
        if (!sv.executed) {
            if (rf[i] != InitStore)
                return false; // canonical duplicate
            continue;
        }
        if (rf[i] == InitStore) {
            // (Relevant after seeding:) the load's value must really be
            // the initial memory value of its address.
            if (*sv.data != initialMemValue(_test.initialMem, *sv.addr))
                return false;
            continue;
        }
        auto [stid, sidx] = storeIdParts(rf[i]);
        const SiteVals &ss = sites[size_t(stid)][size_t(sidx)];
        if (!ss.executed || !ss.addr || *ss.addr != *sv.addr)
            return false;
        auto supplied = supplied_value(rf[i]);
        if (!supplied || *supplied != *sv.data)
            return false;
    }
    return true;
}

// -------------------------------------------------- CandidateEnumerator

/** Everything one worker carries through one rf candidate's search. */
struct CandidateEnumerator::SearchCtx
{
    IncrementalFilter &filter;
    litmus::OutcomeSet &outcomes;
    CheckerStats &stats;
    const litmus::LitmusTest &test;

    std::vector<CandidateBuilder::ThreadExec> exec{};
    uint64_t rfEpoch = 0;

    // Derived per rf candidate.
    std::vector<CandidateEvent> events{};
    std::vector<const model::Trace *> traces{};
    std::vector<Addr> addrs{};                       ///< search order
    std::map<Addr, std::vector<int>> storesByAddr{}; ///< full store sets
    std::map<Addr, std::vector<int>> coOrder{};      ///< growing prefixes
    /** Leaves under a whole address suffix: suffixLeaves[i] =
     *  prod_{j >= i} |stores(addrs[j])|! (suffixLeaves[naddrs] = 1). */
    std::vector<uint64_t> suffixLeaves{};
    /** Unplaced stores per address (parallel to addrs). */
    std::vector<std::vector<int>> remaining{};
    uint64_t placedTotal = 0;
};

CandidateEnumerator::CandidateEnumerator(const litmus::LitmusTest &test,
                                         Options options)
    : _builder(test, std::move(options))
{
}

void
collectCandidateEvents(
    const std::vector<CandidateBuilder::ThreadExec> &exec,
    std::vector<CandidateEvent> &out)
{
    out.clear();
    for (size_t tid = 0; tid < exec.size(); ++tid) {
        const auto &te = exec[tid];
        for (size_t k = 0; k < te.trace.size(); ++k) {
            const auto &ti = te.trace[k];
            if (!ti.isMem())
                continue;
            CandidateEvent ev;
            ev.tid = int(tid);
            ev.traceIdx = int(k);
            ev.isStore = ti.isStore();
            ev.isLoad = ti.isLoad();
            ev.addr = ti.addr;
            ev.value = ti.instr.isRmw() ? ti.rmwStored : ti.value;
            ev.sid = ti.isStore()
                ? storeId(int(tid), te.executedIdx[k]) : InitStore;
            ev.rf = ti.isLoad() ? te.rfTrace[k] : InitStore;
            out.push_back(ev);
        }
    }
}

void
recordCandidateOutcome(
    const litmus::LitmusTest &test,
    const std::vector<CandidateBuilder::ThreadExec> &exec,
    const std::vector<CandidateEvent> &events,
    const std::map<Addr, std::vector<int>> &coOrder,
    litmus::OutcomeSet &outcomes)
{
    litmus::Outcome outcome;
    for (auto [tid, reg] : test.observedRegs) {
        auto v = exec[size_t(tid)].regs[size_t(reg)];
        GAM_ASSERT(v.has_value(), "unresolved observed register");
        outcome.regs.push_back({tid, reg, *v});
    }
    for (Addr a : test.addressUniverse) {
        Value v = initialMemValue(test.initialMem, a);
        auto it = coOrder.find(a);
        if (it != coOrder.end() && !it->second.empty())
            v = events[size_t(it->second.back())].value;
        outcome.mem.push_back({a, v});
    }
    outcome.canonicalize();
    outcomes.insert(outcome);
}

void
CandidateEnumerator::searchCoherence(SearchCtx &ctx) const
{
    // ---- Collect memory events (thread-major, trace order). ----
    ctx.traces.clear();
    ctx.addrs.clear();
    ctx.storesByAddr.clear();
    ctx.coOrder.clear();
    ctx.placedTotal = 0;

    collectCandidateEvents(ctx.exec, ctx.events);
    for (const auto &te : ctx.exec)
        ctx.traces.push_back(&te.trace);

    for (size_t v = 0; v < ctx.events.size(); ++v)
        if (ctx.events[v].isStore)
            ctx.storesByAddr[ctx.events[v].addr].push_back(int(v));
    for (auto &[a, stores] : ctx.storesByAddr) {
        ctx.addrs.push_back(a);
        ctx.coOrder[a]; // empty prefix
        (void)stores;
    }

    ctx.suffixLeaves.assign(ctx.addrs.size() + 1, 1);
    for (size_t i = ctx.addrs.size(); i-- > 0;) {
        ctx.suffixLeaves[i] = satMul(
            ctx.suffixLeaves[i + 1],
            satFactorial(ctx.storesByAddr[ctx.addrs[i]].size()));
    }

    const CandidateExecution partial{ctx.events, ctx.coOrder,
                                     ctx.traces, ctx.rfEpoch,
                                     /*complete=*/false};

    if (!ctx.filter.beginRf(partial)) {
        ++ctx.stats.rfPruned;
        ctx.stats.subtreesSkipped =
            satAdd(ctx.stats.subtreesSkipped, ctx.suffixLeaves[0]);
        return;
    }

    // ---- Depth-first coherence construction with backtracking:
    // extend one address's order a store at a time, let the filter
    // veto the subtree, move to the next address when exhausted. ----
    ctx.remaining.resize(ctx.addrs.size());
    for (size_t i = 0; i < ctx.addrs.size(); ++i)
        ctx.remaining[i] = ctx.storesByAddr[ctx.addrs[i]];
    descendCoherence(ctx, 0, partial);
}

void
CandidateEnumerator::recordOutcome(SearchCtx &ctx) const
{
    ++ctx.stats.accepted;
    recordCandidateOutcome(ctx.test, ctx.exec, ctx.events, ctx.coOrder,
                           ctx.outcomes);
}

void
CandidateEnumerator::descendCoherence(
    SearchCtx &ctx, size_t ai, const CandidateExecution &partial) const
{
    if (ai == ctx.addrs.size()) {
        ++ctx.stats.coCandidates;
        const CandidateExecution complete{ctx.events, ctx.coOrder,
                                          ctx.traces, ctx.rfEpoch,
                                          /*complete=*/true};
        if (ctx.filter.accept(complete))
            recordOutcome(ctx);
        return;
    }
    const Addr a = ctx.addrs[ai];
    auto &rem = ctx.remaining[ai];
    if (rem.empty()) {
        descendCoherence(ctx, ai + 1, partial);
        return;
    }
    auto &placed = ctx.coOrder[a];
    for (size_t k = 0; k < rem.size(); ++k) {
        const int v = rem[k];
        rem.erase(rem.begin() + std::ptrdiff_t(k));
        placed.push_back(v);
        ++ctx.placedTotal;
        if (ctx.filter.pushStore(partial, a, v)) {
            descendCoherence(ctx, ai, partial);
        } else {
            ++ctx.stats.partialsPruned;
            ctx.stats.subtreesSkipped = satAdd(
                ctx.stats.subtreesSkipped,
                satMul(satFactorial(rem.size()),
                       ctx.suffixLeaves[ai + 1]));
            ctx.stats.maxBacktrackDepth = std::max(
                ctx.stats.maxBacktrackDepth, ctx.placedTotal);
        }
        ctx.filter.popStore(partial, a, v);
        --ctx.placedTotal;
        placed.pop_back();
        rem.insert(rem.begin() + std::ptrdiff_t(k), v);
    }
}

void
CandidateEnumerator::searchRfRange(size_t prefixLoads,
                                   uint64_t prefixIndex,
                                   IncrementalFilter &filter,
                                   litmus::OutcomeSet &outcomes,
                                   CheckerStats &stats) const
{
    const auto &choices = _builder.rfChoices();
    const size_t nloads = choices.size();

    std::vector<size_t> odo(nloads, 0);
    uint64_t rem = prefixIndex;
    for (size_t i = 0; i < prefixLoads; ++i) {
        odo[i] = size_t(rem % choices[i].size());
        rem /= choices[i].size();
    }

    std::vector<StoreId> rf(nloads, InitStore);
    // One context for the whole range: searchCoherence() clears the
    // per-candidate pieces, so the buffers are reused across the
    // millions of rf maps a campaign iterates.
    SearchCtx ctx{.filter = filter,
                  .outcomes = outcomes,
                  .stats = stats,
                  .test = _builder.test()};
    GAM_TRACE_SCOPE("enum.search");
    for (;;) {
        for (size_t i = 0; i < nloads; ++i)
            rf[i] = choices[i][odo[i]];

        ++stats.rfCandidates;
        ++ctx.rfEpoch;
        if (_builder.computeExecution(rf, ctx.exec)) {
            ++stats.valueConsistent;
            // The coherence-growth phase of this rf epoch: one span
            // per value-consistent rf map (tracing-disabled cost is a
            // relaxed load, far below the search work it brackets).
            obs::TraceSpan coSpan("enum.co_search");
            searchCoherence(ctx);
        } else {
            ++stats.valueCycles;
        }

        // Advance the odometer over the non-prefix loads.
        size_t pos = prefixLoads;
        while (pos < nloads) {
            if (++odo[pos] < choices[pos].size())
                break;
            odo[pos] = 0;
            ++pos;
        }
        if (pos == nloads)
            break;
    }
}

namespace
{

/**
 * Mirror one finished enumeration's counters into the global registry
 * (references cached: registration locks, increments are relaxed).
 */
void
reportEnumMetrics(const CheckerStats &s)
{
    static struct
    {
        obs::Counter &rfCandidates =
            obs::metrics().counter("enum.rf_candidates");
        obs::Counter &valueConsistent =
            obs::metrics().counter("enum.value_consistent");
        obs::Counter &coCandidates =
            obs::metrics().counter("enum.co_candidates");
        obs::Counter &accepted = obs::metrics().counter("enum.accepted");
        obs::Counter &partialsPruned =
            obs::metrics().counter("enum.partials_pruned");
        obs::Counter &runs = obs::metrics().counter("enum.runs");
    } m;
    m.rfCandidates.inc(s.rfCandidates);
    m.valueConsistent.inc(s.valueConsistent);
    m.coCandidates.inc(s.coCandidates);
    m.accepted.inc(s.accepted);
    m.partialsPruned.inc(s.partialsPruned);
    m.runs.inc();
}

} // anonymous namespace

litmus::OutcomeSet
CandidateEnumerator::run(const FilterFactory &factory)
{
    GAM_TRACE_SCOPE("enum.run");
    _stats = CheckerStats{};
    _stats.rfStaticSkipped = _builder.rfStaticSkipped();

    const auto &choices = _builder.rfChoices();
    unsigned threads = _builder.options().searchThreads;
    if (threads == 0)
        threads = ThreadPool::defaultThreadCount();

    // Split the search over leading read-from assignments: enough
    // top-level prefixes to keep the pool busy, but no more (every
    // prefix pays its own value-fixpoint runs).
    size_t prefixLoads = 0;
    uint64_t combos = 1;
    if (threads > 1) {
        while (prefixLoads < choices.size()
               && combos < uint64_t(threads) * 4) {
            combos = satMul(combos, choices[prefixLoads].size());
            ++prefixLoads;
        }
    }

    litmus::OutcomeSet outcomes;
    if (combos <= 1 || threads <= 1) {
        auto filter = factory();
        GAM_ASSERT(filter != nullptr, "null incremental filter");
        searchRfRange(0, 0, *filter, outcomes, _stats);
        reportEnumMetrics(_stats);
        return outcomes;
    }

    std::vector<litmus::OutcomeSet> sets(combos);
    std::vector<CheckerStats> stats(combos);
    ThreadPool pool(threads);
    pool.parallelFor(size_t(combos), [&](size_t i) {
        auto filter = factory();
        GAM_ASSERT(filter != nullptr, "null incremental filter");
        searchRfRange(prefixLoads, i, *filter, sets[i], stats[i]);
    });
    // Deterministic merge in prefix order (outcome sets are unordered,
    // but the counters must not depend on scheduling either).
    for (uint64_t i = 0; i < combos; ++i) {
        for (const auto &o : sets[i])
            outcomes.insert(o);
        _stats.merge(stats[i]);
    }
    reportEnumMetrics(_stats);
    return outcomes;
}

// ------------------------------------------------ multi-filter search
//
// One walk, N filters.  Each filter keeps a dormancy depth: -1 while
// live, the placedTotal of the push it vetoed otherwise (0 for a
// beginRf veto, which never revives mid-candidate).  A dormant filter
// sees no callbacks until the walk unwinds to its veto depth, where it
// receives the matching popStore and rejoins -- exactly the callback
// sequence its solo pruned search would have produced, which is what
// makes per-lane outcomes and counters identical to N run() calls.

/** Everything one runMulti() pass carries through the walk. */
struct CandidateEnumerator::MultiCtx
{
    std::vector<IncrementalFilter *> filters;
    std::vector<litmus::OutcomeSet> *outcomes;
    std::vector<CheckerStats> *lanes;
    /** Shared-walk counters (rf stream, fixpoint, leaves reached). */
    CheckerStats walk{};
    /** Dormancy depth per filter; -1 = live (see above). */
    std::vector<int64_t> dormantAt;
    const litmus::LitmusTest &test;

    std::vector<CandidateBuilder::ThreadExec> exec{};
    uint64_t rfEpoch = 0;

    // Derived per rf candidate (buffers reused across the stream).
    std::vector<CandidateEvent> events{};
    std::vector<const model::Trace *> traces{};
    std::vector<Addr> addrs{};
    std::map<Addr, std::vector<int>> storesByAddr{};
    std::map<Addr, std::vector<int>> coOrder{};
    std::vector<uint64_t> suffixLeaves{};
    std::vector<std::vector<int>> remaining{};
    uint64_t placedTotal = 0;
};

void
CandidateEnumerator::descendCoherenceMulti(
    MultiCtx &ctx, size_t ai, const CandidateExecution &partial) const
{
    const size_t nlanes = ctx.filters.size();
    if (ai == ctx.addrs.size()) {
        ++ctx.walk.coCandidates;
        const CandidateExecution complete{ctx.events, ctx.coOrder,
                                          ctx.traces, ctx.rfEpoch,
                                          /*complete=*/true};
        for (size_t i = 0; i < nlanes; ++i) {
            if (ctx.dormantAt[i] >= 0)
                continue;
            CheckerStats &lane = (*ctx.lanes)[i];
            ++lane.coCandidates;
            if (ctx.filters[i]->accept(complete)) {
                ++lane.accepted;
                recordCandidateOutcome(ctx.test, ctx.exec, ctx.events,
                                       ctx.coOrder,
                                       (*ctx.outcomes)[i]);
            }
        }
        return;
    }
    const Addr a = ctx.addrs[ai];
    auto &rem = ctx.remaining[ai];
    if (rem.empty()) {
        descendCoherenceMulti(ctx, ai + 1, partial);
        return;
    }
    auto &placed = ctx.coOrder[a];
    for (size_t k = 0; k < rem.size(); ++k) {
        const int v = rem[k];
        rem.erase(rem.begin() + std::ptrdiff_t(k));
        placed.push_back(v);
        ++ctx.placedTotal;
        size_t live = 0;
        for (size_t i = 0; i < nlanes; ++i) {
            if (ctx.dormantAt[i] >= 0)
                continue;
            if (ctx.filters[i]->pushStore(partial, a, v)) {
                ++live;
                continue;
            }
            // This lane's subtree accounting is exactly the solo
            // run's; the walk itself descends only for the others.
            ctx.dormantAt[i] = int64_t(ctx.placedTotal);
            CheckerStats &lane = (*ctx.lanes)[i];
            ++lane.partialsPruned;
            lane.subtreesSkipped = satAdd(
                lane.subtreesSkipped,
                satMul(satFactorial(rem.size()),
                       ctx.suffixLeaves[ai + 1]));
            lane.maxBacktrackDepth =
                std::max(lane.maxBacktrackDepth, ctx.placedTotal);
        }
        if (live > 0)
            descendCoherenceMulti(ctx, ai, partial);
        for (size_t i = 0; i < nlanes; ++i) {
            if (ctx.dormantAt[i] < 0) {
                ctx.filters[i]->popStore(partial, a, v);
            } else if (ctx.dormantAt[i] == int64_t(ctx.placedTotal)) {
                // Vetoed at exactly this push: the filter contract
                // still delivers the matching popStore, and the lane
                // rejoins the walk at the next sibling.
                ctx.filters[i]->popStore(partial, a, v);
                ctx.dormantAt[i] = -1;
            }
        }
        --ctx.placedTotal;
        placed.pop_back();
        rem.insert(rem.begin() + std::ptrdiff_t(k), v);
    }
}

void
CandidateEnumerator::searchCoherenceMulti(MultiCtx &ctx) const
{
    ctx.traces.clear();
    ctx.addrs.clear();
    ctx.storesByAddr.clear();
    ctx.coOrder.clear();
    ctx.placedTotal = 0;

    collectCandidateEvents(ctx.exec, ctx.events);
    for (const auto &te : ctx.exec)
        ctx.traces.push_back(&te.trace);

    for (size_t v = 0; v < ctx.events.size(); ++v)
        if (ctx.events[v].isStore)
            ctx.storesByAddr[ctx.events[v].addr].push_back(int(v));
    for (auto &[a, stores] : ctx.storesByAddr) {
        ctx.addrs.push_back(a);
        ctx.coOrder[a]; // empty prefix
        (void)stores;
    }

    ctx.suffixLeaves.assign(ctx.addrs.size() + 1, 1);
    for (size_t i = ctx.addrs.size(); i-- > 0;) {
        ctx.suffixLeaves[i] = satMul(
            ctx.suffixLeaves[i + 1],
            satFactorial(ctx.storesByAddr[ctx.addrs[i]].size()));
    }

    const CandidateExecution partial{ctx.events, ctx.coOrder,
                                     ctx.traces, ctx.rfEpoch,
                                     /*complete=*/false};
    size_t live = 0;
    for (size_t i = 0; i < ctx.filters.size(); ++i) {
        if (ctx.filters[i]->beginRf(partial)) {
            ctx.dormantAt[i] = -1;
            ++live;
        } else {
            ctx.dormantAt[i] = 0; // out for this whole rf candidate
            CheckerStats &lane = (*ctx.lanes)[i];
            ++lane.rfPruned;
            lane.subtreesSkipped =
                satAdd(lane.subtreesSkipped, ctx.suffixLeaves[0]);
        }
    }
    if (live == 0)
        return;

    ctx.remaining.resize(ctx.addrs.size());
    for (size_t i = 0; i < ctx.addrs.size(); ++i)
        ctx.remaining[i] = ctx.storesByAddr[ctx.addrs[i]];
    descendCoherenceMulti(ctx, 0, partial);
}

void
CandidateEnumerator::searchRfRangeMulti(MultiCtx &ctx) const
{
    const auto &choices = _builder.rfChoices();
    const size_t nloads = choices.size();

    std::vector<size_t> odo(nloads, 0);
    std::vector<StoreId> rf(nloads, InitStore);
    GAM_TRACE_SCOPE("enum.search");
    for (;;) {
        for (size_t i = 0; i < nloads; ++i)
            rf[i] = choices[i][odo[i]];

        ++ctx.walk.rfCandidates;
        ++ctx.rfEpoch;
        if (_builder.computeExecution(rf, ctx.exec)) {
            ++ctx.walk.valueConsistent;
            obs::TraceSpan coSpan("enum.co_search");
            searchCoherenceMulti(ctx);
        } else {
            ++ctx.walk.valueCycles;
        }

        size_t pos = 0;
        while (pos < nloads) {
            if (++odo[pos] < choices[pos].size())
                break;
            odo[pos] = 0;
            ++pos;
        }
        if (pos == nloads)
            break;
    }
}

std::vector<litmus::OutcomeSet>
CandidateEnumerator::runMulti(const std::vector<FilterFactory> &factories,
                              std::vector<CheckerStats> *laneStats)
{
    GAM_TRACE_SCOPE("enum.run");
    _stats = CheckerStats{};
    _stats.rfStaticSkipped = _builder.rfStaticSkipped();

    std::vector<litmus::OutcomeSet> outcomes(factories.size());
    if (factories.empty()) {
        if (laneStats)
            laneStats->clear();
        return outcomes;
    }

    std::vector<std::unique_ptr<IncrementalFilter>> owned;
    std::vector<IncrementalFilter *> filters;
    for (const FilterFactory &f : factories) {
        GAM_ASSERT(f != nullptr, "runMulti: null factory");
        owned.push_back(f());
        GAM_ASSERT(owned.back() != nullptr, "null incremental filter");
        filters.push_back(owned.back().get());
    }

    std::vector<CheckerStats> lanes(factories.size());
    MultiCtx ctx{
        .filters = std::move(filters),
        .outcomes = &outcomes,
        .lanes = &lanes,
        .dormantAt = std::vector<int64_t>(factories.size(), -1),
        .test = _builder.test()};
    searchRfRangeMulti(ctx);

    // Each lane's counters are exactly what a solo serial run() with
    // its filter would report: the walk counters are common to every
    // lane by construction, the pruning counters were kept per lane.
    for (CheckerStats &lane : lanes) {
        lane.rfCandidates = ctx.walk.rfCandidates;
        lane.valueConsistent = ctx.walk.valueConsistent;
        lane.valueCycles = ctx.walk.valueCycles;
        lane.rfStaticSkipped = _stats.rfStaticSkipped;
    }

    // stats() describes the pass itself: the one shared walk, plus
    // every lane's pruning and acceptance totals.
    _stats.rfCandidates = ctx.walk.rfCandidates;
    _stats.valueConsistent = ctx.walk.valueConsistent;
    _stats.valueCycles = ctx.walk.valueCycles;
    _stats.coCandidates = ctx.walk.coCandidates;
    for (const CheckerStats &lane : lanes) {
        _stats.rfPruned += lane.rfPruned;
        _stats.partialsPruned += lane.partialsPruned;
        _stats.subtreesSkipped =
            satAdd(_stats.subtreesSkipped, lane.subtreesSkipped);
        _stats.accepted += lane.accepted;
        _stats.maxBacktrackDepth = std::max(_stats.maxBacktrackDepth,
                                            lane.maxBacktrackDepth);
    }
    reportEnumMetrics(_stats);

    if (laneStats)
        *laneStats = std::move(lanes);
    return outcomes;
}

namespace
{

/** Adapts a plain CandidateFilter: no pruning, exact leaves. */
class AllCandidates final : public IncrementalFilter
{
  public:
    explicit AllCandidates(const CandidateFilter &accept)
        : _accept(accept)
    {}

    bool
    accept(const CandidateExecution &candidate) override
    {
        return _accept(candidate);
    }

  private:
    const CandidateFilter &_accept;
};

} // anonymous namespace

litmus::OutcomeSet
CandidateEnumerator::runAll(const CandidateFilter &accept)
{
    GAM_ASSERT(accept != nullptr, "runAll: null filter");
    // A plain filter is stateful across calls (epoch caching), so the
    // unpruned stream is always walked serially by one adapter.
    _stats = CheckerStats{};
    _stats.rfStaticSkipped = _builder.rfStaticSkipped();
    litmus::OutcomeSet outcomes;
    AllCandidates filter(accept);
    searchRfRange(0, 0, filter, outcomes, _stats);
    reportEnumMetrics(_stats);
    return outcomes;
}

} // namespace gam::axiomatic
