/**
 * @file
 * The shared candidate-enumeration core for axiomatic-style engines.
 *
 * Both the hand-coded Figure-15 checker (axiomatic/checker.hh) and the
 * cat DSL engine (cat/engine.hh) decide a litmus test by scoring
 * *candidate executions*: a read-from map (which store each load reads)
 * plus one total coherence order per address.  This file owns the
 * machinery that produces those candidates:
 *
 *  - CandidateBuilder runs the cross-thread value fixpoint that turns
 *    one read-from guess into committed thread traces (or rejects it as
 *    value-inconsistent), and computes the static per-load feasible
 *    source sets that let the search skip read-from maps whose
 *    addresses can never match.
 *
 *  - CandidateEnumerator drives the search.  The default, incremental
 *    mode follows herd-style tools (Alglave et al., Herding Cats):
 *    coherence orders grow one store at a time, the model's ordering
 *    constraints are maintained online, and the search backtracks the
 *    moment a partial candidate can no longer be completed legally --
 *    pruning whole factorial subtrees instead of materializing them.
 *    Top-level read-from prefixes are searched in parallel on the
 *    shared ThreadPool.
 *
 *  - IncrementalFilter is how a model plugs into the pruned search:
 *    monotone "can any completion still pass?" callbacks at each
 *    extension step, plus an exact verdict at complete candidates.
 *    The hand-coded axioms implement it with an incrementally
 *    maintained constraint closure (checker.cc); the cat engine with
 *    monotone partial evaluation of the model file (cat/engine.cc).
 *
 * The enumerate-then-check pipeline this replaces survives as
 * Checker::enumerateLegacy() for differential validation and the
 * pruning benchmarks.
 */

#ifndef GAM_AXIOMATIC_ENUMERATE_HH
#define GAM_AXIOMATIC_ENUMERATE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "isa/instruction.hh"
#include "isa/mem_image.hh"
#include "litmus/outcome.hh"
#include "litmus/test.hh"
#include "model/kind.hh"
#include "model/trace.hh"

namespace gam::axiomatic
{

/** Checker knobs. */
struct Options
{
    /**
     * Drop the InstOrder axiom (keep LoadValue only).  Used to
     * demonstrate that LoadValue alone admits out-of-thin-air behaviors
     * (Section II-C): "allowing all load/store reorderings [by] simply
     * removing the InstOrderSC axiom ... would [make OOTA] legal".
     */
    bool enforceInstOrder = true;

    /**
     * Values to try for loads whose value stays undetermined because of
     * a cyclic rf (out-of-thin-air candidates).  Empty: such candidates
     * are discarded, which is sound for every supported model.
     */
    std::vector<isa::Value> seedValues;

    /**
     * Worker threads for the incremental search (1 = serial, 0 =
     * hardware concurrency).  The search is split over top-level
     * read-from prefixes; the merged outcome set and counters are
     * deterministic regardless of the worker count, so this knob never
     * affects a decision.
     */
    unsigned searchThreads = 1;
};

/**
 * @p options with seedValues defaulted to the constants of @p test's
 * condition (when not already set): the seeding Checker::isAllowed()
 * applies so OOTA-style queries are decided by the axioms rather than
 * by omission.  Shared with harness::decide() so the two paths can
 * never diverge.
 */
Options withConditionSeeds(const litmus::LitmusTest &test,
                           Options options);

/** Counters describing one enumeration run. */
struct CheckerStats
{
    uint64_t rfCandidates = 0;      ///< read-from maps tried
    uint64_t valueConsistent = 0;   ///< ... passing the value fixpoint
    uint64_t coCandidates = 0;      ///< complete (rf, co) candidates checked
    uint64_t accepted = 0;          ///< ... that were legal
    uint64_t valueCycles = 0;       ///< rf maps with undetermined values

    // Incremental-search counters (zero on the legacy path).
    /** rf maps skipped outright by static address feasibility. */
    uint64_t rfStaticSkipped = 0;
    /** rf candidates whose whole coherence search was pruned upfront. */
    uint64_t rfPruned = 0;
    /** Partial coherence extensions rejected by the filter. */
    uint64_t partialsPruned = 0;
    /** Complete candidates never materialized thanks to the pruning. */
    uint64_t subtreesSkipped = 0;
    /** Deepest store placement a backtrack retreated from. */
    uint64_t maxBacktrackDepth = 0;

    /** this += other (maxBacktrackDepth by max); parallel merge. */
    void merge(const CheckerStats &other);
};

/**
 * One memory event of a candidate execution: an executed load/store
 * with resolved address, in committed trace order per thread.  RMWs
 * are a single event that is both a load and a store.
 */
struct CandidateEvent
{
    int tid;
    int traceIdx;        ///< index into the thread's committed trace
    bool isStore;
    bool isLoad;         ///< RMWs are both
    isa::Addr addr;
    isa::Value value;    ///< value the event supplies to memory/readers
    model::StoreId sid;  ///< store side: own id (InitStore otherwise)
    model::StoreId rf;   ///< load side: read-from source (or InitStore)
};

/**
 * One candidate execution: the committed thread traces plus one
 * read-from map and per-address coherence orders.  This is the domain
 * over which relational (cat-style) model engines evaluate their
 * axioms; the hand-coded checker scores exactly the same candidates,
 * so engines built on the enumerator are verdict-comparable by
 * construction.
 *
 * During the incremental search the coherence orders are *prefixes*
 * (`complete == false`): every placed pair is final -- a store is only
 * ever appended after the existing prefix -- but unplaced stores are
 * absent.  Relations derived from coOrder on a partial candidate are
 * therefore monotone underapproximations of every completion.
 *
 * All references point into enumeration-owned storage and are valid
 * only for the duration of one filter callback.
 */
struct CandidateExecution
{
    /** All memory events, thread-major, trace order within a thread. */
    const std::vector<CandidateEvent> &events;
    /** Coherence order per address: event indices, first to last. */
    const std::map<isa::Addr, std::vector<int>> &coOrder;
    /** Committed per-thread traces (fences/branches included). */
    const std::vector<const model::Trace *> &traces;
    /**
     * Increments once per read-from candidate.  events, traces and
     * every event's rf are reused across the coherence orders sharing
     * an epoch -- only coOrder changes -- so callers may cache
     * trace-derived data (program order, dependencies) keyed on it.
     */
    uint64_t rfEpoch;
    /** False while coOrder still holds prefixes (see above). */
    bool complete = true;
};

/**
 * Accept/reject one complete candidate execution.  Returning true
 * records the candidate's outcome exactly as the built-in axioms
 * would.
 */
using CandidateFilter = std::function<bool(const CandidateExecution &)>;

/**
 * A model's hooks into the incremental pruned search.  All three
 * predicate callbacks must be *monotone*: returning false asserts that
 * no completion of the partial candidate can pass, so the enumerator
 * may skip the whole subtree.  A filter that cannot prove anything
 * early simply returns true until accept().
 *
 * Callbacks arrive strictly nested: beginRf() once per value-consistent
 * read-from candidate, then pushStore()/popStore() bracketing each
 * coherence extension (popStore is called even when the matching
 * pushStore returned false, so filters can restore snapshots
 * unconditionally), and accept() at complete leaves.
 */
class IncrementalFilter
{
  public:
    virtual ~IncrementalFilter() = default;

    /**
     * A new read-from candidate; @p partial has empty coherence
     * orders.  False prunes every coherence completion.
     */
    virtual bool beginRf(const CandidateExecution &partial)
    {
        (void)partial;
        return true;
    }

    /**
     * Event @p eventIdx was appended to @p addr's coherence order (it
     * is the last entry).  False prunes the subtree rooted here.
     */
    virtual bool pushStore(const CandidateExecution &partial,
                           isa::Addr addr, int eventIdx)
    {
        (void)partial;
        (void)addr;
        (void)eventIdx;
        return true;
    }

    /** Backtrack the matching pushStore(). */
    virtual void popStore(const CandidateExecution &partial,
                          isa::Addr addr, int eventIdx)
    {
        (void)partial;
        (void)addr;
        (void)eventIdx;
    }

    /** Exact verdict for a complete candidate. */
    virtual bool accept(const CandidateExecution &candidate) = 0;
};

/**
 * Makes one filter per search worker.  Filters are stateful (they
 * track the current partial candidate), so parallel workers cannot
 * share one; each factory product only ever sees callbacks from a
 * single worker, in nesting order.
 */
using FilterFactory =
    std::function<std::unique_ptr<IncrementalFilter>()>;

/**
 * Builds candidate executions for one litmus test: the value fixpoint
 * turning a read-from map into committed traces, and the static
 * feasibility analysis bounding each load's possible sources.
 *
 * Thread programs must be loop-free (forward branches only): then
 * every static instruction executes at most once and rf can be indexed
 * statically.
 */
class CandidateBuilder
{
  public:
    /** Per-thread symbolic execution state for one rf candidate. */
    struct ThreadExec
    {
        /** Reached the end of the program (no value-blocked branch). */
        bool complete = false;
        /** Static indices of executed instructions, in order. */
        std::vector<int> executedIdx;
        /** Committed trace (parallel to executedIdx). */
        model::Trace trace;
        /** rf per trace entry (loads only; InitStore elsewhere). */
        model::RfMap rfTrace;
        /** Final register values (all known when complete). */
        std::array<std::optional<isa::Value>, isa::NUM_REGS> regs;
    };

    CandidateBuilder(const litmus::LitmusTest &test, Options options);

    /** Static load sites (tid, index), in enumeration order. */
    const std::vector<std::pair<int, int>> &loadSites() const
    {
        return _loadSites;
    }

    /** Static store sites as global StoreIds. */
    const std::vector<model::StoreId> &storeSites() const
    {
        return _storeSites;
    }

    /**
     * Feasible read-from sources per load (parallel to loadSites):
     * InitStore plus every store whose statically-known address can
     * match the load's.  Sources whose addresses are data-dependent on
     * loaded values stay in every list (the analysis is conservative);
     * the value fixpoint remains the exact judge.
     */
    const std::vector<std::vector<model::StoreId>> &rfChoices() const
    {
        return _rfChoices;
    }

    /**
     * Read-from maps the static analysis discards without trying:
     * (1 + #stores)^#loads minus the feasible product, saturated.
     */
    uint64_t rfStaticSkipped() const { return _rfStaticSkipped; }

    /**
     * Execute all threads to a value fixpoint under @p rf; false when
     * the map is value-inconsistent (wrong supplied value, unexecuted
     * source, unaligned address from a bogus guess, or an undetermined
     * value cycle no seed resolves).  Thread-safe: workers share one
     * builder.
     */
    bool computeExecution(const std::vector<model::StoreId> &rf,
                          std::vector<ThreadExec> &out) const;

    const litmus::LitmusTest &test() const { return _test; }
    const Options &options() const { return _options; }

  private:
    void computeStaticFeasibility();

    const litmus::LitmusTest &_test;
    Options _options;
    std::vector<std::pair<int, int>> _loadSites;
    std::vector<model::StoreId> _storeSites;
    std::vector<std::vector<model::StoreId>> _rfChoices;
    uint64_t _rfStaticSkipped = 0;
};

/**
 * The shared enumeration driver.  run() is the incremental pruned
 * search every engine uses by default; runAll() replays the full
 * unpruned candidate stream (all value-consistent read-from maps times
 * all coherence permutations) through a plain CandidateFilter -- the
 * compatibility surface behind Checker::enumerateFiltered().
 */
class CandidateEnumerator
{
  public:
    CandidateEnumerator(const litmus::LitmusTest &test, Options options);

    /**
     * Incremental pruned search: one filter per worker from
     * @p factory, outcomes of accepted complete candidates merged
     * deterministically.
     */
    litmus::OutcomeSet run(const FilterFactory &factory);

    /**
     * The full candidate stream with no pruning: @p accept sees every
     * value-consistent (rf, co) combination, exactly like the
     * pre-incremental pipeline.
     */
    litmus::OutcomeSet runAll(const CandidateFilter &accept);

    /**
     * Decide N filters over ONE shared walk.  The rf-candidate stream,
     * the value fixpoint and the coherence DFS are filter-independent,
     * so N models cost one walk plus N filter evaluations instead of N
     * walks -- the core amortization of the batched decide pipeline.
     *
     * Each filter receives exactly the callback sequence a solo serial
     * run() with it would have produced: a filter that vetoes a
     * pushStore still gets the matching popStore, then sees nothing
     * from the vetoed subtree (the walk continues there only for the
     * filters that accepted), and rejoins at the next sibling.  The
     * returned outcome sets are therefore identical to N run() calls,
     * and @p laneStats (when given) receives each filter's
     * solo-equivalent counters.  The pass is serial --
     * Options::searchThreads is ignored -- which is the campaign's
     * configuration (its parallelism lives across units).
     */
    std::vector<litmus::OutcomeSet>
    runMulti(const std::vector<FilterFactory> &factories,
             std::vector<CheckerStats> *laneStats = nullptr);

    /** Counters of the last run. */
    const CheckerStats &stats() const { return _stats; }

    const CandidateBuilder &builder() const { return _builder; }

  private:
    struct SearchCtx;
    struct MultiCtx;

    /** Enumerate the rf maps extending @p prefix; one worker's share. */
    void searchRfRange(size_t prefixLoads, uint64_t prefixIndex,
                       IncrementalFilter &filter,
                       litmus::OutcomeSet &outcomes,
                       CheckerStats &stats) const;

    /** Coherence search for one value-consistent rf candidate. */
    void searchCoherence(SearchCtx &ctx) const;

    /** Recursive coherence extension over ctx.addrs[ai..]. */
    void descendCoherence(SearchCtx &ctx, size_t ai,
                          const CandidateExecution &partial) const;

    /** The multi-filter mirrors of the three functions above. */
    void searchRfRangeMulti(MultiCtx &ctx) const;
    void searchCoherenceMulti(MultiCtx &ctx) const;
    void descendCoherenceMulti(MultiCtx &ctx, size_t ai,
                               const CandidateExecution &partial) const;

    /** Record one accepted complete candidate's outcome. */
    void recordOutcome(SearchCtx &ctx) const;

    CandidateBuilder _builder;
    CheckerStats _stats;
};

/**
 * Alignment-tolerant initial-memory read (bogus rf guesses may compute
 * unaligned addresses; those candidates are discarded before any
 * outcome is recorded).  Shared by the enumerator's outcome recording
 * and the legacy checker path.
 */
isa::Value initialMemValue(const isa::MemImage &mem, isa::Addr addr);

/**
 * Collect the memory events of one computed execution into @p out
 * (cleared first), thread-major in trace order -- the event list both
 * the pruned search and the legacy pipeline hand to their filters.
 * One definition so candidate *production* can never drift between
 * the path under test and its differential reference.
 */
void collectCandidateEvents(
    const std::vector<CandidateBuilder::ThreadExec> &exec,
    std::vector<CandidateEvent> &out);

/**
 * Record one accepted candidate's outcome (observed registers from
 * @p exec, final memory from the last store of each coherence order)
 * into @p outcomes.  Shared by both enumeration paths, like
 * collectCandidateEvents().
 */
void recordCandidateOutcome(
    const litmus::LitmusTest &test,
    const std::vector<CandidateBuilder::ThreadExec> &exec,
    const std::vector<CandidateEvent> &events,
    const std::map<isa::Addr, std::vector<int>> &coOrder,
    litmus::OutcomeSet &outcomes);

/** Encode (tid, static index) as a StoreId. */
constexpr model::StoreId
storeId(int tid, int idx)
{
    return static_cast<model::StoreId>(tid * 1024 + idx);
}

/** Decode a StoreId. */
constexpr std::pair<int, int>
storeIdParts(model::StoreId id)
{
    return {id / 1024, id % 1024};
}

} // namespace gam::axiomatic

#endif // GAM_AXIOMATIC_ENUMERATE_HH
