/**
 * @file
 * Axiomatic checker for GAM-family models (paper Section IV-A), SC,
 * TSO and the per-location-SC reference model.
 *
 * A program behavior <po, mo, rf> is legal when it satisfies the two
 * axioms of Figure 15:
 *
 *   InstOrder: I1 <ppo I2  =>  I1 <mo I2
 *   LoadValue: St[a]v -rf-> Ld[a]  =>  St[a]v =
 *       max_mo { St[a]v' | St[a]v' <mo Ld[a]  \/  St[a]v' <po Ld[a] }
 *
 * Instead of enumerating total memory orders (factorial), the checker
 * enumerates read-from maps and per-address coherence orders, derives
 * the ordering constraints the axioms impose, and accepts a candidate
 * iff the constraint graph is acyclic (any topological order is then a
 * witness mo; conversely every legal mo linearises the constraints), an
 * exact and standard reduction.
 *
 * Candidate production and search live in the shared enumeration core
 * (axiomatic/enumerate.hh); this file contributes the hand-coded
 * Figure-15 axioms in two forms:
 *
 *  - an IncrementalFilter that maintains the constraint closure online
 *    (one bitset reachability relation, extended edge by edge) so the
 *    pruned search can reject a partial candidate the moment a
 *    constraint cycle closes -- the default enumerate() path;
 *
 *  - the original enumerate-then-check pipeline, kept verbatim as
 *    enumerateLegacy() so differential tests and the pruning
 *    benchmarks can compare the two.
 *
 * Load values are computed from rf by a cross-thread fixpoint, so
 * dependencies through registers *and* memory (Figure 13c) resolve
 * naturally.  Candidates whose values stay undetermined encode
 * out-of-thin-air cycles; they are provably mo-cyclic under every model
 * here (all include full syntactic data dependencies in ppo), and can
 * optionally be value-seeded to demonstrate the rejection explicitly.
 */

#ifndef GAM_AXIOMATIC_CHECKER_HH
#define GAM_AXIOMATIC_CHECKER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "axiomatic/enumerate.hh"
#include "litmus/outcome.hh"
#include "litmus/test.hh"
#include "model/kind.hh"
#include "model/ppo.hh"
#include "model/trace.hh"

namespace gam::axiomatic
{

/**
 * Memoized model::preservedProgramOrder() results -- materialized as
 * their edge lists, which is the only form beginRf() consumes --
 * keyed by a 64-bit hash of (model, thread, executed instruction
 * sequence, resolved addresses, the thread's own read-from sources):
 * every input ppo depends on; data values never reach it
 * (model/ppo.cc).  Across the rf candidates of one enumeration, and
 * across the units of one campaign chunk, the same few thread shapes
 * recur thousands of times, and recomputing their transitive closures
 * (and re-materializing their pair lists) dominates the built-in
 * filter's beginRf().  Owned by the caller (the batched decide
 * pipeline keeps one per batch), single-threaded, unbounded --
 * bounded in practice by the distinct shapes of the batch.
 */
using PpoCache =
    std::map<uint64_t, std::vector<std::pair<size_t, size_t>>>;

/** Axiomatic enumeration for one litmus test under one model. */
class Checker
{
  public:
    Checker(const litmus::LitmusTest &test, model::ModelKind model,
            Options options = {});

    /**
     * All outcomes the axioms accept, via the incremental pruned
     * search (the hand-coded axioms as an IncrementalFilter).
     */
    litmus::OutcomeSet enumerate();

    /**
     * Enumerate with @p accept deciding candidate legality instead of
     * the built-in InstOrder/LoadValue/atomicity axioms.  Everything
     * else -- value-consistent read-from maps, per-address coherence
     * permutations, outcome recording -- is shared with enumerate(),
     * which is what makes engines layered on this (src/cat/) directly
     * comparable with the hand-coded checker.  A thin compatibility
     * wrapper over the enumeration core: @p accept sees the full
     * unpruned candidate stream, serially.  The `model` passed to the
     * constructor is ignored on this path: the filter embodies the
     * model.
     */
    litmus::OutcomeSet enumerateFiltered(const CandidateFilter &accept);

    /**
     * enumerate(), but over a caller-owned enumerator instead of a
     * fresh one.  The batched decide pipeline (harness::decideBatch)
     * builds one CandidateEnumerator per test and drives it once per
     * model, amortizing the CandidateBuilder arena -- static rf
     * feasibility, load/store site tables -- across every model in
     * the batch.  @p enumerator must have been constructed from this
     * checker's test with equivalent Options; each call resets the
     * enumerator's stats, so stats() reflects this run only.
     */
    litmus::OutcomeSet enumerateOn(CandidateEnumerator &enumerator);

    /**
     * Drive the incremental pruned search with a custom filter (one
     * per worker from @p factory); the engine entry point for models
     * that can judge partial candidates (cat::CatEngine).  The
     * constructor's `model` is ignored: the filter embodies the model.
     */
    litmus::OutcomeSet enumerateIncremental(const FilterFactory &factory);

    /**
     * The pre-incremental pipeline, unchanged: materialize every
     * complete (rf, co) candidate, then test the built-in axioms by
     * building the whole constraint graph and checking acyclicity.
     * Exists solely as the reference side of differential tests and
     * the pruning benchmarks.
     */
    litmus::OutcomeSet enumerateLegacy();

    /** enumerateLegacy() with @p accept instead of the built-ins. */
    litmus::OutcomeSet
    enumerateFilteredLegacy(const CandidateFilter &accept);

    /**
     * Is the test's asked-about condition reachable?  Seeds
     * undetermined-value candidates with the condition's constants so
     * OOTA-style queries are decided by the axioms, not by omission.
     */
    bool isAllowed();

    const CheckerStats &stats() const { return _stats; }

  private:
    /** Shared legacy enumeration loop; @p accept null = built-ins. */
    litmus::OutcomeSet enumerateLegacyImpl(const CandidateFilter *accept);

    /**
     * Check one (rf, co) candidate family -- built-in axioms or
     * @p accept -- and record accepted outcomes (legacy path).
     */
    void checkCandidate(const std::vector<CandidateBuilder::ThreadExec> &exec,
                        litmus::OutcomeSet &outcomes,
                        const CandidateFilter *accept, uint64_t rfEpoch);

    const litmus::LitmusTest &test;
    model::ModelKind model;
    Options options;
    CheckerStats _stats;
};

/**
 * Decide several models of one test over ONE shared enumeration pass
 * (CandidateEnumerator::runMulti): the rf-candidate stream, the value
 * fixpoint and the coherence walk are model-independent, so N models
 * cost one walk plus N built-in filters instead of N walks.  Verdicts
 * and outcome sets are exactly what N Checker::enumerate() calls
 * would produce; @p stats, when given, receives each model's
 * solo-equivalent counters.  @p ppoShapes, when given, memoizes
 * preservedProgramOrder() across the pass (and across passes sharing
 * the cache -- the batched decide pipeline keeps one per batch).  The
 * pass is serial: Options::searchThreads is ignored.
 */
std::vector<litmus::OutcomeSet>
enumerateModels(CandidateEnumerator &enumerator,
                const std::vector<model::ModelKind> &models,
                bool enforceInstOrder,
                std::vector<CheckerStats> *stats = nullptr,
                PpoCache *ppoShapes = nullptr);

} // namespace gam::axiomatic

#endif // GAM_AXIOMATIC_CHECKER_HH
