/**
 * @file
 * Axiomatic checker for GAM-family models (paper Section IV-A), SC,
 * TSO and the per-location-SC reference model.
 *
 * A program behavior <po, mo, rf> is legal when it satisfies the two
 * axioms of Figure 15:
 *
 *   InstOrder: I1 <ppo I2  =>  I1 <mo I2
 *   LoadValue: St[a]v -rf-> Ld[a]  =>  St[a]v =
 *       max_mo { St[a]v' | St[a]v' <mo Ld[a]  \/  St[a]v' <po Ld[a] }
 *
 * Instead of enumerating total memory orders (factorial), the checker
 * enumerates read-from maps and per-address coherence orders, derives
 * the ordering constraints the axioms impose, and accepts a candidate
 * iff the constraint graph is acyclic (any topological order is then a
 * witness mo; conversely every legal mo linearises the constraints), an
 * exact and standard reduction.
 *
 * Load values are computed from rf by a cross-thread fixpoint, so
 * dependencies through registers *and* memory (Figure 13c) resolve
 * naturally.  Candidates whose values stay undetermined encode
 * out-of-thin-air cycles; they are provably mo-cyclic under every model
 * here (all include full syntactic data dependencies in ppo), and can
 * optionally be value-seeded to demonstrate the rejection explicitly.
 *
 * Thread programs must be loop-free (forward branches only): then every
 * static instruction executes at most once and rf can be indexed
 * statically.
 */

#ifndef GAM_AXIOMATIC_CHECKER_HH
#define GAM_AXIOMATIC_CHECKER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "litmus/outcome.hh"
#include "litmus/test.hh"
#include "model/kind.hh"
#include "model/trace.hh"

namespace gam::axiomatic
{

/** Checker knobs. */
struct Options
{
    /**
     * Drop the InstOrder axiom (keep LoadValue only).  Used to
     * demonstrate that LoadValue alone admits out-of-thin-air behaviors
     * (Section II-C): "allowing all load/store reorderings [by] simply
     * removing the InstOrderSC axiom ... would [make OOTA] legal".
     */
    bool enforceInstOrder = true;

    /**
     * Values to try for loads whose value stays undetermined because of
     * a cyclic rf (out-of-thin-air candidates).  Empty: such candidates
     * are discarded, which is sound for every supported model.
     */
    std::vector<isa::Value> seedValues;
};

/**
 * @p options with seedValues defaulted to the constants of @p test's
 * condition (when not already set): the seeding Checker::isAllowed()
 * applies so OOTA-style queries are decided by the axioms rather than
 * by omission.  Shared with harness::decide() so the two paths can
 * never diverge.
 */
Options withConditionSeeds(const litmus::LitmusTest &test,
                           Options options);

/** Counters describing one enumeration run. */
struct CheckerStats
{
    uint64_t rfCandidates = 0;      ///< read-from maps tried
    uint64_t valueConsistent = 0;   ///< ... passing the value fixpoint
    uint64_t coCandidates = 0;      ///< (rf, co) combinations checked
    uint64_t accepted = 0;          ///< ... that were acyclic (legal)
    uint64_t valueCycles = 0;       ///< rf maps with undetermined values
};

/**
 * One memory event of a candidate execution: an executed load/store
 * with resolved address, in committed trace order per thread.  RMWs
 * are a single event that is both a load and a store.
 */
struct CandidateEvent
{
    int tid;
    int traceIdx;        ///< index into the thread's committed trace
    bool isStore;
    bool isLoad;         ///< RMWs are both
    isa::Addr addr;
    isa::Value value;    ///< value the event supplies to memory/readers
    model::StoreId sid;  ///< store side: own id (InitStore otherwise)
    model::StoreId rf;   ///< load side: read-from source (or InitStore)
};

/**
 * One fully chosen candidate execution: the committed thread traces
 * plus one read-from map and one per-address coherence order.  This is
 * the domain over which relational (cat-style) model engines evaluate
 * their axioms; the Checker enumerates exactly the same candidates for
 * its hand-coded axioms, so alternative engines built on
 * enumerateFiltered() are verdict-comparable by construction.
 *
 * All references point into enumeration-owned storage and are valid
 * only for the duration of one filter callback.
 */
struct CandidateExecution
{
    /** All memory events, thread-major, trace order within a thread. */
    const std::vector<CandidateEvent> &events;
    /** Coherence order per address: event indices, first to last. */
    const std::map<isa::Addr, std::vector<int>> &coOrder;
    /** Committed per-thread traces (fences/branches included). */
    const std::vector<const model::Trace *> &traces;
    /**
     * Increments once per read-from candidate.  events, traces and
     * every event's rf are reused across the coherence orders sharing
     * an epoch -- only coOrder changes -- so callers may cache
     * trace-derived data (program order, dependencies) keyed on it.
     */
    uint64_t rfEpoch;
};

/**
 * Accept/reject one candidate execution.  Returning true records the
 * candidate's outcome exactly as the built-in axioms would.
 */
using CandidateFilter = std::function<bool(const CandidateExecution &)>;

/** Axiomatic enumeration for one litmus test under one model. */
class Checker
{
  public:
    Checker(const litmus::LitmusTest &test, model::ModelKind model,
            Options options = {});

    /** All outcomes the axioms accept. */
    litmus::OutcomeSet enumerate();

    /**
     * Enumerate with @p accept deciding candidate legality instead of
     * the built-in InstOrder/LoadValue/atomicity axioms.  Everything
     * else -- value-consistent read-from maps, per-address coherence
     * permutations, outcome recording -- is shared with enumerate(),
     * which is what makes engines layered on this (src/cat/) directly
     * comparable with the hand-coded checker.  The `model` passed to
     * the constructor is ignored on this path: the filter embodies the
     * model.
     */
    litmus::OutcomeSet enumerateFiltered(const CandidateFilter &accept);

    /**
     * Is the test's asked-about condition reachable?  Seeds
     * undetermined-value candidates with the condition's constants so
     * OOTA-style queries are decided by the axioms, not by omission.
     */
    bool isAllowed();

    const CheckerStats &stats() const { return _stats; }

  private:
    struct ThreadExec;

    /** Execute all threads to a value fixpoint under rf; see .cc. */
    bool computeExecution(const std::vector<model::StoreId> &rf,
                          const std::vector<isa::Value> &seeds,
                          std::vector<ThreadExec> &out) const;

    /** Shared enumeration loop; @p accept null = built-in axioms. */
    litmus::OutcomeSet enumerateImpl(const CandidateFilter *accept);

    /**
     * Check one (rf, co) candidate family -- built-in axioms or
     * @p accept -- and record accepted outcomes.
     */
    void checkCandidate(const std::vector<ThreadExec> &exec,
                        const std::vector<model::StoreId> &rf,
                        litmus::OutcomeSet &outcomes,
                        const CandidateFilter *accept, uint64_t rfEpoch);

    const litmus::LitmusTest &test;
    model::ModelKind model;
    Options options;
    CheckerStats _stats;

    /** Static load sites (tid, index), in enumeration order. */
    std::vector<std::pair<int, int>> loadSites;
    /** Static store sites as global StoreIds. */
    std::vector<model::StoreId> storeSites;
};

/** Encode (tid, static index) as a StoreId. */
constexpr model::StoreId
storeId(int tid, int idx)
{
    return static_cast<model::StoreId>(tid * 1024 + idx);
}

/** Decode a StoreId. */
constexpr std::pair<int, int>
storeIdParts(model::StoreId id)
{
    return {id / 1024, id % 1024};
}

} // namespace gam::axiomatic

#endif // GAM_AXIOMATIC_CHECKER_HH
