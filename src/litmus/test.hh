/**
 * @file
 * LitmusTest: a small multi-threaded program plus an asked-about final
 * condition and the paper's expected verdict per memory model.
 */

#ifndef GAM_LITMUS_TEST_HH
#define GAM_LITMUS_TEST_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/mem_image.hh"
#include "isa/program.hh"
#include "litmus/outcome.hh"
#include "model/kind.hh"

namespace gam::litmus
{

/** A required final register value (conjunct of the test condition). */
struct RegConstraint
{
    int tid;
    isa::Reg reg;
    isa::Value value;
};

/** A required final memory value (conjunct of the test condition). */
struct MemConstraint
{
    isa::Addr addr;
    isa::Value value;
};

/** A litmus test with its paper-documented verdicts. */
struct LitmusTest
{
    std::string name;
    /** Where in the paper this test appears (e.g. "Figure 13a"). */
    std::string paperRef;
    std::string description;

    std::vector<isa::Program> threads;
    isa::MemImage initialMem;
    /** Named shared locations, for pretty printing. */
    std::vector<std::pair<std::string, isa::Addr>> locations;

    /** The asked-about behavior (conjunction of all constraints). */
    std::vector<RegConstraint> regCond;
    std::vector<MemConstraint> memCond;

    /**
     * Paper verdict per model: true = the behavior is allowed.
     * Models not listed make no claim for this test.
     */
    std::map<model::ModelKind, bool> expected;

    /**
     * Registers whose final value an engine must report.  finalize()
     * defaults this to every register any thread writes.
     */
    std::vector<std::pair<int, isa::Reg>> observedRegs;
    /**
     * Memory addresses whose final value an engine must report.
     * finalize() defaults this to all named locations.
     */
    std::vector<isa::Addr> addressUniverse;

    /** Fill in defaulted fields; must be called after construction. */
    void finalize();

    /**
     * Check that every engine in this library can run the test: at
     * least one thread, threads short enough for the StoreId encoding,
     * registers in range, branch targets strictly forward (the
     * axiomatic checker requires loop-free programs), and all
     * constraint/observation references resolvable (thread ids in
     * range, 8-byte-aligned addresses).  Returns a diagnostic on the
     * first violation, nullopt when the test is runnable.
     *
     * Untrusted tests (parsed from text or freshly generated) must
     * pass this check before being handed to a machine or checker;
     * the engines themselves still abort on malformed input.
     */
    std::optional<std::string> check() const;

    /** Does @p outcome satisfy the test's condition? */
    bool conditionMatches(const Outcome &outcome) const;

    /** Render the test (threads side by side) for display. */
    std::string toString() const;
};

/**
 * 64-bit fingerprint of everything that can influence an engine's
 * decision: thread code, initial memory, the asked-about condition and
 * the observation sets.  Metadata (name, description, paper reference,
 * recorded verdicts, location names) is deliberately excluded, so a
 * renamed or re-annotated copy of a test hashes identically -- the
 * property the DecisionCache keys on (see harness/decision.hh).
 */
uint64_t fingerprint(const LitmusTest &test);

/**
 * Convenience builder used by the suite and by tests/examples.
 *
 *     LitmusTest t = LitmusBuilder("mp", "Figure x")
 *         .location("a", 0x1000).location("b", 0x1008)
 *         .thread(p1).thread(p2)
 *         .requireReg(1, R(1), 1)
 *         .expect(ModelKind::GAM, false)
 *         .done();
 */
class LitmusBuilder
{
  public:
    LitmusBuilder(std::string name, std::string paper_ref,
                  std::string description = "");

    LitmusBuilder &location(const std::string &name, isa::Addr addr);
    LitmusBuilder &initMem(isa::Addr addr, isa::Value value);
    LitmusBuilder &thread(isa::Program program);
    LitmusBuilder &requireReg(int tid, isa::Reg reg, isa::Value value);
    LitmusBuilder &requireMem(isa::Addr addr, isa::Value value);
    LitmusBuilder &expect(model::ModelKind kind, bool allowed);
    LitmusTest done();

  private:
    LitmusTest test;
};

} // namespace gam::litmus

#endif // GAM_LITMUS_TEST_HH
