#include "litmus/outcome.hh"

#include <algorithm>
#include <sstream>

#include "base/hashing.hh"

namespace gam::litmus
{

void
Outcome::canonicalize()
{
    std::sort(regs.begin(), regs.end());
    std::sort(mem.begin(), mem.end());
}

std::string
Outcome::toString() const
{
    std::ostringstream os;
    bool first = true;
    for (const auto &r : regs) {
        if (!first)
            os << " ";
        first = false;
        os << r.tid << ":" << isa::regName(r.reg) << "=" << r.value;
    }
    if (!mem.empty()) {
        os << " |";
        for (const auto &m : mem)
            os << " [0x" << std::hex << m.addr << std::dec << "]="
               << m.value;
    }
    return os.str();
}

uint64_t
outcomeSetHash(const OutcomeSet &outcomes)
{
    StateHasher h;
    for (const Outcome &o : outcomes) {
        for (const auto &r : o.regs) {
            h.add(uint64_t(r.tid));
            h.add(uint64_t(r.reg));
            h.add(uint64_t(r.value));
        }
        h.separator();
        for (const auto &m : o.mem) {
            h.add(uint64_t(m.addr));
            h.add(uint64_t(m.value));
        }
        h.separator();
    }
    return h.digest();
}

std::string
toString(const OutcomeSet &outcomes)
{
    std::ostringstream os;
    for (const auto &o : outcomes)
        os << o.toString() << "\n";
    return os.str();
}

} // namespace gam::litmus
