#include "litmus/suite.hh"

#include "base/logging.hh"
#include "isa/program.hh"

namespace gam::litmus
{

using isa::Program;
using isa::ProgramBuilder;
using isa::R;
using model::ModelKind;

namespace
{

// Register conventions used by every suite test:
//   r1..r6   observed result registers (named as in the paper)
//   r7, r12+ scratch / data values
//   r8..r11  addresses of locations a, b, c, d
constexpr isa::Reg rA = 8, rB = 9, rC = 10, rD = 11;

/**
 * Thread preamble loading shared-location addresses.  Only the
 * locations a thread actually touches are loaded: every extra
 * instruction multiplies the operational explorer's state space.
 */
ProgramBuilder
prelude(std::initializer_list<isa::Reg> regs = {rA, rB})
{
    ProgramBuilder b;
    for (isa::Reg r : regs) {
        switch (r) {
          case rA: b.li(rA, LOC_A); break;
          case rB: b.li(rB, LOC_B); break;
          case rC: b.li(rC, LOC_C); break;
          default: b.li(rD, LOC_D); break;
        }
    }
    return b;
}

/** "St [x] v" with a fresh data register. */
ProgramBuilder &
storeImm(ProgramBuilder &b, isa::Reg addr_reg, isa::Value v,
         isa::Reg scratch = 7)
{
    return b.li(scratch, v).st(addr_reg, scratch);
}

/** Message-passing producer: St a 1; FenceSS; St b 1. */
Program
mpProducer(bool fenced)
{
    ProgramBuilder b = prelude();
    storeImm(b, rA, 1, 7);
    if (fenced)
        b.fenceSS();
    storeImm(b, rB, 1, 12);
    return b.build();
}

LitmusTest
dekker()
{
    ProgramBuilder p1 = prelude();
    storeImm(p1, rA, 1);
    p1.ld(R(1), rB);
    ProgramBuilder p2 = prelude();
    storeImm(p2, rB, 1);
    p2.ld(R(2), rA);
    return LitmusBuilder("dekker", "Figure 2",
                         "store buffering: can both loads miss both "
                         "stores?")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(p1.build()).thread(p2.build())
        .requireReg(0, R(1), 0).requireReg(1, R(2), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, true)
        .expect(ModelKind::GAM0, true)
        .expect(ModelKind::GAM, true)
        .expect(ModelKind::ARM, true)
        .expect(ModelKind::PerLocSC, true)
        .done();
}

LitmusTest
oota()
{
    ProgramBuilder p1 = prelude();
    p1.ld(R(1), rA).st(rB, R(1));
    ProgramBuilder p2 = prelude();
    p2.ld(R(2), rB).st(rA, R(2));
    return LitmusBuilder("oota", "Figure 5",
                         "out-of-thin-air: value 42 must not appear "
                         "from nowhere")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(p1.build()).thread(p2.build())
        .requireReg(0, R(1), 42).requireReg(1, R(2), 42)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .done();
}

LitmusTest
mpAddr()
{
    ProgramBuilder p1 = prelude();
    storeImm(p1, rA, 1, 7);
    p1.fenceSS();
    p1.st(rB, rA); // St [b] <address of a>
    ProgramBuilder p2 = prelude();
    p2.ld(R(1), rB).ld(R(2), R(1));
    return LitmusBuilder("mp_addr", "Figure 13a",
                         "message passing with address dependency")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(p1.build()).thread(p2.build())
        .requireReg(1, R(1), LOC_A).requireReg(1, R(2), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .done();
}

LitmusTest
mpArtificialAddr()
{
    ProgramBuilder p2 = prelude();
    p2.ld(R(1), rB)
      .add(R(2), rA, R(1))
      .sub(R(2), R(2), R(1)) // r2 = a + r1 - r1
      .ld(R(3), R(2));
    return LitmusBuilder("mp_artificial_addr", "Figure 13b",
                         "artificial data dependency replaces FenceLL")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(mpProducer(true)).thread(p2.build())
        .requireReg(1, R(1), 1)
        .requireReg(1, R(2), LOC_A)
        .requireReg(1, R(3), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .done();
}

LitmusTest
mpMemDep()
{
    ProgramBuilder p2 = prelude({rA, rB, rC});
    p2.ld(R(1), rB)
      .st(rC, R(1))   // St [c] r1
      .ld(R(2), rC)   // r2 = Ld [c]
      .add(R(3), rA, R(2))
      .sub(R(3), R(3), R(2))
      .ld(R(4), R(3));
    return LitmusBuilder("mp_mem_dep", "Figure 13c",
                         "dependency chain through a memory location")
        .location("a", LOC_A).location("b", LOC_B).location("c", LOC_C)
        .thread(mpProducer(true)).thread(p2.build())
        .requireReg(1, R(1), 1)
        .requireReg(1, R(2), 1)
        .requireReg(1, R(3), LOC_A)
        .requireReg(1, R(4), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .done();
}

LitmusTest
mpPrefetch()
{
    ProgramBuilder p1 = prelude();
    storeImm(p1, rA, 1, 7);
    p1.fenceSS();
    p1.st(rB, rA); // St [b] <address of a>
    ProgramBuilder p2 = prelude();
    p2.ld(R(1), rA).ld(R(2), rB).ld(R(3), R(2));
    return LitmusBuilder("mp_prefetch", "Figure 13d",
                         "load-load forwarding would break the "
                         "dependency ordering")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(p1.build()).thread(p2.build())
        .requireReg(1, R(1), 0)
        .requireReg(1, R(2), LOC_A)
        .requireReg(1, R(3), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .expect(ModelKind::AlphaStar, true)
        .done();
}

LitmusTest
corr()
{
    ProgramBuilder p1 = prelude({rA});
    storeImm(p1, rA, 1);
    ProgramBuilder p2 = prelude({rA});
    p2.ld(R(1), rA).ld(R(2), rA);
    return LitmusBuilder("corr", "Figure 14a",
                         "coherent read-read: same-address loads "
                         "observe stores in one order")
        .location("a", LOC_A)
        .thread(p1.build()).thread(p2.build())
        .requireReg(1, R(1), 1).requireReg(1, R(2), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, true)   // RMO-like: allowed
        .expect(ModelKind::GAM, false)   // SALdLd forbids
        .expect(ModelKind::ARM, false)   // different stores: ordered
        .expect(ModelKind::PerLocSC, false)
        .expect(ModelKind::AlphaStar, true)
        .done();
}

LitmusTest
corrFenced()
{
    ProgramBuilder p1 = prelude({rA});
    storeImm(p1, rA, 1);
    ProgramBuilder p2 = prelude({rA});
    p2.ld(R(1), rA).fenceLL().ld(R(2), rA);
    return LitmusBuilder("corr_fenced", "Section III-E (derived)",
                         "CoRR with FenceLL: forbidden even in GAM0")
        .location("a", LOC_A)
        .thread(p1.build()).thread(p2.build())
        .requireReg(1, R(1), 1).requireReg(1, R(2), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .done();
}

LitmusTest
ldIntervSt()
{
    ProgramBuilder p2 = prelude();
    p2.ld(R(1), rB)            // I4: r1 = Ld [b]
      .li(R(7), 2)
      .st(rB, R(7))            // I5: St [b] 2
      .ld(R(2), rB)            // I6: r2 = Ld [b]
      .add(R(6), rA, R(2))
      .sub(R(6), R(6), R(2))
      .ld(R(3), R(6));         // I7: r3 = Ld [a + r2 - r2]
    return LitmusBuilder("ld_interv_st", "Figure 14b",
                         "same-address loads with an intervening store "
                         "are exempt from SALdLd")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(mpProducer(true)).thread(p2.build())
        .requireReg(1, R(1), 1)
        .requireReg(1, R(2), 2)
        .requireReg(1, R(3), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, true)
        .expect(ModelKind::GAM, true)      // paper: GAM allows
        .expect(ModelKind::PerLocSC, true) // paper: per-location SC allows
        // NOTE: constraint SALdLdARM as literally stated in the paper
        // orders I4 before I6 here (they read from different stores), so
        // our ARM variant forbids this outcome.  The paper makes no ARM
        // claim for this test; real ARMv8 allows it because forwarding
        // from a local store is exempt.  See DESIGN.md.
        .expect(ModelKind::ARM, false)
        .done();
}

/** Shared reader thread of RSW / RNSW (paper I4..I9). */
Program
rswReader()
{
    ProgramBuilder p2 = prelude({rA, rB, rC});
    p2.ld(R(1), rB)            // I4: r1 = Ld [b]
      .add(R(2), rC, R(1))
      .sub(R(2), R(2), R(1))   // I5: r2 = c + r1 - r1
      .ld(R(3), R(2))          // I6: r3 = Ld [r2]
      .ld(R(4), rC)            // I7: r4 = Ld [c]
      .add(R(5), rA, R(4))
      .sub(R(5), R(5), R(4))   // I8: r5 = a + r4 - r4
      .ld(R(6), R(5));         // I9: r6 = Ld [r5]
    return p2.build();
}

LitmusTest
rsw()
{
    return LitmusBuilder("rsw", "Figure 14c",
                         "read-same-write: both c-loads read the same "
                         "(initial) store")
        .location("a", LOC_A).location("b", LOC_B).location("c", LOC_C)
        .thread(mpProducer(true)).thread(rswReader())
        .requireReg(1, R(1), 1)
        .requireReg(1, R(2), LOC_C)
        .requireReg(1, R(3), 0)
        .requireReg(1, R(4), 0)
        .requireReg(1, R(5), LOC_A)
        .requireReg(1, R(6), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, true)
        .expect(ModelKind::GAM, false) // SALdLd chains I4..I9
        .expect(ModelKind::ARM, true)  // same store: I6, I7 unordered
        .done();
}

LitmusTest
rnsw()
{
    // Like RSW but P1 re-writes the initial value 0 to c between two
    // FenceSS, so the two c-loads can read *different* stores.
    ProgramBuilder p1 = prelude({rA, rB, rC});
    storeImm(p1, rA, 1, 7);
    p1.fenceSS();
    storeImm(p1, rC, 0, 12);   // I10: St [c] 0 (writes the initial value)
    p1.fenceSS();              // I11
    storeImm(p1, rB, 1, 13);
    return LitmusBuilder("rnsw", "Figure 14d",
                         "read-not-same-write: ARM must forbid what it "
                         "allowed in RSW")
        .location("a", LOC_A).location("b", LOC_B).location("c", LOC_C)
        .thread(p1.build()).thread(rswReader())
        .requireReg(1, R(1), 1)
        .requireReg(1, R(2), LOC_C)
        .requireReg(1, R(3), 0)
        .requireReg(1, R(4), 0)
        .requireReg(1, R(5), LOC_A)
        .requireReg(1, R(6), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, true)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .done();
}

// ---------------------------------------------------------------------
// Classical tests.
// ---------------------------------------------------------------------

LitmusTest
mp(bool fenced)
{
    ProgramBuilder p2 = prelude();
    p2.ld(R(1), rB);
    if (fenced)
        p2.fenceLL();
    p2.ld(R(2), rA);
    return LitmusBuilder(fenced ? "mp_fenced" : "mp",
                         "classic",
                         fenced ? "message passing with FenceSS/FenceLL"
                                : "message passing, no ordering")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(mpProducer(fenced)).thread(p2.build())
        .requireReg(1, R(1), 1).requireReg(1, R(2), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, !fenced)
        .expect(ModelKind::GAM, !fenced)
        .expect(ModelKind::ARM, !fenced)
        .expect(ModelKind::PerLocSC, true)
        .done();
}

LitmusTest
lb()
{
    ProgramBuilder p1 = prelude();
    p1.ld(R(1), rA);
    storeImm(p1, rB, 1);
    ProgramBuilder p2 = prelude();
    p2.ld(R(2), rB);
    storeImm(p2, rA, 1);
    return LitmusBuilder("lb", "classic",
                         "load buffering: loads reordered after younger "
                         "stores (no dependency)")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(p1.build()).thread(p2.build())
        .requireReg(0, R(1), 1).requireReg(1, R(2), 1)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, true)
        .expect(ModelKind::GAM, true)
        .expect(ModelKind::ARM, true)
        .expect(ModelKind::PerLocSC, true)
        .done();
}

LitmusTest
sbFenced()
{
    ProgramBuilder p1 = prelude();
    storeImm(p1, rA, 1);
    p1.fenceSL().ld(R(1), rB);
    ProgramBuilder p2 = prelude();
    storeImm(p2, rB, 1);
    p2.fenceSL().ld(R(2), rA);
    return LitmusBuilder("sb_fenced", "classic",
                         "Dekker with FenceSL restores SC")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(p1.build()).thread(p2.build())
        .requireReg(0, R(1), 0).requireReg(1, R(2), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .done();
}

LitmusTest
wrcDep()
{
    ProgramBuilder p1 = prelude({rA});
    storeImm(p1, rA, 1);
    ProgramBuilder p2 = prelude();
    p2.ld(R(1), rA).st(rB, R(1)); // data dependency into the store
    ProgramBuilder p3 = prelude();
    p3.ld(R(2), rB)
      .add(R(5), rA, R(2))
      .sub(R(5), R(5), R(2))
      .ld(R(3), R(5));
    return LitmusBuilder("wrc_dep", "classic",
                         "write-read causality with dependencies: "
                         "atomic memory forbids")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(p1.build()).thread(p2.build()).thread(p3.build())
        .requireReg(1, R(1), 1)
        .requireReg(2, R(2), 1)
        .requireReg(2, R(3), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .done();
}

LitmusTest
iriw(bool fenced)
{
    ProgramBuilder p1 = prelude({rA});
    storeImm(p1, rA, 1);
    ProgramBuilder p2 = prelude({rB});
    storeImm(p2, rB, 1);
    ProgramBuilder p3 = prelude();
    p3.ld(R(1), rA);
    if (fenced)
        p3.fenceLL();
    p3.ld(R(2), rB);
    ProgramBuilder p4 = prelude();
    p4.ld(R(3), rB);
    if (fenced)
        p4.fenceLL();
    p4.ld(R(4), rA);
    return LitmusBuilder(fenced ? "iriw_fenced" : "iriw", "classic",
                         "independent reads of independent writes: "
                         "atomic memory gives a single store order")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(p1.build()).thread(p2.build())
        .thread(p3.build()).thread(p4.build())
        .requireReg(2, R(1), 1).requireReg(2, R(2), 0)
        .requireReg(3, R(3), 1).requireReg(3, R(4), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, !fenced)
        .expect(ModelKind::GAM, !fenced)
        .expect(ModelKind::ARM, !fenced)
        .done();
}

LitmusTest
twoPlusTwoW(bool fenced)
{
    ProgramBuilder p1 = prelude();
    storeImm(p1, rA, 1, 7);
    if (fenced)
        p1.fenceSS();
    storeImm(p1, rB, 2, 12);
    ProgramBuilder p2 = prelude();
    storeImm(p2, rB, 1, 7);
    if (fenced)
        p2.fenceSS();
    storeImm(p2, rA, 2, 12);
    return LitmusBuilder(fenced ? "2+2w_fenced" : "2+2w", "classic",
                         "can both first stores win the coherence "
                         "order?")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(p1.build()).thread(p2.build())
        .requireMem(LOC_A, 1).requireMem(LOC_B, 1)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, !fenced)
        .expect(ModelKind::GAM, !fenced)
        .expect(ModelKind::ARM, !fenced)
        .done();
}

LitmusTest
coww()
{
    ProgramBuilder p1 = prelude({rA});
    storeImm(p1, rA, 1, 7);
    storeImm(p1, rA, 2, 12);
    return LitmusBuilder("coww", "coherence",
                         "same-address stores stay in program order "
                         "(SAMemSt)")
        .location("a", LOC_A)
        .thread(p1.build())
        .requireMem(LOC_A, 1)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .expect(ModelKind::PerLocSC, false)
        .done();
}

LitmusTest
corw1()
{
    ProgramBuilder p1 = prelude({rA});
    p1.ld(R(1), rA);
    storeImm(p1, rA, 1);
    return LitmusBuilder("corw1", "coherence",
                         "a load may not read a po-younger store")
        .location("a", LOC_A)
        .thread(p1.build())
        .requireReg(0, R(1), 1)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .expect(ModelKind::PerLocSC, false)
        .done();
}

LitmusTest
cowr()
{
    ProgramBuilder p1 = prelude({rA});
    storeImm(p1, rA, 1);
    p1.ld(R(1), rA);
    return LitmusBuilder("cowr", "coherence",
                         "a load reads the latest po-older same-address "
                         "store when no other store intervenes")
        .location("a", LOC_A)
        .thread(p1.build())
        .requireReg(0, R(1), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .expect(ModelKind::PerLocSC, false)
        .done();
}

LitmusTest
addrStCycle()
{
    // P1's store must wait for the *address* of the older load I2 to
    // resolve (constraint AddrSt), which orders it after I1.
    ProgramBuilder p1 = prelude();
    p1.ld(R(1), rA)       // I1: r1 = Ld [a]
      .ld(R(2), R(1))     // I2: r2 = Ld [r1]  (address from I1)
      .li(R(7), 1)
      .st(rB, R(7));      // I3: St [b] 1
    ProgramBuilder p2 = prelude({rA, rB, rC});
    p2.ld(R(3), rB)       // I4: r3 = Ld [b]
      .fenceLS()
      .st(rA, rC);        // I5: St [a] <address of c>
    return LitmusBuilder("addr_st_cycle", "Section III-B (AddrSt)",
                         "a store may not issue before an older memory "
                         "instruction's address resolves")
        .location("a", LOC_A).location("b", LOC_B).location("c", LOC_C)
        .thread(p1.build()).thread(p2.build())
        .requireReg(0, R(1), LOC_C)
        .requireReg(1, R(3), 1)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .done();
}

LitmusTest
brStCycle()
{
    // P1's store must wait for the older branch to resolve (constraint
    // BrSt); the branch depends on the load, closing the cycle.
    ProgramBuilder p1 = prelude();
    p1.ld(R(1), rA)                // I1: r1 = Ld [a]
      .bne(R(1), R(0), "join")     // I2: branch on r1
      .label("join")
      .li(R(7), 1)
      .st(rB, R(7));               // I3: St [b] 1
    ProgramBuilder p2 = prelude();
    p2.ld(R(2), rB)                // I4: r2 = Ld [b]
      .fenceLS()
      .li(R(7), 1)
      .st(rA, R(7));               // I5: St [a] 1
    return LitmusBuilder("br_st_cycle", "Section III-B (BrSt)",
                         "a store may not issue before an older branch "
                         "resolves")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(p1.build()).thread(p2.build())
        .requireReg(0, R(1), 1)
        .requireReg(1, R(2), 1)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .done();
}

LitmusTest
mpCtrl()
{
    // Control dependency between loads does NOT order them: loads may
    // execute speculatively past unresolved branches (Figure 9's
    // speculation, as a two-thread observable).
    ProgramBuilder p2 = prelude();
    p2.ld(R(1), rB)
      .bne(R(1), R(0), "join")
      .label("join")
      .ld(R(2), rA);
    return LitmusBuilder("mp_ctrl", "Section III-B (speculation)",
                         "control dependency does not order load-load")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(mpProducer(true)).thread(p2.build())
        .requireReg(1, R(1), 1).requireReg(1, R(2), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, true)
        .expect(ModelKind::GAM, true)
        .expect(ModelKind::ARM, true)
        .done();
}

LitmusTest
rmwIncInc()
{
    // Two concurrent fetch-and-adds: atomicity forces the total to be
    // visible (final a = 2) and exactly one RMW to read 0.
    ProgramBuilder p1 = prelude({rA});
    p1.li(R(7), 1).rmw(isa::Opcode::AMOADD, R(1), rA, R(7));
    ProgramBuilder p2 = prelude({rA});
    p2.li(R(7), 1).rmw(isa::Opcode::AMOADD, R(2), rA, R(7));
    return LitmusBuilder("rmw_inc_inc", "Section III-C (RMW)",
                         "concurrent fetch-and-add: an increment can "
                         "never be lost")
        .location("a", LOC_A)
        .thread(p1.build()).thread(p2.build())
        .requireMem(LOC_A, 1) // a lost increment
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .done();
}

LitmusTest
rmwMutex()
{
    // Test-and-set lock acquisition: both threads cannot win.
    ProgramBuilder p1 = prelude({rA});
    p1.li(R(7), 1).rmw(isa::Opcode::AMOSWAP, R(1), rA, R(7));
    ProgramBuilder p2 = prelude({rA});
    p2.li(R(7), 1).rmw(isa::Opcode::AMOSWAP, R(2), rA, R(7));
    return LitmusBuilder("rmw_mutex", "Section III-C (RMW)",
                         "test-and-set: at most one thread observes "
                         "the lock free")
        .location("a", LOC_A)
        .thread(p1.build()).thread(p2.build())
        .requireReg(0, R(1), 0).requireReg(1, R(2), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, false)
        .expect(ModelKind::GAM, false)
        .expect(ModelKind::ARM, false)
        .done();
}

LitmusTest
rmwDekker()
{
    // Dekker with RMWs instead of plain stores: the younger load may
    // still execute before the older (different-address) RMW in the
    // GAM family, but TSO's locked-RMW semantics forbid it.
    ProgramBuilder p1 = prelude();
    p1.li(R(7), 1)
      .rmw(isa::Opcode::AMOSWAP, R(1), rA, R(7))
      .ld(R(2), rB);
    ProgramBuilder p2 = prelude();
    p2.li(R(7), 1)
      .rmw(isa::Opcode::AMOSWAP, R(3), rB, R(7))
      .ld(R(4), rA);
    return LitmusBuilder("rmw_dekker", "Section III-C (RMW)",
                         "RMWs do not order younger different-address "
                         "loads in the GAM family")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(p1.build()).thread(p2.build())
        .requireReg(0, R(2), 0).requireReg(1, R(4), 0)
        .expect(ModelKind::SC, false)
        .expect(ModelKind::TSO, false)
        .expect(ModelKind::GAM0, true)
        .expect(ModelKind::GAM, true)
        .expect(ModelKind::ARM, true)
        .done();
}

} // anonymous namespace

const std::vector<LitmusTest> &
paperSuite()
{
    static const std::vector<LitmusTest> suite = {
        dekker(),
        oota(),
        mpAddr(),
        mpArtificialAddr(),
        mpMemDep(),
        mpPrefetch(),
        corr(),
        ldIntervSt(),
        rsw(),
        rnsw(),
    };
    return suite;
}

const std::vector<LitmusTest> &
classicSuite()
{
    static const std::vector<LitmusTest> suite = {
        mp(false),
        mp(true),
        lb(),
        sbFenced(),
        wrcDep(),
        iriw(false),
        iriw(true),
        twoPlusTwoW(false),
        twoPlusTwoW(true),
        coww(),
        corw1(),
        cowr(),
        corrFenced(),
        addrStCycle(),
        brStCycle(),
        mpCtrl(),
        rmwIncInc(),
        rmwMutex(),
        rmwDekker(),
    };
    return suite;
}

std::vector<LitmusTest>
allTests()
{
    std::vector<LitmusTest> all = paperSuite();
    const auto &classics = classicSuite();
    all.insert(all.end(), classics.begin(), classics.end());
    return all;
}

const LitmusTest *
findTest(const std::string &name)
{
    for (const auto &t : paperSuite())
        if (t.name == name)
            return &t;
    for (const auto &t : classicSuite())
        if (t.name == name)
            return &t;
    return nullptr;
}

const LitmusTest &
testByName(const std::string &name)
{
    const LitmusTest *t = findTest(name);
    if (!t)
        fatal("unknown litmus test '%s'", name.c_str());
    return *t;
}

} // namespace gam::litmus
