/**
 * @file
 * A diy-style random litmus-test generator.
 *
 * Following the Herding Cats / diy methodology, a test is derived from
 * a *relation cycle*: a closed sequence of edges over memory events
 * where each edge is either program order on one thread (optionally
 * strengthened with a fence or an address/data/control dependency) or
 * a cross-thread communication relation (rf: store read by a load,
 * co: coherence between stores, fr: load overwritten by a store).
 * Walking the cycle fixes each event's thread, location and kind; the
 * per-thread event sequences are then lowered to assembler programs,
 * and the asked-about condition is the outcome witnessing the cycle
 * (every rf edge observed, every co edge in coherence order).
 *
 * An event that a cycle forces to be both a load and a store (e.g. an
 * rf edge leaving an event a co edge enters) becomes an atomic RMW, so
 * generated tests also exercise the paper's Section III-C atomics.
 *
 * Generation is deterministic: generateTest(seed, index) depends only
 * on its arguments, so any test from a fuzzing run can be regenerated
 * from the pair printed in the report.  Every generated test passes
 * LitmusTest::check() and is small enough for exhaustive exploration
 * and axiomatic enumeration (at most 4 threads, 4 locations, 4 loads
 * and 4 stores).
 */

#ifndef GAM_LITMUS_GENERATOR_HH
#define GAM_LITMUS_GENERATOR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "litmus/test.hh"

namespace gam::litmus
{

/**
 * One edge of an explicitly specified relation cycle (diy notation):
 * the deterministic counterpart of the random generator's internal
 * edge draw, used to spell out named test families (IRIW, WRC+,
 * W+RWC, ...) edge by edge.
 */
struct CycleEdge
{
    enum class Kind : uint8_t
    {
        Rfe,     ///< store read by a load on another thread
        Coe,     ///< coherence between stores on different threads
        Fre,     ///< load overwritten by a store on another thread
        Po,      ///< plain program order
        PoFence, ///< program order through `fence`
        PoAddr,  ///< program order through an address dependency
        PoData,  ///< program order through a data dependency
        PoCtrl,  ///< program order through a control dependency
    };

    Kind kind = Kind::Po;
    /** PoFence edges: which fence sits between the events. */
    isa::FenceKind fence = isa::FenceKind::SS;
    /**
     * Po-family edges: location steps from source to destination
     * event (modulo the cycle's location count; 0 = same location).
     * Communication edges always relate same-location events and
     * ignore this field.
     */
    int locStep = 1;
};

/**
 * The event kind the deterministic lowering assigns to each cycle
 * event: events[i] is the source of edges[i] and the destination of
 * edges[i-1] (cyclically).  An event forced to be both a load and a
 * store by its adjacent edges becomes an RMW; an unconstrained event
 * becomes a load (the deterministic pin of the random generator's
 * coin flip).
 */
enum class CycleEventKind : uint8_t { Load, Store, Rmw };

/**
 * The kinds cycleFromSpec/testFromCycle would assign to the events of
 * @p edges, *before* any realisability rotation -- the canonicalization
 * hook the campaign enumerator (campaign/enumerate.hh) shares with the
 * lowering, so enumeration-time pruning (load/store budgets, fence
 * side matching) agrees with the lowered test edge for edge.
 */
std::vector<CycleEventKind>
cycleEventKinds(const std::vector<CycleEdge> &edges);

/**
 * Deterministically lower an explicit relation cycle to a finalized
 * litmus test over @p numLocations shared locations (2..4).  Follows
 * exactly the random generator's realisability rules -- 2..4
 * communication edges (one thread each), type conflicts become RMWs,
 * the cycle's location walk must close -- and returns nullopt when the
 * specification violates them.  The result passes LitmusTest::check()
 * and carries no expected verdicts (see harness::annotateExpected).
 */
std::optional<LitmusTest>
testFromCycle(const std::string &name,
              const std::vector<CycleEdge> &edges, int numLocations);

/**
 * The named 4-thread-era cycle families, built with testFromCycle():
 * the IRIW family (plain, address-dependent, fenced -- 4 threads), the
 * WRC+ family (dependency-ordered WRC and a 4-thread coherence-writer
 * extension) and W+RWC.  Representative pinned copies with verdicts
 * live under tests/corpus/ (`gam-litmus gen --four-thread`).
 */
const std::vector<LitmusTest> &fourThreadSuite();

/** Generator knobs.  Defaults produce the 2-4 thread standard mix. */
struct GeneratorOptions
{
    /** Thread budget (communication edges per cycle): 2..4. */
    int maxThreads = 4;
    /** Shared-location budget: 2..4, drawn from LOC_A..LOC_D. */
    int maxLocations = 4;
    /** Cycle length in edges (== events): drawn from [minEdges, maxEdges]. */
    int minEdges = 3;
    int maxEdges = 6;
    /** Decorate some po edges with basic fences. */
    bool allowFences = true;
    /** Decorate some po edges with address/data/control dependencies. */
    bool allowDeps = true;
    /** Turn load+store type conflicts into AMOSWAP events. */
    bool allowRmws = true;
};

/**
 * Deterministically generate the @p index-th test of @p seed's stream.
 * The result is named "gen_<seed>_<index>", finalized, and guaranteed
 * to pass LitmusTest::check().  It carries no expected verdicts; see
 * harness::annotateExpected() for engine-derived ones.
 */
LitmusTest generateTest(uint64_t seed, uint64_t index,
                        const GeneratorOptions &options = {});

} // namespace gam::litmus

#endif // GAM_LITMUS_GENERATOR_HH
