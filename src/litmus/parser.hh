/**
 * @file
 * A text format for litmus tests, with a recoverable parser and a
 * canonical printer.
 *
 * The format is line-oriented ('#' starts a comment anywhere outside a
 * quoted string):
 *
 *     litmus mp_fenced
 *     ref "Figure 2"
 *     desc "message passing with a store-store fence"
 *     location a 0x1000
 *     location b 0x1008
 *     init [0x1000] 42
 *
 *     thread 0 {
 *         li r8, 4096
 *         li r7, 1
 *         st [r8], r7
 *         fence.ss
 *     }
 *
 *     condition 0:r1=1 & 1:r2=0 & [0x1000]=2
 *     observe 0:r1 1:r2
 *     universe 0x1000 0x1008
 *     expect SC forbidden
 *     expect GAM allowed
 *
 * Sections: `litmus <name>` is mandatory and first; `ref`/`desc` attach
 * the paper reference and description; `location` names a shared
 * address; `init` sets a non-zero initial memory word; each
 * `thread <n> { ... }` block holds one thread's program in the
 * assembler syntax of isa/assembler.hh; `condition` is the asked-about
 * behavior (a conjunction of register and memory equalities);
 * `observe`/`universe` pin the reported registers and addresses
 * (defaulted by LitmusTest::finalize() when omitted); `expect` records
 * a per-model verdict for the condition.
 *
 * printLitmus() renders canonically (labels resynthesized, combined
 * fences expanded, init words sorted by address), so
 * parse(print(t)) == t and print(parse(print(t))) == print(t):
 * the parse -> print round trip is a fixpoint, which the test suite
 * checks byte-for-byte on every built-in test.
 */

#ifndef GAM_LITMUS_PARSER_HH
#define GAM_LITMUS_PARSER_HH

#include <optional>
#include <string>

#include "litmus/test.hh"

namespace gam::litmus
{

/** One parser diagnostic, pointing at the offending source line. */
struct ParseError
{
    /** 1-based source line; 0 when not tied to a single line. */
    int line = 0;
    std::string message;

    /** e.g. "line 7: expected ']'". */
    std::string toString() const;
};

/** Result of a recoverable parse: a finalized test or a diagnostic. */
struct ParseResult
{
    std::optional<LitmusTest> test;
    /** Valid only when !test. */
    ParseError error;

    explicit operator bool() const { return test.has_value(); }
    LitmusTest &operator*() { return *test; }
    const LitmusTest &operator*() const { return *test; }
    LitmusTest *operator->() { return &*test; }
    const LitmusTest *operator->() const { return &*test; }
};

/**
 * Parse one litmus document.  Never aborts: malformed input of any
 * kind (syntax errors, bad registers, misaligned addresses, backward
 * branches, out-of-range thread ids) is reported as a diagnostic.
 * On success the test is finalized and has passed LitmusTest::check().
 */
ParseResult parseLitmus(const std::string &source);

/** Render @p test in the canonical text form parsed by parseLitmus. */
std::string printLitmus(const LitmusTest &test);

} // namespace gam::litmus

#endif // GAM_LITMUS_PARSER_HH
