#include "litmus/test.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "base/hashing.hh"
#include "base/logging.hh"

namespace gam::litmus
{

void
LitmusTest::finalize()
{
    if (observedRegs.empty()) {
        std::set<std::pair<int, isa::Reg>> regs;
        for (size_t tid = 0; tid < threads.size(); ++tid) {
            for (const auto &instr : threads[tid].code) {
                for (isa::Reg r : instr.writeSet())
                    regs.insert({static_cast<int>(tid), r});
            }
        }
        // Condition registers too: a constraint on a register no
        // thread writes must still be decidable (the register holds
        // its initial 0, and both engines report it identically).
        for (const auto &rc : regCond) {
            if (rc.tid >= 0 && rc.tid < static_cast<int>(threads.size())
                && rc.reg != isa::REG_ZERO && rc.reg >= 0
                && rc.reg < isa::NUM_REGS) {
                regs.insert({rc.tid, rc.reg});
            }
        }
        observedRegs.assign(regs.begin(), regs.end());
    }
    if (addressUniverse.empty()) {
        for (const auto &[name, addr] : locations)
            addressUniverse.push_back(addr);
        std::sort(addressUniverse.begin(), addressUniverse.end());
        addressUniverse.erase(
            std::unique(addressUniverse.begin(), addressUniverse.end()),
            addressUniverse.end());
    }
}

std::optional<std::string>
LitmusTest::check() const
{
    if (threads.empty())
        return "test has no threads";
    if (threads.size() > 64)
        return formatString("test has %zu threads (limit 64)",
                            threads.size());
    for (size_t tid = 0; tid < threads.size(); ++tid) {
        const isa::Program &prog = threads[tid];
        if (prog.size() >= 1024) {
            return formatString(
                "thread %zu has %zu instructions (limit 1023)", tid,
                prog.size());
        }
        if (auto err = prog.check())
            return formatString("thread %zu: %s", tid, err->c_str());
        for (size_t i = 0; i < prog.size(); ++i) {
            const isa::Instruction &instr = prog[i];
            if (instr.isBranch()
                && instr.imm <= static_cast<int64_t>(i)) {
                return formatString(
                    "thread %zu instruction %zu: backward branch to "
                    "%lld (engines require forward branches)",
                    tid, i, static_cast<long long>(instr.imm));
            }
        }
    }

    auto bad_tid = [&](int tid) {
        return tid < 0 || tid >= static_cast<int>(threads.size());
    };
    auto bad_reg = [](isa::Reg r) {
        return r < 0 || r >= isa::NUM_REGS;
    };
    for (const auto &rc : regCond) {
        if (bad_tid(rc.tid))
            return formatString("condition references thread %d, but "
                                "the test has %zu threads",
                                rc.tid, threads.size());
        if (bad_reg(rc.reg))
            return formatString("condition references bad register %d",
                                int(rc.reg));
    }
    for (const auto &[tid, reg] : observedRegs) {
        if (bad_tid(tid))
            return formatString("observed register on thread %d, but "
                                "the test has %zu threads",
                                tid, threads.size());
        if (bad_reg(reg))
            return formatString("observed bad register %d", int(reg));
    }

    auto misaligned = [](isa::Addr addr) { return (addr & 7) != 0; };
    for (const auto &[name, addr] : locations) {
        if (misaligned(addr))
            return formatString("location '%s' at misaligned address "
                                "0x%llx", name.c_str(),
                                static_cast<long long>(addr));
    }
    for (const auto &mc : memCond) {
        if (misaligned(mc.addr))
            return formatString("condition on misaligned address 0x%llx",
                                static_cast<long long>(mc.addr));
    }
    for (isa::Addr addr : addressUniverse) {
        if (misaligned(addr))
            return formatString("observed misaligned address 0x%llx",
                                static_cast<long long>(addr));
    }
    return std::nullopt;
}

bool
LitmusTest::conditionMatches(const Outcome &outcome) const
{
    for (const auto &rc : regCond) {
        bool found = false;
        for (const auto &obs : outcome.regs) {
            if (obs.tid == rc.tid && obs.reg == rc.reg) {
                if (obs.value != rc.value)
                    return false;
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    for (const auto &mc : memCond) {
        bool found = false;
        for (const auto &obs : outcome.mem) {
            if (obs.addr == mc.addr) {
                if (obs.value != mc.value)
                    return false;
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    return true;
}

std::string
LitmusTest::toString() const
{
    std::ostringstream os;
    os << name << " (" << paperRef << ")\n";
    if (!description.empty())
        os << description << "\n";
    for (size_t tid = 0; tid < threads.size(); ++tid) {
        os << "--- thread " << tid << " ---\n";
        os << threads[tid].toString();
    }
    os << "condition:";
    for (const auto &rc : regCond)
        os << " " << rc.tid << ":" << isa::regName(rc.reg) << "="
           << rc.value;
    for (const auto &mc : memCond)
        os << " [0x" << std::hex << mc.addr << std::dec << "]="
           << mc.value;
    os << "\n";
    return os.str();
}

uint64_t
fingerprint(const LitmusTest &test)
{
    StateHasher h;
    h.add(test.threads.size());
    for (const auto &program : test.threads) {
        for (const auto &instr : program.code) {
            h.add(uint64_t(instr.op));
            h.add(uint64_t(uint16_t(instr.dst)));
            h.add(uint64_t(uint16_t(instr.src1)));
            h.add(uint64_t(uint16_t(instr.src2)));
            h.add(uint64_t(instr.imm));
            h.add(uint64_t(instr.fence));
        }
        h.separator();
    }
    // The memory image iterates in unordered_map order; fold it
    // order-insensitively so equal images always hash equally.
    h.add(hashUnorderedPairs(test.initialMem.raw()));
    for (const auto &rc : test.regCond) {
        h.add(uint64_t(rc.tid));
        h.add(uint64_t(uint16_t(rc.reg)));
        h.add(uint64_t(rc.value));
    }
    h.separator();
    for (const auto &mc : test.memCond) {
        h.add(uint64_t(mc.addr));
        h.add(uint64_t(mc.value));
    }
    h.separator();
    for (const auto &[tid, reg] : test.observedRegs) {
        h.add(uint64_t(tid));
        h.add(uint64_t(uint16_t(reg)));
    }
    h.separator();
    for (isa::Addr addr : test.addressUniverse)
        h.add(uint64_t(addr));
    return h.digest();
}

LitmusBuilder::LitmusBuilder(std::string name, std::string paper_ref,
                             std::string description)
{
    test.name = std::move(name);
    test.paperRef = std::move(paper_ref);
    test.description = std::move(description);
}

LitmusBuilder &
LitmusBuilder::location(const std::string &name, isa::Addr addr)
{
    test.locations.emplace_back(name, addr);
    return *this;
}

LitmusBuilder &
LitmusBuilder::initMem(isa::Addr addr, isa::Value value)
{
    test.initialMem.store(addr, value);
    return *this;
}

LitmusBuilder &
LitmusBuilder::thread(isa::Program program)
{
    test.threads.push_back(std::move(program));
    return *this;
}

LitmusBuilder &
LitmusBuilder::requireReg(int tid, isa::Reg reg, isa::Value value)
{
    test.regCond.push_back(RegConstraint{tid, reg, value});
    return *this;
}

LitmusBuilder &
LitmusBuilder::requireMem(isa::Addr addr, isa::Value value)
{
    test.memCond.push_back(MemConstraint{addr, value});
    return *this;
}

LitmusBuilder &
LitmusBuilder::expect(model::ModelKind kind, bool allowed)
{
    test.expected[kind] = allowed;
    return *this;
}

LitmusTest
LitmusBuilder::done()
{
    GAM_ASSERT(!test.threads.empty(), "litmus test '%s' has no threads",
               test.name.c_str());
    test.finalize();
    return test;
}

} // namespace gam::litmus
