#include "litmus/test.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "base/logging.hh"

namespace gam::litmus
{

void
LitmusTest::finalize()
{
    if (observedRegs.empty()) {
        std::set<std::pair<int, isa::Reg>> regs;
        for (size_t tid = 0; tid < threads.size(); ++tid) {
            for (const auto &instr : threads[tid].code) {
                for (isa::Reg r : instr.writeSet())
                    regs.insert({static_cast<int>(tid), r});
            }
        }
        observedRegs.assign(regs.begin(), regs.end());
    }
    if (addressUniverse.empty()) {
        for (const auto &[name, addr] : locations)
            addressUniverse.push_back(addr);
        std::sort(addressUniverse.begin(), addressUniverse.end());
        addressUniverse.erase(
            std::unique(addressUniverse.begin(), addressUniverse.end()),
            addressUniverse.end());
    }
}

bool
LitmusTest::conditionMatches(const Outcome &outcome) const
{
    for (const auto &rc : regCond) {
        bool found = false;
        for (const auto &obs : outcome.regs) {
            if (obs.tid == rc.tid && obs.reg == rc.reg) {
                if (obs.value != rc.value)
                    return false;
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    for (const auto &mc : memCond) {
        bool found = false;
        for (const auto &obs : outcome.mem) {
            if (obs.addr == mc.addr) {
                if (obs.value != mc.value)
                    return false;
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    return true;
}

std::string
LitmusTest::toString() const
{
    std::ostringstream os;
    os << name << " (" << paperRef << ")\n";
    if (!description.empty())
        os << description << "\n";
    for (size_t tid = 0; tid < threads.size(); ++tid) {
        os << "--- thread " << tid << " ---\n";
        os << threads[tid].toString();
    }
    os << "condition:";
    for (const auto &rc : regCond)
        os << " " << rc.tid << ":" << isa::regName(rc.reg) << "="
           << rc.value;
    for (const auto &mc : memCond)
        os << " [0x" << std::hex << mc.addr << std::dec << "]="
           << mc.value;
    os << "\n";
    return os.str();
}

LitmusBuilder::LitmusBuilder(std::string name, std::string paper_ref,
                             std::string description)
{
    test.name = std::move(name);
    test.paperRef = std::move(paper_ref);
    test.description = std::move(description);
}

LitmusBuilder &
LitmusBuilder::location(const std::string &name, isa::Addr addr)
{
    test.locations.emplace_back(name, addr);
    return *this;
}

LitmusBuilder &
LitmusBuilder::initMem(isa::Addr addr, isa::Value value)
{
    test.initialMem.store(addr, value);
    return *this;
}

LitmusBuilder &
LitmusBuilder::thread(isa::Program program)
{
    test.threads.push_back(std::move(program));
    return *this;
}

LitmusBuilder &
LitmusBuilder::requireReg(int tid, isa::Reg reg, isa::Value value)
{
    test.regCond.push_back(RegConstraint{tid, reg, value});
    return *this;
}

LitmusBuilder &
LitmusBuilder::requireMem(isa::Addr addr, isa::Value value)
{
    test.memCond.push_back(MemConstraint{addr, value});
    return *this;
}

LitmusBuilder &
LitmusBuilder::expect(model::ModelKind kind, bool allowed)
{
    test.expected[kind] = allowed;
    return *this;
}

LitmusTest
LitmusBuilder::done()
{
    GAM_ASSERT(!test.threads.empty(), "litmus test '%s' has no threads",
               test.name.c_str());
    test.finalize();
    return test;
}

} // namespace gam::litmus
