/**
 * @file
 * The litmus-test registry.
 *
 * paperSuite() returns exactly the litmus tests printed in the paper
 * (Figures 2, 5, 13a-d, 14a-d) with the paper's verdicts attached;
 * classicSuite() adds the classical differentiating tests (MP, LB, SB,
 * WRC, IRIW, 2+2W, coherence tests, control-dependency tests) with
 * verdicts derived from the models' definitions.
 */

#ifndef GAM_LITMUS_SUITE_HH
#define GAM_LITMUS_SUITE_HH

#include <vector>

#include "litmus/test.hh"

namespace gam::litmus
{

/** Shared-location addresses used by all suite tests. */
constexpr isa::Addr LOC_A = 0x1000;
constexpr isa::Addr LOC_B = 0x1008;
constexpr isa::Addr LOC_C = 0x1010;
constexpr isa::Addr LOC_D = 0x1018;

/** The litmus tests printed in the paper, in order of appearance. */
const std::vector<LitmusTest> &paperSuite();

/** Classical tests covering each ordering constraint. */
const std::vector<LitmusTest> &classicSuite();

/** paperSuite() + classicSuite(). */
std::vector<LitmusTest> allTests();

/**
 * Look up a test by name across both suites; nullptr if unknown.
 * The recoverable path for CLIs and batch frontends.
 */
const LitmusTest *findTest(const std::string &name);

/** findTest(), but fatal() if unknown. */
const LitmusTest &testByName(const std::string &name);

} // namespace gam::litmus

#endif // GAM_LITMUS_SUITE_HH
