#include "litmus/parser.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "base/logging.hh"
#include "isa/assembler.hh"

namespace gam::litmus
{

namespace
{

/** Strip a '#' comment, ignoring '#' inside a quoted string. */
std::string
stripComment(const std::string &line)
{
    bool quoted = false;
    for (size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '\\')
                ++i; // skip the escaped character
            else if (c == '"')
                quoted = false;
        } else if (c == '"') {
            quoted = true;
        } else if (c == '#') {
            return line.substr(0, i);
        }
    }
    return line;
}

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Recoverable tokenizer over one comment-stripped line. */
struct Cursor
{
    explicit Cursor(const std::string &text) : s(text) {}

    void
    skipSpace()
    {
        while (pos < s.size()
               && std::isspace(static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos >= s.size();
    }

    bool
    peek(char c)
    {
        skipSpace();
        return pos < s.size() && s[pos] == c;
    }

    bool
    consume(char c)
    {
        if (!peek(c))
            return false;
        ++pos;
        return true;
    }

    /** Read a word token ([A-Za-z0-9_.*]+); empty if none. */
    std::string
    word()
    {
        skipSpace();
        size_t start = pos;
        while (pos < s.size()
               && (std::isalnum(static_cast<unsigned char>(s[pos]))
                   || s[pos] == '_' || s[pos] == '.' || s[pos] == '*')) {
            ++pos;
        }
        return s.substr(start, pos - start);
    }

    /** Read a decimal or 0x-prefixed number; nullopt if absent/overflow. */
    std::optional<int64_t>
    number()
    {
        skipSpace();
        const size_t start = pos;
        bool neg = false;
        if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) {
            neg = s[pos] == '-';
            ++pos;
        }
        int base = 10;
        if (pos + 1 < s.size() && s[pos] == '0'
            && (s[pos + 1] == 'x' || s[pos + 1] == 'X')) {
            base = 16;
            pos += 2;
        }
        const size_t digits = pos;
        auto is_digit = [&](char c) {
            return base == 16
                ? std::isxdigit(static_cast<unsigned char>(c)) != 0
                : std::isdigit(static_cast<unsigned char>(c)) != 0;
        };
        while (pos < s.size() && is_digit(s[pos]))
            ++pos;
        uint64_t magnitude = 0;
        auto [end, ec] = std::from_chars(s.data() + digits,
                                         s.data() + pos, magnitude, base);
        constexpr uint64_t max_pos = uint64_t(
            std::numeric_limits<int64_t>::max());
        if (pos == digits || end != s.data() + pos
            || ec != std::errc()
            || magnitude > (neg ? max_pos + 1 : max_pos)) {
            pos = start;
            return std::nullopt;
        }
        if (neg) {
            // Negate in uint64 space: -(int64_t)2^63 is signed overflow.
            return static_cast<int64_t>(~magnitude + 1);
        }
        return static_cast<int64_t>(magnitude);
    }

    /** Read a register name (rN / fN); nullopt on anything else. */
    std::optional<isa::Reg>
    reg()
    {
        skipSpace();
        const size_t start = pos;
        std::string name = word();
        if (name.size() < 2 || (name[0] != 'r' && name[0] != 'f')) {
            pos = start;
            return std::nullopt;
        }
        int n = 0;
        for (size_t i = 1; i < name.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(name[i]))
                || n > isa::NUM_REGS) {
                pos = start;
                return std::nullopt;
            }
            n = n * 10 + (name[i] - '0');
        }
        if (name[0] == 'r' && n < isa::NUM_INT_REGS)
            return isa::R(n);
        if (name[0] == 'f' && n < isa::NUM_FP_REGS)
            return isa::F(n);
        pos = start;
        return std::nullopt;
    }

    /** Read a quoted string with \" and \\ escapes. */
    std::optional<std::string>
    quoted()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (pos < s.size()) {
            const char c = s[pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos >= s.size())
                    return std::nullopt;
                out += s[pos++];
            } else {
                out += c;
            }
        }
        return std::nullopt; // unterminated
    }

    /** The trimmed remainder of the line. */
    std::string
    rest()
    {
        skipSpace();
        return trim(s.substr(pos));
    }

    const std::string &s;
    size_t pos = 0;
};

std::string
hexAddr(isa::Addr addr)
{
    return formatString("0x%llx", static_cast<unsigned long long>(addr));
}

} // anonymous namespace

std::string
ParseError::toString() const
{
    if (line == 0)
        return message;
    return formatString("line %d: %s", line, message.c_str());
}

ParseResult
parseLitmus(const std::string &source)
{
    std::vector<std::string> lines;
    {
        std::istringstream stream(source);
        std::string line;
        while (std::getline(stream, line))
            lines.push_back(line);
    }

    auto fail = [](int line, std::string msg) {
        ParseResult r;
        r.error = {line, std::move(msg)};
        return r;
    };

    LitmusTest t;
    bool saw_name = false;
    bool saw_condition = false, saw_observe = false, saw_universe = false;

    size_t i = 0;
    while (i < lines.size()) {
        const int line_no = static_cast<int>(i) + 1;
        const std::string text = stripComment(lines[i]);
        Cursor c(text);
        if (c.atEnd()) {
            ++i;
            continue;
        }

        const std::string key = c.word();
        if (key.empty())
            return fail(line_no, "expected a section keyword");

        if (key == "litmus") {
            if (saw_name)
                return fail(line_no, "duplicate 'litmus' line");
            const std::string name = c.rest();
            if (name.empty())
                return fail(line_no, "missing test name");
            if (name.find_first_of(" \t") != std::string::npos)
                return fail(line_no, "test name must not contain spaces");
            t.name = name;
            saw_name = true;
            ++i;
            continue;
        }
        if (!saw_name) {
            return fail(line_no,
                        "the document must start with 'litmus <name>'");
        }

        if (key == "ref" || key == "desc") {
            auto s = c.quoted();
            if (!s)
                return fail(line_no, "expected a quoted string");
            if (!c.atEnd())
                return fail(line_no, "trailing characters");
            (key == "ref" ? t.paperRef : t.description) = *s;
        } else if (key == "location") {
            const std::string name = c.word();
            if (name.empty())
                return fail(line_no, "expected a location name");
            auto addr = c.number();
            if (!addr)
                return fail(line_no, "expected an address");
            if (*addr < 0 || (*addr & 7)) {
                return fail(line_no, "location address must be "
                                     "non-negative and 8-byte aligned");
            }
            if (!c.atEnd())
                return fail(line_no, "trailing characters");
            for (const auto &[existing, _] : t.locations) {
                if (existing == name) {
                    return fail(line_no,
                                "duplicate location '" + name + "'");
                }
            }
            t.locations.emplace_back(name, *addr);
        } else if (key == "init") {
            if (!c.consume('['))
                return fail(line_no, "expected '['");
            auto addr = c.number();
            if (!addr)
                return fail(line_no, "expected an address");
            if (!c.consume(']'))
                return fail(line_no, "expected ']'");
            auto value = c.number();
            if (!value)
                return fail(line_no, "expected an initial value");
            if (*addr < 0 || (*addr & 7)) {
                return fail(line_no, "init address must be non-negative "
                                     "and 8-byte aligned");
            }
            if (!c.atEnd())
                return fail(line_no, "trailing characters");
            t.initialMem.store(*addr, *value);
        } else if (key == "thread") {
            auto tid = c.number();
            if (!tid)
                return fail(line_no, "expected a thread index");
            if (*tid != static_cast<int64_t>(t.threads.size())) {
                return fail(line_no,
                            formatString("expected 'thread %zu' (thread "
                                         "blocks are sequential)",
                                         t.threads.size()));
            }
            if (!c.consume('{') || !c.atEnd())
                return fail(line_no, "expected '{' ending the header");
            const size_t body = i + 1;
            size_t end = body;
            std::string asm_src;
            while (end < lines.size()
                   && trim(stripComment(lines[end])) != "}") {
                asm_src += lines[end];
                asm_src += '\n';
                ++end;
            }
            if (end == lines.size())
                return fail(line_no, "unterminated thread block");
            auto assembled = isa::assembleOrError(asm_src);
            if (!assembled) {
                const auto &d = assembled.diag;
                if (d.line > 0) {
                    return fail(static_cast<int>(body) + d.line,
                                d.message + " (in '" + d.text + "')");
                }
                return fail(line_no, d.message);
            }
            t.threads.push_back(*std::move(assembled.program));
            i = end + 1;
            continue;
        } else if (key == "condition") {
            if (saw_condition)
                return fail(line_no, "duplicate 'condition' line");
            saw_condition = true;
            for (;;) {
                if (c.consume('[')) {
                    auto addr = c.number();
                    if (!addr)
                        return fail(line_no, "expected an address");
                    if (!c.consume(']'))
                        return fail(line_no, "expected ']'");
                    if (!c.consume('='))
                        return fail(line_no, "expected '='");
                    auto value = c.number();
                    if (!value)
                        return fail(line_no, "expected a value");
                    if (*addr < 0 || (*addr & 7)) {
                        return fail(line_no,
                                    "condition address must be "
                                    "non-negative and 8-byte aligned");
                    }
                    t.memCond.push_back({*addr, *value});
                } else {
                    auto tid = c.number();
                    if (!tid)
                        return fail(line_no, "expected '<tid>:<reg>=<value"
                                             ">' or '[<addr>]=<value>'");
                    // Range-check before the int cast: a huge tid must
                    // not silently alias a valid thread.
                    if (*tid < 0 || *tid >= 64)
                        return fail(line_no, "thread index out of range");
                    if (!c.consume(':'))
                        return fail(line_no, "expected ':'");
                    auto reg = c.reg();
                    if (!reg)
                        return fail(line_no, "expected a register");
                    if (!c.consume('='))
                        return fail(line_no, "expected '='");
                    auto value = c.number();
                    if (!value)
                        return fail(line_no, "expected a value");
                    t.regCond.push_back(
                        {static_cast<int>(*tid), *reg, *value});
                }
                if (!c.consume('&'))
                    break;
            }
            if (!c.atEnd())
                return fail(line_no, "trailing characters");
            if (t.regCond.empty() && t.memCond.empty())
                return fail(line_no, "empty condition");
        } else if (key == "observe") {
            if (saw_observe)
                return fail(line_no, "duplicate 'observe' line");
            saw_observe = true;
            while (!c.atEnd()) {
                auto tid = c.number();
                if (!tid)
                    return fail(line_no, "expected '<tid>:<reg>'");
                if (*tid < 0 || *tid >= 64)
                    return fail(line_no, "thread index out of range");
                if (!c.consume(':'))
                    return fail(line_no, "expected ':'");
                auto reg = c.reg();
                if (!reg)
                    return fail(line_no, "expected a register");
                t.observedRegs.emplace_back(static_cast<int>(*tid),
                                            *reg);
            }
            if (t.observedRegs.empty())
                return fail(line_no, "expected at least one register");
        } else if (key == "universe") {
            if (saw_universe)
                return fail(line_no, "duplicate 'universe' line");
            saw_universe = true;
            while (!c.atEnd()) {
                auto addr = c.number();
                if (!addr)
                    return fail(line_no, "expected an address");
                if (*addr < 0 || (*addr & 7)) {
                    return fail(line_no, "universe address must be "
                                         "non-negative and 8-byte "
                                         "aligned");
                }
                t.addressUniverse.push_back(*addr);
            }
            if (t.addressUniverse.empty())
                return fail(line_no, "expected at least one address");
        } else if (key == "expect") {
            const std::string name = c.word();
            auto kind = model::modelFromName(name);
            if (!kind)
                return fail(line_no, "unknown model '" + name + "'");
            const std::string verdict = c.word();
            if (verdict != "allowed" && verdict != "forbidden")
                return fail(line_no, "expected 'allowed' or 'forbidden'");
            if (!c.atEnd())
                return fail(line_no, "trailing characters");
            if (t.expected.count(*kind)) {
                return fail(line_no,
                            "duplicate 'expect " + name + "' line");
            }
            t.expected[*kind] = verdict == "allowed";
        } else {
            return fail(line_no, "unknown section keyword '" + key + "'");
        }
        ++i;
    }

    if (!saw_name)
        return fail(0, "empty document: expected 'litmus <name>'");
    if (t.threads.empty())
        return fail(0, "test has no threads");
    t.finalize();
    if (auto err = t.check())
        return fail(0, *err);

    ParseResult r;
    r.test = std::move(t);
    return r;
}

std::string
printLitmus(const LitmusTest &t)
{
    auto quote = [](const std::string &s) {
        std::string q = "\"";
        for (char ch : s) {
            if (ch == '"' || ch == '\\')
                q += '\\';
            q += ch;
        }
        q += '"';
        return q;
    };

    std::ostringstream os;
    os << "litmus " << t.name << "\n";
    if (!t.paperRef.empty())
        os << "ref " << quote(t.paperRef) << "\n";
    if (!t.description.empty())
        os << "desc " << quote(t.description) << "\n";
    for (const auto &[name, addr] : t.locations)
        os << "location " << name << " " << hexAddr(addr) << "\n";

    std::vector<std::pair<isa::Addr, isa::Value>> init(
        t.initialMem.raw().begin(), t.initialMem.raw().end());
    std::sort(init.begin(), init.end());
    for (const auto &[addr, value] : init)
        os << "init [" << hexAddr(addr) << "] " << value << "\n";

    for (size_t tid = 0; tid < t.threads.size(); ++tid) {
        os << "\nthread " << tid << " {\n"
           << isa::disassemble(t.threads[tid]) << "}\n";
    }

    std::ostringstream tail;
    if (!t.regCond.empty() || !t.memCond.empty()) {
        tail << "condition ";
        bool first = true;
        for (const auto &rc : t.regCond) {
            if (!first)
                tail << " & ";
            first = false;
            tail << rc.tid << ":" << isa::regName(rc.reg) << "="
                 << rc.value;
        }
        for (const auto &mc : t.memCond) {
            if (!first)
                tail << " & ";
            first = false;
            tail << "[" << hexAddr(mc.addr) << "]=" << mc.value;
        }
        tail << "\n";
    }
    if (!t.observedRegs.empty()) {
        tail << "observe";
        for (const auto &[tid, reg] : t.observedRegs)
            tail << " " << tid << ":" << isa::regName(reg);
        tail << "\n";
    }
    if (!t.addressUniverse.empty()) {
        tail << "universe";
        for (isa::Addr addr : t.addressUniverse)
            tail << " " << hexAddr(addr);
        tail << "\n";
    }
    for (const auto &[kind, allowed] : t.expected) {
        tail << "expect " << model::modelName(kind)
             << (allowed ? " allowed" : " forbidden") << "\n";
    }
    const std::string tail_str = tail.str();
    if (!tail_str.empty())
        os << "\n" << tail_str;
    return os.str();
}

} // namespace gam::litmus
