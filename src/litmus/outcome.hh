/**
 * @file
 * Program outcomes: the observable result of one complete execution of a
 * multi-threaded program.  Both verification engines (the axiomatic
 * checker and the operational explorer) report sets of Outcomes, which
 * makes the paper's equivalence theorem directly testable: the two sets
 * must be equal.
 */

#ifndef GAM_LITMUS_OUTCOME_HH
#define GAM_LITMUS_OUTCOME_HH

#include <compare>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "isa/instruction.hh"
#include "isa/mem_image.hh"

namespace gam::litmus
{

/** Final value of one observed register of one thread. */
struct RegObservation
{
    int tid;
    isa::Reg reg;
    isa::Value value;

    auto operator<=>(const RegObservation &) const = default;
};

/** Final value of one observed memory word. */
struct MemObservation
{
    isa::Addr addr;
    isa::Value value;

    auto operator<=>(const MemObservation &) const = default;
};

/** One execution's observable result. Observations are kept sorted. */
struct Outcome
{
    std::vector<RegObservation> regs;
    std::vector<MemObservation> mem;

    /** Sort observations into canonical order (call before comparing). */
    void canonicalize();

    auto operator<=>(const Outcome &) const = default;

    /** e.g. "0:r1=1 1:r2=0 | [0x1000]=1". */
    std::string toString() const;
};

/** A set of outcomes, as enumerated by a verification engine. */
using OutcomeSet = std::set<Outcome>;

/**
 * Order-independent 64-bit digest of an outcome set (the std::set
 * iterates in its canonical order, so equal sets hash equally).  The
 * compact round-trip witness the persistent campaign store records
 * next to each verdict: a re-decided decision must reproduce both the
 * verdict and this digest exactly (campaign/store.hh).
 */
uint64_t outcomeSetHash(const OutcomeSet &outcomes);

/** Multi-line rendering of an outcome set. */
std::string toString(const OutcomeSet &outcomes);

} // namespace gam::litmus

#endif // GAM_LITMUS_OUTCOME_HH
