#include "litmus/generator.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"
#include "isa/program.hh"
#include "litmus/suite.hh"

namespace gam::litmus
{

namespace
{

using isa::ProgramBuilder;
using isa::R;

/** The relations a cycle edge can be drawn from. */
enum class EdgeKind : uint8_t
{
    Rfe,       ///< store read by a load on another thread
    Coe,       ///< coherence order between stores on different threads
    Fre,       ///< load overwritten by a store on another thread
    Po,        ///< plain program order
    PoFence,   ///< program order through a basic fence
    PoDepAddr, ///< program order through an address dependency
    PoDepData, ///< program order through a data dependency
    PoDepCtrl, ///< program order through a control dependency
};

bool
isComm(EdgeKind k)
{
    return k == EdgeKind::Rfe || k == EdgeKind::Coe || k == EdgeKind::Fre;
}

/** Event-type requirement an edge imposes on one of its endpoints. */
enum class Need : uint8_t { Free, Load, Store };

/** Requirement on the edge's source event. */
Need
tailNeed(EdgeKind k)
{
    switch (k) {
      case EdgeKind::Rfe: return Need::Store;
      case EdgeKind::Coe: return Need::Store;
      case EdgeKind::Fre: return Need::Load;
      // A dependency must flow out of a produced value, i.e. a load.
      case EdgeKind::PoDepAddr:
      case EdgeKind::PoDepData:
      case EdgeKind::PoDepCtrl: return Need::Load;
      default: return Need::Free;
    }
}

/** Requirement on the edge's destination event. */
Need
headNeed(EdgeKind k)
{
    switch (k) {
      case EdgeKind::Rfe: return Need::Load;
      case EdgeKind::Coe: return Need::Store;
      case EdgeKind::Fre: return Need::Store;
      // A data dependency must flow into store data.
      case EdgeKind::PoDepData: return Need::Store;
      default: return Need::Free;
    }
}

enum class EvKind : uint8_t { Load, Store, Rmw };

struct Event
{
    EvKind kind = EvKind::Load;
    int thread = 0;
    int loc = 0;
    /** The value this event's store side writes (stores and RMWs). */
    isa::Value storeValue = 0;
    /** The value this event's load side observes in the witness. */
    isa::Value witnessValue = 0;
};

struct Cycle
{
    std::vector<EdgeKind> edges;
    std::vector<Event> events; ///< events[i] is the source of edges[i]
    std::vector<isa::FenceKind> fences; ///< valid where edges[i] is PoFence
    int threads = 0;
};

/** One generation attempt; nullopt when the draw is not realisable. */
std::optional<Cycle>
tryCycle(Rng &rng, const GeneratorOptions &opts)
{
    Cycle cy;
    const int n = static_cast<int>(
        rng.rangeInclusive(opts.minEdges, opts.maxEdges));

    for (int i = 0; i < n; ++i) {
        if (rng.chance(1, 2)) {
            constexpr EdgeKind comm[] = {EdgeKind::Rfe, EdgeKind::Coe,
                                         EdgeKind::Fre};
            cy.edges.push_back(comm[rng.range(3)]);
        } else if (opts.allowFences && rng.chance(1, 3)) {
            cy.edges.push_back(EdgeKind::PoFence);
        } else if (opts.allowDeps && rng.chance(1, 3)) {
            constexpr EdgeKind dep[] = {EdgeKind::PoDepAddr,
                                        EdgeKind::PoDepData,
                                        EdgeKind::PoDepCtrl};
            cy.edges.push_back(dep[rng.range(3)]);
        } else {
            cy.edges.push_back(EdgeKind::Po);
        }
    }

    // Thread budget: one thread per communication edge.
    int comm_count = 0;
    int last_comm = -1;
    for (int i = 0; i < n; ++i) {
        if (isComm(cy.edges[i])) {
            ++comm_count;
            last_comm = i;
        }
    }
    if (comm_count < 2 || comm_count > opts.maxThreads)
        return std::nullopt;
    cy.threads = comm_count;

    // Rotate so the cycle's closing edge (back to event 0) is external.
    std::rotate(cy.edges.begin(),
                cy.edges.begin() + (last_comm + 1) % n, cy.edges.end());

    // Event kinds from the adjacent edges' requirements.
    cy.events.resize(n);
    int loads = 0, stores = 0;
    for (int i = 0; i < n; ++i) {
        const Need in = headNeed(cy.edges[(i + n - 1) % n]);
        const Need out = tailNeed(cy.edges[i]);
        EvKind kind;
        if ((in == Need::Load && out == Need::Store)
            || (in == Need::Store && out == Need::Load)) {
            if (!opts.allowRmws)
                return std::nullopt;
            kind = EvKind::Rmw;
        } else if (in == Need::Load || out == Need::Load) {
            kind = EvKind::Load;
        } else if (in == Need::Store || out == Need::Store) {
            kind = EvKind::Store;
        } else {
            kind = rng.chance(1, 2) ? EvKind::Load : EvKind::Store;
        }
        cy.events[i].kind = kind;
        loads += kind != EvKind::Store;
        stores += kind != EvKind::Load;
    }
    // Keep both engines cheap: bounded rf and coherence enumeration.
    if (loads > 4 || stores > 4)
        return std::nullopt;

    // Threads: a communication edge moves to a fresh thread.
    for (int i = 0; i + 1 < n; ++i) {
        cy.events[i + 1].thread =
            cy.events[i].thread + (isComm(cy.edges[i]) ? 1 : 0);
    }

    // Locations: communication needs same-address endpoints; program
    // order usually changes address (keeping it sometimes exercises the
    // same-address orderings that separate the GAM family).
    const int nlocs = static_cast<int>(
        rng.rangeInclusive(2, opts.maxLocations));
    for (int i = 0; i + 1 < n; ++i) {
        const int cur = cy.events[i].loc;
        if (isComm(cy.edges[i]) || rng.chance(1, 4)) {
            cy.events[i + 1].loc = cur;
        } else {
            const int step = 1 + static_cast<int>(
                rng.range(uint64_t(nlocs - 1)));
            cy.events[i + 1].loc = (cur + step) % nlocs;
        }
    }
    // The closing edge is communication: it needs loc[n-1] == loc[0].
    if (cy.events[n - 1].loc != cy.events[0].loc)
        return std::nullopt;

    // Store values: distinct per location so rf is observable.
    std::vector<isa::Value> counter(size_t(nlocs), 0);
    for (Event &ev : cy.events)
        if (ev.kind != EvKind::Load)
            ev.storeValue = ++counter[size_t(ev.loc)];

    // Witness values: an rf edge is observed exactly; an RMW whose
    // incoming edge is coherence must (by atomicity) read its co
    // predecessor; everything else reads the initial 0.
    for (int i = 0; i < n; ++i) {
        Event &ev = cy.events[i];
        if (ev.kind == EvKind::Store)
            continue;
        const int prev = (i + n - 1) % n;
        const EdgeKind in = cy.edges[prev];
        if (in == EdgeKind::Rfe
            || (ev.kind == EvKind::Rmw && in == EdgeKind::Coe)) {
            ev.witnessValue = cy.events[prev].storeValue;
        }
    }

    // Fence kinds: match the adjacent events' access types (an RMW
    // counts as either side; pick one).
    cy.fences.assign(size_t(n), isa::FenceKind::LL);
    for (int i = 0; i < n; ++i) {
        if (cy.edges[i] != EdgeKind::PoFence)
            continue;
        auto side = [&](const Event &ev) {
            if (ev.kind == EvKind::Rmw)
                return rng.chance(1, 2) ? isa::MemType::Load
                                        : isa::MemType::Store;
            return ev.kind == EvKind::Load ? isa::MemType::Load
                                           : isa::MemType::Store;
        };
        const bool pre_load = side(cy.events[i]) == isa::MemType::Load;
        const bool post_load =
            side(cy.events[(i + 1) % n]) == isa::MemType::Load;
        cy.fences[size_t(i)] = pre_load
            ? (post_load ? isa::FenceKind::LL : isa::FenceKind::LS)
            : (post_load ? isa::FenceKind::SL : isa::FenceKind::SS);
    }
    return cy;
}

/** Lower a realisable cycle to a finalized LitmusTest. */
LitmusTest
lowerCycle(const Cycle &cy, const std::string &name)
{
    const int n = static_cast<int>(cy.events.size());
    LitmusBuilder builder(name, "generated");

    // Only the locations some event touches get named and observed.
    std::vector<bool> loc_used(4, false);
    for (const Event &ev : cy.events)
        loc_used[size_t(ev.loc)] = true;
    for (int loc = 0; loc < 4; ++loc) {
        if (loc_used[size_t(loc)]) {
            builder.location(std::string(1, char('a' + loc)),
                             LOC_A + 8 * loc);
        }
    }

    struct Observed
    {
        int event;
        int tid;
        isa::Reg reg;
    };
    std::vector<Observed> observed;

    for (int tid = 0; tid < cy.threads; ++tid) {
        ProgramBuilder b;
        // Address prelude, one register per location (r8..r11).
        for (int loc = 0; loc < 4; ++loc) {
            bool used = false;
            for (int i = 0; i < n; ++i) {
                used |= cy.events[i].thread == tid
                    && cy.events[i].loc == loc;
            }
            if (used)
                b.li(R(8 + loc), LOC_A + 8 * loc);
        }

        int next_obs = 1;    // r1.. hold observed load results
        int next_scratch = 12; // r12.. hold store data and dep chains
        isa::Reg prev_obs = R(0); // previous event's load register
        int dep_label = 0;

        for (int i = 0; i < n; ++i) {
            const Event &ev = cy.events[i];
            if (ev.thread != tid)
                continue;
            const EdgeKind in = cy.edges[(i + n - 1) % n];
            const bool in_po = !isComm(in)
                && cy.events[(i + n - 1) % n].thread == tid;

            isa::Reg addr_reg = R(8 + ev.loc);
            if (in_po && in == EdgeKind::PoFence)
                b.fence(cy.fences[size_t((i + n - 1) % n)]);
            if (in_po && in == EdgeKind::PoDepCtrl) {
                const std::string label =
                    "d" + std::to_string(dep_label++);
                b.beq(prev_obs, prev_obs, label);
                b.label(label);
            }
            if (in_po && in == EdgeKind::PoDepAddr) {
                const isa::Reg t = R(next_scratch++);
                b.xorr(t, prev_obs, prev_obs);
                b.add(t, t, addr_reg);
                addr_reg = t;
            }

            switch (ev.kind) {
              case EvKind::Load: {
                const isa::Reg dst = R(next_obs++);
                b.ld(dst, addr_reg);
                observed.push_back({i, tid, dst});
                prev_obs = dst;
                break;
              }
              case EvKind::Store: {
                const isa::Reg v = R(next_scratch++);
                if (in_po && in == EdgeKind::PoDepData) {
                    const isa::Reg t = R(next_scratch++);
                    b.xorr(t, prev_obs, prev_obs);
                    b.aluImm(isa::Opcode::ADDI, v, t, ev.storeValue);
                } else {
                    b.li(v, ev.storeValue);
                }
                b.st(addr_reg, v);
                break;
              }
              case EvKind::Rmw: {
                const isa::Reg v = R(next_scratch++);
                if (in_po && in == EdgeKind::PoDepData) {
                    const isa::Reg t = R(next_scratch++);
                    b.xorr(t, prev_obs, prev_obs);
                    b.aluImm(isa::Opcode::ADDI, v, t, ev.storeValue);
                } else {
                    b.li(v, ev.storeValue);
                }
                const isa::Reg dst = R(next_obs++);
                b.rmw(isa::Opcode::AMOSWAP, dst, R(8 + ev.loc), v);
                observed.push_back({i, tid, dst});
                prev_obs = dst;
                break;
              }
            }
        }
        builder.thread(b.build());
    }

    // The witness condition: every load observes its cycle value...
    for (const Observed &obs : observed) {
        builder.requireReg(obs.tid, obs.reg,
                           cy.events[size_t(obs.event)].witnessValue);
    }

    // ... and each written location ends on its coherence-final value.
    // Kahn's algorithm over the explicit co edges, index tie-break.
    for (int loc = 0; loc < 4; ++loc) {
        std::vector<int> writers;
        for (int i = 0; i < n; ++i) {
            if (cy.events[i].loc == loc
                && cy.events[i].kind != EvKind::Load) {
                writers.push_back(i);
            }
        }
        if (writers.empty())
            continue;
        std::vector<std::pair<int, int>> co_edges;
        for (int i = 0; i < n; ++i) {
            if (cy.edges[i] == EdgeKind::Coe
                && cy.events[i].loc == loc) {
                co_edges.emplace_back(i, (i + 1) % n);
            }
        }
        int last = -1;
        std::vector<int> pending = writers;
        while (!pending.empty()) {
            size_t pick = pending.size();
            for (size_t k = 0; k < pending.size(); ++k) {
                bool blocked = false;
                for (auto [src, dst] : co_edges) {
                    if (dst == pending[k]
                        && std::find(pending.begin(), pending.end(), src)
                               != pending.end()) {
                        blocked = true;
                        break;
                    }
                }
                if (!blocked) {
                    pick = k;
                    break;
                }
            }
            // The per-location co constraints of one cycle are acyclic;
            // guard anyway so a malformed draw cannot loop forever.
            if (pick == pending.size())
                pick = 0;
            last = pending[size_t(pick)];
            pending.erase(pending.begin() +
                          static_cast<std::ptrdiff_t>(pick));
        }
        builder.requireMem(LOC_A + 8 * loc,
                           cy.events[size_t(last)].storeValue);
    }

    LitmusTest test = builder.done();
    // Observe only the load results: address/scratch registers are
    // compile-time constants and would just bloat every outcome.
    test.observedRegs.clear();
    for (const Observed &obs : observed)
        test.observedRegs.emplace_back(obs.tid, obs.reg);
    std::sort(test.observedRegs.begin(), test.observedRegs.end());
    return test;
}

/** Deterministic fallback shape (store buffering) for failed draws. */
LitmusTest
fallbackTest(const std::string &name)
{
    ProgramBuilder p0;
    p0.li(R(8), LOC_A).li(R(9), LOC_B);
    p0.li(R(12), 1).st(R(8), R(12)).ld(R(1), R(9));
    ProgramBuilder p1;
    p1.li(R(8), LOC_A).li(R(9), LOC_B);
    p1.li(R(12), 1).st(R(9), R(12)).ld(R(1), R(8));
    return LitmusBuilder(name, "generated")
        .location("a", LOC_A).location("b", LOC_B)
        .thread(p0.build()).thread(p1.build())
        .requireReg(0, R(1), 0).requireReg(1, R(1), 0)
        .done();
}

/**
 * Deterministically realise an explicit edge specification as a Cycle,
 * mirroring tryCycle()'s rules with every free choice pinned: an
 * unconstrained event becomes a load, and locations follow the spec's
 * locStep walk instead of a random one.
 */
std::optional<Cycle>
cycleFromSpec(const std::vector<CycleEdge> &spec, int nlocs)
{
    const int n = static_cast<int>(spec.size());
    if (n < 3 || nlocs < 2 || nlocs > 4)
        return std::nullopt;

    std::vector<EdgeKind> kinds;
    std::vector<isa::FenceKind> fences;
    std::vector<int> steps;
    for (const CycleEdge &e : spec) {
        switch (e.kind) {
          case CycleEdge::Kind::Rfe:
            kinds.push_back(EdgeKind::Rfe);
            break;
          case CycleEdge::Kind::Coe:
            kinds.push_back(EdgeKind::Coe);
            break;
          case CycleEdge::Kind::Fre:
            kinds.push_back(EdgeKind::Fre);
            break;
          case CycleEdge::Kind::Po:
            kinds.push_back(EdgeKind::Po);
            break;
          case CycleEdge::Kind::PoFence:
            kinds.push_back(EdgeKind::PoFence);
            break;
          case CycleEdge::Kind::PoAddr:
            kinds.push_back(EdgeKind::PoDepAddr);
            break;
          case CycleEdge::Kind::PoData:
            kinds.push_back(EdgeKind::PoDepData);
            break;
          case CycleEdge::Kind::PoCtrl:
            kinds.push_back(EdgeKind::PoDepCtrl);
            break;
        }
        fences.push_back(e.fence);
        steps.push_back(isComm(kinds.back()) ? 0 : e.locStep);
    }

    // Thread budget: one thread per communication edge; the closing
    // edge (back to event 0) must be communication, so rotate the
    // whole spec to put the last such edge at the end.
    int comm_count = 0;
    int last_comm = -1;
    for (int i = 0; i < n; ++i) {
        if (isComm(kinds[i])) {
            ++comm_count;
            last_comm = i;
        }
    }
    if (comm_count < 2 || comm_count > 4)
        return std::nullopt;
    const int shift = (last_comm + 1) % n;
    std::rotate(kinds.begin(), kinds.begin() + shift, kinds.end());
    std::rotate(fences.begin(), fences.begin() + shift, fences.end());
    std::rotate(steps.begin(), steps.begin() + shift, steps.end());

    Cycle cy;
    cy.edges = kinds;
    cy.fences = fences;
    cy.threads = comm_count;

    // Event kinds from the adjacent edges' requirements; a free event
    // is a load (the deterministic pin of tryCycle's coin flip).
    cy.events.resize(size_t(n));
    for (int i = 0; i < n; ++i) {
        const Need in = headNeed(cy.edges[size_t((i + n - 1) % n)]);
        const Need out = tailNeed(cy.edges[size_t(i)]);
        EvKind kind;
        if ((in == Need::Load && out == Need::Store)
            || (in == Need::Store && out == Need::Load)) {
            kind = EvKind::Rmw;
        } else if (in == Need::Store || out == Need::Store) {
            kind = EvKind::Store;
        } else {
            kind = EvKind::Load;
        }
        cy.events[size_t(i)].kind = kind;
    }

    // Threads: a communication edge moves to a fresh thread.
    for (int i = 0; i + 1 < n; ++i) {
        cy.events[size_t(i) + 1].thread =
            cy.events[size_t(i)].thread
            + (isComm(cy.edges[size_t(i)]) ? 1 : 0);
    }

    // Locations along the spec's walk; the closing communication edge
    // needs the walk to return to event 0's location.
    for (int i = 0; i + 1 < n; ++i) {
        const int cur = cy.events[size_t(i)].loc;
        const int step = steps[size_t(i)];
        cy.events[size_t(i) + 1].loc =
            ((cur + step) % nlocs + nlocs) % nlocs;
    }
    if (cy.events[size_t(n) - 1].loc != cy.events[0].loc)
        return std::nullopt;

    // Store values: distinct per location so rf is observable.
    std::vector<isa::Value> counter(size_t(nlocs), 0);
    for (Event &ev : cy.events)
        if (ev.kind != EvKind::Load)
            ev.storeValue = ++counter[size_t(ev.loc)];

    // Witness values: an rf edge is observed exactly; an RMW whose
    // incoming edge is coherence must (by atomicity) read its co
    // predecessor; everything else reads the initial 0.
    for (int i = 0; i < n; ++i) {
        Event &ev = cy.events[size_t(i)];
        if (ev.kind == EvKind::Store)
            continue;
        const int prev = (i + n - 1) % n;
        const EdgeKind in = cy.edges[size_t(prev)];
        if (in == EdgeKind::Rfe
            || (ev.kind == EvKind::Rmw && in == EdgeKind::Coe)) {
            ev.witnessValue = cy.events[size_t(prev)].storeValue;
        }
    }
    return cy;
}

/** The internal edge relation a public CycleEdge::Kind names. */
EdgeKind
edgeKindOf(CycleEdge::Kind kind)
{
    switch (kind) {
      case CycleEdge::Kind::Rfe: return EdgeKind::Rfe;
      case CycleEdge::Kind::Coe: return EdgeKind::Coe;
      case CycleEdge::Kind::Fre: return EdgeKind::Fre;
      case CycleEdge::Kind::Po: return EdgeKind::Po;
      case CycleEdge::Kind::PoFence: return EdgeKind::PoFence;
      case CycleEdge::Kind::PoAddr: return EdgeKind::PoDepAddr;
      case CycleEdge::Kind::PoData: return EdgeKind::PoDepData;
      case CycleEdge::Kind::PoCtrl: return EdgeKind::PoDepCtrl;
    }
    return EdgeKind::Po;
}

} // anonymous namespace

std::vector<CycleEventKind>
cycleEventKinds(const std::vector<CycleEdge> &edges)
{
    const int n = static_cast<int>(edges.size());
    std::vector<CycleEventKind> kinds(size_t(n), CycleEventKind::Load);
    for (int i = 0; i < n; ++i) {
        const Need in =
            headNeed(edgeKindOf(edges[size_t((i + n - 1) % n)].kind));
        const Need out = tailNeed(edgeKindOf(edges[size_t(i)].kind));
        if ((in == Need::Load && out == Need::Store)
            || (in == Need::Store && out == Need::Load)) {
            kinds[size_t(i)] = CycleEventKind::Rmw;
        } else if (in == Need::Store || out == Need::Store) {
            kinds[size_t(i)] = CycleEventKind::Store;
        } else {
            kinds[size_t(i)] = CycleEventKind::Load;
        }
    }
    return kinds;
}

std::optional<LitmusTest>
testFromCycle(const std::string &name,
              const std::vector<CycleEdge> &edges, int numLocations)
{
    auto cycle = cycleFromSpec(edges, numLocations);
    if (!cycle)
        return std::nullopt;
    LitmusTest test = lowerCycle(*cycle, name);
    if (test.check())
        return std::nullopt; // spec exceeded a lowering limit
    return test;
}

const std::vector<LitmusTest> &
fourThreadSuite()
{
    static const std::vector<LitmusTest> suite = [] {
        using K = CycleEdge::Kind;
        std::vector<LitmusTest> out;
        auto add = [&](const std::string &name,
                       const std::vector<CycleEdge> &edges, int nlocs) {
            auto test = testFromCycle(name, edges, nlocs);
            GAM_ASSERT(test.has_value(),
                       "fourThreadSuite: cycle '%s' is not realisable",
                       name.c_str());
            out.push_back(*std::move(test));
        };
        const CycleEdge rfe{K::Rfe, isa::FenceKind::SS, 0};
        const CycleEdge fre{K::Fre, isa::FenceKind::SS, 0};
        const CycleEdge coe{K::Coe, isa::FenceKind::SS, 0};
        const CycleEdge po{K::Po, isa::FenceKind::SS, 1};
        const CycleEdge addr_dep{K::PoAddr, isa::FenceKind::SS, 1};
        const CycleEdge data_dep{K::PoData, isa::FenceKind::SS, 1};
        const CycleEdge fence_ll{K::PoFence, isa::FenceKind::LL, 1};
        const CycleEdge fence_sl{K::PoFence, isa::FenceKind::SL, 1};

        // The IRIW family (4 threads): two writers, two observers
        // disagreeing on the write order -- the shape the GAM paper's
        // non-multi-copy-atomicity discussion revolves around.
        add("iriw_pos", {rfe, po, fre, rfe, po, fre}, 2);
        add("iriw_addrs", {rfe, addr_dep, fre, rfe, addr_dep, fre}, 2);
        add("iriw_fences", {rfe, fence_ll, fre, rfe, fence_ll, fre}, 2);

        // The WRC+ family: write-to-read causality through a middleman
        // thread, with and without dependency ordering, plus a
        // 4-thread variant that closes the cycle through a fourth
        // thread's coherence write.
        add("wrc_pos", {rfe, po, rfe, po, fre}, 2);
        add("wrc_data_addr", {rfe, data_dep, rfe, addr_dep, fre}, 2);
        add("wrc_coe_w", {rfe, data_dep, rfe, addr_dep, fre, coe}, 2);

        // W+RWC: a read-write causality chain racing a plain write.
        add("w_rwc", {rfe, po, fre, po, fre}, 2);
        add("w_rwc_fences", {rfe, fence_ll, fre, fence_sl, fre}, 2);
        return out;
    }();
    return suite;
}

LitmusTest
generateTest(uint64_t seed, uint64_t index,
             const GeneratorOptions &options)
{
    // The lowering has exactly 4 location slots (names a..d, address
    // registers r8..r11); clamp every knob to its supported range.
    GeneratorOptions opts = options;
    opts.maxThreads = std::clamp(opts.maxThreads, 2, 4);
    opts.maxLocations = std::clamp(opts.maxLocations, 2, 4);
    opts.minEdges = std::clamp(opts.minEdges, 3, 8);
    opts.maxEdges = std::clamp(opts.maxEdges, opts.minEdges, 8);

    // Mix (seed, index) into one stream seed so tests are independent
    // and any single test can be regenerated in O(1).
    Rng rng(seed + 0x9e3779b97f4a7c15ull * (index + 1));
    const std::string name = "gen_" + std::to_string(seed) + "_"
        + std::to_string(index);

    for (int attempt = 0; attempt < 64; ++attempt) {
        auto cycle = tryCycle(rng, opts);
        if (!cycle)
            continue;
        LitmusTest test = lowerCycle(*cycle, name);
        if (!test.check())
            return test;
    }
    // Statistically unreachable; keeps generateTest total.
    return fallbackTest(name);
}

} // namespace gam::litmus
