/**
 * @file
 * Fixed-width ASCII table rendering used by the benchmark harness to
 * print the paper's tables and figure series.
 */

#ifndef GAM_BASE_TABLE_HH
#define GAM_BASE_TABLE_HH

#include <string>
#include <vector>

namespace gam
{

/** A simple left/right aligned text table. */
class Table
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. Rows may be ragged; missing cells are blank. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void separator();

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Render the table; first column left aligned, rest right aligned. */
    std::string render() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool isSeparator = false;
    };

    std::vector<std::string> headerCells;
    std::vector<Row> rows;
};

} // namespace gam

#endif // GAM_BASE_TABLE_HH
