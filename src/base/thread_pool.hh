/**
 * @file
 * A fixed-size worker thread pool.
 *
 * Used by the harness to run whole litmus suites concurrently and by
 * any other batch workload.  Tasks are plain std::function<void()>;
 * submitters coordinate results through their own storage (e.g. one
 * pre-sized output slot per task), which keeps merged results
 * deterministic regardless of completion order.
 */

#ifndef GAM_BASE_THREAD_POOL_HH
#define GAM_BASE_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gam
{

/** Fixed pool of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means hardware concurrency. */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains remaining tasks, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution by some worker. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned threadCount() const { return unsigned(workers.size()); }

    /**
     * Run task(i) for every i in [0, n) on the pool and wait.  Results
     * should be written to per-index slots for determinism.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &task);

    /** The number of threads a default-constructed pool would use. */
    static unsigned defaultThreadCount();

  private:
    void workerLoop();

    std::mutex mu;
    std::condition_variable taskReady;
    std::condition_variable idle;
    std::deque<std::function<void()>> tasks;
    std::vector<std::thread> workers;
    size_t inFlight = 0;
    bool stopping = false;
};

} // namespace gam

#endif // GAM_BASE_THREAD_POOL_HH
