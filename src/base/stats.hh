/**
 * @file
 * A small statistics package: named scalar counters, distributions and
 * formula-style derived values, plus the avg/max summaries the paper's
 * Tables II and III report.
 */

#ifndef GAM_BASE_STATS_HH
#define GAM_BASE_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace gam
{

/** A named monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : _name(std::move(name)) {}

    void operator++() { ++_value; }
    void operator++(int) { ++_value; }
    void operator+=(uint64_t delta) { _value += delta; }

    uint64_t value() const { return _value; }
    const std::string &name() const { return _name; }
    void reset() { _value = 0; }

  private:
    std::string _name;
    uint64_t _value = 0;
};

/** Accumulates samples and reports count/min/max/mean/stddev. */
class Distribution
{
  public:
    Distribution() = default;
    explicit Distribution(std::string name) : _name(std::move(name)) {}

    void sample(double v);

    uint64_t count() const { return _count; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    /** Population standard deviation. */
    double stddev() const;
    void reset();

    const std::string &name() const { return _name; }

  private:
    std::string _name;
    uint64_t _count = 0;
    double _sum = 0.0;
    double _sumSq = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * A flat registry of named scalar statistics.  Pipeline components dump
 * their counters here; the harness reads them back by name.
 */
class StatGroup
{
  public:
    /** Set (or overwrite) a named scalar value. */
    void set(const std::string &name, double value) { values[name] = value; }

    /** Add to a named scalar value (default-initialised to 0). */
    void add(const std::string &name, double delta) { values[name] += delta; }

    /** Read a named scalar; returns 0 for unknown names. */
    double
    get(const std::string &name) const
    {
        auto it = values.find(name);
        return it == values.end() ? 0.0 : it->second;
    }

    bool has(const std::string &name) const { return values.count(name); }

    const std::map<std::string, double> &all() const { return values; }

    /** Render "name = value" lines, sorted by name. */
    std::string format() const;

  private:
    std::map<std::string, double> values;
};

/**
 * avg/max summary across a set of per-benchmark observations, the exact
 * shape of the rows in the paper's Tables II and III.
 */
struct Summary
{
    double average = 0.0;
    double maximum = 0.0;

    /** Summarise a vector of per-benchmark values. */
    static Summary of(const std::vector<double> &values);
};

} // namespace gam

#endif // GAM_BASE_STATS_HH
