#include "base/logging.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

namespace gam
{

uint64_t
monotonicNanos()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - epoch)
                        .count());
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

namespace
{

void
defaultLogSink(const LogRecord &rec)
{
    // The historical format: warnings to stderr, status to stdout.
    if (rec.level >= LogLevel::Warn) {
        std::fprintf(stderr, "%s: %s\n", logLevelName(rec.level),
                     rec.message.c_str());
    } else {
        std::fprintf(stdout, "%s: %s\n", logLevelName(rec.level),
                     rec.message.c_str());
    }
}

std::mutex sinkMutex;
LogSink currentSink; // empty = default
std::atomic<int> minLevel{int(LogLevel::Debug)};

} // namespace

LogSink
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    LogSink prev = std::move(currentSink);
    currentSink = std::move(sink);
    return prev;
}

void
setLogMinLevel(LogLevel level)
{
    minLevel.store(int(level), std::memory_order_relaxed);
}

LogLevel
logMinLevel()
{
    return LogLevel(minLevel.load(std::memory_order_relaxed));
}

void
logMessage(LogLevel level, std::string message)
{
    if (int(level) < minLevel.load(std::memory_order_relaxed))
        return;
    LogRecord rec{level, monotonicNanos(), std::move(message)};
    std::lock_guard<std::mutex> lock(sinkMutex);
    if (currentSink)
        currentSink(rec);
    else
        defaultLogSink(rec);
}

std::string
vformatString(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
formatString(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    logMessage(LogLevel::Warn, std::move(s));
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    logMessage(LogLevel::Info, std::move(s));
}

} // namespace gam
