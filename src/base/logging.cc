#include "base/logging.hh"

#include <cstdio>
#include <vector>

namespace gam
{

std::string
vformatString(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
formatString(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", s.c_str());
}

} // namespace gam
