#include "base/thread_pool.hh"

namespace gam
{

unsigned
ThreadPool::defaultThreadCount()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu);
        stopping = true;
    }
    taskReady.notify_all();
    for (auto &worker : workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mu);
        tasks.push_back(std::move(task));
        ++inFlight;
    }
    taskReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    idle.wait(lock, [this] { return inFlight == 0; });
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &task)
{
    for (size_t i = 0; i < n; ++i)
        submit([&task, i] { task(i); });
    wait();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu);
            taskReady.wait(lock,
                           [this] { return stopping || !tasks.empty(); });
            if (tasks.empty())
                return; // stopping and drained
            task = std::move(tasks.front());
            tasks.pop_front();
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mu);
            if (--inFlight == 0)
                idle.notify_all();
        }
    }
}

} // namespace gam
