#include "base/stats.hh"

#include <cmath>
#include <sstream>

namespace gam
{

void
Distribution::sample(double v)
{
    ++_count;
    _sum += v;
    _sumSq += v * v;
    _min = std::min(_min, v);
    _max = std::max(_max, v);
}

double
Distribution::stddev() const
{
    if (_count == 0)
        return 0.0;
    double m = mean();
    double var = _sumSq / _count - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    _count = 0;
    _sum = 0.0;
    _sumSq = 0.0;
    _min = std::numeric_limits<double>::infinity();
    _max = -std::numeric_limits<double>::infinity();
}

std::string
StatGroup::format() const
{
    std::ostringstream os;
    for (const auto &[name, value] : values)
        os << name << " = " << value << "\n";
    return os.str();
}

Summary
Summary::of(const std::vector<double> &values)
{
    Summary s;
    if (values.empty())
        return s;
    double sum = 0.0;
    double mx = values.front();
    for (double v : values) {
        sum += v;
        mx = std::max(mx, v);
    }
    s.average = sum / values.size();
    s.maximum = mx;
    return s;
}

} // namespace gam
