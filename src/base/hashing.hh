/**
 * @file
 * 64-bit hashing utilities for compact state interning.
 *
 * The explorer memoises visited machine states by a 64-bit fingerprint
 * instead of a full text encoding.  StateHasher is a streaming hasher:
 * machines feed their state words directly into it, avoiding any string
 * construction on the hot path.  The mixing function is the splitmix64
 * finaliser (public domain), which passes all of SMHasher's avalanche
 * tests; combination follows the multiply-xor fold used by wyhash.
 */

#ifndef GAM_BASE_HASHING_HH
#define GAM_BASE_HASHING_HH

#include <cstdint>
#include <cstring>
#include <string_view>

namespace gam
{

/** splitmix64 finaliser: full-avalanche 64-bit bit mixer. */
constexpr uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Order-sensitive combination of two 64-bit hashes. */
constexpr uint64_t
hashCombine(uint64_t seed, uint64_t value)
{
    return mix64(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6)
                         + (seed >> 2)));
}

/**
 * Streaming 64-bit hasher.  Feed fixed-width words with add(); the
 * running value is order-sensitive, so structurally different states
 * yield different streams.  Feed an explicit separator between
 * variable-length sections to avoid concatenation ambiguity.
 */
class StateHasher
{
  public:
    explicit StateHasher(uint64_t seed = 0x2545f4914f6cdd1dull)
        : h(seed)
    {}

    void
    add(uint64_t word)
    {
        h = hashCombine(h, word);
    }

    /** Mark a section boundary (e.g. end of one processor's ROB). */
    void
    separator()
    {
        add(0x9e3779b97f4a7c15ull);
    }

    uint64_t
    digest() const
    {
        return mix64(h);
    }

  private:
    uint64_t h;
};

/** FNV-1a 64-bit over raw bytes, finalised with mix64. */
inline uint64_t
hashBytes(const void *data, size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return mix64(h);
}

inline uint64_t
hashString(std::string_view s)
{
    return hashBytes(s.data(), s.size());
}

/**
 * Order-insensitive hash of a map-like range of (key, value) pairs:
 * per-entry hashes combine by addition, so iteration order (e.g. of a
 * std::unordered_map) does not affect the result.
 */
template <typename MapLike>
uint64_t
hashUnorderedPairs(const MapLike &m)
{
    uint64_t acc = 0x6a09e667f3bcc909ull;
    for (const auto &[k, v] : m)
        acc += mix64(hashCombine(mix64(uint64_t(k)), uint64_t(v)));
    return mix64(acc);
}

} // namespace gam

#endif // GAM_BASE_HASHING_HH
