/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of this library (random litmus programs,
 * synthetic workload data, branch noise) draws from this generator so that
 * all experiments and property tests are exactly reproducible from a seed.
 * The implementation is splitmix64 feeding xoshiro256**, both public
 * domain algorithms.
 */

#ifndef GAM_BASE_RNG_HH
#define GAM_BASE_RNG_HH

#include <cstdint>

namespace gam
{

/** Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /**
     * Re-initialise the state from a 64-bit seed.
     *
     * The four state words are drawn from the splitmix64 stream and
     * are guaranteed pairwise distinct for every seed: a drawn word
     * that collides with an earlier one is skipped and the next stream
     * value taken instead.  Pairwise-distinct words also rule out the
     * all-zero state, which is the one fixed point xoshiro256** can
     * never leave.
     */
    void
    reseed(uint64_t seed)
    {
        uint64_t x = seed;
        for (int i = 0; i < 4; ++i) {
            uint64_t word = splitmix64(x);
            for (int j = 0; j < i;) {
                if (state[j] == word) {
                    word = splitmix64(x);
                    j = 0;
                } else {
                    ++j;
                }
            }
            state[i] = word;
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state[1] * 5, 7) * 9;
        const uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    uint64_t
    range(uint64_t bound)
    {
        // Bounded rejection sampling to avoid modulo bias.
        const uint64_t threshold = (-bound) % bound;
        for (;;) {
            uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform value in [lo, hi] inclusive. */
    int64_t
    rangeInclusive(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            range(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw: true with probability num/den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        return range(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t
    splitmix64(uint64_t &x)
    {
        uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t state[4];
};

} // namespace gam

#endif // GAM_BASE_RNG_HH
