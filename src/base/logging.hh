/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  - an internal invariant was violated (a bug in this library);
 *            aborts so a debugger or core dump can capture the state.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, malformed program); exits with code 1.
 * warn()   - something suspicious happened but execution continues.
 * inform() - plain status output.
 */

#ifndef GAM_BASE_LOGGING_HH
#define GAM_BASE_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gam
{

/** Render a printf-style format string into a std::string. */
std::string vformatString(const char *fmt, va_list ap);

/** Render a printf-style format string into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious condition; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert-like helper carrying a formatted message.  Unlike assert() this
 * is active in all build types: memory-model checkers must not silently
 * accept corrupted state in release builds.
 */
#define GAM_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::gam::panic("assertion '%s' failed at %s:%d: %s", #cond,       \
                         __FILE__, __LINE__,                                \
                         ::gam::formatString(__VA_ARGS__).c_str());         \
        }                                                                   \
    } while (0)

} // namespace gam

#endif // GAM_BASE_LOGGING_HH
