/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  - an internal invariant was violated (a bug in this library);
 *            aborts so a debugger or core dump can capture the state.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, malformed program); exits with code 1.
 * warn()   - something suspicious happened but execution continues.
 * inform() - plain status output.
 *
 * warn() and inform() route through a pluggable, level-filtered log
 * sink (setLogSink / setLogMinLevel): tests capture records instead of
 * scraping stderr, and frontends can tag or silence library chatter.
 * Every record carries a monotonic timestamp from the same epoch the
 * tracing layer uses, so log lines and trace spans line up.  panic()
 * and fatal() terminate the process and stay hard-wired to stderr.
 */

#ifndef GAM_BASE_LOGGING_HH
#define GAM_BASE_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace gam
{

/**
 * Nanoseconds on the steady clock since a process-wide epoch (the
 * first call).  Shared by log records and trace spans.
 */
uint64_t monotonicNanos();

/** Severity of a log record, in increasing order. */
enum class LogLevel { Debug, Info, Warn, Error };

/** Lowercase name of @p level ("debug", "info", "warn", "error"). */
const char *logLevelName(LogLevel level);

/** One emitted log message. */
struct LogRecord
{
    LogLevel level = LogLevel::Info;
    /** monotonicNanos() at emission. */
    uint64_t monotonicNs = 0;
    std::string message;
};

/** Receives every record at or above the minimum level. */
using LogSink = std::function<void(const LogRecord &)>;

/**
 * Install @p sink as the process-wide log sink and return the previous
 * one.  A null sink restores the default (warn/error to stderr as
 * "warn: ...", info/debug to stdout as "info: ..." / "debug: ...").
 */
LogSink setLogSink(LogSink sink);

/** Drop records below @p level before they reach the sink. */
void setLogMinLevel(LogLevel level);

LogLevel logMinLevel();

/** Emit @p message at @p level through the installed sink. */
void logMessage(LogLevel level, std::string message);

/** Render a printf-style format string into a std::string. */
std::string vformatString(const char *fmt, va_list ap);

/** Render a printf-style format string into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious condition; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert-like helper carrying a formatted message.  Unlike assert() this
 * is active in all build types: memory-model checkers must not silently
 * accept corrupted state in release builds.
 */
#define GAM_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::gam::panic("assertion '%s' failed at %s:%d: %s", #cond,       \
                         __FILE__, __LINE__,                                \
                         ::gam::formatString(__VA_ARGS__).c_str());         \
        }                                                                   \
    } while (0)

} // namespace gam

#endif // GAM_BASE_LOGGING_HH
