#include "base/table.hh"

#include <cstdio>
#include <sstream>

namespace gam
{

void
Table::header(std::vector<std::string> cells)
{
    headerCells = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows.push_back(Row{std::move(cells), false});
}

void
Table::separator()
{
    rows.push_back(Row{{}, true});
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::render() const
{
    // Determine column count and widths.
    size_t cols = headerCells.size();
    for (const auto &r : rows)
        cols = std::max(cols, r.cells.size());
    std::vector<size_t> width(cols, 0);
    auto fit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            width[c] = std::max(width[c], cells[c].size());
    };
    fit(headerCells);
    for (const auto &r : rows)
        if (!r.isSeparator)
            fit(r.cells);

    size_t total = 0;
    for (size_t c = 0; c < cols; ++c)
        total += width[c] + (c ? 2 : 0);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cols; ++c) {
            std::string cell = c < cells.size() ? cells[c] : "";
            if (c)
                os << "  ";
            if (c == 0) {
                os << cell << std::string(width[c] - cell.size(), ' ');
            } else {
                os << std::string(width[c] - cell.size(), ' ') << cell;
            }
        }
        os << "\n";
    };

    if (!headerCells.empty()) {
        emit(headerCells);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows) {
        if (r.isSeparator)
            os << std::string(total, '-') << "\n";
        else
            emit(r.cells);
    }
    return os.str();
}

} // namespace gam
