/**
 * @file
 * The synthetic single-thread workload suite standing in for SPEC
 * CPU2006 in the paper's evaluation (see DESIGN.md, Substitutions).
 *
 * Each workload is a self-contained mini-ISA program plus initial
 * memory, designed to exercise one region of the locality / dependence
 * / branch-behavior space:
 *
 *   pointer chasing, list walking       (mcf/omnetpp-like)
 *   streaming and strided FP            (lbm/libquantum/bwaves-like)
 *   hashing, searching, string scanning (gobmk/perlbench-like)
 *   dense FP kernels                    (namd/calculix-like)
 *   same-address-heavy patterns         (stack/queue/histogram/late
 *                                        address resolution) that
 *                                        trigger the SALdLd machinery
 *                                        measured in Tables II and III
 */

#ifndef GAM_WORKLOAD_WORKLOADS_HH
#define GAM_WORKLOAD_WORKLOADS_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/mem_image.hh"
#include "isa/program.hh"

namespace gam::workload
{

/** A program plus its initial memory image. */
struct BuiltWorkload
{
    isa::Program program;
    isa::MemImage mem;
};

/** A named workload generator. */
struct WorkloadSpec
{
    std::string name;
    std::string description;
    /** Build deterministically (internal fixed seeds). */
    std::function<BuiltWorkload()> build;
    /** Trace budget: dynamic uop count is below this. */
    uint64_t maxUops;
};

/** The 16-entry suite used by the Figure 18 / Table II / III benches. */
const std::vector<WorkloadSpec> &workloadSuite();

/** Look up one workload; nullptr if unknown (the recoverable path). */
const WorkloadSpec *findWorkload(const std::string &name);

/** findWorkload(), but fatal() if unknown. */
const WorkloadSpec &workloadByName(const std::string &name);

} // namespace gam::workload

#endif // GAM_WORKLOAD_WORKLOADS_HH
