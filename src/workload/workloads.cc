#include "workload/workloads.hh"

#include <bit>

#include "base/logging.hh"
#include "base/rng.hh"

namespace gam::workload
{

using isa::Addr;
using isa::F;
using isa::MemImage;
using isa::Opcode;
using isa::Program;
using isa::ProgramBuilder;
using isa::R;
using isa::Value;

namespace
{

// Register conventions used by all workloads:
//   r1..r7    computation
//   r8..r15   pointers / addresses
//   r16..r20  loop counters and masks
//   f1..f8    floating point
constexpr isa::Reg rSum = 1, rV = 2, rT = 3, rT2 = 4;
constexpr isa::Reg rP = 8, rQ = 9, rBase = 10, rBase2 = 11, rBase3 = 12;
constexpr isa::Reg rCnt = 16, rCnt2 = 17, rMask = 18, rKey = 19;

constexpr Addr dataBase = 0x100000;

Value
fbits(double d)
{
    return std::bit_cast<Value>(d);
}

/** Standard loop tail: decrement rCnt, branch back while nonzero. */
void
loopTail(ProgramBuilder &b, const std::string &label)
{
    b.addi(rCnt, rCnt, -1);
    b.bne(rCnt, R(0), label);
}

// ------------------------------------------------------------------
// mcf-like: random pointer chasing through a 1 MB cyclic permutation.
// Every load's address depends on the previous load: latency bound.
// ------------------------------------------------------------------
BuiltWorkload
ptrChase()
{
    constexpr int nodes = 1 << 14; // 16384 x 64 B = 1 MB
    constexpr int steps = 42000;

    MemImage mem;
    Rng rng(0xc0ffee01);
    std::vector<int> order(nodes);
    for (int i = 0; i < nodes; ++i)
        order[i] = i;
    for (int i = nodes - 1; i > 0; --i)
        std::swap(order[i], order[rng.range(uint64_t(i) + 1)]);
    // One big cycle: order[i] -> order[i+1].
    for (int i = 0; i < nodes; ++i) {
        Addr at = dataBase + Addr(order[i]) * 64;
        Addr next = dataBase + Addr(order[(i + 1) % nodes]) * 64;
        mem.store(at, next);
    }

    ProgramBuilder b;
    b.li(rP, dataBase)
     .ld(rP, rP) // enter the cycle
     .li(rCnt, steps)
     .label("loop")
     .ld(rP, rP)
     .raw(isa::makeAluImm(Opcode::XORI, rSum, rP, 0x55));
    loopTail(b, "loop");
    b.halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// Sequential linked-list walk accumulating payloads (perimeter-like).
// ------------------------------------------------------------------
BuiltWorkload
listSum()
{
    constexpr int nodes = 1 << 13; // 8192 x 16 B
    constexpr int passes = 4;

    MemImage mem;
    for (int i = 0; i < nodes; ++i) {
        Addr at = dataBase + Addr(i) * 16;
        Addr next = i + 1 < nodes ? at + 16 : 0;
        mem.store(at, next);
        mem.store(at + 8, (i * 2654435761u) & 0xffff);
    }

    ProgramBuilder b;
    b.li(rCnt, passes)
     .label("pass")
     .li(rP, dataBase)
     .label("walk")
     .ld(rV, rP, 8)
     .add(rSum, rSum, rV)
     .ld(rP, rP)
     .bne(rP, R(0), "walk");
    loopTail(b, "pass");
    b.halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// STREAM triad: a[i] = b[i] + s * c[i] over 128 KB arrays (FP).
// ------------------------------------------------------------------
BuiltWorkload
streamTriad()
{
    constexpr int n = 16384;
    constexpr Addr aBase = dataBase;
    constexpr Addr bBase = dataBase + Addr(n) * 8;
    constexpr Addr cBase = dataBase + Addr(n) * 16;

    MemImage mem;
    for (int i = 0; i < n; ++i) {
        mem.store(bBase + Addr(i) * 8, fbits(1.0 + i * 0.5));
        mem.store(cBase + Addr(i) * 8, fbits(2.0 - i * 0.25));
    }

    ProgramBuilder b;
    b.li(rP, aBase).li(rQ, bBase).li(rBase, cBase)
     .li(rT, fbits(3.0))
     .raw(isa::makeAluImm(Opcode::FMOV, F(3), rT, 0)) // f3 = scalar
     .li(rCnt, n)
     .label("loop")
     .ld(F(1), rQ)
     .ld(F(2), rBase)
     .alu(Opcode::FMUL, F(2), F(2), F(3))
     .alu(Opcode::FADD, F(1), F(1), F(2))
     .st(rP, F(1))
     .addi(rP, rP, 8)
     .addi(rQ, rQ, 8)
     .addi(rBase, rBase, 8);
    loopTail(b, "loop");
    b.halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// Strided reads touching one word per two cache lines (bwaves-like).
// ------------------------------------------------------------------
BuiltWorkload
strideSum()
{
    constexpr int words = 1 << 15; // 256 KB
    constexpr int stride = 128;    // bytes
    constexpr int passes = 16;

    MemImage mem;
    for (int i = 0; i < words; ++i)
        mem.store(dataBase + Addr(i) * 8, i * 7);

    ProgramBuilder b;
    b.li(rCnt2, passes)
     .li(rQ, dataBase)
     .label("pass")
     .mov(rP, rQ)
     .li(rCnt, words * 8 / stride)
     .label("loop")
     .ld(rV, rP)
     .add(rSum, rSum, rV)
     .addi(rP, rP, stride);
    loopTail(b, "loop");
    b.addi(rQ, rQ, 8) // shift start so passes touch different words
     .addi(rCnt2, rCnt2, -1)
     .bne(rCnt2, R(0), "pass")
     .halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// GUPS-style random read-modify-write over a 1 MB table.  Random
// collisions create same-address load/store interleavings.
// ------------------------------------------------------------------
BuiltWorkload
randomAccess()
{
    constexpr int words = 1 << 17; // 1 MB
    constexpr int iters = 15000;

    MemImage mem;
    for (int i = 0; i < words; i += 17)
        mem.store(dataBase + Addr(i) * 8, i);

    ProgramBuilder b;
    b.li(rKey, 0x2545f4914f6cdd1d)
     .li(rBase, dataBase)
     .li(rMask, (words - 1) * 8)
     .li(rT2, 0x9e3779b97f4a7c15)
     .li(rCnt, iters)
     .label("loop")
     // xorshift-ish index update
     .alu(Opcode::MUL, rKey, rKey, rT2)
     .aluImm(Opcode::XORI, rKey, rKey, 0x5a5a)
     .aluImm(Opcode::SRLI, rT, rKey, 17)
     .aluImm(Opcode::SLLI, rT, rT, 3)
     .alu(Opcode::AND, rT, rT, rMask)
     .add(rT, rT, rBase)
     .ld(rV, rT)
     .aluImm(Opcode::XORI, rV, rV, 1)
     .st(rT, rV);
    loopTail(b, "loop");
    b.halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// Hash-table probing with data-dependent branches (gobmk-like).
// ------------------------------------------------------------------
BuiltWorkload
hashProbe()
{
    constexpr int buckets = 1 << 14;
    constexpr int iters = 16000;

    MemImage mem;
    Rng rng(0xfeed0002);
    for (int i = 0; i < buckets; ++i) {
        // Half the buckets hold a key that will match the probe stream.
        Value key = rng.chance(1, 2) ? Value(i) : Value(-1);
        mem.store(dataBase + Addr(i) * 8, key);
    }

    ProgramBuilder b;
    b.li(rBase, dataBase)
     .li(rMask, buckets - 1)
     .li(rT2, 0x61c88647)
     .li(rKey, 1)
     .li(rCnt, iters)
     .label("loop")
     .alu(Opcode::MUL, rT, rKey, rT2)
     .aluImm(Opcode::SRLI, rT, rT, 11)
     .alu(Opcode::AND, rT, rT, rMask)
     .aluImm(Opcode::SLLI, rT, rT, 3)
     .add(rT, rT, rBase)
     .ld(rV, rT)
     .beq(rV, rMask, "miss") // data-dependent direction
     .addi(rSum, rSum, 1)
     .label("miss")
     .addi(rKey, rKey, 1);
    loopTail(b, "loop");
    b.halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// Repeated binary searches: dependent loads + unpredictable branches.
// ------------------------------------------------------------------
BuiltWorkload
binSearch()
{
    constexpr int n = 1 << 13; // sorted array, 64 KB
    constexpr int searches = 1500;
    constexpr int rounds = 13; // log2(n)

    MemImage mem;
    for (int i = 0; i < n; ++i)
        mem.store(dataBase + Addr(i) * 8, Value(i) * 3);

    ProgramBuilder b;
    b.li(rBase, dataBase)
     .li(rKey, 7919)               // probe key, scrambled per search
     .li(rCnt, searches)
     .label("search")
     .li(R(5), 0)                  // lo
     .li(R(6), n)                  // hi
     .li(rCnt2, rounds)
     .label("round")
     .add(rT, R(5), R(6))
     .aluImm(Opcode::SRLI, rT, rT, 1) // mid
     .aluImm(Opcode::SLLI, rT2, rT, 3)
     .add(rT2, rT2, rBase)
     .ld(rV, rT2)
     .blt(rV, rKey, "go_right")
     .mov(R(6), rT)                // hi = mid
     .jmp("next")
     .label("go_right")
     .addi(R(5), rT, 1)            // lo = mid + 1
     .label("next")
     .addi(rCnt2, rCnt2, -1)
     .bne(rCnt2, R(0), "round")
     .aluImm(Opcode::XORI, rKey, rKey, 0x1234)
     .aluImm(Opcode::ANDI, rKey, rKey, (n * 3) - 1);
    loopTail(b, "search");
    b.halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// Dense FP: naive 24x24 matrix multiply (namd/calculix-like).
// ------------------------------------------------------------------
BuiltWorkload
matMul()
{
    constexpr int n = 24;
    constexpr int rowStride = 32; // padded rows: shifts instead of MULs
    constexpr Addr aBase = dataBase;
    constexpr Addr bBase = dataBase + Addr(rowStride) * rowStride * 8;
    constexpr Addr cBase = bBase + Addr(rowStride) * rowStride * 8;

    MemImage mem;
    for (int i = 0; i < n; ++i) {
        for (int k = 0; k < n; ++k) {
            const Addr off = Addr(i * rowStride + k) * 8;
            mem.store(aBase + off, fbits(0.5 + ((i + k) % 7)));
            mem.store(bBase + off, fbits(1.5 - ((i * k) % 5)));
        }
    }

    ProgramBuilder b;
    // for i: for j: acc = 0; for k: acc += A[i][k] * B[k][j]
    b.li(R(5), 0) // i
     .label("iloop")
     .li(R(6), 0) // j
     .label("jloop")
     .li(rT, 0)
     .raw(isa::makeAluImm(Opcode::FMOV, F(1), rT, 0)) // acc = 0
     // rP = &A[i][0]
     .aluImm(Opcode::SLLI, rP, R(5), 3 + 5) // i * n*8 rounded to 32*8
     .li(rT, aBase)
     .add(rP, rP, rT)
     // rQ = &B[0][j]
     .aluImm(Opcode::SLLI, rQ, R(6), 3)
     .li(rT, bBase)
     .add(rQ, rQ, rT)
     .li(rCnt2, n)
     .label("kloop")
     .ld(F(2), rP)
     .ld(F(3), rQ)
     .alu(Opcode::FMUL, F(2), F(2), F(3))
     .alu(Opcode::FADD, F(1), F(1), F(2))
     .addi(rP, rP, 8)
     .addi(rQ, rQ, 32 * 8) // row stride (padded to 32)
     .addi(rCnt2, rCnt2, -1)
     .bne(rCnt2, R(0), "kloop")
     // C[i][j] = acc
     .aluImm(Opcode::SLLI, rT, R(5), 3 + 5)
     .aluImm(Opcode::SLLI, rT2, R(6), 3)
     .add(rT, rT, rT2)
     .li(rT2, cBase)
     .add(rT, rT, rT2)
     .st(rT, F(1))
     .addi(R(6), R(6), 1)
     .aluImm(Opcode::SLTI, rT, R(6), n)
     .bne(rT, R(0), "jloop")
     .addi(R(5), R(5), 1)
     .aluImm(Opcode::SLTI, rT, R(5), n)
     .bne(rT, R(0), "iloop")
     .halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// 1-D three-point stencil over a 128 KB array (leslie3d-like).
// ------------------------------------------------------------------
BuiltWorkload
stencil1d()
{
    constexpr int n = 16384;
    constexpr Addr src = dataBase;
    constexpr Addr dst = dataBase + Addr(n + 2) * 8;

    MemImage mem;
    for (int i = 0; i < n + 2; ++i)
        mem.store(src + Addr(i) * 8, fbits(0.25 * (i % 11)));

    ProgramBuilder b;
    b.li(rP, src + 8)
     .li(rQ, dst)
     .li(rT, fbits(0.25))
     .raw(isa::makeAluImm(Opcode::FMOV, F(4), rT, 0))
     .li(rCnt, n)
     .label("loop")
     .ld(F(1), rP, -8)
     .ld(F(2), rP, 0)
     .ld(F(3), rP, 8)
     .alu(Opcode::FADD, F(1), F(1), F(3))
     .alu(Opcode::FADD, F(2), F(2), F(2))
     .alu(Opcode::FADD, F(1), F(1), F(2))
     .alu(Opcode::FMUL, F(1), F(1), F(4))
     .st(rQ, F(1))
     .addi(rP, rP, 8)
     .addi(rQ, rQ, 8);
    loopTail(b, "loop");
    b.halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// Byte histogram: read-modify-write on 256 hot counters.  Frequent
// same-address collisions among in-flight loads and stores.
// ------------------------------------------------------------------
BuiltWorkload
histogram()
{
    constexpr int words = 1 << 14;
    constexpr Addr bins = dataBase;
    constexpr Addr data = dataBase + 256 * 8;

    MemImage mem;
    Rng rng(0xbeef0003);
    for (int i = 0; i < words; ++i)
        mem.store(data + Addr(i) * 8, Value(rng.next() & 0xff));

    ProgramBuilder b;
    b.li(rP, data)
     .li(rBase, bins)
     .li(rCnt, words)
     .label("loop")
     .ld(rV, rP)
     .aluImm(Opcode::SLLI, rV, rV, 3)
     .add(rV, rV, rBase)
     .ld(rT, rV)
     .addi(rT, rT, 1)
     .st(rV, rT)
     .addi(rP, rP, 8);
    loopTail(b, "loop");
    b.halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// Stack push/pop with re-reads: store-to-load forwarding plus
// same-address load pairs.  The pushed value is streamed from memory,
// so the store's data is occasionally slow (an L1 line miss): the
// first reload then waits, and the *second* same-slot reload hits the
// SALdLd stall (its prospective forwarding source is the store, which
// is older than the blocked first reload).
// ------------------------------------------------------------------
BuiltWorkload
stackMix()
{
    constexpr int outer = 1400;
    constexpr int bodies = 8;    // 7 fast pushes, 1 slow push
    constexpr int slots = 64;
    constexpr Addr streamBase = dataBase + 0x10000;

    MemImage mem;
    for (int i = 0; i < outer + 8; ++i)
        mem.store(streamBase + Addr(i) * 8, i * 3 + 1);

    ProgramBuilder b;
    b.li(rP, dataBase)           // stack pointer
     .li(rQ, streamBase)         // occasional value stream
     .li(rMask, (slots - 1) * 8)
     .li(rCnt, outer)
     .label("loop");
    for (int body = 0; body < bodies; ++body) {
        if (body == 0) {
            // Slow push: the value comes from memory, so the store's
            // data arrives late and the same-slot reload pair below
            // exercises the SALdLd stall.
            b.ld(rV, rQ).addi(rQ, rQ, 8);
        } else {
            b.addi(rV, rCnt, body); // fast push
        }
        b.st(rP, rV)               // push
         .ld(rT, rP)               // reload slot 0
         .ld(rT2, rP, 8)           // read the neighbouring slot
         .add(rSum, rT, rT2)
         .ld(rT, rP)               // second read of slot 0 (load pair)
         .add(rSum, rSum, rT)
         .addi(rP, rP, 16)         // advance and wrap the stack pointer
         .li(rT2, dataBase)
         .sub(rP, rP, rT2)
         .alu(Opcode::AND, rP, rP, rMask)
         .add(rP, rP, rT2);
    }
    loopTail(b, "loop");
    b.halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// Word-wise string scan with compares (perlbench-like).
// ------------------------------------------------------------------
BuiltWorkload
stringMatch()
{
    constexpr int words = 1 << 15;
    constexpr int scan = 24000;

    MemImage mem;
    Rng rng(0xabcd0004);
    for (int i = 0; i < words; ++i)
        mem.store(dataBase + Addr(i) * 8, Value(rng.range(16)));

    ProgramBuilder b;
    b.li(rP, dataBase)
     .li(rKey, 7) // the needle
     .li(rCnt, scan)
     .label("loop")
     .ld(rV, rP)
     .bne(rV, rKey, "no")
     .addi(rSum, rSum, 1)
     .label("no")
     .addi(rP, rP, 8);
    loopTail(b, "loop");
    b.halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// Horner polynomial evaluation: long dependent FP chains (povray-like).
// ------------------------------------------------------------------
BuiltWorkload
fpHorner()
{
    constexpr int degree = 8;
    constexpr int points = 4000;
    constexpr Addr coeffs = dataBase;
    constexpr Addr xs = dataBase + 64 * 8;

    MemImage mem;
    for (int i = 0; i <= degree; ++i)
        mem.store(coeffs + Addr(i) * 8, fbits(1.0 / (1 + i)));
    for (int i = 0; i < points; ++i)
        mem.store(xs + Addr(i) * 8, fbits(0.001 * i));

    ProgramBuilder b;
    b.li(rQ, xs)
     .li(rCnt, points)
     .label("point")
     .ld(F(2), rQ)                 // x
     .li(rP, coeffs)
     .ld(F(1), rP)                 // acc = c0
     .li(rCnt2, degree)
     .label("horner")
     .addi(rP, rP, 8)
     .ld(F(3), rP)
     .alu(Opcode::FMUL, F(1), F(1), F(2))
     .alu(Opcode::FADD, F(1), F(1), F(3))
     .addi(rCnt2, rCnt2, -1)
     .bne(rCnt2, R(0), "horner")
     .addi(rQ, rQ, 8);
    loopTail(b, "point");
    b.halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// Streaming copy (libquantum-like).
// ------------------------------------------------------------------
BuiltWorkload
memcpyLike()
{
    constexpr int words = 1 << 14;
    constexpr Addr src = dataBase;
    constexpr Addr dst = dataBase + Addr(words) * 8;
    constexpr int passes = 2;

    MemImage mem;
    for (int i = 0; i < words; ++i)
        mem.store(src + Addr(i) * 8, i * 13);

    ProgramBuilder b;
    b.li(rCnt2, passes)
     .label("pass")
     .li(rP, src)
     .li(rQ, dst)
     .li(rCnt, words)
     .label("loop")
     .ld(rV, rP)
     .st(rQ, rV)
     .addi(rP, rP, 8)
     .addi(rQ, rQ, 8);
    loopTail(b, "loop");
    b.addi(rCnt2, rCnt2, -1)
     .bne(rCnt2, R(0), "pass")
     .halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// Single-thread ring buffer: producer stores chased by consumer loads
// over a small L1-resident region (same addresses recur quickly).
// ------------------------------------------------------------------
BuiltWorkload
queueRing()
{
    constexpr int iters = 13000;
    constexpr int ringWords = 256;

    MemImage mem;
    for (int i = 0; i < ringWords; ++i)
        mem.store(dataBase + Addr(i) * 8, i);

    ProgramBuilder b;
    b.li(rP, 0)                  // head offset (bytes)
     .li(rQ, 64 * 8)             // tail offset: 64 slots behind
     .li(rBase, dataBase)
     .li(rMask, (ringWords - 1) * 8)
     .li(rCnt, iters)
     .label("loop")
     .add(rT, rBase, rP)
     .addi(rV, rCnt, 7)
     .st(rT, rV)                 // produce
     .add(rT2, rBase, rQ)
     .ld(rV, rT2)                // consume
     .add(rSum, rSum, rV)
     .ld(rT2, rT2, 0)            // re-read the same slot (load pair)
     .add(rSum, rSum, rT2)
     .addi(rP, rP, 8)
     .alu(Opcode::AND, rP, rP, rMask)
     .addi(rQ, rQ, 8)
     .alu(Opcode::AND, rQ, rQ, rMask);
    loopTail(b, "loop");
    b.halt();
    return {b.build(), std::move(mem)};
}

// ------------------------------------------------------------------
// Late address resolution: an older load's address arrives long after
// a younger same-address load executed -- the pattern that triggers
// GAM's SALdLd kills (Table II's maxima).
// ------------------------------------------------------------------
BuiltWorkload
lateAddr()
{
    constexpr int ptrs = 1 << 14;
    constexpr int targets = 64;
    constexpr int iters = 16000;
    constexpr Addr targetBase = dataBase;
    constexpr Addr ptrBase = dataBase + Addr(targets) * 64;

    MemImage mem;
    Rng rng(0x0badf00d);
    for (int t = 0; t < targets; ++t)
        mem.store(targetBase + Addr(t) * 64, t * 11);
    for (int i = 0; i < ptrs; ++i) {
        // 1 in 64 pointers aim at target 0, which the loop also reads
        // directly -- creating occasional same-address load pairs
        // whose older load resolves its address late (the paper's
        // Table II maxima come from exactly this shape: rare but
        // nonzero).
        int t = rng.chance(1, 64) ? 0 : int(rng.range(targets));
        mem.store(ptrBase + Addr(i) * 8, targetBase + Addr(t) * 64);
    }

    ProgramBuilder b;
    b.li(rP, ptrBase)
     .li(rBase, targetBase)
     .li(rMask, (ptrs - 1) * 8)
     .li(rCnt, iters)
     .label("loop")
     .ld(rT, rP)                 // pointer load (slow-ish)
     .ld(rV, rT)                 // dependent load: address resolves late
     .ld(rT2, rBase)             // direct load of target 0 (early)
     .add(rSum, rV, rT2)
     // Artificial dependency (the paper's Figure 13b idiom) carrying
     // rV into the next pointer address: iterations serialize, so a
     // SALdLd kill discards little downstream work -- matching the
     // paper's observation that kills barely dent uPC.
     .add(rP, rP, rV)
     .sub(rP, rP, rV)
     .addi(rP, rP, 8)
     .li(rT2, ptrBase)
     .sub(rP, rP, rT2)
     .alu(Opcode::AND, rP, rP, rMask)
     .add(rP, rP, rT2);
    loopTail(b, "loop");
    b.halt();
    return {b.build(), std::move(mem)};
}

} // anonymous namespace

const std::vector<WorkloadSpec> &
workloadSuite()
{
    static const std::vector<WorkloadSpec> suite = {
        {"ptr_chase", "random pointer chasing, 1 MB (mcf-like)",
         ptrChase, 300000},
        {"list_sum", "sequential linked-list walk", listSum, 300000},
        {"stream_triad", "STREAM triad FP kernel", streamTriad, 300000},
        {"stride_sum", "strided reads, 128 B stride", strideSum, 300000},
        {"random_access", "GUPS random read-modify-write",
         randomAccess, 300000},
        {"hash_probe", "hash-table probing, branchy", hashProbe, 300000},
        {"binsearch", "repeated binary search", binSearch, 300000},
        {"matmul", "24x24 dense FP matrix multiply", matMul, 300000},
        {"stencil1d", "three-point FP stencil", stencil1d, 300000},
        {"histogram", "byte histogram on 256 hot counters",
         histogram, 300000},
        {"stack_mix", "stack push/pop with re-reads", stackMix, 300000},
        {"string_match", "word-wise scan and compare",
         stringMatch, 300000},
        {"fp_horner", "Horner polynomial chains", fpHorner, 300000},
        {"memcpy_like", "streaming copy", memcpyLike, 300000},
        {"queue_ring", "L1-resident ring buffer", queueRing, 300000},
        {"late_addr", "late-resolving same-address load pairs",
         lateAddr, 300000},
    };
    return suite;
}

const WorkloadSpec *
findWorkload(const std::string &name)
{
    for (const auto &w : workloadSuite())
        if (w.name == name)
            return &w;
    return nullptr;
}

const WorkloadSpec &
workloadByName(const std::string &name)
{
    const WorkloadSpec *w = findWorkload(name);
    if (!w)
        fatal("unknown workload '%s'", name.c_str());
    return *w;
}

} // namespace gam::workload
