/**
 * @file
 * The persistent campaign decision store: a crash-safe append-log of
 * decided model queries, implementing harness::DecisionBackend.
 *
 * A million-test campaign cannot afford to lose its work to a crash,
 * nor to re-run every engine on resume, so each complete decision is
 * appended to an on-disk log as one fixed-size checksummed record
 * keyed by the same 64-bit queryKey the in-memory DecisionCache uses
 * -- (litmus::fingerprint, model, engine, RunOptions::fingerprint()).
 * Records carry the verdict plus a compact round-trip witness of the
 * outcome set (its size and order-independent 64-bit digest,
 * litmus::outcomeSetHash), not the set itself: campaigns need
 * verdicts, and the witness lets a sampled fresh re-decide prove the
 * stored answer still matches the engines bit-for-bit.
 *
 * Crash safety is recovery-side, not write-side: appends are plain
 * buffered writes, group-flushed every K records or T milliseconds
 * (StoreOptions; explicit flush() at shard boundaries), and opening a
 * store validates the log prefix record by record, truncating
 * everything from the first short or checksum-failed record onward (a
 * torn tail from a kill or power cut) instead of refusing the file.
 * Lost tail records simply get re-decided and re-appended; every
 * surviving record was validated, so a load never serves corrupted
 * bytes.  Group flushing only widens the at-risk tail from one record
 * to one flush group -- the campaign driver still flushes before a
 * checkpoint marks a shard done, so a resume never skips units whose
 * answers were lost.
 */

#ifndef GAM_CAMPAIGN_STORE_HH
#define GAM_CAMPAIGN_STORE_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/decision.hh"

namespace gam::campaign
{

/** One persisted decision, as recovered from or appended to the log. */
struct StoreRecord
{
    /** harness::queryKey of the decided query. */
    uint64_t key = 0;
    /** litmus::fingerprint of the decided test (query/status axis). */
    uint64_t testFingerprint = 0;
    /** litmus::outcomeSetHash of the engine's outcome set; the
     *  round-trip witness a fresh re-decide must reproduce. */
    uint64_t outcomeHash = 0;
    /** Outcome-set size (0 for ValueCover-prescreened verdicts). */
    uint32_t outcomeCount = 0;
    model::ModelKind model = model::ModelKind::GAM;
    model::Engine engine = model::Engine::Axiomatic;
    bool allowed = false;
    harness::PrescreenKind prescreened = harness::PrescreenKind::None;
};

/** Counters of one DecisionStore's lifetime (openStats + traffic). */
struct StoreStats
{
    /** Valid records recovered when the store was opened. */
    uint64_t loaded = 0;
    /** Torn-tail bytes dropped (and truncated away) at open. */
    uint64_t droppedBytes = 0;
    /** load() calls answered from the log. */
    uint64_t hits = 0;
    /** load() calls with no record. */
    uint64_t misses = 0;
    /** Records appended this session. */
    uint64_t appended = 0;
    /** store() offers skipped because the key was already present. */
    uint64_t duplicates = 0;
};

/** Write-side knobs of one DecisionStore. */
struct StoreOptions
{
    /**
     * Flush the append log after this many buffered records.  1
     * reproduces the original per-record flush (bench_campaign's A/B
     * baseline); the default trades at most one group of records --
     * bounded work, always recoverable by re-deciding -- for an
     * order-of-magnitude fewer flush syscalls on a cold campaign.
     */
    uint64_t flushEveryRecords = 256;
    /** Also flush when this many milliseconds have passed since the
     *  last one (0 disables the timer), so a slow trickle of appends
     *  still reaches the disk promptly. */
    uint64_t flushIntervalMs = 200;
};

/** Outcome of one compactStores() merge. */
struct CompactStats
{
    /** Input files read. */
    uint64_t inputs = 0;
    /** Valid records scanned across all inputs. */
    uint64_t scanned = 0;
    /** Distinct keys written to the output. */
    uint64_t merged = 0;
    /** Records dropped as key duplicates (first input wins). */
    uint64_t duplicates = 0;
};

/**
 * The append-log store.  Thread-safe: campaign workers call
 * load()/store() concurrently through decide().  One process owns a
 * store file at a time (no cross-process locking).
 */
class DecisionStore final : public harness::DecisionBackend
{
  public:
    /**
     * Open (or create) the store at @p path, recovering every valid
     * record and truncating any torn tail.  Asserts that an existing
     * non-empty file is actually a campaign store (magic + version).
     */
    explicit DecisionStore(const std::string &path,
                           StoreOptions options = {});
    ~DecisionStore() override;

    DecisionStore(const DecisionStore &) = delete;
    DecisionStore &operator=(const DecisionStore &) = delete;

    /**
     * Reconstruct the persisted decision under @p key: verdict-only
     * (storeHit set, empty outcome set) -- see Decision::storeHit.
     */
    std::optional<harness::Decision> load(uint64_t key) override;

    /**
     * Append @p decision unless @p key is already present (first
     * write wins; the log never rewrites).  Incomplete decisions are
     * never offered by decide(), and would be ignored here anyway.
     */
    void store(uint64_t key, const harness::Query &query,
               const harness::Decision &decision) override;

    /** The raw record under @p key (verify sampling, query CLI). */
    std::optional<StoreRecord> record(uint64_t key) const;

    /** Visit every resident record (order unspecified). */
    void forEach(const std::function<void(const StoreRecord &)> &fn) const;

    /**
     * Every resident record for @p testFingerprint, in key order
     * (deterministic).  Served by the in-memory test-fingerprint index
     * built at open and maintained per append -- the `campaign query
     * --disagree` axis: one test's verdicts across models without a
     * full log scan.
     */
    std::vector<StoreRecord> recordsForTest(uint64_t testFingerprint)
        const;

    /** Distinct test fingerprints resident. */
    size_t distinctTests() const;

    /** Records resident (recovered + appended this session). */
    size_t size() const;

    StoreStats stats() const;

    /** Push buffered appends to the OS (group flushing defers this to
     *  every K records / T ms; call at durability boundaries). */
    void flush();

    const std::string &path() const { return filePath; }

  private:
    void append(const StoreRecord &record);
    void flushLocked();

    const std::string filePath;
    const StoreOptions options;
    mutable std::mutex mu;
    std::unordered_map<uint64_t, StoreRecord> index;
    /** testFingerprint -> keys of its records (insertion order). */
    std::unordered_map<uint64_t, std::vector<uint64_t>> testIndex;
    std::FILE *log = nullptr;
    StoreStats counters;
    /** Appends since the last flush, and when that flush happened. */
    uint64_t pendingAppends = 0;
    std::chrono::steady_clock::time_point lastFlush;
};

/**
 * Merge every valid record of @p inputs into a fresh store file at
 * @p output (overwritten), deduping by key -- the first input file
 * containing a key wins, matching the store's own first-write-wins
 * append rule.  Records are written in key order, so compacting the
 * same inputs always produces a byte-identical file.  Each input is
 * opened with full recovery, so compaction also heals torn tails.
 * The `campaign compact` subcommand: shard-per-store campaigns and
 * crashed runs leave multiple partial logs behind; one compacted
 * store serves a resume with a single index.
 */
CompactStats compactStores(const std::vector<std::string> &inputs,
                           const std::string &output);

} // namespace gam::campaign

#endif // GAM_CAMPAIGN_STORE_HH
