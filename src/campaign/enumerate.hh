/**
 * @file
 * Exhaustive, canonical relaxation-cycle enumeration.
 *
 * The random generator (litmus/generator.hh) draws *one* cycle per
 * seed; a campaign needs the complete, deterministic test universe up
 * to a bounded cycle length instead.  Following the diy7 methodology
 * (Herding Cats, PAPERS.md), this module enumerates every cycle over
 * the generator's edge vocabulary -- the external communication
 * relations rf/co/fr, plain program order, the four basic fences
 * LL/LS/SL/SS, and address/data/control dependencies, with load+store
 * conflicts becoming RMWs -- and canonicalizes each one so isomorphic
 * tests collapse to a single representative *before* lowering:
 *
 *  - Thread rotation: a cycle has no distinguished start; of all
 *    rotations ending with a communication edge (the ones the lowering
 *    accepts verbatim), only the lexicographically least encoding is
 *    emitted.
 *  - Address renaming: event locations are restricted-growth labels
 *    (location k first appears only after 0..k-1), so any relabelling
 *    of addresses normalizes to the same encoding.
 *  - Value renaming: the deterministic lowering
 *    (litmus::testFromCycle) assigns store values by per-location
 *    counters, so value names never distinguish two cycles.
 *
 * Enumeration is a lexicographic depth-first search over plain arrays:
 * the emission order is a pure function of EnumerateOptions -- no
 * unordered-container iteration anywhere near it -- which is what
 * makes campaign shard assignment reproducible across platforms and
 * PRs (enumerateCycles asserts the order it emits is strictly
 * increasing).
 */

#ifndef GAM_CAMPAIGN_ENUMERATE_HH
#define GAM_CAMPAIGN_ENUMERATE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "litmus/generator.hh"

namespace gam::campaign
{

/** The canonical representative of one cycle-isomorphism class. */
struct CanonicalCycle
{
    /**
     * The canonical rotation's edges, ready for
     * litmus::testFromCycle(): the last edge is a communication edge,
     * so the lowering's own realisability rotation is the identity.
     */
    std::vector<litmus::CycleEdge> edges;
    /** Distinct locations the cycle touches, clamped to the 2..4 the
     *  lowering supports (a single-location cycle lowers with 2, the
     *  unused one is never named). */
    int numLocations = 2;
    /** 64-bit digest of the canonical encoding (cycle identity). */
    uint64_t key = 0;
    /**
     * Deterministic diy-style name spelling the canonical encoding:
     * one token per edge (rfe/coe/fre/po/fll/fls/fsl/fss/adr/dat/ctl)
     * suffixed with the head event's location label, e.g.
     * "camp_rfea_pob_freb_rfeb_poa_frea" for IRIW.  Unique per
     * canonical cycle.
     */
    std::string name;
};

/**
 * Which canonical form the enumeration quotients by.
 *
 *   Rotation  the PR 8 form: least communication-ending rotation
 *             under restricted-growth location labels.  One
 *             representative per cycle-level isomorphism class.
 *   Full      Rotation plus the verdict-preserving moves of
 *             campaign/symmetry.hh: per-thread decoration
 *             equivalence (equal ppo closures under the shipped pair
 *             semantics) and critical-core contraction.  One
 *             representative per class of tests no shipped model can
 *             tell apart; shrinks the length-<=6 universe ~4.3x.
 */
enum class CanonicalForm : uint8_t { Rotation, Full };

/** Bounds of one exhaustive enumeration. */
struct EnumerateOptions
{
    /** Cycle length in edges (== events), 3..8. */
    int minLen = 3;
    int maxLen = 6;
    /** Thread budget: communication edges per cycle, 2..4. */
    int maxThreads = 4;
    /** Distinct shared locations, 1..4. */
    int maxLocations = 4;
    /** Include fence-decorated program-order edges. */
    bool fences = true;
    /** Include dependency-decorated program-order edges. */
    bool deps = true;
    /** Allow load+store type conflicts (lowered as AMOSWAP RMWs). */
    bool rmws = true;
    /**
     * Only emit fence kinds whose sides match the adjacent events'
     * access types (an RMW matches either side), as the random
     * generator does; false enumerates all four kinds per fence edge.
     */
    bool matchedFencesOnly = true;

    /** Which symmetry quotient the emitted universe represents. */
    CanonicalForm canonical = CanonicalForm::Rotation;

    /** 64-bit digest of every field (campaign config identity). */
    uint64_t fingerprint() const;
};

/** Counters of one enumerateCycles() sweep. */
struct EnumerateStats
{
    /** Canonical cycles emitted to the sink. */
    uint64_t emitted = 0;
    /** Complete cycles discarded as non-minimal rotations. */
    uint64_t rotationDuplicates = 0;
    /** Canonical cycles litmus::testFromCycle() rejected (register or
     *  event-budget overflow in the lowering). */
    uint64_t unrealisable = 0;
    /** CanonicalForm::Full only: realisable rotation-canonical cycles
     *  rejected as non-canonical members of their verdict-equivalence
     *  class (see campaign/symmetry.hh for the split). */
    uint64_t symmetryDuplicates = 0;
};

/**
 * Enumerate every canonical cycle admitted by @p options, in a fixed
 * deterministic order (length-major, then lexicographic by canonical
 * encoding), invoking @p sink for each.  Cycles whose lowering the
 * generator rejects are skipped and counted instead of emitted, so
 * every emitted cycle is guaranteed to lower: testFromCycle(name,
 * edges, numLocations) has a value.
 *
 * Return @c false from @p sink to stop early (the stats then cover the
 * prefix enumerated so far).
 */
EnumerateStats
enumerateCycles(const EnumerateOptions &options,
                const std::function<bool(const CanonicalCycle &)> &sink);

/**
 * The canonicalization hook: normalize an arbitrary cycle spec (as
 * litmus::testFromCycle takes it) to its class representative.  Two
 * isomorphic specs -- rotations of one another, or relabellings of the
 * same location walk -- canonicalize to byte-identical results.
 * Returns nullopt when the spec is not a closed cycle the lowering
 * could accept (no communication edge, an open location walk, or a
 * location outside the 4 the lowering names).  Realisability budgets
 * (loads, stores, threads) are *not* checked here; testFromCycle
 * still has the last word.
 */
std::optional<CanonicalCycle>
canonicalCycle(const std::vector<litmus::CycleEdge> &edges,
               int numLocations);

} // namespace gam::campaign

#endif // GAM_CAMPAIGN_ENUMERATE_HH
