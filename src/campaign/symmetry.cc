#include "campaign/symmetry.hh"

#include <algorithm>
#include <unordered_map>

#include "base/logging.hh"

namespace gam::campaign
{

namespace
{

using litmus::CycleEdge;
using litmus::CycleEventKind;

bool
isCommKind(CycleEdge::Kind k)
{
    return k == CycleEdge::Kind::Rfe || k == CycleEdge::Kind::Coe
        || k == CycleEdge::Kind::Fre;
}

bool
isR(CycleEventKind k)
{
    return k != CycleEventKind::Store;
}

bool
isW(CycleEventKind k)
{
    return k != CycleEventKind::Load;
}

/**
 * Decoration id of a po-family edge, in the enumeration's variant
 * order relative to V_PO: 0 = po, 1..4 = FenceLL/LS/SL/SS, 5 = addr,
 * 6 = data, 7 = ctrl.  The lex-least rule below relies on this order
 * matching campaign/enumerate.cc's emission order.
 */
constexpr int kDecorations = 8;

int
decorationId(const CycleEdge &e)
{
    switch (e.kind) {
      case CycleEdge::Kind::Po: return 0;
      case CycleEdge::Kind::PoFence: return 1 + int(e.fence);
      case CycleEdge::Kind::PoAddr: return 5;
      case CycleEdge::Kind::PoData: return 6;
      case CycleEdge::Kind::PoCtrl: return 7;
      default: return -1; // communication edge
    }
}

CycleEdge
withDecoration(CycleEdge base, int id)
{
    switch (id) {
      case 0: base.kind = CycleEdge::Kind::Po; break;
      case 5: base.kind = CycleEdge::Kind::PoAddr; break;
      case 6: base.kind = CycleEdge::Kind::PoData; break;
      case 7: base.kind = CycleEdge::Kind::PoCtrl; break;
      default:
        base.kind = CycleEdge::Kind::PoFence;
        base.fence = static_cast<isa::FenceKind>(id - 1);
        break;
    }
    return base;
}

/** Event-type needs, mirroring the lowering's rules. */
enum class Need : uint8_t { Free, Load, Store };

Need
tailNeed(CycleEdge::Kind k)
{
    switch (k) {
      case CycleEdge::Kind::Rfe:
      case CycleEdge::Kind::Coe: return Need::Store;
      case CycleEdge::Kind::Fre:
      case CycleEdge::Kind::PoAddr:
      case CycleEdge::Kind::PoData:
      case CycleEdge::Kind::PoCtrl: return Need::Load;
      default: return Need::Free;
    }
}

Need
headNeed(CycleEdge::Kind k)
{
    switch (k) {
      case CycleEdge::Kind::Rfe: return Need::Load;
      case CycleEdge::Kind::Coe:
      case CycleEdge::Kind::Fre:
      case CycleEdge::Kind::PoData: return Need::Store;
      default: return Need::Free;
    }
}

Need
decorationTailNeed(int id)
{
    return id >= 5 ? Need::Load : Need::Free;
}

Need
decorationHeadNeed(int id)
{
    return id == 6 ? Need::Store : Need::Free;
}

CycleEventKind
combineNeeds(Need in, Need out)
{
    if ((in == Need::Load && out == Need::Store)
        || (in == Need::Store && out == Need::Load)) {
        return CycleEventKind::Rmw;
    }
    if (in == Need::Store || out == Need::Store)
        return CycleEventKind::Store;
    return CycleEventKind::Load;
}

/** Absolute event locations along the walk (comm edges keep them). */
std::vector<int>
eventLocs(const std::vector<CycleEdge> &edges, int numLoc)
{
    const size_t n = edges.size();
    std::vector<int> loc(n, 0);
    for (size_t i = 0; i + 1 < n; ++i) {
        const int step =
            isCommKind(edges[i].kind) ? 0 : edges[i].locStep;
        loc[i + 1] = ((loc[i] + step) % numLoc + numLoc) % numLoc;
    }
    return loc;
}

void
transitiveClose(uint64_t *p, int L)
{
    for (bool changed = true; changed;) {
        changed = false;
        for (int i = 0; i < L; ++i) {
            for (int j = 0; j < L; ++j) {
                if (!(*p >> (i * 8 + j) & 1))
                    continue;
                for (int k = 0; k < L; ++k) {
                    const uint64_t bit = 1ull << (i * 8 + k);
                    if ((*p >> (j * 8 + k) & 1) && !(*p & bit)) {
                        *p |= bit;
                        changed = true;
                    }
                }
            }
        }
    }
}

/**
 * GAM-family (Definition 6) decoration-induced event pairs for one
 * thread, projected memory-to-memory, over the static SAMemSt base:
 * RegRAW/AddrSt/SAStLd for addr and data, BrSt for ctrl, FenceOrd for
 * fences.  Mirrors model/ppo.cc case for case.
 */
uint64_t
gamFamilyPairs(const std::vector<CycleEventKind> &k,
               const std::vector<int> &loc, const std::vector<int> &dec)
{
    const int L = int(k.size());
    uint64_t p = 0;
    auto set = [&](int i, int j) { p |= 1ull << (i * 8 + j); };
    // SAMemSt: a store after older same-address memory instructions.
    for (int j = 0; j < L; ++j) {
        if (!isW(k[size_t(j)]))
            continue;
        for (int i = 0; i < j; ++i)
            if (loc[size_t(i)] == loc[size_t(j)])
                set(i, j);
    }
    // SAStLd: the dep source of a store orders before the loads for
    // which that store is the closest older same-address store.
    auto saStLd = [&](int src, int s) {
        if (!isW(k[size_t(s)]))
            return;
        for (int e = s + 1; e < L; ++e) {
            if (loc[size_t(e)] != loc[size_t(s)])
                continue;
            if (isR(k[size_t(e)]))
                set(src, e);
            if (isW(k[size_t(e)]))
                break; // intervening store shields younger loads
        }
    };
    for (int slot = 0; slot + 1 < L; ++slot) {
        const int src = slot, dst = slot + 1, d = dec[size_t(slot)];
        if (d == 0)
            continue;
        if (d <= 4) { // FenceOrd
            const auto f = static_cast<isa::FenceKind>(d - 1);
            const bool preLoad = isa::fencePre(f) == isa::MemType::Load;
            const bool postLoad =
                isa::fencePost(f) == isa::MemType::Load;
            for (int a = 0; a <= src; ++a) {
                if (!(preLoad ? isR(k[size_t(a)]) : isW(k[size_t(a)])))
                    continue;
                for (int b = dst; b < L; ++b)
                    if (postLoad ? isR(k[size_t(b)])
                                 : isW(k[size_t(b)]))
                        set(a, b);
            }
        } else if (d == 5) { // addr: RegRAW + AddrSt + SAStLd
            set(src, dst);
            for (int w = dst + 1; w < L; ++w)
                if (isW(k[size_t(w)]))
                    set(src, w);
            saStLd(src, dst);
        } else if (d == 6) { // data: RegRAW + SAStLd
            set(src, dst);
            saStLd(src, dst);
        } else { // ctrl: BrSt (stores only; loads may speculate)
            for (int w = dst; w < L; ++w)
                if (isW(k[size_t(w)]))
                    set(src, w);
        }
    }
    transitiveClose(&p, L);
    return p;
}

/** TSO event pairs: all of po except pure-store to pure-load, plus
 *  FenceOrd; dependencies are invisible.  Mirrors model/ppo.cc. */
uint64_t
tsoPairs(const std::vector<CycleEventKind> &k, const std::vector<int> &dec)
{
    const int L = int(k.size());
    uint64_t p = 0;
    auto set = [&](int i, int j) { p |= 1ull << (i * 8 + j); };
    for (int j = 0; j < L; ++j) {
        for (int i = 0; i < j; ++i) {
            const bool pureW =
                isW(k[size_t(i)]) && !isR(k[size_t(i)]);
            const bool pureR =
                isR(k[size_t(j)]) && !isW(k[size_t(j)]);
            if (!(pureW && pureR))
                set(i, j);
        }
    }
    for (int slot = 0; slot + 1 < L; ++slot) {
        const int d = dec[size_t(slot)];
        if (d < 1 || d > 4)
            continue;
        const auto f = static_cast<isa::FenceKind>(d - 1);
        const bool preLoad = isa::fencePre(f) == isa::MemType::Load;
        const bool postLoad = isa::fencePost(f) == isa::MemType::Load;
        for (int a = 0; a <= slot; ++a) {
            if (!(preLoad ? isR(k[size_t(a)]) : isW(k[size_t(a)])))
                continue;
            for (int b = slot + 1; b < L; ++b)
                if (postLoad ? isR(k[size_t(b)]) : isW(k[size_t(b)]))
                    set(a, b);
        }
    }
    transitiveClose(&p, L);
    return p;
}

/** One contiguous po-segment of a rotation-canonical cycle. */
struct ThreadView
{
    size_t start = 0; ///< first event's cycle index
    std::vector<CycleEventKind> kinds;
    std::vector<int> locs;
    std::vector<int> decorations;
    Need inNeed = Need::Free;  ///< head need of the entering comm edge
    Need outNeed = Need::Free; ///< tail need of the leaving comm edge
};

/** Split a rotation-canonical cycle (last edge comm) into threads. */
std::vector<ThreadView>
splitThreads(const std::vector<CycleEdge> &edges,
             const std::vector<CycleEventKind> &kinds,
             const std::vector<int> &locs)
{
    const size_t n = edges.size();
    GAM_ASSERT(isCommKind(edges[n - 1].kind),
               "splitThreads: spec is not rotation-canonical");
    std::vector<ThreadView> threads;
    size_t start = 0;
    for (size_t i = 0; i < n; ++i) {
        if (!isCommKind(edges[i].kind))
            continue;
        ThreadView t;
        t.start = start;
        for (size_t e = start; e <= i; ++e) {
            t.kinds.push_back(kinds[e]);
            t.locs.push_back(locs[e]);
            if (e < i)
                t.decorations.push_back(decorationId(edges[e]));
        }
        t.inNeed = headNeed(
            edges[(start + n - 1) % n].kind);
        t.outNeed = tailNeed(edges[i].kind);
        threads.push_back(std::move(t));
        start = i + 1;
    }
    return threads;
}

/** Thread event kinds implied by boundary needs and decorations. */
void
localKinds(Need inNeed, Need outNeed, const std::vector<int> &dec,
           std::vector<CycleEventKind> *out)
{
    const size_t L = dec.size() + 1;
    out->resize(L);
    for (size_t j = 0; j < L; ++j) {
        const Need in =
            j == 0 ? inNeed : decorationHeadNeed(dec[j - 1]);
        const Need outN =
            j == L - 1 ? outNeed : decorationTailNeed(dec[j]);
        (*out)[j] = combineNeeds(in, outN);
    }
}

/** The enumerator's matched-fence rule: both fence sides must accept
 *  the adjacent event's access type (an RMW matches either side). */
bool
fenceSidesMatch(int id, CycleEventKind before, CycleEventKind after)
{
    const bool preLoad = id == 1 || id == 2;  // FenceLL, FenceLS
    const bool postLoad = id == 1 || id == 3; // FenceLL, FenceSL
    if (preLoad ? before == CycleEventKind::Store
                : before == CycleEventKind::Load)
        return false;
    return !(postLoad ? after == CycleEventKind::Store
                      : after == CycleEventKind::Load);
}

/**
 * Lex-least decoration vector whose event kinds and ordering
 * signature match the thread's, drawn from the universe's decoration
 * alphabet.  Restricting candidates to what the enumeration can emit
 * (matchedFencesOnly in particular) is load-bearing: the canonical
 * member must itself be enumerable or its class would lose its only
 * representative.  Memoized: the same (boundary needs, locations,
 * decorations, alphabet) recurs across many cycles.
 */
std::vector<int>
canonicalDecorations(const ThreadView &t, bool allowFences,
                     bool allowDeps, bool matchedOnly)
{
    const size_t slots = t.decorations.size();
    if (slots == 0)
        return {};

    uint64_t key = (t.inNeed == Need::Load ? 1u : 0u)
        | (t.outNeed == Need::Load ? 2u : 0u) | (allowFences ? 4u : 0u)
        | (allowDeps ? 8u : 0u) | (matchedOnly ? 16u : 0u)
        | (uint64_t(slots) << 5);
    for (size_t j = 0; j < t.locs.size(); ++j)
        key = key << 2 | uint64_t(t.locs[j] & 3);
    for (size_t j = 0; j < slots; ++j)
        key = key << 3 | uint64_t(t.decorations[j]);
    // The loc field above shifts at most 16 bits and the decorations
    // 21, on top of 7 + 3 header bits: the packing stays in 64 bits
    // for threads of up to 8 events.
    thread_local std::unordered_map<uint64_t, uint32_t> memo;
    if (auto it = memo.find(key); it != memo.end()) {
        std::vector<int> dec(slots);
        for (size_t j = 0; j < slots; ++j)
            dec[j] = int(it->second >> (3 * j) & 7);
        return dec;
    }

    const uint64_t gamSig =
        gamFamilyPairs(t.kinds, t.locs, t.decorations);
    const uint64_t tsoSig = tsoPairs(t.kinds, t.decorations);

    std::vector<int> cand(slots, 0), best = t.decorations;
    std::vector<CycleEventKind> kinds;
    for (;;) {
        // Stop at the original: it matches itself, so the first
        // equivalent candidate in lex order is the canonical one.
        if (cand == t.decorations)
            break;
        bool allowed = true;
        for (size_t j = 0; j < slots; ++j) {
            const int d = cand[j];
            if ((!allowFences && d >= 1 && d <= 4)
                || (!allowDeps && d >= 5)
                || (matchedOnly && d >= 1 && d <= 4
                    && !fenceSidesMatch(d, t.kinds[j],
                                        t.kinds[j + 1]))) {
                allowed = false;
                break;
            }
        }
        if (allowed) {
            localKinds(t.inNeed, t.outNeed, cand, &kinds);
            if (kinds == t.kinds
                && gamFamilyPairs(t.kinds, t.locs, cand) == gamSig
                && tsoPairs(t.kinds, cand) == tsoSig) {
                best = cand;
                break;
            }
        }
        size_t j = slots;
        while (j-- > 0) {
            if (++cand[j] < kDecorations)
                break;
            cand[j] = 0;
        }
        if (j == size_t(-1))
            break;
    }

    uint32_t packed = 0;
    for (size_t j = 0; j < slots; ++j)
        packed |= uint32_t(best[j]) << (3 * j);
    memo.emplace(key, packed);
    return best;
}

/**
 * Index of an interior plain-po load at a store-free location, or -1.
 * Such a load reads the initial value vacuously and contracts away
 * (see the file comment in symmetry.hh for the soundness argument).
 */
int
contractibleEvent(const std::vector<CycleEdge> &edges,
                  const std::vector<CycleEventKind> &kinds,
                  const std::vector<int> &locs)
{
    const int n = int(edges.size());
    bool locHasStore[4] = {false, false, false, false};
    for (int i = 0; i < n; ++i)
        if (kinds[size_t(i)] != CycleEventKind::Load)
            locHasStore[locs[size_t(i)]] = true;
    for (int i = 0; i < n; ++i) {
        const CycleEdge &in = edges[size_t((i + n - 1) % n)];
        const CycleEdge &out = edges[size_t(i)];
        if (in.kind == CycleEdge::Kind::Po
            && out.kind == CycleEdge::Kind::Po
            && kinds[size_t(i)] == CycleEventKind::Load
            && !locHasStore[locs[size_t(i)]])
            return i;
    }
    return -1;
}

/** Remove event @p victim, merging its two plain-po edges. */
void
contractEvent(std::vector<CycleEdge> *edges, int *numLoc, int victim)
{
    const auto locs = eventLocs(*edges, *numLoc);
    const int n = int(edges->size());
    std::vector<int> keepLoc;
    std::vector<CycleEdge> keepEdges;
    for (int i = 0; i < n; ++i) {
        if (i == victim)
            continue;
        keepLoc.push_back(locs[size_t(i)]);
        keepEdges.push_back((*edges)[size_t(i)]);
    }
    // Relabel surviving locations by first occurrence and recompute
    // the po location steps between consecutive survivors.
    const int m = int(keepEdges.size());
    int relabel[4] = {-1, -1, -1, -1};
    int next = 0;
    for (int j = 0; j < m; ++j) {
        int &slot = relabel[keepLoc[size_t(j)]];
        if (slot < 0)
            slot = next++;
        keepLoc[size_t(j)] = slot;
    }
    const int newNumLoc = std::clamp(next, 2, 4);
    for (int j = 0; j < m; ++j) {
        CycleEdge &e = keepEdges[size_t(j)];
        if (isCommKind(e.kind))
            continue;
        const int from = keepLoc[size_t(j)];
        const int to = keepLoc[size_t((j + 1) % m)];
        e.locStep = ((to - from) % newNumLoc + newNumLoc) % newNumLoc;
    }
    *edges = std::move(keepEdges);
    *numLoc = newNumLoc;
}

} // namespace

ThreadOrderSignature
threadOrderSignature(const std::vector<CycleEventKind> &kinds,
                     const std::vector<int> &locs,
                     const std::vector<int> &decorations)
{
    GAM_ASSERT(kinds.size() == locs.size()
                   && kinds.size() == decorations.size() + 1,
               "threadOrderSignature: inconsistent thread shape");
    ThreadOrderSignature sig;
    sig.gamFamily = gamFamilyPairs(kinds, locs, decorations);
    sig.tso = tsoPairs(kinds, decorations);
    return sig;
}

bool
isFullCanonical(const std::vector<CycleEdge> &edges, int numLocations,
                const EnumerateOptions &options, SymmetryStats *stats)
{
    const auto kinds = litmus::cycleEventKinds(edges);
    const auto locs = eventLocs(edges, numLocations);
    if (contractibleEvent(edges, kinds, locs) >= 0) {
        if (stats)
            ++stats->contractible;
        return false;
    }
    for (const ThreadView &t : splitThreads(edges, kinds, locs)) {
        if (t.decorations.empty())
            continue;
        if (canonicalDecorations(t, options.fences, options.deps,
                                 options.matchedFencesOnly)
            != t.decorations) {
            if (stats)
                ++stats->decorationDuplicates;
            return false;
        }
    }
    return true;
}

std::optional<CanonicalCycle>
canonicalCycleFull(const std::vector<CycleEdge> &edges, int numLocations)
{
    std::optional<CanonicalCycle> canon =
        canonicalCycle(edges, numLocations);
    if (!canon)
        return std::nullopt;

    std::vector<CycleEdge> cur = canon->edges;
    int numLoc = canon->numLocations;
    for (bool changed = true; changed;) {
        changed = false;
        for (;;) {
            const auto kinds = litmus::cycleEventKinds(cur);
            const auto locs = eventLocs(cur, numLoc);
            const int victim = contractibleEvent(cur, kinds, locs);
            if (victim < 0)
                break;
            contractEvent(&cur, &numLoc, victim);
            changed = true;
        }
        const auto kinds = litmus::cycleEventKinds(cur);
        const auto locs = eventLocs(cur, numLoc);
        for (const ThreadView &t : splitThreads(cur, kinds, locs)) {
            const std::vector<int> dec = canonicalDecorations(
                t, /*allowFences=*/true, /*allowDeps=*/true,
                /*matchedOnly=*/true);
            if (dec == t.decorations)
                continue;
            for (size_t j = 0; j < dec.size(); ++j)
                cur[t.start + j] =
                    withDecoration(cur[t.start + j], dec[j]);
            changed = true;
        }
    }
    return canonicalCycle(cur, numLoc);
}

std::optional<CanonicalCycle>
canonicalCycleAs(CanonicalForm form, const std::vector<CycleEdge> &edges,
                 int numLocations)
{
    return form == CanonicalForm::Full
        ? canonicalCycleFull(edges, numLocations)
        : canonicalCycle(edges, numLocations);
}

} // namespace gam::campaign
