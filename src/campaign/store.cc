#include "campaign/store.hh"

#include <algorithm>
#include <array>
#include <filesystem>

#include "base/hashing.hh"
#include "base/logging.hh"

namespace gam::campaign
{

namespace
{

// On-disk format: a 16-byte header followed by fixed 40-byte records,
// all fields little-endian.  The magic spells "GAMSTOR1".
constexpr uint64_t StoreMagic = 0x3152'4f54'534d'4147ull;
constexpr uint32_t StoreVersion = 1;
constexpr size_t HeaderSize = 16;
constexpr size_t RecordSize = 40;

void
putLe64(unsigned char *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

uint64_t
getLe64(const unsigned char *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(p[i]) << (8 * i);
    return v;
}

/** The four one-byte fields and the count, packed into one word. */
uint64_t
packMeta(const StoreRecord &r)
{
    return uint64_t(r.outcomeCount)
        | uint64_t(uint8_t(r.model)) << 32
        | uint64_t(uint8_t(r.engine)) << 40
        | uint64_t(r.allowed ? 1 : 0) << 48
        | uint64_t(uint8_t(r.prescreened)) << 56;
}

uint64_t
recordChecksum(uint64_t key, uint64_t test_fp, uint64_t outcome_hash,
               uint64_t meta)
{
    StateHasher h;
    h.add(key);
    h.add(test_fp);
    h.add(outcome_hash);
    h.add(meta);
    return h.digest();
}

void
encodeRecord(const StoreRecord &r, unsigned char (&buf)[RecordSize])
{
    const uint64_t meta = packMeta(r);
    putLe64(buf + 0, r.key);
    putLe64(buf + 8, r.testFingerprint);
    putLe64(buf + 16, r.outcomeHash);
    putLe64(buf + 24, meta);
    putLe64(buf + 32,
            recordChecksum(r.key, r.testFingerprint, r.outcomeHash, meta));
}

/** Checksum-validate and decode; nullopt means corrupt (torn tail). */
std::optional<StoreRecord>
decodeRecord(const unsigned char (&buf)[RecordSize])
{
    const uint64_t key = getLe64(buf + 0);
    const uint64_t test_fp = getLe64(buf + 8);
    const uint64_t outcome_hash = getLe64(buf + 16);
    const uint64_t meta = getLe64(buf + 24);
    const uint64_t sum = getLe64(buf + 32);
    if (recordChecksum(key, test_fp, outcome_hash, meta) != sum)
        return std::nullopt;

    const auto model = uint8_t(meta >> 32);
    const auto engine = uint8_t(meta >> 40);
    const auto allowed = uint8_t(meta >> 48);
    const auto prescreen = uint8_t(meta >> 56);
    // A checksum collision over garbage is astronomically unlikely,
    // but enum ranges are free to check and keep a bad record from
    // ever turning into an out-of-range enum.
    if (model > uint8_t(model::ModelKind::PerLocSC)
        || engine > uint8_t(model::Engine::Cat) || allowed > 1
        || prescreen > uint8_t(harness::PrescreenKind::ScDelegate))
        return std::nullopt;

    StoreRecord r;
    r.key = key;
    r.testFingerprint = test_fp;
    r.outcomeHash = outcome_hash;
    r.outcomeCount = uint32_t(meta);
    r.model = model::ModelKind(model);
    r.engine = model::Engine(engine);
    r.allowed = allowed != 0;
    r.prescreened = harness::PrescreenKind(prescreen);
    return r;
}

void
writeHeader(std::FILE *f)
{
    unsigned char buf[HeaderSize] = {};
    putLe64(buf + 0, StoreMagic);
    putLe64(buf + 8, uint64_t(StoreVersion)); // low u32 version, high 0
    const size_t n = std::fwrite(buf, 1, HeaderSize, f);
    GAM_ASSERT(n == HeaderSize, "campaign store: short header write");
}

} // namespace

DecisionStore::DecisionStore(const std::string &path, StoreOptions opts)
    : filePath(path), options(opts),
      lastFlush(std::chrono::steady_clock::now())
{
    namespace fs = std::filesystem;

    // Recovery pass: read the existing log front to back, keeping the
    // longest valid prefix.
    uint64_t file_size = 0;
    if (std::FILE *in = std::fopen(path.c_str(), "rb")) {
        unsigned char header[HeaderSize];
        if (std::fread(header, 1, HeaderSize, in) == HeaderSize) {
            GAM_ASSERT(getLe64(header + 0) == StoreMagic,
                       "'%s' is not a campaign decision store",
                       path.c_str());
            GAM_ASSERT(uint32_t(getLe64(header + 8)) == StoreVersion,
                       "campaign store '%s': unsupported version",
                       path.c_str());
            unsigned char buf[RecordSize];
            while (std::fread(buf, 1, RecordSize, in) == RecordSize) {
                auto r = decodeRecord(buf);
                if (!r)
                    break; // first corrupt record: the tail starts here
                if (index.emplace(r->key, *r).second) {
                    ++counters.loaded;
                    testIndex[r->testFingerprint].push_back(r->key);
                } else {
                    ++counters.duplicates;
                }
            }
        }
        std::fclose(in);
        std::error_code ec;
        file_size = fs::file_size(path, ec);
        if (ec)
            file_size = 0;
    }

    const uint64_t good_size =
        HeaderSize + (counters.loaded + counters.duplicates) * RecordSize;
    if (file_size > good_size) {
        // Torn or corrupt tail: drop it now so the recovered prefix
        // and new appends form one contiguous valid log.
        counters.droppedBytes = file_size - good_size;
        std::error_code ec;
        fs::resize_file(filePath, good_size, ec);
        GAM_ASSERT(!ec, "campaign store '%s': cannot truncate torn tail",
                   filePath.c_str());
        file_size = good_size;
    }

    if (file_size < HeaderSize) {
        // New (or headerless-stub) file: start a fresh log.
        counters.droppedBytes += file_size;
        std::FILE *f = std::fopen(filePath.c_str(), "wb");
        GAM_ASSERT(f != nullptr, "campaign store: cannot create '%s'",
                   filePath.c_str());
        writeHeader(f);
        std::fclose(f);
    }

    log = std::fopen(filePath.c_str(), "ab");
    GAM_ASSERT(log != nullptr, "campaign store: cannot append to '%s'",
               filePath.c_str());
}

DecisionStore::~DecisionStore()
{
    if (log)
        std::fclose(log);
}

std::optional<harness::Decision>
DecisionStore::load(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = index.find(key);
    if (it == index.end()) {
        ++counters.misses;
        return std::nullopt;
    }
    ++counters.hits;
    const StoreRecord &r = it->second;
    harness::Decision d;
    d.allowed = r.allowed;
    d.engine = r.engine;
    d.prescreened = r.prescreened;
    d.complete = true;
    d.storeHit = true;
    return d;
}

void
DecisionStore::store(uint64_t key, const harness::Query &query,
                     const harness::Decision &decision)
{
    if (!decision.complete)
        return;
    GAM_ASSERT(!decision.storeHit,
               "campaign store: refusing to re-persist a verdict-only "
               "store hit");

    StoreRecord r;
    r.key = key;
    r.testFingerprint = litmus::fingerprint(*query.test);
    r.outcomeHash = litmus::outcomeSetHash(decision.outcomes);
    r.outcomeCount = uint32_t(decision.outcomes.size());
    r.model = query.model;
    r.engine = decision.engine;
    r.allowed = decision.allowed;
    r.prescreened = decision.prescreened;

    std::lock_guard<std::mutex> lock(mu);
    if (!index.emplace(key, r).second) {
        ++counters.duplicates;
        return;
    }
    testIndex[r.testFingerprint].push_back(key);
    append(r);
}

void
DecisionStore::append(const StoreRecord &r)
{
    unsigned char buf[RecordSize];
    encodeRecord(r, buf);
    const size_t n = std::fwrite(buf, 1, RecordSize, log);
    GAM_ASSERT(n == RecordSize, "campaign store '%s': append failed",
               filePath.c_str());
    ++counters.appended;
    // Group flush: fflush every K records or T ms instead of per
    // record.  A kill between flushes loses at most one group of
    // finished answers to the torn-tail truncation at the next open
    // -- bounded, re-decidable work -- while a cold campaign stops
    // paying one flush per decision.
    ++pendingAppends;
    const bool due = pendingAppends >= options.flushEveryRecords
        || (options.flushIntervalMs != 0
            && std::chrono::steady_clock::now() - lastFlush
                >= std::chrono::milliseconds(options.flushIntervalMs));
    if (due)
        flushLocked();
}

std::optional<StoreRecord>
DecisionStore::record(uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = index.find(key);
    if (it == index.end())
        return std::nullopt;
    return it->second;
}

void
DecisionStore::forEach(
    const std::function<void(const StoreRecord &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &[key, r] : index)
        fn(r);
}

size_t
DecisionStore::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return index.size();
}

StoreStats
DecisionStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

void
DecisionStore::flush()
{
    std::lock_guard<std::mutex> lock(mu);
    flushLocked();
}

void
DecisionStore::flushLocked()
{
    if (log)
        std::fflush(log);
    pendingAppends = 0;
    lastFlush = std::chrono::steady_clock::now();
}

std::vector<StoreRecord>
DecisionStore::recordsForTest(uint64_t testFingerprint) const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<StoreRecord> out;
    auto it = testIndex.find(testFingerprint);
    if (it == testIndex.end())
        return out;
    out.reserve(it->second.size());
    for (uint64_t key : it->second)
        out.push_back(index.at(key));
    std::sort(out.begin(), out.end(),
              [](const StoreRecord &a, const StoreRecord &b) {
                  return a.key < b.key;
              });
    return out;
}

size_t
DecisionStore::distinctTests() const
{
    std::lock_guard<std::mutex> lock(mu);
    return testIndex.size();
}

CompactStats
compactStores(const std::vector<std::string> &inputs,
              const std::string &output)
{
    CompactStats stats;
    std::unordered_map<uint64_t, StoreRecord> merged;
    for (const std::string &in : inputs) {
        GAM_ASSERT(in != output,
                   "campaign compact: output '%s' is also an input",
                   output.c_str());
        DecisionStore store(in);
        ++stats.inputs;
        store.forEach([&](const StoreRecord &r) {
            ++stats.scanned;
            if (!merged.emplace(r.key, r).second)
                ++stats.duplicates;
        });
    }

    // Key order makes the output a pure function of the merged record
    // set: compacting the same inputs twice yields identical bytes.
    std::vector<const StoreRecord *> ordered;
    ordered.reserve(merged.size());
    for (const auto &[key, r] : merged)
        ordered.push_back(&r);
    std::sort(ordered.begin(), ordered.end(),
              [](const StoreRecord *a, const StoreRecord *b) {
                  return a->key < b->key;
              });

    std::FILE *out = std::fopen(output.c_str(), "wb");
    GAM_ASSERT(out != nullptr, "campaign compact: cannot create '%s'",
               output.c_str());
    writeHeader(out);
    for (const StoreRecord *r : ordered) {
        unsigned char buf[RecordSize];
        encodeRecord(*r, buf);
        const size_t n = std::fwrite(buf, 1, RecordSize, out);
        GAM_ASSERT(n == RecordSize,
                   "campaign compact: short write to '%s'",
                   output.c_str());
    }
    GAM_ASSERT(std::fflush(out) == 0 && std::fclose(out) == 0,
               "campaign compact: cannot finish '%s'", output.c_str());
    stats.merged = ordered.size();
    return stats;
}

} // namespace gam::campaign
