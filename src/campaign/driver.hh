/**
 * @file
 * The campaign driver: decide the exhaustive test universe under a
 * set of models and engines, sharded over a thread pool, with
 * checkpoint/resume and an optional persistent decision store.
 *
 * A campaign is three deterministic steps:
 *
 *  1. *Prepare*: enumerate every canonical cycle (campaign/enumerate),
 *     lower each to a litmus test, and dedupe by litmus::fingerprint
 *     (distinct canonical cycles can lower to the same program, e.g.
 *     when a dependency edge degenerates).  The surviving units keep
 *     their enumeration order, so unit -> shard assignment (unit i to
 *     shard i mod N) is reproducible across runs and platforms.
 *  2. *Decide*: each shard walks its units and decides every
 *     (model, engine) pair through harness::decide(), backed by a
 *     private DecisionCache and, when given, a DecisionStore -- so a
 *     re-run serves from the store instead of the engines, and a
 *     killed run loses only unfinished shards.
 *  3. *Checkpoint*: finished shards are appended to a line-oriented
 *     checkpoint file (config-hash guarded, torn lines ignored);
 *     --resume skips them wholesale.
 *
 * Verification sampling closes the loop on the store: every Nth
 * decision is re-decided from scratch (no cache, no store) and its
 * verdict plus outcome-set witness (size, litmus::outcomeSetHash) are
 * compared against the stored record, proving persisted answers still
 * match the engines exactly.
 */

#ifndef GAM_CAMPAIGN_DRIVER_HH
#define GAM_CAMPAIGN_DRIVER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/enumerate.hh"
#include "campaign/store.hh"
#include "harness/decision.hh"
#include "model/engine.hh"
#include "obs/registry.hh"

namespace gam::campaign
{

/** Configuration of one campaign run. */
struct CampaignOptions
{
    /** The test universe (cycle lengths, edge vocabulary). */
    EnumerateOptions enumerate;
    /**
     * Models to decide.  The default is the four models every engine
     * here can decide -- SC, TSO, GAM0 and GAM all have axioms *and*
     * builtin cat files -- so the default matrix has no skipped pairs.
     */
    std::vector<model::ModelKind> models = {
        model::ModelKind::SC, model::ModelKind::TSO,
        model::ModelKind::GAM0, model::ModelKind::GAM};
    /** Engines to decide each model under (unsupported pairs are
     *  skipped and counted, not errors). */
    std::vector<model::Engine> engines = {model::Engine::Axiomatic};
    /** Work-queue shards (checkpoint granularity), >= 1. */
    unsigned shards = 64;
    /** Worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;
    /** Cap on deduped units (0 = the whole universe); applied in
     *  enumeration order, so a capped run is a prefix of the full one. */
    uint64_t limit = 0;
    /** Checkpoint file; empty disables checkpointing. */
    std::string checkpointPath;
    /** Skip shards the checkpoint records as done (else start over). */
    bool resume = false;
    /** Re-decide every Nth decision from scratch and compare verdict
     *  and outcome witness against the store (0 = off). */
    uint64_t verifySample = 0;
    /** Private in-memory cache capacity.  Deliberately small: within
     *  one campaign only delegated SC sub-queries repeat, and a small
     *  cache keeps 100k-test runs from holding every outcome set in
     *  memory (the store keeps compact records instead). */
    size_t cacheEntries = 1 << 16;
    /** Engine knobs for every decision (threads forced to 1: the
     *  campaign parallelises across shards, not within engines). */
    harness::RunOptions run;
    /**
     * Decide through the batched pipeline (harness::decideBatch) with
     * work-stealing unit assignment: workers pull fixed-size chunks of
     * units from a shared cursor, so one slow unit no longer idles
     * every other worker mapped to its shard.  False falls back to the
     * static unit->shard loops with one decide() per query -- the PR 8
     * pipeline, kept so bench_campaign can measure what batching buys.
     * Tallies, checkpoint semantics and results are identical either
     * way (campaign_test pins it).
     */
    bool batching = true;
};

/** One (model, engine) pair's outcome tallies. */
struct PairTally
{
    model::ModelKind model = model::ModelKind::GAM;
    model::Engine engine = model::Engine::Axiomatic;
    uint64_t decided = 0;
    uint64_t allowed = 0;
    uint64_t storeHits = 0;
};

/** Live progress snapshot passed to the progress callback. */
struct CampaignProgress
{
    uint64_t decisionsDone = 0;
    uint64_t decisionsTotal = 0;
    uint64_t storeHits = 0;
    unsigned shardsDone = 0;
    unsigned shardsTotal = 0;
    double seconds = 0.0;
};

/** The completed campaign's summary. */
struct CampaignResult
{
    EnumerateStats enumerate;
    /** Lowered tests discarded as fingerprint duplicates. */
    uint64_t duplicateTests = 0;
    /** Deduped canonical tests in the work queue. */
    uint64_t units = 0;
    /** (model, engine) pairs decided / skipped as unsupported. */
    uint64_t pairs = 0;
    uint64_t skippedPairs = 0;
    uint64_t decisions = 0;
    uint64_t allowed = 0;
    uint64_t storeHits = 0;
    uint64_t cacheHits = 0;
    uint64_t prescreened = 0;
    /**
     * Decisions this run offered to the store (fresh engine or
     * prescreen answers; cache/store hits are never re-offered).  With
     * a store attached, every decision is served from exactly one
     * source, so the driver's tallies reconcile exactly:
     *
     *   decisions == storeWrites + cacheHits + storeHits
     *
     * (the obs_campaign reconciliation test enforces this).
     */
    uint64_t storeWrites = 0;
    /** Verification samples taken / that disagreed with the store. */
    uint64_t verified = 0;
    uint64_t verifyMismatches = 0;
    unsigned shardsTotal = 0;
    unsigned shardsDone = 0;
    /** Shards skipped wholesale thanks to --resume. */
    unsigned shardsResumed = 0;
    double seconds = 0.0;
    std::vector<PairTally> tallies;
    harness::DecisionCacheStats cacheStats;
    /**
     * Registry delta of exactly this run (decide.* pipeline counters,
     * campaign.* aggregates, enum.* work counters): what `campaign run
     * --metrics` writes as campaign_metrics.json.
     */
    obs::MetricSnapshot metrics;
};

/**
 * Run a campaign.  @p store may be nullptr (no persistence).  The
 * progress callback, when given, is invoked from the coordinating
 * thread roughly once a second and once at completion.
 *
 * Asserts on a checkpoint whose config hash does not match the
 * options when resuming -- a checkpoint only describes one universe.
 */
CampaignResult
runCampaign(const CampaignOptions &options, DecisionStore *store,
            const std::function<void(const CampaignProgress &)> &progress
            = {});

/** Multi-line human-readable summary of a finished campaign. */
std::string formatCampaign(const CampaignResult &result);

/**
 * Aggregate a store's resident records per (model, engine): the
 * `campaign status`/`campaign query` view.  @p model / @p allowed
 * filter when set (query); both unset summarises everything (status).
 */
std::string
formatStoreSummary(const DecisionStore &store,
                   std::optional<model::ModelKind> model = std::nullopt,
                   std::optional<bool> allowed = std::nullopt);

/** One test two models decide differently (store-resident verdicts). */
struct Disagreement
{
    /** litmus::fingerprint of the disagreeing test. */
    uint64_t testFingerprint = 0;
    bool aAllowed = false;
    bool bAllowed = false;
};

/**
 * Every test with persisted records under both @p a and @p b whose
 * verdicts differ, sorted by fingerprint (deterministic).  When a
 * model has several records for one test (multiple engines), the
 * record with the smallest key speaks for it -- engines are
 * differential-tested to agree, so any spread would itself be a bug
 * the verify sampler flags.  The `campaign query --disagree` axis:
 * where in the bounded universe do two models actually part ways?
 */
std::vector<Disagreement> disagreeingTests(const DecisionStore &store,
                                           model::ModelKind a,
                                           model::ModelKind b);

/** Human-readable rendering of disagreeingTests(). */
std::string formatDisagreements(const DecisionStore &store,
                                model::ModelKind a, model::ModelKind b);

} // namespace gam::campaign

#endif // GAM_CAMPAIGN_DRIVER_HH
