#include "campaign/driver.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iterator>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "base/hashing.hh"
#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "litmus/test.hh"
#include "obs/trace.hh"

namespace gam::campaign
{

namespace
{

using harness::Decision;
using harness::Query;
using model::Engine;
using model::ModelKind;

/** Everything a checkpoint must pin down: the universe and its
 *  partition.  Worker/thread counts and the store path are free. */
uint64_t
configHash(const CampaignOptions &o)
{
    StateHasher h;
    h.add(o.enumerate.fingerprint());
    h.separator();
    for (ModelKind m : o.models)
        h.add(uint64_t(m));
    h.separator();
    for (Engine e : o.engines)
        h.add(uint64_t(e));
    h.separator();
    h.add(o.shards);
    h.add(o.limit);
    h.add(o.run.fingerprint());
    return h.digest();
}

/**
 * The line-oriented shard checkpoint.  Plain appends, one flushed
 * line per finished shard: a torn final line (killed mid-write) fails
 * to parse and is simply ignored, which loses one shard's mark, never
 * the file.
 */
class Checkpoint
{
  public:
    Checkpoint(const std::string &path, uint64_t config, bool resume)
        : filePath(path)
    {
        bool valid = false;
        if (resume) {
            std::ifstream in(path);
            std::string line;
            if (in && std::getline(in, line)
                && line == "gam-campaign-checkpoint v1"
                && std::getline(in, line) && line.rfind("config ", 0) == 0) {
                GAM_ASSERT(line.substr(7) == hex(config),
                           "checkpoint '%s' was written for a different "
                           "campaign configuration",
                           path.c_str());
                valid = true;
                unsigned shard = 0;
                while (std::getline(in, line))
                    if (std::sscanf(line.c_str(), "done %u", &shard) == 1)
                        finished.insert(shard);
            }
        }
        if (!valid) {
            std::ofstream out(path, std::ios::trunc);
            GAM_ASSERT(out.good(), "cannot write checkpoint '%s'",
                       path.c_str());
            out << "gam-campaign-checkpoint v1\n"
                << "config " << hex(config) << "\n";
        }
        log = std::fopen(path.c_str(), "ab");
        GAM_ASSERT(log != nullptr, "cannot append to checkpoint '%s'",
                   path.c_str());
    }

    ~Checkpoint()
    {
        if (log)
            std::fclose(log);
    }

    bool isDone(unsigned shard) const { return finished.count(shard) > 0; }

    size_t doneCount() const { return finished.size(); }

    void
    markDone(unsigned shard)
    {
        std::lock_guard<std::mutex> lock(mu);
        std::fprintf(log, "done %u\n", shard);
        std::fflush(log);
    }

  private:
    static std::string
    hex(uint64_t v)
    {
        char buf[17];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(v));
        return buf;
    }

    const std::string filePath;
    std::mutex mu;
    std::FILE *log = nullptr;
    std::unordered_set<unsigned> finished;
};

harness::EngineSelect
selectFor(Engine engine)
{
    switch (engine) {
      case Engine::Axiomatic: return harness::EngineSelect::Axiomatic;
      case Engine::Operational:
        return harness::EngineSelect::Operational;
      case Engine::Cat: break;
    }
    return harness::EngineSelect::Cat;
}

/** Per-shard tallies, merged in shard order once the pool drains. */
struct ShardTally
{
    std::vector<PairTally> pairs;
    uint64_t decisions = 0;
    uint64_t allowed = 0;
    uint64_t storeHits = 0;
    uint64_t cacheHits = 0;
    uint64_t prescreened = 0;
    uint64_t storeWrites = 0;
    uint64_t verified = 0;
    uint64_t verifyMismatches = 0;
};

std::string
percent(uint64_t part, uint64_t whole)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1)
       << (whole ? 100.0 * double(part) / double(whole) : 0.0) << "%";
    return os.str();
}

} // namespace

CampaignResult
runCampaign(const CampaignOptions &options, DecisionStore *store,
            const std::function<void(const CampaignProgress &)> &progress)
{
    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&start] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    // Snapshot the accumulating global registry up front so
    // result.metrics is a delta covering exactly this run.
    const obs::MetricSnapshot metricsBefore = obs::metrics().snapshot();
    GAM_TRACE_SCOPE("campaign.run");

    CampaignResult result;

    // ---- prepare: enumerate, lower, dedupe ------------------------
    std::vector<CanonicalCycle> units;
    {
        std::unordered_set<uint64_t> seen;
        result.enumerate = enumerateCycles(
            options.enumerate, [&](const CanonicalCycle &cycle) {
                auto test = litmus::testFromCycle(cycle.name, cycle.edges,
                                                  cycle.numLocations);
                GAM_ASSERT(test.has_value(),
                           "campaign: emitted cycle '%s' failed to lower",
                           cycle.name.c_str());
                if (!seen.insert(litmus::fingerprint(*test)).second) {
                    ++result.duplicateTests;
                    return true;
                }
                units.push_back(cycle);
                return options.limit == 0 || units.size() < options.limit;
            });
    }
    result.units = units.size();

    std::vector<std::pair<ModelKind, Engine>> pairs;
    for (ModelKind m : options.models)
        for (Engine e : options.engines) {
            if (model::supportsEngine(m, e))
                pairs.emplace_back(m, e);
            else
                ++result.skippedPairs;
        }
    result.pairs = pairs.size();

    const unsigned shard_count = std::max(1u, options.shards);
    result.shardsTotal = shard_count;

    // ---- checkpoint ----------------------------------------------
    std::unique_ptr<Checkpoint> checkpoint;
    if (!options.checkpointPath.empty())
        checkpoint = std::make_unique<Checkpoint>(
            options.checkpointPath, configHash(options), options.resume);

    std::vector<unsigned> todo;
    for (unsigned s = 0; s < shard_count; ++s) {
        if (checkpoint && checkpoint->isDone(s))
            ++result.shardsResumed;
        else
            todo.push_back(s);
    }

    uint64_t scheduled_units = 0;
    for (unsigned s : todo)
        scheduled_units += s < units.size()
            ? (units.size() - s - 1) / shard_count + 1 : 0;
    const uint64_t decisions_total = scheduled_units * pairs.size();

    // ---- decide ---------------------------------------------------
    harness::DecisionCache cache(options.cacheEntries);
    harness::RunOptions run = options.run;
    run.threads = 1; // parallelism lives across units, not inside engines

    std::vector<ShardTally> tallies(shard_count);
    std::atomic<uint64_t> done{0};
    std::atomic<uint64_t> store_hits{0};
    std::atomic<unsigned> shards_finished{0};

    obs::Histogram &shard_wall_us =
        obs::metrics().histogram("campaign.shard.wall_us");
    obs::Histogram &shard_decisions =
        obs::metrics().histogram("campaign.shard.decisions");

    // Tally one decision into its home shard and report whether the
    // verify sampler picked it; shared by both pipelines (the caller
    // holds the shard's lock on the batched path).
    auto tallyDecision = [&](ShardTally &tally, size_t p,
                             const Decision &d) {
        PairTally &pt = tally.pairs[p];
        pt.model = pairs[p].first;
        pt.engine = pairs[p].second;
        ++pt.decided;
        ++tally.decisions;
        if (d.allowed) {
            ++pt.allowed;
            ++tally.allowed;
        }
        if (d.storeHit) {
            ++pt.storeHits;
            ++tally.storeHits;
            store_hits.fetch_add(1, std::memory_order_relaxed);
        }
        tally.cacheHits += d.cacheHit ? 1 : 0;
        tally.prescreened +=
            d.prescreened != harness::PrescreenKind::None ? 1 : 0;
        // Mirrors decide()'s backend-offer condition: a fresh complete
        // answer (engine or prescreen) was persisted; served answers
        // never are.
        tally.storeWrites +=
            store && !d.cacheHit && !d.storeHit && d.complete ? 1 : 0;
        done.fetch_add(1, std::memory_order_relaxed);
        return options.verifySample != 0
            && tally.decisions % options.verifySample == 0;
    };
    // Re-decide from scratch -- no cache, no store -- and hold the
    // answer against the persisted witness.  Returns true on match.
    auto verifyDecision = [&](const Query &q, Engine e,
                              const Decision &d) {
        Decision fresh = harness::decide(q, nullptr, nullptr);
        bool ok = fresh.allowed == d.allowed;
        if (store) {
            auto rec = store->record(harness::queryKey(q, e));
            ok = ok && rec && rec->allowed == fresh.allowed
                && rec->outcomeHash
                    == litmus::outcomeSetHash(fresh.outcomes)
                && rec->outcomeCount == fresh.outcomes.size();
        }
        return ok;
    };
    const auto decide_start = std::chrono::steady_clock::now();
    // A shard is complete once its last unit is tallied: make its
    // records durable *before* the checkpoint marks it done (a crash
    // in between re-decides the shard; the reverse order would skip
    // units whose answers were never persisted), then sample the
    // per-shard histograms exactly once.
    auto completeShard = [&](unsigned s) {
        if (store)
            store->flush();
        if (checkpoint)
            checkpoint->markDone(s);
        const double shard_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - decide_start)
                .count();
        shard_wall_us.sample(uint64_t(shard_seconds * 1e6));
        shard_decisions.sample(tallies[s].decisions);
        shards_finished.fetch_add(1, std::memory_order_release);
    };

    for (unsigned s : todo)
        tallies[s].pairs.resize(pairs.size());

    ThreadPool pool(options.threads);
    if (options.batching) {
        // Work-stealing over units: workers pull fixed-size chunks of
        // the flattened work list from a shared cursor and decide each
        // chunk as one harness::decideBatch() call (every model/engine
        // pair of every unit in the chunk), so per-query fixed costs
        // amortize and a slow unit delays one worker, not a whole
        // static shard.  Shards survive purely as checkpoint + tally
        // accounting: unit i still belongs to shard i mod N, and a
        // shard completes when its outstanding unit count hits zero.
        auto work = std::make_shared<std::vector<size_t>>();
        std::vector<uint64_t> outstanding(shard_count, 0);
        for (size_t i = 0; i < units.size(); ++i) {
            const unsigned s = unsigned(i % shard_count);
            if (checkpoint && checkpoint->isDone(s))
                continue;
            work->push_back(i);
            ++outstanding[s];
        }
        // Empty shards (more shards than units) have nothing to wait
        // for: complete them up front, as the static loops did.
        for (unsigned s : todo)
            if (outstanding[s] == 0)
                completeShard(s);

        auto remaining =
            std::make_shared<std::vector<std::atomic<uint64_t>>>(
                shard_count);
        for (unsigned s = 0; s < shard_count; ++s)
            (*remaining)[s].store(outstanding[s],
                                  std::memory_order_relaxed);
        auto shard_mu =
            std::make_shared<std::vector<std::mutex>>(shard_count);
        auto cursor = std::make_shared<std::atomic<size_t>>(0);

        // Chunk size trades steal frequency against batch
        // amortization: 64 units x a typical 4-pair matrix is a
        // 256-query batch, which keeps the batch's ppo-shape and
        // prescreen memos hot across units (cycle tests share thread
        // shapes heavily) and spreads BatchContext setup thin, while
        // still leaving enough steals per real campaign to keep the
        // tail balanced.
        constexpr size_t ChunkUnits = 64;
        const unsigned workers = std::max(
            1u,
            std::min(pool.threadCount(),
                     unsigned((work->size() + ChunkUnits - 1)
                              / ChunkUnits)));
        for (unsigned w = 0; w < workers; ++w) {
            pool.submit([&, work, remaining, shard_mu, cursor] {
                GAM_TRACE_SCOPE("campaign.worker");
                struct Sample
                {
                    Query query;
                    Engine engine;
                    Decision decision;
                    unsigned shard;
                };
                for (;;) {
                    const size_t begin = cursor->fetch_add(
                        ChunkUnits, std::memory_order_relaxed);
                    if (begin >= work->size())
                        return;
                    const size_t end = std::min(
                        begin + ChunkUnits, work->size());

                    std::vector<litmus::LitmusTest> tests;
                    tests.reserve(end - begin);
                    for (size_t w2 = begin; w2 < end; ++w2) {
                        const CanonicalCycle &cycle =
                            units[(*work)[w2]];
                        auto test = litmus::testFromCycle(
                            cycle.name, cycle.edges,
                            cycle.numLocations);
                        tests.push_back(std::move(*test));
                    }
                    std::vector<Query> batch;
                    batch.reserve((end - begin) * pairs.size());
                    for (size_t w2 = begin; w2 < end; ++w2) {
                        for (const auto &[m, e] : pairs) {
                            Query q;
                            q.test = &tests[w2 - begin];
                            q.model = m;
                            q.engine = selectFor(e);
                            q.options = run;
                            batch.push_back(q);
                        }
                    }
                    const std::vector<Decision> decisions =
                        harness::decideBatch(batch, &cache, store);

                    // Tally under the home shard's lock; run the
                    // sampled verification re-decides after releasing
                    // it (they are full engine runs).
                    std::vector<Sample> samples;
                    size_t qi = 0;
                    for (size_t w2 = begin; w2 < end; ++w2) {
                        const unsigned s =
                            unsigned((*work)[w2] % shard_count);
                        {
                            std::lock_guard<std::mutex> lock(
                                (*shard_mu)[s]);
                            for (size_t p = 0; p < pairs.size();
                                 ++p, ++qi) {
                                if (tallyDecision(tallies[s], p,
                                                  decisions[qi]))
                                    samples.push_back(
                                        {batch[qi], pairs[p].second,
                                         decisions[qi], s});
                            }
                        }
                        if ((*remaining)[s].fetch_sub(
                                1, std::memory_order_acq_rel) == 1)
                            completeShard(s);
                    }
                    for (const Sample &sample : samples) {
                        const bool ok = verifyDecision(
                            sample.query, sample.engine,
                            sample.decision);
                        std::lock_guard<std::mutex> lock(
                            (*shard_mu)[sample.shard]);
                        ShardTally &tally = tallies[sample.shard];
                        ++tally.verified;
                        if (!ok)
                            ++tally.verifyMismatches;
                    }
                }
            });
        }
    } else {
        // The PR 8 pipeline: static unit -> shard assignment, one
        // decide() per query.  Kept as the A/B baseline bench_campaign
        // measures the batched pipeline against.
        for (unsigned s : todo) {
            pool.submit([&, s] {
                GAM_TRACE_SCOPE("campaign.shard");
                ShardTally &tally = tallies[s];
                for (size_t i = s; i < units.size(); i += shard_count) {
                    const CanonicalCycle &cycle = units[i];
                    auto test = litmus::testFromCycle(
                        cycle.name, cycle.edges, cycle.numLocations);
                    for (size_t p = 0; p < pairs.size(); ++p) {
                        Query q;
                        q.test = &*test;
                        q.model = pairs[p].first;
                        q.engine = selectFor(pairs[p].second);
                        q.options = run;
                        Decision d = harness::decide(q, &cache, store);
                        if (tallyDecision(tally, p, d)) {
                            ++tally.verified;
                            if (!verifyDecision(q, pairs[p].second, d))
                                ++tally.verifyMismatches;
                        }
                    }
                }
                completeShard(s);
            });
        }
    }

    // Coordinate: poll for progress while the pool drains.
    auto snapshot = [&](unsigned finished) {
        CampaignProgress p;
        p.decisionsDone = done.load(std::memory_order_relaxed);
        p.decisionsTotal = decisions_total;
        p.storeHits = store_hits.load(std::memory_order_relaxed);
        p.shardsDone = result.shardsResumed + finished;
        p.shardsTotal = shard_count;
        p.seconds = elapsed();
        return p;
    };
    if (progress) {
        double last = 0.0;
        while (shards_finished.load(std::memory_order_acquire)
               < todo.size()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            if (elapsed() - last >= 1.0) {
                last = elapsed();
                progress(snapshot(shards_finished.load()));
            }
        }
    }
    pool.wait();
    if (store)
        store->flush();

    // ---- merge (shard order: deterministic) -----------------------
    result.tallies.resize(pairs.size());
    for (size_t p = 0; p < pairs.size(); ++p) {
        result.tallies[p].model = pairs[p].first;
        result.tallies[p].engine = pairs[p].second;
    }
    for (unsigned s = 0; s < shard_count; ++s) {
        const ShardTally &tally = tallies[s];
        result.decisions += tally.decisions;
        result.allowed += tally.allowed;
        result.storeHits += tally.storeHits;
        result.cacheHits += tally.cacheHits;
        result.prescreened += tally.prescreened;
        result.storeWrites += tally.storeWrites;
        result.verified += tally.verified;
        result.verifyMismatches += tally.verifyMismatches;
        for (size_t p = 0; p < tally.pairs.size(); ++p) {
            result.tallies[p].decided += tally.pairs[p].decided;
            result.tallies[p].allowed += tally.pairs[p].allowed;
            result.tallies[p].storeHits += tally.pairs[p].storeHits;
        }
    }
    result.shardsDone = result.shardsResumed + unsigned(todo.size());
    result.cacheStats = cache.stats();
    result.seconds = elapsed();

    // Mirror the driver's own tallies into the registry and capture
    // this run's delta: campaign_metrics.json carries both the
    // decide() pipeline counters and these aggregates, and the
    // reconciliation test cross-checks the two views.
    {
        obs::MetricRegistry &reg = obs::metrics();
        reg.counter("campaign.units").inc(result.units);
        reg.counter("campaign.decisions").inc(result.decisions);
        reg.counter("campaign.allowed").inc(result.allowed);
        reg.counter("campaign.cache.hit").inc(result.cacheHits);
        reg.counter("campaign.store.hit").inc(result.storeHits);
        reg.counter("campaign.store.write").inc(result.storeWrites);
        reg.counter("campaign.prescreened").inc(result.prescreened);
        reg.counter("campaign.verified").inc(result.verified);
        reg.counter("campaign.verify_mismatches")
            .inc(result.verifyMismatches);
        reg.counter("campaign.shards.done").inc(result.shardsDone);
        reg.counter("campaign.shards.resumed").inc(result.shardsResumed);
        // The symmetry quotient's work ledger: how many realisable
        // rotation-canonical cycles the Full form folded away, and
        // what survived (campaign.units already counts post-dedupe).
        reg.counter("campaign.symmetry.duplicates")
            .inc(result.enumerate.symmetryDuplicates);
        reg.counter("campaign.symmetry.emitted")
            .inc(result.enumerate.emitted);
        reg.gauge("campaign.symmetry.shrink")
            .set(result.enumerate.emitted
                     ? double(result.enumerate.emitted
                              + result.enumerate.symmetryDuplicates)
                         / double(result.enumerate.emitted)
                     : 0.0);
        reg.gauge("campaign.wall_seconds").set(result.seconds);
        reg.gauge("campaign.decisions_per_second")
            .set(result.seconds > 0.0
                     ? double(result.decisions) / result.seconds
                     : 0.0);
        reg.gauge("campaign.store_hit_rate")
            .set(result.decisions
                     ? double(result.storeHits) / double(result.decisions)
                     : 0.0);
        reg.gauge("campaign.cache.shard_skew")
            .set(result.cacheStats.shardMean > 0.0
                     ? double(result.cacheStats.shardMax)
                         / result.cacheStats.shardMean
                     : 0.0);
        result.metrics = reg.snapshot().delta(metricsBefore);
    }

    if (progress)
        progress(snapshot(unsigned(todo.size())));
    return result;
}

std::string
formatCampaign(const CampaignResult &r)
{
    std::ostringstream os;
    os << "universe: " << r.enumerate.emitted << " canonical cycles ("
       << r.enumerate.rotationDuplicates << " rotation duplicates, "
       << r.enumerate.unrealisable << " unrealisable";
    if (r.enumerate.symmetryDuplicates)
        os << ", " << r.enumerate.symmetryDuplicates
           << " symmetry duplicates";
    os << "), " << r.units << " tests after deduping "
       << r.duplicateTests << " repeated lowerings\n";
    os << "decisions: " << r.decisions << " across " << r.pairs
       << " model/engine pairs";
    if (r.skippedPairs)
        os << " (" << r.skippedPairs << " unsupported pairs skipped)";
    os << std::fixed << std::setprecision(1) << " in " << r.seconds
       << "s";
    if (r.seconds > 0.0)
        os << " (" << uint64_t(double(r.decisions) / r.seconds)
           << " dec/s)";
    os << "\n";
    os << "verdicts: " << r.allowed << " allowed, "
       << (r.decisions - r.allowed) << " forbidden\n";
    os << "served: " << r.storeHits << " store hits ("
       << percent(r.storeHits, r.decisions) << "), " << r.cacheHits
       << " cache hits, " << r.prescreened << " prescreened";
    if (r.storeWrites)
        os << ", " << r.storeWrites << " store writes";
    os << "\n";
    os << "shards: " << r.shardsDone << "/" << r.shardsTotal << " done";
    if (r.shardsResumed)
        os << " (" << r.shardsResumed << " resumed from checkpoint)";
    os << "\n";
    if (r.verified)
        os << "verify: " << r.verified << " sampled re-decides, "
           << r.verifyMismatches << " mismatches\n";
    for (const PairTally &t : r.tallies)
        os << "  " << model::modelName(t.model) << "/"
           << model::engineName(t.engine) << ": " << t.decided
           << " decided, " << t.allowed << " allowed, " << t.storeHits
           << " store hits\n";
    return os.str();
}

std::string
formatStoreSummary(const DecisionStore &store,
                   std::optional<ModelKind> model,
                   std::optional<bool> allowed)
{
    struct Bucket
    {
        uint64_t records = 0;
        uint64_t allowed = 0;
        uint64_t prescreened = 0;
    };
    // Index buckets by (model, engine) ordinal so the report iterates
    // in enum declaration order, independent of the store's map order.
    constexpr size_t EngineCount = 3;
    std::vector<Bucket> buckets(std::size(model::allModelKinds)
                                * EngineCount);
    std::unordered_set<uint64_t> tests;
    uint64_t matched = 0;
    store.forEach([&](const StoreRecord &rec) {
        if (model && rec.model != *model)
            return;
        if (allowed && rec.allowed != *allowed)
            return;
        ++matched;
        tests.insert(rec.testFingerprint);
        Bucket &b = buckets[size_t(rec.model) * EngineCount
                            + size_t(rec.engine)];
        ++b.records;
        b.allowed += rec.allowed ? 1 : 0;
        b.prescreened +=
            rec.prescreened != harness::PrescreenKind::None ? 1 : 0;
    });

    std::ostringstream os;
    os << "store: " << store.path() << "\n";
    os << "records: " << matched;
    if (model || allowed)
        os << " matching (of " << store.size() << " resident)";
    os << ", " << tests.size() << " distinct tests\n";
    for (ModelKind m : model::allModelKinds)
        for (Engine e : model::allEngines) {
            const Bucket &b = buckets[size_t(m) * EngineCount + size_t(e)];
            if (!b.records)
                continue;
            os << "  " << model::modelName(m) << "/"
               << model::engineName(e) << ": " << b.records
               << " records, " << b.allowed << " allowed, "
               << b.prescreened << " prescreened\n";
        }
    return os.str();
}

std::vector<Disagreement>
disagreeingTests(const DecisionStore &store, ModelKind a, ModelKind b)
{
    struct Verdict
    {
        uint64_t key = ~0ull;
        bool allowed = false;
        bool present = false;
    };
    // Smallest-key record speaks for each (test, model) side.
    std::unordered_map<uint64_t, std::pair<Verdict, Verdict>> byTest;
    store.forEach([&](const StoreRecord &rec) {
        if (rec.model != a && rec.model != b)
            return;
        auto &sides = byTest[rec.testFingerprint];
        Verdict &v = rec.model == a ? sides.first : sides.second;
        if (!v.present || rec.key < v.key)
            v = {rec.key, rec.allowed, true};
    });

    std::vector<Disagreement> out;
    for (const auto &[fp, sides] : byTest) {
        const auto &[va, vb] = sides;
        if (va.present && vb.present && va.allowed != vb.allowed)
            out.push_back({fp, va.allowed, vb.allowed});
    }
    std::sort(out.begin(), out.end(),
              [](const Disagreement &x, const Disagreement &y) {
                  return x.testFingerprint < y.testFingerprint;
              });
    return out;
}

std::string
formatDisagreements(const DecisionStore &store, ModelKind a, ModelKind b)
{
    const std::vector<Disagreement> list = disagreeingTests(store, a, b);
    std::ostringstream os;
    os << model::modelName(a) << " vs " << model::modelName(b) << ": "
       << list.size() << " disagreeing tests\n";
    constexpr size_t MaxListed = 20;
    for (size_t i = 0; i < list.size() && i < MaxListed; ++i) {
        const Disagreement &d = list[i];
        char fp[17];
        std::snprintf(fp, sizeof(fp), "%016llx",
                      static_cast<unsigned long long>(d.testFingerprint));
        os << "  test " << fp << ": " << model::modelName(a) << " "
           << (d.aAllowed ? "allows" : "forbids") << ", "
           << model::modelName(b) << " "
           << (d.bAllowed ? "allows" : "forbids") << "\n";
    }
    if (list.size() > MaxListed)
        os << "  ... and " << (list.size() - MaxListed) << " more\n";
    return os.str();
}

} // namespace gam::campaign
