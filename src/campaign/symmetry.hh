/**
 * @file
 * Symmetry reduction beyond rotation: the CanonicalForm::Full quotient.
 *
 * The rotation canonical form (campaign/enumerate.hh) already
 * identifies every cycle-level isomorph: all communication-ending
 * rotations are compared under restricted-growth location relabelling,
 * which subsumes cyclic thread permutation and location renaming.
 * Measured on the length-<=6 universe, the residual test-level
 * isomorphism quotient (thread permutation x location permutation x
 * per-location value renumbering over the lowered programs) collapses
 * less than 0.5% further -- the bloat is not in naming.
 *
 * Where the universe *is* redundant is in decorations: many fence/dep
 * choices on the same cycle skeleton induce exactly the same preserved
 * program order, so their tests cannot be told apart by any shipped
 * model.  CanonicalForm::Full quotients by two verdict-preserving
 * moves:
 *
 *   decoration equivalence
 *       Two decoration assignments to one thread are equivalent when
 *       they induce equal transitively-closed intra-thread ordering
 *       relations under both pair semantics used by the shipped
 *       models: the Definition 6 cases of the GAM family (RegRAW,
 *       BrSt, AddrSt, SAStLd, FenceOrd over the static SAMemSt base)
 *       and TSO's fence-over-relaxed-po.  SC orders everything and
 *       GAM/ARM/PerLocSC only add decoration-independent relations on
 *       top of the GAM0 base, so equal closures imply equal ppo -- and
 *       hence equal verdicts -- for every ModelKind and the shipped
 *       .cat models.  The canonical member is the lexicographically
 *       least assignment (in enumeration variant order) achieving the
 *       thread's signature.  Example: between two loads, `addr` and
 *       `fll` collapse (the fence is lex-least and survives), and a
 *       bare `ctrl` (no later store to order) collapses with plain
 *       po.
 *
 *   critical-core contraction
 *       An interior load with plain po on both sides whose location
 *       is stored to nowhere in the cycle reads the initial value
 *       vacuously: it has no rf/co/fr edges and every fence or
 *       dependency bridge through it also runs through the bridging
 *       construct's own adjacent access.  Dropping it is the
 *       Shasha-Snir critical-cycle contraction; the representative
 *       lives in the shorter universe.
 *
 * Parity caveat, measured: the moves preserve what the models can
 * *order*, and the lowered witness conditions additionally pick one
 * concrete coherence completion -- the final-memory values orient
 * same-location store pairs that have no coe edge by walk order.
 * That orientation is a per-representative choice, not a class
 * property: it already differs between comm-ending rotations of one
 * and the same cycle in the seed's Rotation quotient (two rotations
 * of camp_data_fssb_coeb_data_rfea decide differently under
 * PerLocSC).  Full inherits exactly that and no more: at length <= 5,
 * 52 of 9,628 reduced members flip a verdict against their
 * representative, and for every one of them the verdict *sets* over
 * all comm-ending rotations of member and representative are equal
 * (zero at length <= 4; the symmetry test suite pins both).
 *
 * Reflection (reversing the walk) is deliberately NOT a quotient
 * move: reversing an edge list while staying inside the rf/co/fr
 * vocabulary describes a different test with different verdicts
 * (reversing LB's [po,rfe,po,rfe] yields SB's [po,fre,po,fre]; TSO
 * forbids LB and allows SB), and the true walk reversal needs inverse
 * relations the vocabulary cannot spell.  Only palindromic cycles
 * reflect onto themselves, and those are already rotation-identified.
 */

#ifndef GAM_CAMPAIGN_SYMMETRY_HH
#define GAM_CAMPAIGN_SYMMETRY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "campaign/enumerate.hh"
#include "litmus/generator.hh"

namespace gam::campaign
{

/** Counters of one Full-canonicality sweep. */
struct SymmetryStats
{
    /** Cycles rejected because a thread's decoration assignment is
     *  not the lex-least member of its ppo-signature class. */
    uint64_t decorationDuplicates = 0;
    /** Cycles rejected because an interior plain-po load at a
     *  store-free location contracts away (the representative lives
     *  at a shorter length). */
    uint64_t contractible = 0;
};

/**
 * Per-thread ordering signature: the transitively closed event-pair
 * relations (bit i*8+j = event i ordered before event j) the thread's
 * decorations induce under the GAM-family and TSO pair semantics.
 * Exposed for the symmetry test suite.
 */
struct ThreadOrderSignature
{
    uint64_t gamFamily = 0;
    uint64_t tso = 0;

    bool operator==(const ThreadOrderSignature &) const = default;
};

/**
 * Signature of one thread of a cycle.  @p kinds / @p locs are the
 * thread's event kinds and (cycle-global) location labels in program
 * order; @p decorations the variant of each po-family edge between
 * consecutive events, as campaign/enumerate.cc numbers them relative
 * to V_PO (0 = plain po, 1..4 = FenceLL/LS/SL/SS, 5 = addr, 6 = data,
 * 7 = ctrl).
 */
ThreadOrderSignature
threadOrderSignature(const std::vector<litmus::CycleEventKind> &kinds,
                     const std::vector<int> &locs,
                     const std::vector<int> &decorations);

/**
 * Is @p edges the canonical member of its Full-equivalence class?
 * Assumes the spec is already rotation-canonical (as emitted by
 * enumerateCycles or returned by canonicalCycle).  The decoration
 * alphabet honours @p options.fences / options.deps so restricted
 * universes stay closed under the quotient.  @p stats, when given,
 * counts which rule rejected the cycle.
 */
bool isFullCanonical(const std::vector<litmus::CycleEdge> &edges,
                     int numLocations, const EnumerateOptions &options,
                     SymmetryStats *stats = nullptr);

/**
 * Normalize an arbitrary cycle spec to its Full-class representative:
 * rotation canonicalization, then the contraction fixpoint and
 * per-thread lex-least redecorations until stable.  Isomorphic specs
 * and verdict-equivalent decorations map to byte-identical results.
 * The redecoration alphabet is the default universe's (fences, deps,
 * matched fence sides only), so in-universe specs map to in-universe
 * representatives; a spec using a mismatched fence normalizes within
 * its class but may keep the mismatched fence.  Returns nullopt
 * exactly when canonicalCycle() does (open walk, no communication
 * edge, bad location count).
 */
std::optional<CanonicalCycle>
canonicalCycleFull(const std::vector<litmus::CycleEdge> &edges,
                   int numLocations);

/** canonicalCycle() or canonicalCycleFull() per @p form. */
std::optional<CanonicalCycle>
canonicalCycleAs(CanonicalForm form,
                 const std::vector<litmus::CycleEdge> &edges,
                 int numLocations);

} // namespace gam::campaign

#endif // GAM_CAMPAIGN_SYMMETRY_HH
