#include "campaign/enumerate.hh"

#include <algorithm>

#include "base/hashing.hh"
#include "base/logging.hh"
#include "campaign/symmetry.hh"

namespace gam::campaign
{

namespace
{

using litmus::CycleEdge;

/**
 * The enumeration alphabet, in canonical (emission) order.  Fence
 * kinds are distinct variants so rotation minimality is decided on
 * fully concrete cycles -- two fence expansions of one structural
 * cycle are different relaxations and both get a representative.
 */
enum Variant : int {
    V_RFE = 0,
    V_COE,
    V_FRE,
    V_PO,
    V_FLL,
    V_FLS,
    V_FSL,
    V_FSS,
    V_ADDR,
    V_DATA,
    V_CTRL,
    VariantCount,
};

constexpr const char *variantToken[VariantCount] = {
    "rfe", "coe", "fre", "po", "fll", "fls", "fsl", "fss",
    "adr", "dat", "ctl",
};

bool
isCommV(int v)
{
    return v <= V_FRE;
}

bool
isFenceV(int v)
{
    return v >= V_FLL && v <= V_FSS;
}

CycleEdge::Kind
edgeKindOfVariant(int v)
{
    switch (v) {
      case V_RFE: return CycleEdge::Kind::Rfe;
      case V_COE: return CycleEdge::Kind::Coe;
      case V_FRE: return CycleEdge::Kind::Fre;
      case V_PO: return CycleEdge::Kind::Po;
      case V_FLL:
      case V_FLS:
      case V_FSL:
      case V_FSS: return CycleEdge::Kind::PoFence;
      case V_ADDR: return CycleEdge::Kind::PoAddr;
      case V_DATA: return CycleEdge::Kind::PoData;
      default: return CycleEdge::Kind::PoCtrl;
    }
}

isa::FenceKind
fenceOfVariant(int v)
{
    return static_cast<isa::FenceKind>(v - V_FLL);
}

/** The variant an explicit spec edge names. */
int
variantOf(const CycleEdge &edge)
{
    switch (edge.kind) {
      case CycleEdge::Kind::Rfe: return V_RFE;
      case CycleEdge::Kind::Coe: return V_COE;
      case CycleEdge::Kind::Fre: return V_FRE;
      case CycleEdge::Kind::Po: return V_PO;
      case CycleEdge::Kind::PoFence:
        return V_FLL + static_cast<int>(edge.fence);
      case CycleEdge::Kind::PoAddr: return V_ADDR;
      case CycleEdge::Kind::PoData: return V_DATA;
      case CycleEdge::Kind::PoCtrl: return V_CTRL;
    }
    return V_PO;
}

/** Event-type requirements, mirroring the lowering's Need rules. */
enum class Need : uint8_t { Free, Load, Store };

Need
tailNeedV(int v)
{
    switch (v) {
      case V_RFE:
      case V_COE: return Need::Store;
      case V_FRE:
      case V_ADDR:
      case V_DATA:
      case V_CTRL: return Need::Load;
      default: return Need::Free;
    }
}

Need
headNeedV(int v)
{
    switch (v) {
      case V_RFE: return Need::Load;
      case V_COE:
      case V_FRE:
      case V_DATA: return Need::Store;
      default: return Need::Free;
    }
}

using litmus::CycleEventKind;

/** The kind the lowering assigns to an event between two edges. */
CycleEventKind
eventKind(int in_variant, int out_variant)
{
    const Need in = headNeedV(in_variant);
    const Need out = tailNeedV(out_variant);
    if ((in == Need::Load && out == Need::Store)
        || (in == Need::Store && out == Need::Load)) {
        return CycleEventKind::Rmw;
    }
    if (in == Need::Store || out == Need::Store)
        return CycleEventKind::Store;
    return CycleEventKind::Load;
}

/** Can @p kind stand on the load side of a fence?  (RMWs can both.) */
bool
loadSide(CycleEventKind kind)
{
    return kind != CycleEventKind::Store;
}

bool
storeSide(CycleEventKind kind)
{
    return kind != CycleEventKind::Load;
}

/** Does fence variant @p v accept @p kind before it? */
bool
fencePreMatches(int v, CycleEventKind kind)
{
    return (v == V_FLL || v == V_FLS) ? loadSide(kind)
                                      : storeSide(kind);
}

/** Does fence variant @p v accept @p kind after it? */
bool
fencePostMatches(int v, CycleEventKind kind)
{
    return (v == V_FLL || v == V_FSL) ? loadSide(kind)
                                      : storeSide(kind);
}

/**
 * The canonical encoding of rotation @p r of a cycle: one byte per
 * edge, (variant << 2) | head-event location label, with labels
 * renormalized to first-occurrence order along the rotated event walk
 * (so the encoding is invariant under any relabelling of locations).
 */
void
rotationCodes(const std::vector<int> &variants,
              const std::vector<int> &locs, int r,
              std::vector<uint8_t> &out)
{
    const int n = static_cast<int>(variants.size());
    int relabel[4] = {-1, -1, -1, -1};
    int next = 0;
    for (int j = 0; j < n; ++j) {
        int &slot = relabel[locs[size_t((r + j) % n)]];
        if (slot < 0)
            slot = next++;
    }
    out.resize(size_t(n));
    for (int i = 0; i < n; ++i) {
        const int e = (r + i) % n;
        const int head = (e + 1) % n;
        out[size_t(i)] = static_cast<uint8_t>(
            (variants[size_t(e)] << 2) | relabel[locs[size_t(head)]]);
    }
}

/**
 * Assemble the emitted representative from a canonical (minimal
 * rotation, restricted-growth labels) variant/location assignment.
 */
CanonicalCycle
buildCanonical(const std::vector<int> &variants,
               const std::vector<int> &locs,
               const std::vector<uint8_t> &codes)
{
    const int n = static_cast<int>(variants.size());
    CanonicalCycle cycle;
    cycle.numLocations = std::clamp(
        1 + *std::max_element(locs.begin(), locs.end()), 2, 4);
    cycle.name = "camp";
    for (int i = 0; i < n; ++i) {
        const int v = variants[size_t(i)];
        CycleEdge edge;
        edge.kind = edgeKindOfVariant(v);
        if (isFenceV(v))
            edge.fence = fenceOfVariant(v);
        const int head = locs[size_t((i + 1) % n)];
        const int tail = locs[size_t(i)];
        edge.locStep = ((head - tail) % cycle.numLocations
                        + cycle.numLocations)
            % cycle.numLocations;
        cycle.edges.push_back(edge);
        cycle.name += "_";
        cycle.name += variantToken[v];
        cycle.name += static_cast<char>('a' + head);
    }
    StateHasher h;
    h.add(uint64_t(n));
    for (uint8_t code : codes)
        h.add(code);
    cycle.key = h.digest();
    return cycle;
}

/**
 * Is rotation 0 the lexicographically least among the rotations that
 * end with a communication edge?  Fills @p codes with rotation 0's
 * encoding either way.
 */
bool
isMinimalRotation(const std::vector<int> &variants,
                  const std::vector<int> &locs,
                  std::vector<uint8_t> &codes)
{
    const int n = static_cast<int>(variants.size());
    rotationCodes(variants, locs, 0, codes);
    std::vector<uint8_t> other;
    for (int r = 1; r < n; ++r) {
        // A rotation is a lowering candidate only when its last edge
        // (the one closing back to its event 0) is communication.
        if (!isCommV(variants[size_t((r + n - 1) % n)]))
            continue;
        rotationCodes(variants, locs, r, other);
        if (std::lexicographical_compare(other.begin(), other.end(),
                                         codes.begin(), codes.end())) {
            return false;
        }
    }
    return true;
}

/** Depth-first enumeration of one cycle length. */
class Enumerator
{
  public:
    Enumerator(const EnumerateOptions &options,
               const std::function<bool(const CanonicalCycle &)> &sink,
               EnumerateStats &stats)
        : opt(options), emit(sink), stats(stats)
    {
    }

    /** False when the sink asked to stop. */
    bool
    run(int length)
    {
        n = length;
        variants.assign(size_t(n), 0);
        locs.assign(size_t(n), 0);
        commCount = 0;
        maxLabel = 0;
        loads = 0;
        stores = 0;
        step(0);
        return !stopped;
    }

  private:
    /** Choose edge @p i (and the location of event i + 1). */
    void
    step(int i)
    {
        if (stopped)
            return;
        if (i == n - 1) {
            // The closing edge: communication only (the canonical
            // rotation ends with it), returning to event 0's location.
            if (locs[size_t(n - 1)] != 0)
                return;
            if (commCount + 1 < 2 || commCount + 1 > opt.maxThreads)
                return;
            for (int v = V_RFE; v <= V_FRE && !stopped; ++v) {
                variants[size_t(i)] = v;
                if (!admitEvent(i))
                    continue;
                finish();
                unadmitEvent(i);
            }
            return;
        }

        for (int v = 0; v < VariantCount && !stopped; ++v) {
            if (!opt.fences && isFenceV(v))
                continue;
            if (!opt.deps && v >= V_ADDR)
                continue;
            // Interior communication edges must leave room for the
            // mandatory communication closing edge.
            if (isCommV(v) && commCount + 2 > opt.maxThreads)
                continue;
            variants[size_t(i)] = v;
            if (!admitEvent(i))
                continue;
            if (isCommV(v)) {
                ++commCount;
                locs[size_t(i + 1)] = locs[size_t(i)];
                step(i + 1);
                --commCount;
            } else {
                const int limit =
                    std::min(maxLabel + 1, opt.maxLocations - 1);
                for (int label = 0; label <= limit && !stopped;
                     ++label) {
                    locs[size_t(i + 1)] = label;
                    const int saved = maxLabel;
                    maxLabel = std::max(maxLabel, label);
                    step(i + 1);
                    maxLabel = saved;
                }
            }
            unadmitEvent(i);
        }
    }

    /**
     * Edge @p i was just chosen, fixing event i's kind (its in-edge
     * i-1 and out-edge i are now both known).  Check the kind against
     * the RMW, load/store-budget and fence-side rules and account for
     * it; event 0 is deferred to finish() (its in-edge is the last
     * one).  False leaves the counters untouched.
     */
    bool
    admitEvent(int i)
    {
        if (i == 0)
            return true;
        const CycleEventKind kind =
            eventKind(variants[size_t(i - 1)], variants[size_t(i)]);
        if (!admitKind(kind))
            return false;
        if (opt.matchedFencesOnly) {
            if (isFenceV(variants[size_t(i - 1)])
                && !fencePostMatches(variants[size_t(i - 1)], kind)) {
                unadmitKind(kind);
                return false;
            }
            if (isFenceV(variants[size_t(i)])
                && !fencePreMatches(variants[size_t(i)], kind)) {
                unadmitKind(kind);
                return false;
            }
        }
        return true;
    }

    void
    unadmitEvent(int i)
    {
        if (i == 0)
            return;
        unadmitKind(
            eventKind(variants[size_t(i - 1)], variants[size_t(i)]));
    }

    bool
    admitKind(CycleEventKind kind)
    {
        if (kind == CycleEventKind::Rmw && !opt.rmws)
            return false;
        // The lowering's event budget: at most 4 loads and 4 stores
        // keeps rf and coherence enumeration bounded for both engines.
        const int new_loads = loads + (loadSide(kind) ? 1 : 0);
        const int new_stores = stores + (storeSide(kind) ? 1 : 0);
        if (new_loads > 4 || new_stores > 4)
            return false;
        loads = new_loads;
        stores = new_stores;
        return true;
    }

    void
    unadmitKind(CycleEventKind kind)
    {
        loads -= loadSide(kind) ? 1 : 0;
        stores -= storeSide(kind) ? 1 : 0;
    }

    /** All n edges chosen: close the cycle and emit if canonical. */
    void
    finish()
    {
        // Event 0's kind, known only now that its in-edge (the
        // closing communication edge) is fixed.
        const CycleEventKind kind0 =
            eventKind(variants[size_t(n - 1)], variants[0]);
        if (!admitKind(kind0))
            return;
        const bool fence0_ok = !opt.matchedFencesOnly
            || !isFenceV(variants[0])
            || fencePreMatches(variants[0], kind0);
        if (fence0_ok)
            emitIfCanonical();
        unadmitKind(kind0);
    }

    void
    emitIfCanonical()
    {
        if (!isMinimalRotation(variants, locs, codes)) {
            ++stats.rotationDuplicates;
            return;
        }
        CanonicalCycle cycle = buildCanonical(variants, locs, codes);
        // The lowering has the last word on realisability (register
        // pressure, value encoding); a rejected cycle is counted, not
        // emitted, so every emitted cycle is guaranteed to lower.
        if (!litmus::testFromCycle(cycle.name, cycle.edges,
                                   cycle.numLocations)) {
            ++stats.unrealisable;
            return;
        }
        if (opt.canonical == CanonicalForm::Full
            && !isFullCanonical(cycle.edges, cycle.numLocations, opt)) {
            ++stats.symmetryDuplicates;
            return;
        }
        ++stats.emitted;
        if (!emit(cycle))
            stopped = true;
    }

    const EnumerateOptions &opt;
    const std::function<bool(const CanonicalCycle &)> &emit;
    EnumerateStats &stats;

    int n = 0;
    std::vector<int> variants;
    std::vector<int> locs;
    std::vector<uint8_t> codes;
    int commCount = 0;
    int maxLabel = 0;
    int loads = 0;
    int stores = 0;
    bool stopped = false;
};

} // namespace

uint64_t
EnumerateOptions::fingerprint() const
{
    StateHasher h;
    h.add(uint64_t(minLen));
    h.add(uint64_t(maxLen));
    h.add(uint64_t(maxThreads));
    h.add(uint64_t(maxLocations));
    h.add((fences ? 1u : 0u) | (deps ? 2u : 0u) | (rmws ? 4u : 0u)
          | (matchedFencesOnly ? 8u : 0u)
          | (canonical == CanonicalForm::Full ? 16u : 0u));
    return h.digest();
}

EnumerateStats
enumerateCycles(const EnumerateOptions &options,
                const std::function<bool(const CanonicalCycle &)> &sink)
{
    EnumerateOptions opt = options;
    opt.minLen = std::clamp(opt.minLen, 3, 8);
    opt.maxLen = std::clamp(opt.maxLen, opt.minLen, 8);
    opt.maxThreads = std::clamp(opt.maxThreads, 2, 4);
    opt.maxLocations = std::clamp(opt.maxLocations, 1, 4);

    EnumerateStats stats;
    // Determinism gate: emission must be a pure function of the
    // options -- length-major, then lexicographically increasing by
    // canonical encoding.  An unordered-container dependency anywhere
    // in the pipeline would scramble this order (and with it campaign
    // shard assignment), so assert it on every emission.
    int last_len = 0;
    std::vector<uint8_t> last_codes;
    std::vector<uint8_t> codes;
    const std::function<bool(const CanonicalCycle &)> checked =
        [&](const CanonicalCycle &cycle) {
        const int len = static_cast<int>(cycle.edges.size());
        std::vector<int> variants, locs;
        int loc = 0;
        for (const CycleEdge &edge : cycle.edges) {
            variants.push_back(variantOf(edge));
            locs.push_back(loc);
            if (!isCommV(variants.back()))
                loc = (loc + edge.locStep) % cycle.numLocations;
        }
        rotationCodes(variants, locs, 0, codes);
        GAM_ASSERT(len > last_len
                       || (len == last_len
                           && std::lexicographical_compare(
                               last_codes.begin(), last_codes.end(),
                               codes.begin(), codes.end())),
                   "enumerateCycles: emission order regressed at '%s'",
                   cycle.name.c_str());
        last_len = len;
        last_codes = codes;
        return sink(cycle);
    };

    for (int len = opt.minLen; len <= opt.maxLen; ++len) {
        Enumerator dfs(opt, checked, stats);
        if (!dfs.run(len))
            break;
    }
    return stats;
}

std::optional<CanonicalCycle>
canonicalCycle(const std::vector<CycleEdge> &edges, int numLocations)
{
    const int n = static_cast<int>(edges.size());
    if (n < 3 || numLocations < 2 || numLocations > 4)
        return std::nullopt;

    std::vector<int> variants;
    for (const CycleEdge &edge : edges)
        variants.push_back(variantOf(edge));

    int comm_count = 0;
    for (int v : variants)
        comm_count += isCommV(v) ? 1 : 0;
    if (comm_count < 1)
        return std::nullopt;

    // Walk the location steps exactly as the lowering does; the walk
    // must close back onto event 0's location.
    std::vector<int> locs(size_t(n), 0);
    for (int i = 0; i < n; ++i) {
        const int step =
            isCommV(variants[size_t(i)]) ? 0 : edges[size_t(i)].locStep;
        const int next =
            ((locs[size_t(i)] + step) % numLocations + numLocations)
            % numLocations;
        if (i + 1 < n)
            locs[size_t(i + 1)] = next;
        else if (next != locs[0])
            return std::nullopt;
    }

    // Pick the least encoding among the communication-ending
    // rotations, then rebuild the representative from it.
    std::vector<uint8_t> best, codes;
    int best_r = -1;
    for (int r = 0; r < n; ++r) {
        if (!isCommV(variants[size_t((r + n - 1) % n)]))
            continue;
        rotationCodes(variants, locs, r, codes);
        if (best_r < 0
            || std::lexicographical_compare(codes.begin(), codes.end(),
                                            best.begin(), best.end())) {
            best = codes;
            best_r = r;
        }
    }
    if (best_r < 0)
        return std::nullopt;

    std::vector<int> rot_variants(static_cast<size_t>(n));
    std::vector<int> rot_locs(static_cast<size_t>(n));
    int relabel[4] = {-1, -1, -1, -1};
    int next_label = 0;
    for (int j = 0; j < n; ++j) {
        int &slot = relabel[locs[size_t((best_r + j) % n)]];
        if (slot < 0)
            slot = next_label++;
    }
    for (int i = 0; i < n; ++i) {
        rot_variants[size_t(i)] = variants[size_t((best_r + i) % n)];
        rot_locs[size_t(i)] = relabel[locs[size_t((best_r + i) % n)]];
    }
    return buildCanonical(rot_variants, rot_locs, best);
}

} // namespace gam::campaign
