#include "operational/tso_machine.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "isa/semantics.hh"

namespace gam::operational
{

using isa::Instruction;
using isa::Opcode;
using isa::Value;

std::string
TsoRule::toString() const
{
    return "P" + std::to_string(int(proc))
        + (kind == Step ? ".Step" : ".Drain");
}

TsoMachine::TsoMachine(const litmus::LitmusTest &test)
    : test(test), memory(test.initialMem)
{
    procs.resize(test.threads.size());
}

bool
TsoMachine::procDone(size_t p) const
{
    const auto &prog = test.threads[p];
    return procs[p].pc >= prog.size()
        || prog[procs[p].pc].op == Opcode::HALT;
}

bool
TsoMachine::stepEnabled(size_t p) const
{
    if (procDone(p))
        return false;
    const Instruction &in = test.threads[p][procs[p].pc];
    if (in.isFence() && in.fence == isa::FenceKind::SL)
        return procs[p].sb.empty(); // FenceSL waits for the buffer
    if (in.isRmw())
        return procs[p].sb.empty(); // RMWs drain the buffer first
    return true;
}

std::vector<TsoRule>
TsoMachine::enabledRules() const
{
    std::vector<TsoRule> rules;
    for (size_t p = 0; p < procs.size(); ++p) {
        if (stepEnabled(p))
            rules.push_back({uint8_t(p), TsoRule::Step});
        if (!procs[p].sb.empty())
            rules.push_back({uint8_t(p), TsoRule::Drain});
    }
    return rules;
}

void
TsoMachine::fire(const TsoRule &rule)
{
    Proc &proc = procs[rule.proc];
    if (rule.kind == TsoRule::Drain) {
        GAM_ASSERT(!proc.sb.empty(), "drain of an empty store buffer");
        memory.store(proc.sb.front().addr, proc.sb.front().value);
        proc.sb.pop_front();
        return;
    }

    const Instruction &in = test.threads[rule.proc][proc.pc];
    auto reg = [&](isa::Reg r) { return proc.regs[size_t(r)]; };
    auto set = [&](isa::Reg r, Value v) {
        if (r != isa::REG_ZERO)
            proc.regs[size_t(r)] = v;
    };
    uint16_t next = uint16_t(proc.pc + 1);

    if (in.isRegToReg()) {
        set(in.dst, isa::evalRegToReg(in, reg(in.src1), reg(in.src2)));
    } else if (in.isRmw()) {
        // The buffer is empty (stepEnabled): read-modify-write memory
        // atomically, like a locked x86 operation.
        const isa::Addr a = isa::effectiveAddr(in, reg(in.src1));
        const Value old_value = memory.load(a);
        memory.store(a, isa::evalRmwStored(in, old_value, reg(in.src2)));
        set(in.dst, old_value);
    } else if (in.isLoad()) {
        const isa::Addr a = isa::effectiveAddr(in, reg(in.src1));
        bool forwarded = false;
        for (auto it = proc.sb.rbegin(); it != proc.sb.rend(); ++it) {
            if (it->addr == a) {
                set(in.dst, it->value);
                forwarded = true;
                break;
            }
        }
        if (!forwarded)
            set(in.dst, memory.load(a));
    } else if (in.isStore()) {
        proc.sb.push_back({isa::effectiveAddr(in, reg(in.src1)),
                           reg(in.src2)});
    } else if (in.isBranch()) {
        if (isa::evalBranchTaken(in, reg(in.src1), reg(in.src2)))
            next = uint16_t(in.imm);
    }
    // NOP and fences other than FenceSL: no effect under TSO.
    proc.pc = next;
}

bool
TsoMachine::terminal() const
{
    for (size_t p = 0; p < procs.size(); ++p)
        if (!procDone(p) || !procs[p].sb.empty())
            return false;
    return true;
}

bool
TsoMachine::stuck() const
{
    return !terminal() && enabledRules().empty();
}

litmus::Outcome
TsoMachine::outcome() const
{
    litmus::Outcome o;
    for (auto [tid, reg] : test.observedRegs)
        o.regs.push_back({tid, reg, procs[size_t(tid)].regs[size_t(reg)]});
    for (isa::Addr a : test.addressUniverse)
        o.mem.push_back({a, memory.load(a)});
    o.canonicalize();
    return o;
}

std::string
TsoMachine::encode() const
{
    std::ostringstream os;
    for (const Proc &proc : procs) {
        os << proc.pc << ":";
        for (size_t r = 0; r < proc.regs.size(); ++r)
            if (proc.regs[r])
                os << r << "=" << proc.regs[r] << ",";
        os << "/";
        for (const auto &s : proc.sb)
            os << s.addr << "=" << s.value << ",";
        os << "|";
    }
    std::vector<std::pair<isa::Addr, Value>> mem(memory.raw().begin(),
                                                 memory.raw().end());
    std::sort(mem.begin(), mem.end());
    for (auto [a, v] : mem)
        os << a << "=" << v << ",";
    return os.str();
}

void
TsoMachine::hashInto(StateHasher &h) const
{
    for (const Proc &proc : procs) {
        h.add(proc.pc);
        for (Value r : proc.regs)
            h.add(uint64_t(r));
        h.separator();
        for (const auto &s : proc.sb) {
            h.add(uint64_t(s.addr));
            h.add(uint64_t(s.value));
        }
        h.separator();
    }
    h.add(hashUnorderedPairs(memory.raw()));
}

} // namespace gam::operational
