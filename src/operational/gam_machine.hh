/**
 * @file
 * The GAM abstract machine (paper Figures 16 and 17).
 *
 * Each processor holds a PC and an ROB; all processors share a
 * monolithic memory.  One step picks a processor and fires one rule:
 *
 *   Fetch, Execute-Reg-to-Reg, Execute-Branch, Execute-Fence,
 *   Execute-Load, Compute-Store-Data, Execute-Store, Compute-Mem-Addr.
 *
 * Rule guards and actions follow Figure 17 exactly, with two
 * parameterised deviations implementing the model variants of
 * Section III-E:
 *
 *  - GAM0 / ARM / Alpha*: Execute-Load skips not-done older loads in its
 *    backward search (no SALdLd stall) and Compute-Mem-Addr kills
 *    younger done loads only when a *store* address resolves.
 *  - ARM: when a load obtains its value, younger done same-address loads
 *    that read from a *different* store are killed (SALdLdARM).
 *  - Alpha*: a load may alternatively forward from the closest older
 *    done same-address load (load-load forwarding).
 *
 * Instructions are never removed from the ROB except by squashes, so a
 * terminal state (every instruction fetched and done) contains the
 * whole committed execution.
 *
 * A note on the ARM variant: the paper defines no abstract machine for
 * SALdLdARM, and Figure 17's early store execution is only compatible
 * with GAM's kill discipline (guards 3/4 of Execute-Store guarantee no
 * executed store can sit above a Compute-Mem-Addr kill point; the
 * SALdLdARM repair, which fires when an *older load* executes, has no
 * such guarantee).  Our ARM machine therefore delays a store while an
 * older done load is still killable.  This is sound (it reaches only
 * axiomatically-legal outcomes, checked in tests) but conservative: in
 * rare forwarding corners it cannot reach every outcome the SALdLdARM
 * axioms admit, so the equivalence property for ARM is outcome-set
 * inclusion rather than equality.
 */

#ifndef GAM_OPERATIONAL_GAM_MACHINE_HH
#define GAM_OPERATIONAL_GAM_MACHINE_HH

#include <cstdint>
#include <optional>
#include <map>
#include <string>
#include <vector>

#include "base/hashing.hh"
#include "isa/mem_image.hh"
#include "litmus/test.hh"
#include "model/kind.hh"
#include "model/trace.hh"

namespace gam::operational
{

/** Machine configuration. */
struct GamOptions
{
    model::ModelKind kind = model::ModelKind::GAM;
    /** Per-processor in-flight instruction cap (bounds speculation). */
    int robCap = 48;
    /**
     * Exploration reduction: when a *local* rule is enabled -- Fetch,
     * Execute-Reg-to-Reg, Compute-Store-Data or Execute-Fence -- offer
     * only the first such rule instance.  These rules are
     * deterministic left-movers: their guards are monotone while the
     * entry lives (squashes only remove ROB suffixes), their actions
     * only append entries or set done/data bits, and no other rule's
     * guard is falsified by them, so firing them eagerly preserves the
     * reachable outcome set.  Validated against full exploration in
     * tests.
     */
    bool eagerLocal = true;
};

/** One step of the abstract machine. */
struct GamRule
{
    enum Kind : uint8_t {
        Fetch,
        ExecRegToReg,
        ExecBranch,
        ExecFence,
        ExecLoad,
        ComputeStoreData,
        ExecStore,
        ExecRmw,
        ComputeMemAddr,
    };

    uint8_t proc;
    Kind kind;
    /** ROB index for execute rules; unused for Fetch. */
    uint16_t idx;
    /**
     * Fetch of a conditional branch: 0 = predict fall-through,
     * 1 = predict taken.  ExecLoad under Alpha*: 1 = forward from an
     * older done load instead of the Figure 17 action.
     */
    uint8_t choice;

    std::string toString() const;
};

/** The abstract multiprocessor (OOO-MP) of the paper. */
class GamMachine
{
  public:
    GamMachine(const litmus::LitmusTest &test, GamOptions options = {});

    /** All rule instances whose guards hold in the current state. */
    std::vector<GamRule> enabledRules() const;

    /** Fire one enabled rule (guard is re-checked). */
    void fire(const GamRule &rule);

    /** Every instruction fetched and done on all processors. */
    bool terminal() const;

    /** Observable result (defined in terminal states). */
    litmus::Outcome outcome() const;

    /** Canonical state encoding for explorer memoisation. */
    std::string encode() const;

    /**
     * Stream the state words of encode() into @p h: the explorer's
     * allocation-free fingerprint path.
     */
    void hashInto(StateHasher &h) const;

    /** The machine deadlocked without completing (a machine bug). */
    bool stuck() const { return !terminal() && enabledRules().empty(); }

  private:
    /** One ROB entry (Figure 16's fields). */
    struct Entry
    {
        uint16_t pc = 0;          ///< static instruction index
        bool done = false;
        bool addrAvail = false;
        bool dataAvail = false;
        isa::Value result = 0;    ///< load value / ALU result / target
        isa::Addr addr = 0;
        isa::Value data = 0;      ///< store data
        uint16_t predictedNext = 0;
        model::StoreId rfSrc = model::InitStore;
    };

    struct Proc
    {
        uint16_t pc = 0;
        std::vector<Entry> rob;
    };

    const isa::Instruction &instrAt(int proc, const Entry &e) const;

    /**
     * Value of register @p r as seen by ROB entry @p idx: the result of
     * the youngest older done writer, nullopt if that writer is not
     * done, or the initial value 0 if no writer exists.
     */
    std::optional<isa::Value> readReg(int proc, size_t idx,
                                      isa::Reg r) const;

    /** All of @p instr's registers in @p set are ready at @p idx. */
    bool regsReady(int proc, size_t idx,
                   const std::vector<isa::Reg> &set) const;

    bool loadGuard(int proc, size_t idx) const;
    bool loadAltGuard(int proc, size_t idx) const;
    bool storeGuard(int proc, size_t idx) const;
    bool rmwGuard(int proc, size_t idx) const;
    bool fenceGuard(int proc, size_t idx) const;
    /** ARM variant: an older load pair is still unresolved. */
    bool armPairHazard(int proc, size_t idx) const;

    void fireFetch(int proc, uint8_t choice);
    void fireExecLoad(int proc, size_t idx, uint8_t choice);
    void fireExecStore(int proc, size_t idx);
    void fireExecRmw(int proc, size_t idx);
    void fireComputeMemAddr(int proc, size_t idx);

    /** Kill ROB entries at and above @p from; reset the PC. */
    void squashFrom(int proc, size_t from, uint16_t new_pc);

    const litmus::LitmusTest &test;
    GamOptions options;
    std::vector<Proc> procs;
    isa::MemImage memory;
    /** Most recent store to have written each address. */
    std::map<isa::Addr, model::StoreId> lastWriter;
};

} // namespace gam::operational

#endif // GAM_OPERATIONAL_GAM_MACHINE_HH
