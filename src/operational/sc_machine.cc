#include "operational/sc_machine.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "isa/semantics.hh"

namespace gam::operational
{

using isa::Instruction;
using isa::Opcode;
using isa::Value;

std::string
ScRule::toString() const
{
    return "P" + std::to_string(int(proc)) + ".Step";
}

ScMachine::ScMachine(const litmus::LitmusTest &test)
    : test(test), memory(test.initialMem)
{
    procs.resize(test.threads.size());
}

bool
ScMachine::procDone(size_t p) const
{
    const auto &prog = test.threads[p];
    return procs[p].pc >= prog.size()
        || prog[procs[p].pc].op == Opcode::HALT;
}

std::vector<ScRule>
ScMachine::enabledRules() const
{
    std::vector<ScRule> rules;
    for (size_t p = 0; p < procs.size(); ++p)
        if (!procDone(p))
            rules.push_back({uint8_t(p)});
    return rules;
}

void
ScMachine::fire(const ScRule &rule)
{
    Proc &proc = procs[rule.proc];
    const Instruction &in = test.threads[rule.proc][proc.pc];
    auto reg = [&](isa::Reg r) { return proc.regs[size_t(r)]; };
    auto set = [&](isa::Reg r, Value v) {
        if (r != isa::REG_ZERO)
            proc.regs[size_t(r)] = v;
    };
    uint16_t next = uint16_t(proc.pc + 1);

    if (in.isRegToReg()) {
        set(in.dst, isa::evalRegToReg(in, reg(in.src1), reg(in.src2)));
    } else if (in.isRmw()) {
        const isa::Addr a = isa::effectiveAddr(in, reg(in.src1));
        const Value old_value = memory.load(a);
        memory.store(a, isa::evalRmwStored(in, old_value, reg(in.src2)));
        set(in.dst, old_value);
    } else if (in.isLoad()) {
        set(in.dst, memory.load(isa::effectiveAddr(in, reg(in.src1))));
    } else if (in.isStore()) {
        memory.store(isa::effectiveAddr(in, reg(in.src1)), reg(in.src2));
    } else if (in.isBranch()) {
        if (isa::evalBranchTaken(in, reg(in.src1), reg(in.src2)))
            next = uint16_t(in.imm);
    }
    // NOP and FENCE: no effect in the SC machine.
    proc.pc = next;
}

bool
ScMachine::terminal() const
{
    for (size_t p = 0; p < procs.size(); ++p)
        if (!procDone(p))
            return false;
    return true;
}

litmus::Outcome
ScMachine::outcome() const
{
    litmus::Outcome o;
    for (auto [tid, reg] : test.observedRegs)
        o.regs.push_back({tid, reg, procs[size_t(tid)].regs[size_t(reg)]});
    for (isa::Addr a : test.addressUniverse)
        o.mem.push_back({a, memory.load(a)});
    o.canonicalize();
    return o;
}

std::string
ScMachine::encode() const
{
    std::ostringstream os;
    for (const Proc &proc : procs) {
        os << proc.pc << ":";
        for (size_t r = 0; r < proc.regs.size(); ++r)
            if (proc.regs[r])
                os << r << "=" << proc.regs[r] << ",";
        os << "|";
    }
    std::vector<std::pair<isa::Addr, Value>> mem(memory.raw().begin(),
                                                 memory.raw().end());
    std::sort(mem.begin(), mem.end());
    for (auto [a, v] : mem)
        os << a << "=" << v << ",";
    return os.str();
}

void
ScMachine::hashInto(StateHasher &h) const
{
    for (const Proc &proc : procs) {
        h.add(proc.pc);
        for (Value r : proc.regs)
            h.add(uint64_t(r));
        h.separator();
    }
    h.add(hashUnorderedPairs(memory.raw()));
}

} // namespace gam::operational
