/**
 * @file
 * The SC abstract machine (paper Figure 1): processors connected
 * directly to a monolithic memory, one processor executing one
 * instruction atomically per step.
 */

#ifndef GAM_OPERATIONAL_SC_MACHINE_HH
#define GAM_OPERATIONAL_SC_MACHINE_HH

#include <array>
#include <string>
#include <vector>

#include "base/hashing.hh"
#include "isa/mem_image.hh"
#include "litmus/test.hh"

namespace gam::operational
{

/** A step of the SC machine: which processor executes next. */
struct ScRule
{
    uint8_t proc;

    std::string toString() const;
};

/** Lamport's SC multiprocessor. */
class ScMachine
{
  public:
    explicit ScMachine(const litmus::LitmusTest &test);

    std::vector<ScRule> enabledRules() const;
    void fire(const ScRule &rule);
    bool terminal() const;
    litmus::Outcome outcome() const;
    std::string encode() const;
    /** Allocation-free fingerprint path (same state as encode()). */
    void hashInto(StateHasher &h) const;
    bool stuck() const { return false; }

  private:
    struct Proc
    {
        uint16_t pc = 0;
        std::array<isa::Value, isa::NUM_REGS> regs{};
    };

    bool procDone(size_t p) const;

    const litmus::LitmusTest &test;
    std::vector<Proc> procs;
    isa::MemImage memory;
};

} // namespace gam::operational

#endif // GAM_OPERATIONAL_SC_MACHINE_HH
