/**
 * @file
 * Exhaustive state-space exploration of an abstract machine.
 *
 * The explorer enumerates every reachable terminal state over all rule
 * interleavings (and all speculation choices), memoising visited states
 * by their canonical encoding.  The resulting outcome set is the
 * machine's full behavior on the test, directly comparable with the
 * axiomatic checker's enumeration.
 *
 * Any machine type with enabledRules()/fire()/terminal()/outcome()/
 * encode()/stuck() can be explored; a RandomWalker is provided for
 * programs too large to exhaust.
 */

#ifndef GAM_OPERATIONAL_EXPLORER_HH
#define GAM_OPERATIONAL_EXPLORER_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"
#include "litmus/outcome.hh"

namespace gam::operational
{

/** Result of an exploration. */
struct ExploreResult
{
    litmus::OutcomeSet outcomes;
    uint64_t statesVisited = 0;
    /** False when the state budget was exhausted first. */
    bool complete = true;
};

/**
 * Exhaustively explore @p initial.
 *
 * @param initial    the machine's start state (copied per transition)
 * @param max_states visited-state budget
 */
template <typename Machine>
ExploreResult
exploreAll(const Machine &initial, uint64_t max_states = 20'000'000)
{
    ExploreResult result;
    std::unordered_set<std::string> visited;
    std::vector<Machine> stack;
    stack.push_back(initial);
    visited.insert(initial.encode());

    while (!stack.empty()) {
        Machine m = std::move(stack.back());
        stack.pop_back();
        ++result.statesVisited;
        if (result.statesVisited > max_states) {
            result.complete = false;
            break;
        }

        auto rules = m.enabledRules();
        if (rules.empty()) {
            if (m.terminal()) {
                result.outcomes.insert(m.outcome());
            } else {
                panic("abstract machine deadlocked in a non-terminal "
                      "state: %s", m.encode().c_str());
            }
            continue;
        }
        for (const auto &rule : rules) {
            Machine next = m;
            next.fire(rule);
            auto [it, inserted] = visited.insert(next.encode());
            if (inserted)
                stack.push_back(std::move(next));
        }
    }
    return result;
}

/**
 * Sample random trajectories of @p initial: cheap outcome sampling for
 * programs whose full state space is too large.
 */
template <typename Machine>
litmus::OutcomeSet
randomWalk(const Machine &initial, uint64_t trajectories, uint64_t seed)
{
    Rng rng(seed);
    litmus::OutcomeSet outcomes;
    for (uint64_t t = 0; t < trajectories; ++t) {
        Machine m = initial;
        for (;;) {
            auto rules = m.enabledRules();
            if (rules.empty()) {
                GAM_ASSERT(m.terminal(), "machine deadlocked");
                outcomes.insert(m.outcome());
                break;
            }
            m.fire(rules[rng.range(rules.size())]);
        }
    }
    return outcomes;
}

} // namespace gam::operational

#endif // GAM_OPERATIONAL_EXPLORER_HH
