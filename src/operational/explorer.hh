/**
 * @file
 * Exhaustive state-space exploration of an abstract machine.
 *
 * The explorer enumerates every reachable terminal state over all rule
 * interleavings (and all speculation choices), memoising visited states
 * compactly: each state is interned as a 64-bit fingerprint in a
 * StateSet instead of storing its full text encoding (see
 * state_set.hh for the collision analysis).  Machines that provide
 * hashInto(StateHasher&) are fingerprinted directly from their state
 * words with no string construction at all; any machine with encode()
 * still works via string hashing.
 *
 * exploreAll() is the serial engine; exploreAllParallel() runs the same
 * enumeration on a team of workers sharing a work queue and a sharded
 * concurrent visited-set.  Because the full reachable space is covered
 * and outcome sets are ordered, the parallel merge is deterministic:
 * both engines return exactly the same OutcomeSet.
 *
 * Any machine type with enabledRules()/fire()/terminal()/outcome()/
 * encode()/stuck() can be explored; randomWalk() provides bounded
 * outcome sampling for programs too large to exhaust.
 */

#ifndef GAM_OPERATIONAL_EXPLORER_HH
#define GAM_OPERATIONAL_EXPLORER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "base/hashing.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "litmus/outcome.hh"
#include "operational/state_set.hh"

namespace gam::operational
{

/** Machines that can stream their state words into a hasher. */
template <typename Machine>
concept DirectlyHashable = requires(const Machine &m, StateHasher &h) {
    m.hashInto(h);
};

/**
 * 64-bit fingerprint of a machine state: direct field hashing when the
 * machine supports it, hash of the text encoding otherwise.
 */
template <typename Machine>
uint64_t
stateFingerprint(const Machine &m)
{
    if constexpr (DirectlyHashable<Machine>) {
        StateHasher h;
        m.hashInto(h);
        return h.digest();
    } else {
        return hashString(m.encode());
    }
}

/** Result of an exploration. */
struct ExploreResult
{
    litmus::OutcomeSet outcomes;
    /** States expanded; never exceeds the max_states budget. */
    uint64_t statesVisited = 0;
    /** False when the state budget was exhausted first. */
    bool complete = true;
};

namespace detail
{

/**
 * Expand one state: enumerate its successors, pushing unseen ones, or
 * record its outcome when terminal.  Shared by the serial and parallel
 * engines; @p Visited is StateSet or ConcurrentStateSet.
 */
template <typename Machine, typename Visited>
void
expandState(Machine &&m, Visited &visited, std::vector<Machine> &out,
            litmus::OutcomeSet &outcomes)
{
    auto rules = m.enabledRules();
    if (rules.empty()) {
        if (m.terminal()) {
            outcomes.insert(m.outcome());
        } else {
            panic("abstract machine deadlocked in a non-terminal "
                  "state: %s", m.encode().c_str());
        }
        return;
    }
    for (const auto &rule : rules) {
        Machine next = m;
        next.fire(rule);
        if (visited.insert(stateFingerprint(next)))
            out.push_back(std::move(next));
    }
}

} // namespace detail

/**
 * Exhaustively explore @p initial.
 *
 * Truncation is exact: when the budget runs out no further state is
 * expanded, statesVisited never exceeds @p max_states, and complete is
 * false iff unexpanded states were dropped.
 *
 * @param initial    the machine's start state (copied per transition)
 * @param max_states visited-state budget
 */
template <typename Machine>
ExploreResult
exploreAll(const Machine &initial, uint64_t max_states = 20'000'000)
{
    ExploreResult result;
    StateSet visited;
    std::vector<Machine> stack;
    stack.push_back(initial);
    visited.insert(stateFingerprint(initial));

    while (!stack.empty()) {
        if (result.statesVisited >= max_states) {
            result.complete = false;
            break;
        }
        Machine m = std::move(stack.back());
        stack.pop_back();
        ++result.statesVisited;
        detail::expandState(std::move(m), visited, stack,
                            result.outcomes);
    }
    return result;
}

/**
 * The seed's serial explorer, memoising full text encodings in a
 * std::unordered_set<std::string>.  Kept as the benchmark baseline the
 * interned engines are measured against; not used on any hot path.
 */
template <typename Machine>
ExploreResult
exploreAllStringSet(const Machine &initial,
                    uint64_t max_states = 20'000'000)
{
    ExploreResult result;
    std::unordered_set<std::string> visited;
    std::vector<Machine> stack;
    stack.push_back(initial);
    visited.insert(initial.encode());

    while (!stack.empty()) {
        if (result.statesVisited >= max_states) {
            result.complete = false;
            break;
        }
        Machine m = std::move(stack.back());
        stack.pop_back();
        ++result.statesVisited;

        auto rules = m.enabledRules();
        if (rules.empty()) {
            if (m.terminal()) {
                result.outcomes.insert(m.outcome());
            } else {
                panic("abstract machine deadlocked in a non-terminal "
                      "state: %s", m.encode().c_str());
            }
            continue;
        }
        for (const auto &rule : rules) {
            Machine next = m;
            next.fire(rule);
            if (visited.insert(next.encode()).second)
                stack.push_back(std::move(next));
        }
    }
    return result;
}

/**
 * Exhaustively explore @p initial on @p threads workers.
 *
 * Workers share a global frontier queue and a sharded concurrent
 * visited-set; each keeps a local DFS stack and offloads half of it to
 * the queue whenever it grows past a threshold, so the frontier spreads
 * across the team.  On full (untruncated) exploration the merged
 * outcome set is identical to exploreAll()'s regardless of scheduling;
 * under truncation *which* states fall outside the budget depends on
 * timing, but statesVisited still never exceeds the budget.
 *
 * @param threads worker count; 0 means hardware concurrency
 */
template <typename Machine>
ExploreResult
exploreAllParallel(const Machine &initial, unsigned threads = 0,
                   uint64_t max_states = 20'000'000)
{
    if (threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : hw;
    }
    if (threads == 1)
        return exploreAll(initial, max_states);

    struct Shared
    {
        std::mutex mu;
        std::condition_variable work;
        std::deque<Machine> queue;
        unsigned active = 0;
        /** Estimate of queue.size(), readable without taking mu. */
        std::atomic<size_t> queueSize{0};
        std::atomic<uint64_t> visitedCount{0};
        std::atomic<bool> truncated{false};
    } shared;

    ConcurrentStateSet visited;
    visited.insert(stateFingerprint(initial));
    shared.queue.push_back(initial);
    shared.queueSize.store(1, std::memory_order_relaxed);

    std::vector<litmus::OutcomeSet> workerOutcomes(threads);

    auto workerFn = [&](unsigned wid) {
        // Keep the local stack bounded so surplus frontier states flow
        // back to the queue for idle workers.
        constexpr size_t OffloadThreshold = 128;
        std::vector<Machine> local;
        litmus::OutcomeSet &outcomes = workerOutcomes[wid];

        for (;;) {
            {
                std::unique_lock<std::mutex> lock(shared.mu);
                shared.work.wait(lock, [&] {
                    return !shared.queue.empty() || shared.active == 0
                        || shared.truncated.load();
                });
                if (shared.queue.empty() || shared.truncated.load())
                    return; // exploration finished or budget exhausted
                local.push_back(std::move(shared.queue.front()));
                shared.queue.pop_front();
                shared.queueSize.store(shared.queue.size(),
                                       std::memory_order_relaxed);
                ++shared.active;
            }

            while (!local.empty() && !shared.truncated.load()) {
                const uint64_t prior =
                    shared.visitedCount.fetch_add(1,
                                                  std::memory_order_relaxed);
                if (prior >= max_states) {
                    shared.visitedCount.fetch_sub(
                        1, std::memory_order_relaxed);
                    shared.truncated.store(true);
                    shared.work.notify_all();
                    break;
                }
                Machine m = std::move(local.back());
                local.pop_back();
                detail::expandState(std::move(m), visited, local,
                                    outcomes);

                // The lock-free queueSize probe keeps a saturated
                // queue from turning every expansion into a mutex
                // round-trip; the cap is rechecked under the lock.
                if (local.size() > OffloadThreshold
                    && shared.queueSize.load(std::memory_order_relaxed)
                           < threads * 4) {
                    // Machines are move-constructible but not
                    // assignable (const-reference member), so donate
                    // by pop_back rather than erasing a prefix.
                    std::unique_lock<std::mutex> lock(shared.mu);
                    if (shared.queue.size() < threads * 4) {
                        const size_t half = local.size() / 2;
                        for (size_t i = 0; i < half; ++i) {
                            shared.queue.push_back(
                                std::move(local.back()));
                            local.pop_back();
                        }
                        shared.queueSize.store(
                            shared.queue.size(),
                            std::memory_order_relaxed);
                        lock.unlock();
                        shared.work.notify_all();
                    }
                }
            }
            local.clear();

            {
                std::unique_lock<std::mutex> lock(shared.mu);
                --shared.active;
                if (shared.active == 0 && shared.queue.empty())
                    shared.work.notify_all();
            }
        }
    };

    std::vector<std::thread> team;
    team.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        team.emplace_back(workerFn, i);
    for (auto &t : team)
        t.join();

    ExploreResult result;
    result.statesVisited = shared.visitedCount.load();
    result.complete = !shared.truncated.load();
    for (auto &outcomes : workerOutcomes)
        result.outcomes.merge(outcomes);
    return result;
}

/** Result of a random-walk sampling run. */
struct RandomWalkResult
{
    litmus::OutcomeSet outcomes;
    /** Trajectories that reached a terminal state. */
    uint64_t completed = 0;
    /** Trajectories cut off by the step cap before terminating. */
    uint64_t truncated = 0;
};

/**
 * Sample random trajectories of @p initial: cheap outcome sampling for
 * programs whose full state space is too large.  Each trajectory is
 * capped at @p max_steps rule firings so a non-terminating machine (or
 * one with a livelock cycle) cannot hang the walker; capped walks are
 * counted in RandomWalkResult::truncated instead of contributing an
 * outcome.
 */
template <typename Machine>
RandomWalkResult
randomWalk(const Machine &initial, uint64_t trajectories, uint64_t seed,
           uint64_t max_steps = 100'000)
{
    Rng rng(seed);
    RandomWalkResult result;
    for (uint64_t t = 0; t < trajectories; ++t) {
        Machine m = initial;
        uint64_t steps = 0;
        for (;;) {
            auto rules = m.enabledRules();
            if (rules.empty()) {
                GAM_ASSERT(m.terminal(), "machine deadlocked");
                result.outcomes.insert(m.outcome());
                ++result.completed;
                break;
            }
            if (steps++ >= max_steps) {
                ++result.truncated;
                break;
            }
            m.fire(rules[rng.range(rules.size())]);
        }
    }
    return result;
}

} // namespace gam::operational

#endif // GAM_OPERATIONAL_EXPLORER_HH
