/**
 * @file
 * A TSO abstract machine: the SC machine plus a FIFO store buffer per
 * processor (Section II-B's "atomic memory relaxed by a little").
 * Loads forward from the youngest matching entry of their own buffer;
 * FenceSL (and therefore the full fence) drains the buffer.
 */

#ifndef GAM_OPERATIONAL_TSO_MACHINE_HH
#define GAM_OPERATIONAL_TSO_MACHINE_HH

#include <array>
#include <deque>
#include <string>
#include <vector>

#include "base/hashing.hh"
#include "isa/mem_image.hh"
#include "litmus/test.hh"

namespace gam::operational
{

/** A step of the TSO machine. */
struct TsoRule
{
    enum Kind : uint8_t {
        Step,   ///< execute the next instruction of this processor
        Drain,  ///< write this processor's oldest buffered store to memory
    };

    uint8_t proc;
    Kind kind;

    std::string toString() const;
};

/** SC + per-processor FIFO store buffers. */
class TsoMachine
{
  public:
    explicit TsoMachine(const litmus::LitmusTest &test);

    std::vector<TsoRule> enabledRules() const;
    void fire(const TsoRule &rule);
    bool terminal() const;
    litmus::Outcome outcome() const;
    std::string encode() const;
    /** Allocation-free fingerprint path (same state as encode()). */
    void hashInto(StateHasher &h) const;
    bool stuck() const;

  private:
    struct BufferedStore
    {
        isa::Addr addr;
        isa::Value value;
    };

    struct Proc
    {
        uint16_t pc = 0;
        std::array<isa::Value, isa::NUM_REGS> regs{};
        std::deque<BufferedStore> sb;
    };

    bool procDone(size_t p) const;
    /** The next instruction is executable (FenceSL needs an empty SB). */
    bool stepEnabled(size_t p) const;

    const litmus::LitmusTest &test;
    std::vector<Proc> procs;
    isa::MemImage memory;
};

} // namespace gam::operational

#endif // GAM_OPERATIONAL_TSO_MACHINE_HH
