#include "operational/gam_machine.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "isa/semantics.hh"

namespace gam::operational
{

using isa::Addr;
using isa::Instruction;
using isa::Opcode;
using isa::Value;
using model::InitStore;
using model::StoreId;

namespace
{

constexpr StoreId
sid(int proc, uint16_t pc)
{
    return static_cast<StoreId>(proc * 1024 + pc);
}

} // anonymous namespace

std::string
GamRule::toString() const
{
    static const char *names[] = {
        "Fetch", "ExecRegToReg", "ExecBranch", "ExecFence", "ExecLoad",
        "ComputeStoreData", "ExecStore", "ExecRmw", "ComputeMemAddr",
    };
    std::ostringstream os;
    os << "P" << int(proc) << "." << names[kind];
    if (kind != Fetch)
        os << "[" << idx << "]";
    if (choice)
        os << "/alt";
    return os.str();
}

GamMachine::GamMachine(const litmus::LitmusTest &test, GamOptions options)
    : test(test), options(options), memory(test.initialMem)
{
    procs.resize(test.threads.size());
}

const Instruction &
GamMachine::instrAt(int proc, const Entry &e) const
{
    return test.threads[size_t(proc)][e.pc];
}

std::optional<Value>
GamMachine::readReg(int proc, size_t idx, isa::Reg r) const
{
    if (r == isa::REG_ZERO)
        return Value{0};
    const auto &rob = procs[size_t(proc)].rob;
    for (size_t j = idx; j-- > 0;) {
        const Instruction &in = instrAt(proc, rob[j]);
        auto ws = in.writeSet();
        if (std::find(ws.begin(), ws.end(), r) != ws.end()) {
            if (!rob[j].done)
                return std::nullopt;
            return rob[j].result;
        }
    }
    return Value{0}; // architectural initial value
}

bool
GamMachine::regsReady(int proc, size_t idx,
                      const std::vector<isa::Reg> &set) const
{
    for (isa::Reg r : set)
        if (!readReg(proc, idx, r))
            return false;
    return true;
}

bool
GamMachine::fenceGuard(int proc, size_t idx) const
{
    const auto &rob = procs[size_t(proc)].rob;
    const isa::FenceKind k = instrAt(proc, rob[idx]).fence;
    for (size_t j = 0; j < idx; ++j) {
        const Instruction &in = instrAt(proc, rob[j]);
        if (in.isMem() && in.isMemType(isa::fencePre(k))
            && !rob[j].done) {
            return false;
        }
    }
    return true;
}

bool
GamMachine::loadGuard(int proc, size_t idx) const
{
    const auto &rob = procs[size_t(proc)].rob;
    const Entry &e = rob[idx];
    if (!e.addrAvail)
        return false;
    // All older FenceXL must be done.
    for (size_t j = 0; j < idx; ++j) {
        const Instruction &in = instrAt(proc, rob[j]);
        if (in.isFence() && isa::fencePost(in.fence) == isa::MemType::Load
            && !rob[j].done) {
            return false;
        }
    }
    // Backward search (Figure 17, Execute-Load).
    const bool stall_on_load = options.kind == model::ModelKind::GAM;
    for (size_t j = idx; j-- > 0;) {
        const Entry &o = rob[j];
        const Instruction &in = instrAt(proc, o);
        if (!in.isMem() || !o.addrAvail || o.addr != e.addr || o.done)
            continue;
        if (in.isRmw())
            return false;           // must wait: RMWs access memory
        if (in.isLoad()) {
            if (stall_on_load)
                return false;       // GAM: stall behind not-done load
            continue;               // others: loads do not block
        }
        return o.dataAvail;         // forward iff the data is ready
    }
    return true;                    // read the monolithic memory
}

bool
GamMachine::loadAltGuard(int proc, size_t idx) const
{
    // Alpha* load-load forwarding: the closest older same-address
    // memory instruction (with known address) is a done load.
    if (options.kind != model::ModelKind::AlphaStar)
        return false;
    const auto &rob = procs[size_t(proc)].rob;
    const Entry &e = rob[idx];
    if (!e.addrAvail)
        return false;
    for (size_t j = 0; j < idx; ++j) {
        const Instruction &in = instrAt(proc, rob[j]);
        if (in.isFence() && isa::fencePost(in.fence) == isa::MemType::Load
            && !rob[j].done) {
            return false;
        }
    }
    for (size_t j = idx; j-- > 0;) {
        const Entry &o = rob[j];
        const Instruction &in = instrAt(proc, o);
        if (!in.isMem() || !o.addrAvail || o.addr != e.addr)
            continue;
        return in.isLoad() && !in.isRmw() && o.done;
    }
    return false;
}

bool
GamMachine::storeGuard(int proc, size_t idx) const
{
    const auto &rob = procs[size_t(proc)].rob;
    const Entry &e = rob[idx];
    if (!e.addrAvail || !e.dataAvail)
        return false;
    for (size_t j = 0; j < idx; ++j) {
        const Entry &o = rob[j];
        const Instruction &in = instrAt(proc, o);
        if (in.isBranch() && !o.done)
            return false;                        // guard 3 (BrSt)
        if (in.isMem() && !o.addrAvail)
            return false;                        // guard 4 (AddrSt)
        if (in.isMem() && o.addrAvail && o.addr == e.addr && !o.done)
            return false;                        // guard 5 (SAMemSt)
        if (in.isFence()
            && isa::fencePost(in.fence) == isa::MemType::Store
            && !o.done) {
            return false;                        // guard 6 (FenceOrd)
        }
    }

    if (options.kind == model::ModelKind::ARM && armPairHazard(proc, idx))
        return false;
    return true;
}

bool
GamMachine::armPairHazard(int proc, size_t idx) const
{
    // ARM-variant extra guard: the SALdLdARM repair kills a younger
    // load when an older same-address load executes later and reads a
    // different store.  A memory write is irrevocable, so a store (or
    // RMW) must wait while any older same-address load *pair* is
    // unresolved (its older member not done): the younger member is
    // then either already done and killable, or may still execute
    // early and become killable.  This makes the ARM machine sound but
    // conservative; see the class comment.
    const auto &rob = procs[size_t(proc)].rob;
    for (size_t j = 0; j < idx; ++j) {
        const Entry &young = rob[j];
        if (!instrAt(proc, young).isLoad() || !young.addrAvail)
            continue;
        for (size_t i = 0; i < j; ++i) {
            const Entry &old = rob[i];
            if (instrAt(proc, old).isLoad() && !old.done
                && old.addrAvail && old.addr == young.addr) {
                return true;
            }
        }
    }
    return false;
}

bool
GamMachine::rmwGuard(int proc, size_t idx) const
{
    // An RMW obeys every load guard and every store guard at once and
    // always accesses memory (Section III-C): address and data
    // available, older branches done, older memory addresses known,
    // older same-address accesses done, and *all* older fences done
    // (an RMW is both a type-L and a type-S memory instruction).
    const auto &rob = procs[size_t(proc)].rob;
    const Entry &e = rob[idx];
    if (!e.addrAvail || !e.dataAvail)
        return false;
    for (size_t j = 0; j < idx; ++j) {
        const Entry &o = rob[j];
        const Instruction &in = instrAt(proc, o);
        if (in.isBranch() && !o.done)
            return false;
        if (in.isMem() && !o.addrAvail)
            return false;
        if (in.isMem() && o.addrAvail && o.addr == e.addr && !o.done)
            return false;
        if (in.isFence() && !o.done)
            return false;
    }
    if (options.kind == model::ModelKind::ARM && armPairHazard(proc, idx))
        return false;
    return true;
}

std::vector<GamRule>
GamMachine::enabledRules() const
{
    std::vector<GamRule> rules;

    // Fetch rules (optionally exclusive, see GamOptions::eagerLocal).
    for (size_t p = 0; p < procs.size(); ++p) {
        const Proc &proc = procs[p];
        const auto &prog = test.threads[p];
        if (proc.pc >= prog.size()
            || prog[proc.pc].op == Opcode::HALT
            || proc.rob.size() >= size_t(options.robCap)) {
            continue;
        }
        const Instruction &in = prog[proc.pc];
        if (in.isCondBranch()) {
            rules.push_back({uint8_t(p), GamRule::Fetch, 0, 0});
            rules.push_back({uint8_t(p), GamRule::Fetch, 0, 1});
        } else {
            rules.push_back({uint8_t(p), GamRule::Fetch, 0, 0});
        }
        if (options.eagerLocal)
            return rules; // fetch-first reduction
    }

    // Other deterministic local rules, fired eagerly when enabled.
    if (options.eagerLocal) {
        for (size_t p = 0; p < procs.size(); ++p) {
            const auto &rob = procs[p].rob;
            for (size_t i = 0; i < rob.size(); ++i) {
                const Entry &e = rob[i];
                const Instruction &in = instrAt(int(p), e);
                if (in.isStore() && !e.dataAvail
                    && regsReady(int(p), i, in.dataReadSet())) {
                    return {{uint8_t(p), GamRule::ComputeStoreData,
                             uint16_t(i), 0}};
                }
                if (e.done)
                    continue;
                if (in.isRegToReg()
                    && regsReady(int(p), i, in.readSet())) {
                    return {{uint8_t(p), GamRule::ExecRegToReg,
                             uint16_t(i), 0}};
                }
                if (in.isFence() && fenceGuard(int(p), i)) {
                    return {{uint8_t(p), GamRule::ExecFence,
                             uint16_t(i), 0}};
                }
            }
        }
    }

    for (size_t p = 0; p < procs.size(); ++p) {
        const auto &rob = procs[p].rob;
        for (size_t i = 0; i < rob.size(); ++i) {
            const Entry &e = rob[i];
            const Instruction &in = instrAt(int(p), e);
            const auto u8p = uint8_t(p);
            const auto u16i = uint16_t(i);

            if (in.isMem() && !e.addrAvail
                && regsReady(int(p), i, in.addrReadSet())) {
                rules.push_back({u8p, GamRule::ComputeMemAddr, u16i, 0});
            }
            if (in.isStore() && !e.dataAvail
                && regsReady(int(p), i, in.dataReadSet())) {
                rules.push_back({u8p, GamRule::ComputeStoreData, u16i, 0});
            }
            if (e.done)
                continue;
            if (in.isRegToReg() && regsReady(int(p), i, in.readSet())) {
                rules.push_back({u8p, GamRule::ExecRegToReg, u16i, 0});
            } else if (in.isBranch()
                       && regsReady(int(p), i, in.readSet())) {
                rules.push_back({u8p, GamRule::ExecBranch, u16i, 0});
            } else if (in.isFence() && fenceGuard(int(p), i)) {
                rules.push_back({u8p, GamRule::ExecFence, u16i, 0});
            } else if (in.isRmw()) {
                if (rmwGuard(int(p), i))
                    rules.push_back({u8p, GamRule::ExecRmw, u16i, 0});
            } else if (in.isLoad()) {
                if (loadGuard(int(p), i))
                    rules.push_back({u8p, GamRule::ExecLoad, u16i, 0});
                if (loadAltGuard(int(p), i))
                    rules.push_back({u8p, GamRule::ExecLoad, u16i, 1});
            } else if (in.isStore() && storeGuard(int(p), i)) {
                rules.push_back({u8p, GamRule::ExecStore, u16i, 0});
            }
        }
    }
    return rules;
}

void
GamMachine::squashFrom(int proc, size_t from, uint16_t new_pc)
{
    auto &rob = procs[size_t(proc)].rob;
    for (size_t k = from; k < rob.size(); ++k) {
        if (instrAt(proc, rob[k]).isStore() && rob[k].done) {
            std::fprintf(stderr, "ROB of P%d at bad squash(from=%zu):\n",
                         proc, from);
            for (size_t j = 0; j < rob.size(); ++j) {
                const Entry &e = rob[j];
                std::fprintf(stderr,
                             "  [%zu] pc=%u %-18s done=%d addrAvail=%d "
                             "addr=%lld rf=%d\n", j, e.pc,
                             instrAt(proc, e).toString().c_str(), e.done,
                             e.addrAvail, (long long)e.addr, e.rfSrc);
            }
            panic("squashing an executed store");
        }
    }
    rob.resize(from);
    procs[size_t(proc)].pc = new_pc;
}

void
GamMachine::fireFetch(int proc, uint8_t choice)
{
    Proc &pr = procs[size_t(proc)];
    const Instruction &in = test.threads[size_t(proc)][pr.pc];
    Entry e;
    e.pc = pr.pc;
    if (in.op == Opcode::JMP) {
        e.predictedNext = uint16_t(in.imm); // static target: no prediction
    } else if (in.isCondBranch()) {
        e.predictedNext = choice ? uint16_t(in.imm) : uint16_t(pr.pc + 1);
    } else {
        e.predictedNext = uint16_t(pr.pc + 1);
    }
    pr.rob.push_back(e);
    pr.pc = e.predictedNext;
}

void
GamMachine::fireExecLoad(int proc, size_t idx, uint8_t choice)
{
    auto &rob = procs[size_t(proc)].rob;
    Entry &e = rob[idx];

    if (choice == 1) {
        // Alpha* load-load forwarding.
        for (size_t j = idx; j-- > 0;) {
            Entry &o = rob[j];
            const Instruction &in = instrAt(proc, o);
            if (!in.isMem() || !o.addrAvail || o.addr != e.addr)
                continue;
            GAM_ASSERT(in.isLoad() && o.done, "bad LL-forward source");
            e.result = o.result;
            e.rfSrc = o.rfSrc;
            e.done = true;
            return;
        }
        panic("LL-forward source vanished");
    }

    bool resolved = false;
    const bool skip_loads = options.kind != model::ModelKind::GAM;
    for (size_t j = idx; j-- > 0;) {
        Entry &o = rob[j];
        const Instruction &in = instrAt(proc, o);
        if (!in.isMem() || !o.addrAvail || o.addr != e.addr || o.done)
            continue;
        GAM_ASSERT(!in.isRmw(), "Execute-Load fired past a pending RMW");
        if (in.isLoad()) {
            GAM_ASSERT(skip_loads, "Execute-Load fired while stalled");
            continue;
        }
        GAM_ASSERT(o.dataAvail, "Execute-Load fired without store data");
        e.result = o.data;                        // bypass from the store
        e.rfSrc = sid(proc, o.pc);
        resolved = true;
        break;
    }
    if (!resolved) {
        e.result = memory.load(e.addr);           // read monolithic memory
        auto it = lastWriter.find(e.addr);
        e.rfSrc = it == lastWriter.end() ? InitStore : it->second;
    }
    e.done = true;

    if (options.kind == model::ModelKind::ARM) {
        // SALdLdARM: younger done same-address loads that read from a
        // different store have violated the commit order; kill the
        // oldest such load and everything younger.
        for (size_t k = idx + 1; k < rob.size(); ++k) {
            const Entry &y = rob[k];
            const Instruction &in = instrAt(proc, y);
            // Only pure loads can be victims: a done RMW younger than a
            // not-done same-address load is unreachable (its guard
            // requires all older same-address accesses done).
            if (in.isLoad() && !in.isStore() && y.done && y.addrAvail
                && y.addr == e.addr && y.rfSrc != e.rfSrc) {
                uint16_t restart = y.pc;
                squashFrom(proc, k, restart);
                break;
            }
        }
    }
}

void
GamMachine::fireExecStore(int proc, size_t idx)
{
    Entry &e = procs[size_t(proc)].rob[idx];
    memory.store(e.addr, e.data);
    lastWriter[e.addr] = sid(proc, e.pc);
    e.result = e.data;
    e.done = true;
}

void
GamMachine::fireExecRmw(int proc, size_t idx)
{
    Entry &e = procs[size_t(proc)].rob[idx];
    const Instruction &in = instrAt(proc, e);
    const Value old_value = memory.load(e.addr);
    memory.store(e.addr, isa::evalRmwStored(in, old_value, e.data));
    e.result = old_value;
    auto it = lastWriter.find(e.addr);
    e.rfSrc = it == lastWriter.end() ? InitStore : it->second;
    lastWriter[e.addr] = sid(proc, e.pc);
    e.done = true;
}

void
GamMachine::fireComputeMemAddr(int proc, size_t idx)
{
    auto &rob = procs[size_t(proc)].rob;
    Entry &e = rob[idx];
    const Instruction &in = instrAt(proc, e);
    auto base = readReg(proc, idx, in.src1);
    GAM_ASSERT(base.has_value(), "Compute-Mem-Addr without operands");
    e.addr = isa::effectiveAddr(in, *base);
    e.addrAvail = true;

    // Kill search (Figure 17): walk younger same-address entries.  A
    // done load found here read a value that predates this instruction
    // (its forwarding source, if any, would have been encountered as a
    // store first) and must be killed; a same-address *store* shields
    // everything younger (loads beyond it read it or something newer);
    // a not-done load has read nothing yet and is skipped.  GAM applies
    // the kill for load and store address resolution (SALdLd +
    // LdVal/SAStLd); the relaxed variants only for stores (LdVal).
    const bool kills = in.isStore()
        || options.kind == model::ModelKind::GAM;
    if (!kills)
        return;
    for (size_t k = idx + 1; k < rob.size(); ++k) {
        const Entry &y = rob[k];
        const Instruction &yin = instrAt(proc, y);
        if (!yin.isMem() || !y.addrAvail || y.addr != e.addr)
            continue;
        if (yin.isStore())
            break; // shields younger same-address instructions
        if (y.done) {
            uint16_t restart = y.pc;
            squashFrom(proc, k, restart);
            break;
        }
        // Not-done load: nothing read yet; keep scanning.
    }
}

void
GamMachine::fire(const GamRule &rule)
{
    const int p = rule.proc;
    switch (rule.kind) {
      case GamRule::Fetch:
        fireFetch(p, rule.choice);
        return;
      case GamRule::ExecRegToReg: {
        Entry &e = procs[size_t(p)].rob[rule.idx];
        const Instruction &in = instrAt(p, e);
        auto a = readReg(p, rule.idx, in.src1);
        auto b = readReg(p, rule.idx, in.src2);
        GAM_ASSERT(a && b, "Execute-Reg-to-Reg without operands");
        e.result = isa::evalRegToReg(in, *a, *b);
        e.done = true;
        return;
      }
      case GamRule::ExecBranch: {
        auto &rob = procs[size_t(p)].rob;
        Entry &e = rob[rule.idx];
        const Instruction &in = instrAt(p, e);
        auto a = readReg(p, rule.idx, in.src1);
        auto b = readReg(p, rule.idx, in.src2);
        GAM_ASSERT(a && b, "Execute-Branch without operands");
        uint16_t actual = isa::evalBranchTaken(in, *a, *b)
            ? uint16_t(in.imm) : uint16_t(e.pc + 1);
        e.result = actual;
        e.done = true;
        if (actual != e.predictedNext)
            squashFrom(p, rule.idx + 1, actual);
        return;
      }
      case GamRule::ExecFence: {
        procs[size_t(p)].rob[rule.idx].done = true;
        return;
      }
      case GamRule::ExecLoad:
        fireExecLoad(p, rule.idx, rule.choice);
        return;
      case GamRule::ComputeStoreData: {
        Entry &e = procs[size_t(p)].rob[rule.idx];
        const Instruction &in = instrAt(p, e);
        auto v = readReg(p, rule.idx, in.src2);
        GAM_ASSERT(v.has_value(), "Compute-Store-Data without operand");
        e.data = *v;
        e.dataAvail = true;
        return;
      }
      case GamRule::ExecStore:
        fireExecStore(p, rule.idx);
        return;
      case GamRule::ExecRmw:
        fireExecRmw(p, rule.idx);
        return;
      case GamRule::ComputeMemAddr:
        fireComputeMemAddr(p, rule.idx);
        return;
    }
    panic("unknown rule kind");
}

bool
GamMachine::terminal() const
{
    for (size_t p = 0; p < procs.size(); ++p) {
        const auto &prog = test.threads[p];
        const Proc &proc = procs[p];
        if (proc.pc < prog.size() && prog[proc.pc].op != Opcode::HALT)
            return false;
        for (const Entry &e : proc.rob)
            if (!e.done)
                return false;
    }
    return true;
}

litmus::Outcome
GamMachine::outcome() const
{
    litmus::Outcome o;
    for (auto [tid, reg] : test.observedRegs) {
        auto v = readReg(tid, procs[size_t(tid)].rob.size(), reg);
        GAM_ASSERT(v.has_value(), "outcome read of a not-done register");
        o.regs.push_back({tid, reg, *v});
    }
    for (Addr a : test.addressUniverse)
        o.mem.push_back({a, memory.load(a)});
    o.canonicalize();
    return o;
}

std::string
GamMachine::encode() const
{
    std::ostringstream os;
    for (const Proc &proc : procs) {
        os << proc.pc << ";";
        for (const Entry &e : proc.rob) {
            os << e.pc << "," << e.done << e.addrAvail << e.dataAvail
               << "," << e.result << "," << e.addr << "," << e.data
               << "," << e.predictedNext << "," << e.rfSrc << " ";
        }
        os << "|";
    }
    std::vector<std::pair<Addr, Value>> mem(memory.raw().begin(),
                                            memory.raw().end());
    std::sort(mem.begin(), mem.end());
    for (auto [a, v] : mem)
        os << a << "=" << v << ",";
    os << "$";
    for (auto [a, s] : lastWriter)
        os << a << ":" << s << ",";
    return os.str();
}

void
GamMachine::hashInto(StateHasher &h) const
{
    for (const Proc &proc : procs) {
        h.add(proc.pc);
        for (const Entry &e : proc.rob) {
            h.add(uint64_t(e.pc) | (uint64_t(e.done) << 16)
                  | (uint64_t(e.addrAvail) << 17)
                  | (uint64_t(e.dataAvail) << 18)
                  | (uint64_t(e.predictedNext) << 32));
            h.add(uint64_t(e.result));
            h.add(uint64_t(e.addr));
            h.add(uint64_t(e.data));
            h.add(uint64_t(int64_t(e.rfSrc)));
        }
        h.separator();
    }
    h.add(hashUnorderedPairs(memory.raw()));
    // lastWriter is an ordered map; stream it sequentially.
    for (auto [a, s] : lastWriter) {
        h.add(uint64_t(a));
        h.add(uint64_t(int64_t(s)));
    }
}

} // namespace gam::operational
