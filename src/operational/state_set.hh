/**
 * @file
 * Compact visited-state sets for the explorer.
 *
 * The seed explorer memoised states in a std::unordered_set<std::string>,
 * paying one heap-allocated text encoding per state plus string hashing
 * and comparison on every probe.  StateSet interns each state as a single
 * 64-bit fingerprint in an open-addressing table: 8 bytes per state, no
 * per-insert allocation, and probes that touch one cache line in the
 * common case.
 *
 * Interning is lossy in principle (two distinct states could collide in
 * 64 bits), but with a full-avalanche fingerprint the expected collision
 * count over N states is N^2 / 2^65 -- about 5e-6 for the ~10^7-state
 * budget this library uses, and a collision merely prunes one duplicate
 * subtree.  The equivalence tests compare interned exploration against
 * the axiomatic checker on every suite test, which would surface any
 * outcome-changing collision.
 *
 * ConcurrentStateSet shards the table by fingerprint so parallel workers
 * contend only on 1/NumShards of the keyspace.
 */

#ifndef GAM_OPERATIONAL_STATE_SET_HH
#define GAM_OPERATIONAL_STATE_SET_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "base/hashing.hh"

namespace gam::operational
{

/** Open-addressing set of 64-bit state fingerprints. */
class StateSet
{
  public:
    explicit StateSet(size_t initial_capacity = 1024)
    {
        size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        slots.assign(cap, EMPTY);
    }

    /** @return true when @p key was not yet present. */
    bool
    insert(uint64_t key)
    {
        // EMPTY marks free slots; remap a genuine EMPTY fingerprint.
        if (key == EMPTY)
            key = 0x9e3779b97f4a7c15ull;
        if ((count + 1) * 10 >= slots.size() * 7)
            grow();
        const size_t mask = slots.size() - 1;
        size_t i = key & mask;
        while (slots[i] != EMPTY) {
            if (slots[i] == key)
                return false;
            i = (i + 1) & mask;
        }
        slots[i] = key;
        ++count;
        return true;
    }

    bool
    contains(uint64_t key) const
    {
        if (key == EMPTY)
            key = 0x9e3779b97f4a7c15ull;
        const size_t mask = slots.size() - 1;
        size_t i = key & mask;
        while (slots[i] != EMPTY) {
            if (slots[i] == key)
                return true;
            i = (i + 1) & mask;
        }
        return false;
    }

    size_t size() const { return count; }
    size_t capacity() const { return slots.size(); }

  private:
    static constexpr uint64_t EMPTY = 0;

    void
    grow()
    {
        std::vector<uint64_t> old = std::move(slots);
        slots.assign(old.size() * 2, EMPTY);
        const size_t mask = slots.size() - 1;
        for (uint64_t key : old) {
            if (key == EMPTY)
                continue;
            size_t i = key & mask;
            while (slots[i] != EMPTY)
                i = (i + 1) & mask;
            slots[i] = key;
        }
    }

    std::vector<uint64_t> slots;
    size_t count = 0;
};

/**
 * Thread-safe StateSet, sharded by the fingerprint's top bits.  Sharding
 * keeps the per-insert critical section to a single probe sequence and
 * lets workers inserting different shards proceed in parallel.
 */
class ConcurrentStateSet
{
  public:
    explicit ConcurrentStateSet(size_t initial_capacity = 1024)
    {
        // Shards default to small tables; only re-allocate them when
        // the requested capacity actually needs bigger ones.
        const size_t per_shard = initial_capacity / NumShards + 16;
        if (per_shard > 32) {
            for (auto &shard : shards)
                shard.set = StateSet(per_shard);
        }
    }

    /** @return true when @p key was not yet present (atomic). */
    bool
    insert(uint64_t key)
    {
        Shard &shard = shards[shardOf(key)];
        std::lock_guard<std::mutex> lock(shard.mu);
        return shard.set.insert(key);
    }

    size_t
    size() const
    {
        size_t total = 0;
        for (auto &shard : shards) {
            std::lock_guard<std::mutex> lock(shard.mu);
            total += shard.set.size();
        }
        return total;
    }

  private:
    static constexpr size_t NumShards = 64;

    static size_t
    shardOf(uint64_t key)
    {
        // Top bits: the probe index uses the bottom bits, so the two
        // choices stay independent.
        return size_t(key >> 58) & (NumShards - 1);
    }

    struct Shard
    {
        mutable std::mutex mu;
        StateSet set{32};
    };

    Shard shards[NumShards];
};

} // namespace gam::operational

#endif // GAM_OPERATIONAL_STATE_SET_HH
