/**
 * @file
 * The cat-style memory-model DSL: syntax, parser and static checks.
 *
 * A memory model is a data file in a small relation-algebra language
 * (after Alglave et al.'s "Herding Cats" cat language): named relations
 * are derived from a fixed set of primitives over one candidate
 * execution, and the model is the conjunction of acyclicity /
 * irreflexivity / emptiness axioms over them.
 *
 *   model      := [name] statement*
 *   name       := identifier | "string"          (first line only)
 *   statement  := "let" ["rec"] bind ("and" bind)*
 *               | ("acyclic" | "irreflexive" | "empty") expr ["as" id]
 *   bind       := identifier "=" expr
 *   expr       := expr "|" expr                  (union, loosest)
 *               | expr ";" expr                  (composition)
 *               | expr "\" expr                  (difference)
 *               | expr "&" expr                  (intersection)
 *               | set "*" set                    (cartesian product)
 *               | "~" expr                       (complement)
 *               | expr "+"                       (transitive closure)
 *               | expr "*"                       (refl-trans closure)
 *               | expr "^-1"                     (inverse)
 *               | "[" set "]"                    (identity over a set)
 *               | "(" expr ")" | identifier | "0"
 *
 * Base sets: R W M F RMW FLL FLS FSL FSS.  Primitive relations: po rf
 * co fr loc ext int addr data ctrl id.  Comments are `(* ... *)`
 * (nesting) and `//` to end of line.  A trailing `*` is the closure
 * when nothing that can start an expression follows, and the cartesian
 * product otherwise.
 *
 * parseCat() never aborts the process: every syntax error, unbound
 * name, type mismatch, or non-monotone `let rec` (a recursive name
 * under `~` or on the right of `\`, whose fixpoint need not exist)
 * comes back as a CatError with 1-based line/column, ready for CLI
 * display.  A model that parses is fully statically checked: every
 * name resolves, every operator is applied to operands of the right
 * sort (set vs relation), every recursion is monotone -- so evaluation
 * over a candidate execution cannot fail.
 */

#ifndef GAM_CAT_PARSER_HH
#define GAM_CAT_PARSER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace gam::cat
{

/** Sort of a DSL value: a set of events or a binary relation. */
enum class Type { Set, Rel, Any };

/**
 * How an expression's value depends on the coherence-derived
 * primitives co and fr -- the only relations that grow as the
 * incremental enumerator extends a partial candidate (everything else
 * is fixed per read-from epoch).
 *
 *   Independent:  never mentions co or fr; identical on partial and
 *                 complete candidates.
 *   Monotone:     only mentions them positively (no complement, never
 *                 on the right of '\'): the value on a partial
 *                 candidate is a subset of the value on every
 *                 completion, so a failing acyclic/irreflexive/empty
 *                 axiom can never un-fail -- safe to prune on.
 *   NonMonotone:  anything else; only decidable on complete
 *                 candidates.
 *
 * The ordering is significant: combining operands takes the max.
 */
enum class Polarity { Independent, Monotone, NonMonotone };

/** The builtin sets and relations the evaluator provides. */
enum class Builtin {
    // Sets.
    R, W, M, F, RMW, FLL, FLS, FSL, FSS,
    // Relations.
    Po, Rf, Co, Fr, Loc, Ext, Int, Addr, Data, Ctrl, Id,
    NUM,
};

/** Expression AST node. */
struct Expr
{
    enum class Kind {
        Name,       ///< builtin or let-bound name
        EmptyRel,   ///< 0
        Union, Seq, Inter, Diff, Product,
        Compl,      ///< ~e
        Plus,       ///< e+
        Star,       ///< e*
        Inverse,    ///< e^-1
        Diag,       ///< [e]
    };

    Kind kind;
    int line = 0, col = 0;
    std::unique_ptr<Expr> a, b;

    // Kind::Name only; resolved by the static checker.
    std::string name;
    std::optional<Builtin> builtin;
    int slot = -1;              ///< let-binding slot when not builtin

    Type type = Type::Any;      ///< inferred sort
    /**
     * co/fr dependence of *this node* (not just the whole definition):
     * the per-node dataflow the model compiler (cat/compile.hh) folds
     * constants with and lint rule L007 reports on.  Annotated by the
     * static checker after polarity inference converges; for bodies of
     * a `let rec` group the slot polarities are the group-tainted ones
     * (any co/fr mention taints every member), so a node is only ever
     * classified *more* dependent than it truly is -- sound for both
     * consumers.
     */
    Polarity polarity = Polarity::NonMonotone;
};

/**
 * co/fr dependence of @p e given the polarity of every let-binding
 * slot it may reference (entries beyond the vector default to
 * Independent, matching slots not yet classified).  The single
 * polarity dataflow shared by the parser's static checker and the
 * model compiler's SCC-refined re-analysis.
 */
Polarity exprPolarity(const Expr &e,
                      const std::vector<Polarity> &slotPolarity);

/** One `let` binding. */
struct Binding
{
    std::string name;
    int line = 0, col = 0;
    std::unique_ptr<Expr> body;
    int slot = -1;              ///< evaluator slot, assigned in order
    /** co/fr dependence classification (see Polarity). */
    Polarity coPolarity = Polarity::NonMonotone;

    /**
     * Does the body (transitively) mention co or fr?  Only those
     * relations change between the coherence permutations of one
     * read-from candidate, so the evaluator re-derives co-independent
     * definitions once per rf epoch instead of once per candidate.
     */
    bool coDependent() const
    {
        return coPolarity != Polarity::Independent;
    }
};

/** Top-level statement. */
struct Stmt
{
    enum class Kind { Let, LetRec, Acyclic, Irreflexive, Empty };

    Kind kind;
    int line = 0;
    std::vector<Binding> bindings;  ///< Let / LetRec
    std::unique_ptr<Expr> check;    ///< axioms
    std::string axiomName;          ///< `as NAME`, or a default
    /**
     * Axioms only: co/fr dependence of the checked expression.  A
     * non-NonMonotone axiom that fails on a partial candidate fails on
     * every completion, which is what lets Evaluator::checkPartial()
     * veto subtrees of the incremental enumeration.
     */
    Polarity checkPolarity = Polarity::NonMonotone;
};

/** A parsed, statically checked memory model. */
struct CatModel
{
    /** Model name: the header line, else the caller-supplied default. */
    std::string name;
    /** The verbatim source text. */
    std::string source;
    /** 64-bit digest of the source (decision-cache fingerprinting). */
    uint64_t sourceHash = 0;

    std::vector<Stmt> statements;
    /** Number of let-binding slots the evaluator must allocate. */
    int slotCount = 0;
    /** Axiom names in order of appearance. */
    std::vector<std::string> axiomNames;
    /** Let-bound definition names in order of appearance. */
    std::vector<std::string> definitionNames;
};

/** A diagnostic with a 1-based source position. */
struct CatError
{
    std::string message;
    int line = 0;
    int col = 0;

    /** "line 3:7: unbalanced '('" (display form). */
    std::string toString() const;
};

/** Result of parseCat(): a model or a diagnostic, never both. */
struct CatParseResult
{
    std::optional<CatModel> model;
    CatError error;

    bool ok() const { return model.has_value(); }
};

/**
 * Parse and statically check @p source.  @p defaultName names the
 * model when the file has no header line (conventionally the file
 * stem).  Recoverable: malformed input yields an error diagnostic.
 */
CatParseResult parseCat(const std::string &source,
                        const std::string &defaultName = "anonymous");

/** Display name of a DSL sort ("set" / "relation"). */
std::string typeName(Type t);

} // namespace gam::cat

#endif // GAM_CAT_PARSER_HH
