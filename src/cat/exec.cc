#include "cat/exec.hh"

#include <array>

#include "base/logging.hh"
#include "isa/instruction.hh"

namespace gam::cat
{

using axiomatic::CandidateExecution;
using isa::FenceKind;
using isa::Instruction;

const ExecView &
ExecBuilder::view(const CandidateExecution &candidate)
{
    if (!any || candidate.rfEpoch != epoch) {
        rebuildTraceLevel(candidate);
        epoch = candidate.rfEpoch;
        any = true;
    }
    rebuildCoherence(candidate);
    return v;
}

void
ExecBuilder::rebuildTraceLevel(const CandidateExecution &cand)
{
    // ---- Event discovery: memory events (in candidate order) plus
    // fences, thread-major in trace order. ----
    struct EventInfo
    {
        int tid;
        int traceIdx;
        const model::TraceInstr *ti;
        int candIdx; ///< memory events: index into cand.events
    };
    std::vector<EventInfo> events;
    eventOfCand.assign(cand.events.size(), -1);
    eventOfStore.clear();

    size_t cand_idx = 0;
    for (size_t tid = 0; tid < cand.traces.size(); ++tid) {
        const model::Trace &trace = *cand.traces[tid];
        for (size_t k = 0; k < trace.size(); ++k) {
            const model::TraceInstr &ti = trace[k];
            if (ti.isMem()) {
                GAM_ASSERT(cand_idx < cand.events.size()
                               && cand.events[cand_idx].tid == int(tid)
                               && cand.events[cand_idx].traceIdx
                                      == int(k),
                           "candidate events out of sync with traces");
                eventOfCand[cand_idx] = int(events.size());
                events.push_back({int(tid), int(k), &ti,
                                  int(cand_idx)});
                ++cand_idx;
            } else if (ti.instr.isFence()) {
                events.push_back({int(tid), int(k), &ti, -1});
            }
        }
    }
    GAM_ASSERT(cand_idx == cand.events.size(),
               "candidate events out of sync with traces");

    const size_t n = events.size();
    v.n = n;
    v.R = EventSet(n);
    v.W = EventSet(n);
    v.M = EventSet(n);
    v.F = EventSet(n);
    v.RMW = EventSet(n);
    v.FLL = EventSet(n);
    v.FLS = EventSet(n);
    v.FSL = EventSet(n);
    v.FSS = EventSet(n);
    v.po = Rel(n);
    v.rf = Rel(n);
    v.loc = Rel(n);
    v.ext = Rel(n);
    v.int_ = Rel(n);
    v.addr = Rel(n);
    v.data = Rel(n);
    v.ctrl = Rel(n);
    v.id = Rel::identity(n);

    // ---- Base sets. ----
    for (size_t e = 0; e < n; ++e) {
        const model::TraceInstr &ti = *events[e].ti;
        if (ti.isLoad())
            v.R.set(e);
        if (ti.isStore())
            v.W.set(e);
        if (ti.isMem())
            v.M.set(e);
        if (ti.instr.isRmw())
            v.RMW.set(e);
        if (ti.instr.isFence()) {
            v.F.set(e);
            switch (ti.instr.fence) {
              case FenceKind::LL: v.FLL.set(e); break;
              case FenceKind::LS: v.FLS.set(e); break;
              case FenceKind::SL: v.FSL.set(e); break;
              case FenceKind::SS: v.FSS.set(e); break;
            }
        }
    }

    // ---- po / loc / ext / int. ----
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            const EventInfo &a = events[i], &b = events[j];
            if (a.tid == b.tid) {
                v.int_.set(i, j);
                if (a.traceIdx < b.traceIdx)
                    v.po.set(i, j);
            } else {
                v.ext.set(i, j);
            }
            if (a.ti->isMem() && b.ti->isMem()
                && a.ti->addr == b.ti->addr) {
                v.loc.set(i, j);
            }
        }
    }

    // ---- rf (reads of the initial memory carry no edge). ----
    for (size_t c = 0; c < cand.events.size(); ++c) {
        const auto &ev = cand.events[c];
        if (ev.isStore)
            eventOfStore[ev.sid] = eventOfCand[c];
    }
    for (size_t c = 0; c < cand.events.size(); ++c) {
        const auto &ev = cand.events[c];
        if (!ev.isLoad || ev.rf == model::InitStore)
            continue;
        auto src = eventOfStore.find(ev.rf);
        GAM_ASSERT(src != eventOfStore.end(), "rf store missing");
        v.rf.set(size_t(src->second), size_t(eventOfCand[c]));
    }

    // ---- addr / data / ctrl by per-thread register dataflow. ----
    // flow[r] = the loads whose value reaches register r through
    // reg-to-reg computation only (a load intermediary restarts the
    // flow: the dependency chains through it event-to-event instead).
    for (size_t tid = 0; tid < cand.traces.size(); ++tid) {
        const model::Trace &trace = *cand.traces[tid];
        std::array<EventSet, isa::NUM_REGS> flow;
        flow.fill(EventSet(n));
        EventSet ctrlSrc(n); // loads feeding any prior branch condition

        // Our event index per trace entry of this thread.
        std::map<int, size_t> eventAt;
        for (size_t e = 0; e < n; ++e)
            if (events[e].tid == int(tid))
                eventAt[events[e].traceIdx] = e;

        auto readFlow = [&](const std::vector<isa::Reg> &regs) {
            EventSet s(n);
            for (isa::Reg r : regs)
                s = s | flow[size_t(r)];
            return s;
        };

        for (size_t k = 0; k < trace.size(); ++k) {
            const Instruction &in = trace[k].instr;
            const auto here = eventAt.find(int(k));
            if (here != eventAt.end()) {
                // Every event after a conditional branch is
                // control-dependent on the loads feeding it.
                v.ctrl.addColumn(ctrlSrc, here->second);
            }
            if (in.isMem()) {
                const size_t e = here->second;
                readFlow(in.addrReadSet())
                    .forEach([&](size_t src) { v.addr.set(src, e); });
                readFlow(in.dataReadSet())
                    .forEach([&](size_t src) { v.data.set(src, e); });
                if (in.isLoad()) {
                    // The loaded value originates here.
                    EventSet self(n);
                    self.set(e);
                    if (in.dst != isa::REG_ZERO)
                        flow[size_t(in.dst)] = self;
                }
            } else if (in.isCondBranch()) {
                ctrlSrc = ctrlSrc | readFlow(in.readSet());
            } else if (in.isRegToReg() || in.op == isa::Opcode::LI) {
                if (in.dst != isa::REG_ZERO)
                    flow[size_t(in.dst)] = readFlow(in.readSet());
            }
            // Fences, NOP, HALT, JMP: read no registers.
        }
    }
}

void
ExecBuilder::rebuildCoherence(const CandidateExecution &cand)
{
    const size_t n = v.n;
    v.co = Rel(n);
    v.fr = Rel(n);

    // co: all ordered pairs of each per-address total order.
    for (const auto &[a, order] : cand.coOrder) {
        (void)a;
        for (size_t i = 0; i < order.size(); ++i) {
            for (size_t j = i + 1; j < order.size(); ++j) {
                v.co.set(size_t(eventOfCand[size_t(order[i])]),
                         size_t(eventOfCand[size_t(order[j])]));
            }
        }
    }

    // fr: load -> stores coherence-after its source; an initial-memory
    // read precedes every same-address store.  Identity excluded.
    for (size_t c = 0; c < cand.events.size(); ++c) {
        const auto &ld = cand.events[c];
        if (!ld.isLoad)
            continue;
        const size_t l = size_t(eventOfCand[c]);
        auto order_it = cand.coOrder.find(ld.addr);
        if (order_it == cand.coOrder.end())
            continue; // no stores for this address at all
        const auto &order = order_it->second;
        bool after = ld.rf == model::InitStore; // init: all stores
        for (int s_cand : order) {
            const auto &st = cand.events[size_t(s_cand)];
            if (!after) {
                if (st.sid == ld.rf)
                    after = true; // strictly later stores from here on
                continue;
            }
            const size_t s = size_t(eventOfCand[size_t(s_cand)]);
            if (s != l)
                v.fr.set(l, s);
        }
    }
}

} // namespace gam::cat
