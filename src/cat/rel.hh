/**
 * @file
 * Bitset-backed sets and binary relations over the events of one
 * candidate execution: the value domain of the cat DSL evaluator.
 *
 * Litmus executions have tens of events, so a relation is an n x n bit
 * matrix stored as 64-bit words, one padded row per event.  Every
 * operator the DSL exposes (union, intersection, difference,
 * composition, closures, inverse, complement, cartesian product,
 * identity restriction) is a handful of word-wide loops; transitive
 * closure is bit-parallel Warshall (OR whole rows), which is what makes
 * fixpoint iteration over `let rec` definitions cheap enough to run per
 * enumerated candidate.
 */

#ifndef GAM_CAT_REL_HH
#define GAM_CAT_REL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gam::cat
{

/** A subset of the n events of one candidate execution. */
class EventSet
{
  public:
    explicit EventSet(size_t n = 0)
        : n_(n), w_((n + 63) / 64, 0)
    {}

    size_t universe() const { return n_; }

    bool
    test(size_t i) const
    {
        return (w_[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(size_t i, bool v = true)
    {
        if (v)
            w_[i >> 6] |= uint64_t(1) << (i & 63);
        else
            w_[i >> 6] &= ~(uint64_t(1) << (i & 63));
    }

    bool empty() const;
    size_t count() const;

    EventSet operator|(const EventSet &o) const;
    EventSet operator&(const EventSet &o) const;
    /** Set difference (this \ o). */
    EventSet minus(const EventSet &o) const;
    /** Complement within the universe. */
    EventSet complement() const;

    bool operator==(const EventSet &o) const = default;

    /** Call @p fn with each member index, ascending. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t w = 0; w < w_.size(); ++w) {
            uint64_t bits = w_[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                fn(w * 64 + size_t(b));
                bits &= bits - 1;
            }
        }
    }

  private:
    friend class Rel;
    size_t n_;
    std::vector<uint64_t> w_;
};

/** A binary relation over the n events of one candidate execution. */
class Rel
{
  public:
    explicit Rel(size_t n = 0)
        : n_(n), wpr_((n + 63) / 64), w_(n * wpr_, 0)
    {}

    /** The identity relation. */
    static Rel identity(size_t n);
    /** [S]: the identity restricted to @p s. */
    static Rel diag(const EventSet &s);
    /** a * b: the cartesian product of two sets. */
    static Rel product(const EventSet &a, const EventSet &b);

    size_t universe() const { return n_; }

    bool
    test(size_t i, size_t j) const
    {
        return (w_[i * wpr_ + (j >> 6)] >> (j & 63)) & 1;
    }

    void
    set(size_t i, size_t j, bool v = true)
    {
        if (v)
            w_[i * wpr_ + (j >> 6)] |= uint64_t(1) << (j & 63);
        else
            w_[i * wpr_ + (j >> 6)] &= ~(uint64_t(1) << (j & 63));
    }

    bool empty() const;
    size_t count() const;

    Rel operator|(const Rel &o) const;
    Rel operator&(const Rel &o) const;
    /** Relation difference (this \ o). */
    Rel minus(const Rel &o) const;
    /** Complement within universe x universe. */
    Rel complement() const;
    /** Relational composition (this ; o). */
    Rel compose(const Rel &o) const;
    /** r^-1. */
    Rel inverse() const;
    /** r+ (transitive closure, bit-parallel Warshall). */
    Rel transitiveClosure() const;
    /** r* (reflexive-transitive closure). */
    Rel reflexiveTransitiveClosure() const;

    /** Is the relation free of (i, i) pairs? */
    bool irreflexive() const;
    /** Is the relation, viewed as a digraph, cycle-free? */
    bool acyclic() const;

    /** Add every member of @p from as a predecessor of event @p j. */
    void addColumn(const EventSet &from, size_t j);

    /**
     * row(dst) |= row(src): the building block of incremental
     * transitive-closure maintenance (the axiomatic enumerator's
     * online cycle detection extends a closed reachability relation
     * one edge at a time by OR-ing whole successor rows).
     */
    void orRowInto(size_t src, size_t dst);

    bool operator==(const Rel &o) const = default;

  private:
    uint64_t *row(size_t i) { return w_.data() + i * wpr_; }
    const uint64_t *row(size_t i) const { return w_.data() + i * wpr_; }
    /** Zero the padding bits beyond column n_ - 1. */
    void maskTail();

    size_t n_;
    size_t wpr_; ///< words per row
    std::vector<uint64_t> w_;
};

} // namespace gam::cat

#endif // GAM_CAT_REL_HH
