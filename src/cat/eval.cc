#include "cat/eval.hh"

#include "base/logging.hh"

namespace gam::cat
{

namespace
{

Value
setValue(EventSet s)
{
    Value v;
    v.type = Type::Set;
    v.set = std::move(s);
    return v;
}

Value
relValue(Rel r)
{
    Value v;
    v.type = Type::Rel;
    v.rel = std::move(r);
    return v;
}

/** A 0 literal adapts to the sort its context inferred. */
Value
emptyOfType(Type t, size_t n)
{
    return t == Type::Set ? setValue(EventSet(n)) : relValue(Rel(n));
}

const Rel &
asRel(const Value &v)
{
    GAM_ASSERT(v.type == Type::Rel, "cat eval: expected a relation");
    return v.rel;
}

const EventSet &
asSet(const Value &v)
{
    GAM_ASSERT(v.type == Type::Set, "cat eval: expected a set");
    return v.set;
}

} // anonymous namespace

Evaluator::Evaluator(const CatModel &model) : model(model)
{
    slots.resize(size_t(model.slotCount));
}

Value
evalCatExpr(const Expr &e, const ExecView &view,
            const std::vector<Value> &slots, const FoldMap *folds)
{
    // A folded subtree was evaluated elsewhere (once per rf epoch);
    // short-circuit before any structural work.
    if (folds != nullptr) {
        if (auto it = folds->find(&e); it != folds->end())
            return slots[size_t(it->second)];
    }
    switch (e.kind) {
      case Expr::Kind::Name: {
        if (e.slot >= 0)
            return slots[size_t(e.slot)];
        GAM_ASSERT(e.builtin.has_value(), "cat eval: unresolved name");
        switch (*e.builtin) {
          case Builtin::R: return setValue(view.R);
          case Builtin::W: return setValue(view.W);
          case Builtin::M: return setValue(view.M);
          case Builtin::F: return setValue(view.F);
          case Builtin::RMW: return setValue(view.RMW);
          case Builtin::FLL: return setValue(view.FLL);
          case Builtin::FLS: return setValue(view.FLS);
          case Builtin::FSL: return setValue(view.FSL);
          case Builtin::FSS: return setValue(view.FSS);
          case Builtin::Po: return relValue(view.po);
          case Builtin::Rf: return relValue(view.rf);
          case Builtin::Co: return relValue(view.co);
          case Builtin::Fr: return relValue(view.fr);
          case Builtin::Loc: return relValue(view.loc);
          case Builtin::Ext: return relValue(view.ext);
          case Builtin::Int: return relValue(view.int_);
          case Builtin::Addr: return relValue(view.addr);
          case Builtin::Data: return relValue(view.data);
          case Builtin::Ctrl: return relValue(view.ctrl);
          case Builtin::Id: return relValue(view.id);
          case Builtin::NUM: break;
        }
        panic("cat eval: bad builtin");
      }
      case Expr::Kind::EmptyRel:
        return emptyOfType(e.type, view.n);
      case Expr::Kind::Union: {
        Value a = evalCatExpr(*e.a, view, slots, folds);
        Value b = evalCatExpr(*e.b, view, slots, folds);
        // A polymorphic 0 operand adopts the other side's sort.
        if (a.type != b.type) {
            if (e.a->type == Type::Any)
                a = emptyOfType(b.type, view.n);
            else if (e.b->type == Type::Any)
                b = emptyOfType(a.type, view.n);
        }
        return a.type == Type::Set
            ? setValue(asSet(a) | asSet(b))
            : relValue(asRel(a) | asRel(b));
      }
      case Expr::Kind::Inter: {
        Value a = evalCatExpr(*e.a, view, slots, folds);
        Value b = evalCatExpr(*e.b, view, slots, folds);
        if (a.type != b.type) {
            if (e.a->type == Type::Any)
                a = emptyOfType(b.type, view.n);
            else if (e.b->type == Type::Any)
                b = emptyOfType(a.type, view.n);
        }
        return a.type == Type::Set
            ? setValue(asSet(a) & asSet(b))
            : relValue(asRel(a) & asRel(b));
      }
      case Expr::Kind::Diff: {
        Value a = evalCatExpr(*e.a, view, slots, folds);
        Value b = evalCatExpr(*e.b, view, slots, folds);
        if (a.type != b.type) {
            if (e.a->type == Type::Any)
                a = emptyOfType(b.type, view.n);
            else if (e.b->type == Type::Any)
                b = emptyOfType(a.type, view.n);
        }
        return a.type == Type::Set
            ? setValue(asSet(a).minus(asSet(b)))
            : relValue(asRel(a).minus(asRel(b)));
      }
      case Expr::Kind::Seq:
        return relValue(
            asRel(evalCatExpr(*e.a, view, slots, folds))
                .compose(asRel(evalCatExpr(*e.b, view, slots,
                                           folds))));
      case Expr::Kind::Product:
        return relValue(
            Rel::product(asSet(evalCatSet(*e.a, view, slots, folds)),
                         asSet(evalCatSet(*e.b, view, slots, folds))));
      case Expr::Kind::Compl: {
        const Value a = evalCatExpr(*e.a, view, slots, folds);
        return a.type == Type::Set ? setValue(a.set.complement())
                                   : relValue(a.rel.complement());
      }
      case Expr::Kind::Plus:
        return relValue(asRel(evalCatExpr(*e.a, view, slots, folds))
                            .transitiveClosure());
      case Expr::Kind::Star:
        return relValue(asRel(evalCatExpr(*e.a, view, slots, folds))
                            .reflexiveTransitiveClosure());
      case Expr::Kind::Inverse:
        return relValue(asRel(evalCatExpr(*e.a, view, slots, folds))
                            .inverse());
      case Expr::Kind::Diag:
        return relValue(
            Rel::diag(asSet(evalCatSet(*e.a, view, slots, folds))));
    }
    panic("cat eval: bad expression kind");
}

Value
evalCatSet(const Expr &e, const ExecView &view,
           const std::vector<Value> &slots, const FoldMap *folds)
{
    // A subtree the static checker left polymorphic (built from 0
    // literals only) denotes the empty value; in a set-demanding
    // context that is the empty set, not the default empty relation.
    if (e.type == Type::Any)
        return setValue(EventSet(view.n));
    return evalCatExpr(e, view, slots, folds);
}

Value
Evaluator::evalExpr(const Expr &e, const ExecView &view) const
{
    return evalCatExpr(e, view, slots, /*folds=*/nullptr);
}

bool
Evaluator::check(const ExecView &view)
{
    lastEpoch.reset();
    return checkImpl(view, /*reuse_stable=*/false,
                     /*partial_only=*/false);
}

bool
Evaluator::check(const ExecView &view, uint64_t rfEpoch)
{
    const bool reuse = lastEpoch.has_value() && *lastEpoch == rfEpoch;
    lastEpoch = rfEpoch;
    return checkImpl(view, reuse, /*partial_only=*/false);
}

bool
Evaluator::checkPartial(const ExecView &view, uint64_t rfEpoch)
{
    const bool reuse = lastEpoch.has_value() && *lastEpoch == rfEpoch;
    lastEpoch = rfEpoch;
    return checkImpl(view, reuse, /*partial_only=*/true);
}

bool
Evaluator::partialCapable() const
{
    for (const Stmt &stmt : model.statements) {
        switch (stmt.kind) {
          case Stmt::Kind::Acyclic:
          case Stmt::Kind::Irreflexive:
          case Stmt::Kind::Empty:
            if (stmt.checkPolarity != Polarity::NonMonotone)
                return true;
            break;
          default:
            break;
        }
    }
    return false;
}

bool
Evaluator::checkImpl(const ExecView &view, bool reuse_stable,
                     bool partial_only)
{
    _failedAxiom.clear();
    lastView = &view;

    // Phase 1: evaluate every definition.  A binding can only
    // reference earlier bindings (each resolved to its own slot at
    // parse time, so shadowing is unaffected), which makes it safe to
    // fill all slots before testing any axiom -- and necessary for
    // the epoch reuse below: an axiom failing early must never leave
    // later slots unevaluated for the next candidate of the epoch.
    for (const Stmt &stmt : model.statements) {
        // Within one rf epoch only co and fr change between candidate
        // executions; definitions not touching them still hold their
        // previous slot values.
        switch (stmt.kind) {
          case Stmt::Kind::Let:
            for (const Binding &b : stmt.bindings) {
                if (!reuse_stable || b.coDependent())
                    slots[size_t(b.slot)] = evalExpr(*b.body, view);
            }
            break;
          case Stmt::Kind::LetRec: {
            // Coherence dependence taints whole groups, so one flag
            // decides (see the static checker).
            if (reuse_stable && !stmt.bindings.front().coDependent())
                break;
            // Least fixpoint from the empty relation.  Monotone
            // bodies (statically enforced) grow by at least one pair
            // per round, so |E|^2 * group size + 1 rounds suffice.
            for (const Binding &b : stmt.bindings)
                slots[size_t(b.slot)] = relValue(Rel(view.n));
            const size_t cap =
                view.n * view.n * stmt.bindings.size() + 2;
            bool changed = true;
            for (size_t round = 0; changed && round < cap; ++round) {
                changed = false;
                for (const Binding &b : stmt.bindings) {
                    Value next = evalExpr(*b.body, view);
                    if (!(asRel(next)
                          == asRel(slots[size_t(b.slot)]))) {
                        slots[size_t(b.slot)] = std::move(next);
                        changed = true;
                    }
                }
            }
            GAM_ASSERT(!changed,
                       "cat eval: let rec did not converge (the "
                       "static monotonicity check should prevent "
                       "this)");
            break;
          }
          default:
            break;
        }
    }

    // Phase 2: test the axioms in order; the first failure rejects.
    // A partial check may only consult axioms whose expression cannot
    // un-fail as co/fr grow (see checkPartial()); co/fr-Independent
    // axioms hold one verdict per epoch, so once they all passed they
    // are skipped until the epoch changes.
    if (!reuse_stable)
        stableAxiomsOk = false;
    bool tested_stable = false;
    for (const Stmt &stmt : model.statements) {
        if (partial_only && stmt.checkPolarity == Polarity::NonMonotone)
            continue;
        if (stmt.check
            && stmt.checkPolarity == Polarity::Independent) {
            if (stableAxiomsOk)
                continue;
            tested_stable = true;
        }
        switch (stmt.kind) {
          case Stmt::Kind::Let:
          case Stmt::Kind::LetRec:
            break;
          case Stmt::Kind::Acyclic:
            if (!asRel(evalExpr(*stmt.check, view)).acyclic()) {
                _failedAxiom = stmt.axiomName;
                return false;
            }
            break;
          case Stmt::Kind::Irreflexive:
            if (!asRel(evalExpr(*stmt.check, view)).irreflexive()) {
                _failedAxiom = stmt.axiomName;
                return false;
            }
            break;
          case Stmt::Kind::Empty: {
            const Value value = evalExpr(*stmt.check, view);
            const bool empty = value.type == Type::Set
                ? value.set.empty() : value.rel.empty();
            if (!empty) {
                _failedAxiom = stmt.axiomName;
                return false;
            }
            break;
          }
        }
    }
    // Reaching here means every tested axiom passed; an early return
    // above leaves stableAxiomsOk untouched, so a failing or untested
    // Independent axiom is re-examined next call.
    if (tested_stable)
        stableAxiomsOk = true;
    return true;
}

Value
Evaluator::valueOf(const std::string &name) const
{
    GAM_ASSERT(lastView != nullptr,
               "cat eval: valueOf before any check()");
    // Let-bound names shadow builtins, latest binding wins.
    int slot = -1;
    for (const Stmt &stmt : model.statements) {
        for (const Binding &b : stmt.bindings) {
            if (b.name == name)
                slot = b.slot;
        }
    }
    if (slot >= 0)
        return slots[size_t(slot)];

    // Builtins: parse a one-line probe so name resolution is shared.
    auto parsed = parseCat("let probe-value = " + name);
    GAM_ASSERT(parsed.ok(), "valueOf: '%s' is not a builtin",
               name.c_str());
    return evalExpr(*parsed.model->statements.front().bindings.front()
                         .body,
                    *lastView);
}

} // namespace gam::cat
