#include "cat/parser.hh"

#include <algorithm>
#include <cctype>
#include <map>

#include "base/hashing.hh"
#include "base/logging.hh"

namespace gam::cat
{

std::string
CatError::toString() const
{
    return formatString("line %d:%d: %s", line, col, message.c_str());
}

std::string
typeName(Type t)
{
    switch (t) {
      case Type::Set: return "set";
      case Type::Rel: return "relation";
      case Type::Any: return "any";
    }
    return "?";
}

namespace
{

/** Internal unwind carrying a diagnostic out of the recursive descent. */
struct ParseAbort
{
    CatError error;
};

[[noreturn]] void
fail(int line, int col, std::string message)
{
    throw ParseAbort{CatError{std::move(message), line, col}};
}

// ------------------------------------------------------------- lexer

enum class Tok {
    Ident, String, Zero,
    KwLet, KwRec, KwAnd, KwAs, KwAcyclic, KwIrreflexive, KwEmpty,
    Pipe, Semi, Amp, Diff, Star, Plus, Tilde, Inverse,
    LParen, RParen, LBracket, RBracket, Equals,
    End,
};

struct Token
{
    Tok kind;
    std::string text;
    int line;
    int col;
};

const std::map<std::string, Tok> keywords = {
    {"let", Tok::KwLet},           {"rec", Tok::KwRec},
    {"and", Tok::KwAnd},           {"as", Tok::KwAs},
    {"acyclic", Tok::KwAcyclic},   {"irreflexive", Tok::KwIrreflexive},
    {"empty", Tok::KwEmpty},
};

std::vector<Token>
lex(const std::string &src)
{
    std::vector<Token> out;
    size_t i = 0;
    int line = 1, col = 1;

    auto advance = [&](size_t k) {
        for (size_t j = 0; j < k && i < src.size(); ++j, ++i) {
            if (src[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
    };
    auto peek = [&](size_t k = 0) -> char {
        return i + k < src.size() ? src[i + k] : '\0';
    };

    while (i < src.size()) {
        const char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance(1);
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            while (i < src.size() && peek() != '\n')
                advance(1);
            continue;
        }
        if (c == '(' && peek(1) == '*') {
            const int open_line = line, open_col = col;
            advance(2);
            int depth = 1;
            while (i < src.size() && depth > 0) {
                if (peek() == '(' && peek(1) == '*') {
                    ++depth;
                    advance(2);
                } else if (peek() == '*' && peek(1) == ')') {
                    --depth;
                    advance(2);
                } else {
                    advance(1);
                }
            }
            if (depth > 0)
                fail(open_line, open_col, "unterminated comment '(*'");
            continue;
        }

        const int tl = line, tc = col;
        auto push = [&](Tok kind, std::string text, size_t width) {
            advance(width);
            out.push_back({kind, std::move(text), tl, tc});
        };

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t len = 1;
            while (true) {
                const char d = peek(len);
                if (std::isalnum(static_cast<unsigned char>(d))
                    || d == '_' || d == '-' || d == '.') {
                    ++len;
                } else {
                    break;
                }
            }
            std::string word = src.substr(i, len);
            auto kw = keywords.find(word);
            push(kw != keywords.end() ? kw->second : Tok::Ident,
                 std::move(word), len);
            continue;
        }
        if (c == '"') {
            size_t len = 1;
            while (peek(len) != '"' && peek(len) != '\n'
                   && i + len < src.size()) {
                ++len;
            }
            if (peek(len) != '"')
                fail(tl, tc, "unterminated string literal");
            push(Tok::String, src.substr(i + 1, len - 1), len + 1);
            continue;
        }
        if (c == '0'
            && !std::isalnum(static_cast<unsigned char>(peek(1)))) {
            push(Tok::Zero, "0", 1);
            continue;
        }
        if (c == '^') {
            if (peek(1) == '-' && peek(2) == '1') {
                push(Tok::Inverse, "^-1", 3);
                continue;
            }
            fail(tl, tc, "expected '^-1' after '^'");
        }
        switch (c) {
          case '|': push(Tok::Pipe, "|", 1); continue;
          case ';': push(Tok::Semi, ";", 1); continue;
          case '&': push(Tok::Amp, "&", 1); continue;
          case '\\': push(Tok::Diff, "\\", 1); continue;
          case '*': push(Tok::Star, "*", 1); continue;
          case '+': push(Tok::Plus, "+", 1); continue;
          case '~': push(Tok::Tilde, "~", 1); continue;
          case '(': push(Tok::LParen, "(", 1); continue;
          case ')': push(Tok::RParen, ")", 1); continue;
          case '[': push(Tok::LBracket, "[", 1); continue;
          case ']': push(Tok::RBracket, "]", 1); continue;
          case '=': push(Tok::Equals, "=", 1); continue;
          default:
            fail(tl, tc,
                 formatString("unexpected character '%c'", c));
        }
    }
    out.push_back({Tok::End, "", line, col});
    return out;
}

// ------------------------------------------------------------ parser

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : tokens(std::move(tokens))
    {}

    CatModel
    parseModel(const std::string &default_name)
    {
        CatModel model;
        model.name = default_name;
        // Optional header line: a bare identifier or string that is
        // not the start of a statement names the model.
        if (at(Tok::Ident) || at(Tok::String))
            model.name = next().text;
        while (!at(Tok::End))
            model.statements.push_back(parseStmt(model));
        return model;
    }

  private:
    const Token &peek(size_t k = 0) const
    {
        const size_t i = pos + k;
        return i < tokens.size() ? tokens[i] : tokens.back();
    }
    bool at(Tok kind) const { return peek().kind == kind; }
    const Token &next() { return tokens[pos++]; }

    const Token &
    expect(Tok kind, const char *what)
    {
        if (!at(kind)) {
            fail(peek().line, peek().col,
                 formatString("expected %s, found '%s'", what,
                              at(Tok::End) ? "end of file"
                                           : peek().text.c_str()));
        }
        return next();
    }

    Stmt
    parseStmt(CatModel &model)
    {
        const Token &t = peek();
        switch (t.kind) {
          case Tok::KwLet:
            return parseLet(model);
          case Tok::KwAcyclic:
          case Tok::KwIrreflexive:
          case Tok::KwEmpty:
            return parseAxiom(model);
          default:
            fail(t.line, t.col,
                 formatString("expected 'let', 'acyclic', "
                              "'irreflexive' or 'empty', found '%s'",
                              at(Tok::End) ? "end of file"
                                           : t.text.c_str()));
        }
    }

    Stmt
    parseLet(CatModel &model)
    {
        Stmt stmt;
        stmt.line = peek().line;
        next(); // let
        stmt.kind = Stmt::Kind::Let;
        if (at(Tok::KwRec)) {
            next();
            stmt.kind = Stmt::Kind::LetRec;
        }
        while (true) {
            Binding b;
            const Token &name = expect(Tok::Ident, "a definition name");
            b.name = name.text;
            b.line = name.line;
            b.col = name.col;
            expect(Tok::Equals, "'='");
            b.body = parseExpr();
            model.definitionNames.push_back(b.name);
            stmt.bindings.push_back(std::move(b));
            if (!at(Tok::KwAnd))
                break;
            next();
        }
        return stmt;
    }

    Stmt
    parseAxiom(CatModel &model)
    {
        Stmt stmt;
        const Token &t = next();
        stmt.line = t.line;
        switch (t.kind) {
          case Tok::KwAcyclic: stmt.kind = Stmt::Kind::Acyclic; break;
          case Tok::KwIrreflexive:
            stmt.kind = Stmt::Kind::Irreflexive;
            break;
          default: stmt.kind = Stmt::Kind::Empty; break;
        }
        stmt.check = parseExpr();
        if (at(Tok::KwAs)) {
            next();
            stmt.axiomName = expect(Tok::Ident, "an axiom name").text;
        } else {
            stmt.axiomName = formatString(
                "%s #%zu", t.text.c_str(), model.axiomNames.size() + 1);
        }
        model.axiomNames.push_back(stmt.axiomName);
        return stmt;
    }

    // Expression grammar, loosest binding first:
    //   union ('|') < sequence (';') < difference ('\') <
    //   intersection ('&') < product ('*') < prefix '~' <
    //   postfix '+' '*' '^-1' < atoms.
    std::unique_ptr<Expr> parseExpr() { return parseUnion(); }

    std::unique_ptr<Expr>
    makeBinary(Expr::Kind kind, std::unique_ptr<Expr> a,
               std::unique_ptr<Expr> b, const Token &op)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = op.line;
        e->col = op.col;
        e->a = std::move(a);
        e->b = std::move(b);
        return e;
    }

    std::unique_ptr<Expr>
    parseUnion()
    {
        auto e = parseSeq();
        while (at(Tok::Pipe)) {
            const Token op = next();
            e = makeBinary(Expr::Kind::Union, std::move(e), parseSeq(),
                           op);
        }
        return e;
    }

    std::unique_ptr<Expr>
    parseSeq()
    {
        auto e = parseDiff();
        while (at(Tok::Semi)) {
            const Token op = next();
            e = makeBinary(Expr::Kind::Seq, std::move(e), parseDiff(),
                           op);
        }
        return e;
    }

    std::unique_ptr<Expr>
    parseDiff()
    {
        auto e = parseInter();
        while (at(Tok::Diff)) {
            const Token op = next();
            e = makeBinary(Expr::Kind::Diff, std::move(e), parseInter(),
                           op);
        }
        return e;
    }

    std::unique_ptr<Expr>
    parseInter()
    {
        auto e = parseProduct();
        while (at(Tok::Amp)) {
            const Token op = next();
            e = makeBinary(Expr::Kind::Inter, std::move(e),
                           parseProduct(), op);
        }
        return e;
    }

    /** Can @p kind start an expression atom? (disambiguates '*') */
    static bool
    startsAtom(Tok kind)
    {
        return kind == Tok::Ident || kind == Tok::Zero
            || kind == Tok::LParen || kind == Tok::LBracket
            || kind == Tok::Tilde;
    }

    std::unique_ptr<Expr>
    parseProduct()
    {
        auto e = parseUnary();
        while (at(Tok::Star) && startsAtom(peek(1).kind)) {
            const Token op = next();
            e = makeBinary(Expr::Kind::Product, std::move(e),
                           parseUnary(), op);
        }
        return e;
    }

    std::unique_ptr<Expr>
    parseUnary()
    {
        if (at(Tok::Tilde)) {
            const Token op = next();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Compl;
            e->line = op.line;
            e->col = op.col;
            e->a = parseUnary();
            return e;
        }
        return parsePostfix();
    }

    std::unique_ptr<Expr>
    parsePostfix()
    {
        auto e = parseAtom();
        while (true) {
            if (at(Tok::Plus) || at(Tok::Inverse)
                || (at(Tok::Star) && !startsAtom(peek(1).kind))) {
                const Token op = next();
                auto p = std::make_unique<Expr>();
                p->kind = op.kind == Tok::Plus ? Expr::Kind::Plus
                    : op.kind == Tok::Star    ? Expr::Kind::Star
                                              : Expr::Kind::Inverse;
                p->line = op.line;
                p->col = op.col;
                p->a = std::move(e);
                e = std::move(p);
                continue;
            }
            break;
        }
        return e;
    }

    std::unique_ptr<Expr>
    parseAtom()
    {
        const Token &t = peek();
        if (t.kind == Tok::Ident) {
            next();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Name;
            e->line = t.line;
            e->col = t.col;
            e->name = t.text;
            return e;
        }
        if (t.kind == Tok::Zero) {
            next();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::EmptyRel;
            e->line = t.line;
            e->col = t.col;
            return e;
        }
        if (t.kind == Tok::LParen) {
            next();
            auto e = parseExpr();
            if (!at(Tok::RParen))
                fail(t.line, t.col, "unbalanced '('");
            next();
            return e;
        }
        if (t.kind == Tok::LBracket) {
            next();
            auto inner = parseExpr();
            if (!at(Tok::RBracket))
                fail(t.line, t.col, "unbalanced '['");
            next();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Diag;
            e->line = t.line;
            e->col = t.col;
            e->a = std::move(inner);
            return e;
        }
        fail(t.line, t.col,
             formatString("expected an expression, found '%s'",
                          t.kind == Tok::End ? "end of file"
                                             : t.text.c_str()));
    }

    std::vector<Token> tokens;
    size_t pos = 0;
};

// -------------------------------------------- static checks (resolve)

struct BuiltinInfo
{
    Builtin builtin;
    Type type;
};

const std::map<std::string, BuiltinInfo> &
builtins()
{
    static const std::map<std::string, BuiltinInfo> table = {
        {"R", {Builtin::R, Type::Set}},
        {"W", {Builtin::W, Type::Set}},
        {"M", {Builtin::M, Type::Set}},
        {"F", {Builtin::F, Type::Set}},
        {"RMW", {Builtin::RMW, Type::Set}},
        {"FLL", {Builtin::FLL, Type::Set}},
        {"FLS", {Builtin::FLS, Type::Set}},
        {"FSL", {Builtin::FSL, Type::Set}},
        {"FSS", {Builtin::FSS, Type::Set}},
        {"po", {Builtin::Po, Type::Rel}},
        {"rf", {Builtin::Rf, Type::Rel}},
        {"co", {Builtin::Co, Type::Rel}},
        {"fr", {Builtin::Fr, Type::Rel}},
        {"loc", {Builtin::Loc, Type::Rel}},
        {"ext", {Builtin::Ext, Type::Rel}},
        {"int", {Builtin::Int, Type::Rel}},
        {"addr", {Builtin::Addr, Type::Rel}},
        {"data", {Builtin::Data, Type::Rel}},
        {"ctrl", {Builtin::Ctrl, Type::Rel}},
        {"id", {Builtin::Id, Type::Rel}},
    };
    return table;
}

/** Resolves names to slots/builtins and infers sorts. */
class Checker
{
  public:
    void
    run(CatModel &model)
    {
        for (Stmt &stmt : model.statements) {
            switch (stmt.kind) {
              case Stmt::Kind::Let:
                for (Binding &b : stmt.bindings) {
                    const Type t = checkExpr(*b.body);
                    b.slot = model.slotCount++;
                    b.coPolarity = polarityOf(*b.body);
                    slotPolarity.push_back(b.coPolarity);
                    annotatePolarity(*b.body);
                    scope[b.name] = {b.slot, t};
                }
                break;
              case Stmt::Kind::LetRec: {
                // Pre-bind the whole group as relations, then check
                // each body against that environment.
                for (Binding &b : stmt.bindings) {
                    b.slot = model.slotCount++;
                    slotPolarity.push_back(Polarity::Independent);
                    scope[b.name] = {b.slot, Type::Rel};
                }
                for (Binding &b : stmt.bindings) {
                    const Type t = checkExpr(*b.body);
                    if (t == Type::Set) {
                        fail(b.line, b.col,
                             formatString("recursive definition '%s' "
                                          "must be a relation, not a "
                                          "set", b.name.c_str()));
                    }
                    checkMonotone(*b.body, stmt.bindings);
                }
                // Polarity through recursion: bodies reference each
                // other's slots, so iterate to a fixpoint (polarityOf
                // is monotone in the slot polarities, which only ever
                // rise -- at most two rounds per binding).
                bool changed = true;
                while (changed) {
                    changed = false;
                    for (Binding &b : stmt.bindings) {
                        const Polarity p = polarityOf(*b.body);
                        if (p > slotPolarity[size_t(b.slot)]) {
                            slotPolarity[size_t(b.slot)] = p;
                            changed = true;
                        }
                    }
                }
                // Coherence dependence is a property of the whole
                // group: any co/fr mention taints every member.
                Polarity group = Polarity::Independent;
                for (const Binding &b : stmt.bindings)
                    group = std::max(group,
                                     slotPolarity[size_t(b.slot)]);
                for (Binding &b : stmt.bindings) {
                    b.coPolarity = group;
                    slotPolarity[size_t(b.slot)] = group;
                }
                for (Binding &b : stmt.bindings)
                    annotatePolarity(*b.body);
                break;
              }
              case Stmt::Kind::Acyclic:
              case Stmt::Kind::Irreflexive: {
                const Type t = checkExpr(*stmt.check);
                if (t == Type::Set) {
                    fail(stmt.check->line, stmt.check->col,
                         "this axiom needs a relation, not a set");
                }
                stmt.checkPolarity = polarityOf(*stmt.check);
                annotatePolarity(*stmt.check);
                break;
              }
              case Stmt::Kind::Empty:
                checkExpr(*stmt.check);
                stmt.checkPolarity = polarityOf(*stmt.check);
                annotatePolarity(*stmt.check);
                break;
            }
        }
    }

  private:
    struct Local
    {
        int slot;
        Type type;
    };

    /** co/fr dependence classification of @p e (see parser.hh). */
    Polarity
    polarityOf(const Expr &e) const
    {
        return exprPolarity(e, slotPolarity);
    }

    /**
     * Stamp Expr::polarity on every node of @p e, bottom-up, under the
     * final slot polarities.  Runs once per expression after the
     * enclosing statement's polarity inference has converged.
     */
    void
    annotatePolarity(Expr &e) const
    {
        if (e.a)
            annotatePolarity(*e.a);
        if (e.b)
            annotatePolarity(*e.b);
        e.polarity = exprPolarity(e, slotPolarity);
    }

    Type
    unify(Type a, Type b, const Expr &at, const char *op)
    {
        if (a == Type::Any)
            return b;
        if (b == Type::Any)
            return a;
        if (a != b) {
            fail(at.line, at.col,
                 formatString("type mismatch: '%s' applied to a %s "
                              "and a %s", op, typeName(a).c_str(),
                              typeName(b).c_str()));
        }
        return a;
    }

    Type
    requireRel(Type t, const Expr &at, const char *op)
    {
        if (t == Type::Set) {
            fail(at.line, at.col,
                 formatString("type mismatch: '%s' needs a relation, "
                              "got a set", op));
        }
        return Type::Rel;
    }

    Type
    requireSet(Type t, const Expr &at, const char *op)
    {
        if (t == Type::Rel) {
            fail(at.line, at.col,
                 formatString("type mismatch: '%s' needs a set, got a "
                              "relation", op));
        }
        return Type::Set;
    }

    Type
    checkExpr(Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Name: {
            if (auto it = scope.find(e.name); it != scope.end()) {
                e.slot = it->second.slot;
                e.type = it->second.type;
                return e.type;
            }
            if (auto it = builtins().find(e.name);
                it != builtins().end()) {
                e.builtin = it->second.builtin;
                e.type = it->second.type;
                return e.type;
            }
            fail(e.line, e.col,
                 formatString("unbound name '%s' (not a primitive, "
                              "base set, or prior definition)",
                              e.name.c_str()));
          }
          case Expr::Kind::EmptyRel:
            return e.type = Type::Any;
          case Expr::Kind::Union:
            return e.type = unify(checkExpr(*e.a), checkExpr(*e.b), e,
                                  "|");
          case Expr::Kind::Inter:
            return e.type = unify(checkExpr(*e.a), checkExpr(*e.b), e,
                                  "&");
          case Expr::Kind::Diff:
            return e.type = unify(checkExpr(*e.a), checkExpr(*e.b), e,
                                  "\\");
          case Expr::Kind::Seq:
            requireRel(checkExpr(*e.a), *e.a, ";");
            requireRel(checkExpr(*e.b), *e.b, ";");
            return e.type = Type::Rel;
          case Expr::Kind::Product:
            requireSet(checkExpr(*e.a), *e.a, "*");
            requireSet(checkExpr(*e.b), *e.b, "*");
            return e.type = Type::Rel;
          case Expr::Kind::Compl: {
            const Type t = checkExpr(*e.a);
            return e.type = (t == Type::Any ? Type::Rel : t);
          }
          case Expr::Kind::Plus:
          case Expr::Kind::Star:
          case Expr::Kind::Inverse:
            requireRel(checkExpr(*e.a), *e.a,
                       e.kind == Expr::Kind::Plus   ? "+"
                       : e.kind == Expr::Kind::Star ? "*"
                                                    : "^-1");
            return e.type = Type::Rel;
          case Expr::Kind::Diag:
            requireSet(checkExpr(*e.a), *e.a, "[...]");
            return e.type = Type::Rel;
        }
        panic("unreachable expression kind");
    }

    /**
     * Reject non-monotone recursion: a name of the current `let rec`
     * group under '~' or on the right of '\' could make the fixpoint
     * oscillate forever; monotone bodies converge within |E|^2 steps.
     */
    void
    checkMonotone(const Expr &e, const std::vector<Binding> &group)
    {
        const bool is_rec_name = e.kind == Expr::Kind::Name
            && std::any_of(group.begin(), group.end(),
                           [&](const Binding &b) {
                               return b.slot == e.slot && e.slot >= 0;
                           });
        if (is_rec_name)
            return; // a bare positive occurrence is fine
        if (e.kind == Expr::Kind::Compl) {
            requireNoRecName(*e.a, group, "under '~'");
            return;
        }
        if (e.kind == Expr::Kind::Diff) {
            checkMonotone(*e.a, group);
            requireNoRecName(*e.b, group, "on the right of '\\'");
            return;
        }
        if (e.a)
            checkMonotone(*e.a, group);
        if (e.b)
            checkMonotone(*e.b, group);
    }

    void
    requireNoRecName(const Expr &e, const std::vector<Binding> &group,
                     const char *where)
    {
        if (e.kind == Expr::Kind::Name) {
            for (const Binding &b : group) {
                if (b.slot >= 0 && b.slot == e.slot) {
                    fail(e.line, e.col,
                         formatString("recursive name '%s' used "
                                      "non-monotonically (%s): the "
                                      "fixpoint may not terminate",
                                      e.name.c_str(), where));
                }
            }
            return;
        }
        if (e.a)
            requireNoRecName(*e.a, group, where);
        if (e.b)
            requireNoRecName(*e.b, group, where);
    }

    std::map<std::string, Local> scope;
    /** Coherence-dependence per binding slot (parallel to slot ids). */
    std::vector<Polarity> slotPolarity;
};

/** A co/fr occurrence under complement or on the right of '\'
 *  stops being monotone (but stays NonMonotone, never clears). */
Polarity
flipPolarity(Polarity p)
{
    return p == Polarity::Independent ? Polarity::Independent
                                      : Polarity::NonMonotone;
}

} // anonymous namespace

Polarity
exprPolarity(const Expr &e, const std::vector<Polarity> &slotPolarity)
{
    switch (e.kind) {
      case Expr::Kind::Name:
        if (e.builtin == Builtin::Co || e.builtin == Builtin::Fr)
            return Polarity::Monotone;
        if (e.slot >= 0 && size_t(e.slot) < slotPolarity.size())
            return slotPolarity[size_t(e.slot)];
        return Polarity::Independent;
      case Expr::Kind::EmptyRel:
        return Polarity::Independent;
      case Expr::Kind::Diff:
        // a \ b is monotone in a, antitone in b.
        return std::max(exprPolarity(*e.a, slotPolarity),
                        flipPolarity(exprPolarity(*e.b, slotPolarity)));
      case Expr::Kind::Compl:
        return flipPolarity(exprPolarity(*e.a, slotPolarity));
      default: {
        // Union, intersection, composition, product, closures,
        // inverse and [S] are all monotone in every operand.
        Polarity p = Polarity::Independent;
        if (e.a)
            p = std::max(p, exprPolarity(*e.a, slotPolarity));
        if (e.b)
            p = std::max(p, exprPolarity(*e.b, slotPolarity));
        return p;
      }
    }
    panic("unreachable expression kind");
}

CatParseResult
parseCat(const std::string &source, const std::string &defaultName)
{
    CatParseResult result;
    try {
        Parser parser(lex(source));
        CatModel model = parser.parseModel(defaultName);
        Checker().run(model);
        model.source = source;
        model.sourceHash = hashString(source);
        result.model = std::move(model);
    } catch (ParseAbort &abort) {
        result.error = std::move(abort.error);
    }
    return result;
}

} // namespace gam::cat
