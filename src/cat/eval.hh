/**
 * @file
 * Evaluating a parsed cat model over one candidate execution.
 *
 * The evaluator walks the model's statements in order: `let` bindings
 * evaluate into pre-assigned slots, `let rec` groups iterate from the
 * empty relation to their least fixpoint (the static checker only
 * admits monotone recursion, so at most |E|^2 + 1 rounds converge),
 * and each axiom tests its relation.  The first failing axiom rejects
 * the candidate.
 *
 * Models that pass parseCat()'s static checks cannot fail here; the
 * evaluator asserts rather than diagnoses.
 */

#ifndef GAM_CAT_EVAL_HH
#define GAM_CAT_EVAL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cat/exec.hh"
#include "cat/parser.hh"
#include "cat/rel.hh"

namespace gam::cat
{

/** A DSL value: a set or a relation over the execution's events. */
struct Value
{
    Type type = Type::Rel;
    EventSet set;
    Rel rel;
};

/** Evaluates one model over candidate executions. */
class Evaluator
{
  public:
    /** @p model must outlive the evaluator. */
    explicit Evaluator(const CatModel &model);

    /**
     * Do all axioms of the model hold for @p view?  On failure
     * failedAxiom() names the first violated axiom.
     *
     * @p rfEpoch enables incremental evaluation over a candidate
     * stream: definitions that do not (transitively) mention co or fr
     * are constant across the coherence permutations of one read-from
     * candidate (CandidateExecution::rfEpoch), so they are re-derived
     * only when the epoch changes.  The overload without an epoch
     * always evaluates everything.
     */
    bool check(const ExecView &view, uint64_t rfEpoch);
    bool check(const ExecView &view);

    /** The axiom the last check() run violated ("" when it passed). */
    const std::string &failedAxiom() const { return _failedAxiom; }

    /**
     * The value a definition or builtin evaluated to in the last
     * check() run (introspection for tests and diagnostics; the run
     * must have evaluated it, i.e. not failed on an earlier axiom).
     */
    Value valueOf(const std::string &name) const;

  private:
    bool checkImpl(const ExecView &view, bool reuse_stable);
    Value evalExpr(const Expr &e, const ExecView &view) const;
    /** evalExpr() with a polymorphic-0 subtree coerced to a set. */
    Value evalSet(const Expr &e, const ExecView &view) const;

    const CatModel &model;
    std::vector<Value> slots;
    const ExecView *lastView = nullptr;
    std::optional<uint64_t> lastEpoch;
    std::string _failedAxiom;
};

} // namespace gam::cat

#endif // GAM_CAT_EVAL_HH
