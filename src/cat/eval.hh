/**
 * @file
 * Evaluating a parsed cat model over one candidate execution.
 *
 * The evaluator walks the model's statements in order: `let` bindings
 * evaluate into pre-assigned slots, `let rec` groups iterate from the
 * empty relation to their least fixpoint (the static checker only
 * admits monotone recursion, so at most |E|^2 + 1 rounds converge),
 * and each axiom tests its relation.  The first failing axiom rejects
 * the candidate.
 *
 * Models that pass parseCat()'s static checks cannot fail here; the
 * evaluator asserts rather than diagnoses.
 */

#ifndef GAM_CAT_EVAL_HH
#define GAM_CAT_EVAL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cat/exec.hh"
#include "cat/parser.hh"
#include "cat/rel.hh"

namespace gam::cat
{

/** A DSL value: a set or a relation over the execution's events. */
struct Value
{
    Type type = Type::Rel;
    EventSet set;
    Rel rel;
};

/**
 * Constant-fold table for evalCatExpr(): maps a subtree (by node
 * identity -- the model AST is shared and immutable, so pointers are
 * stable) to the slot holding its precomputed value.  The model
 * compiler (cat/compile.hh) points co/fr-Independent subtrees at
 * constants evaluated once per rf epoch instead of once per candidate.
 */
using FoldMap = std::unordered_map<const Expr *, int>;

/**
 * Evaluate @p e over @p view with let-binding values in @p slots
 * (indexed by Expr::slot; a compiler may append extra fold slots past
 * the model's own).  When @p folds is non-null, any subtree it maps is
 * read from its slot instead of being recomputed -- the lookup happens
 * before structural dispatch, so a hit short-circuits the whole
 * subtree.  The single evaluation core shared by the interpreting
 * Evaluator and the compiled plans.
 */
Value evalCatExpr(const Expr &e, const ExecView &view,
                  const std::vector<Value> &slots,
                  const FoldMap *folds = nullptr);

/** evalCatExpr() with a polymorphic-0 subtree coerced to a set. */
Value evalCatSet(const Expr &e, const ExecView &view,
                 const std::vector<Value> &slots,
                 const FoldMap *folds = nullptr);

/** Evaluates one model over candidate executions. */
class Evaluator
{
  public:
    /** @p model must outlive the evaluator. */
    explicit Evaluator(const CatModel &model);

    /**
     * Do all axioms of the model hold for @p view?  On failure
     * failedAxiom() names the first violated axiom.
     *
     * @p rfEpoch enables incremental evaluation over a candidate
     * stream: definitions that do not (transitively) mention co or fr
     * are constant across the coherence permutations of one read-from
     * candidate (CandidateExecution::rfEpoch), so they are re-derived
     * only when the epoch changes.  The overload without an epoch
     * always evaluates everything.
     */
    bool check(const ExecView &view, uint64_t rfEpoch);
    bool check(const ExecView &view);

    /**
     * Monotone partial check for the incremental enumerator: can a
     * completion of this *partial* candidate (its co and fr are
     * monotone underapproximations, everything else exact) still pass
     * every axiom?  Tests only axioms whose checked expression is
     * Independent or Monotone in co/fr (Stmt::checkPolarity): for
     * those, a failure on the partial view implies failure on every
     * completion, so returning false soundly prunes the subtree.
     * NonMonotone axioms are skipped here and decided by the full
     * check() at complete candidates -- the conservative fallback.
     *
     * Shares the per-rf-epoch definition cache with check(); callers
     * interleave the two freely within one epoch.
     */
    bool checkPartial(const ExecView &view, uint64_t rfEpoch);

    /**
     * Does the model have any axiom a partial check can decide?  When
     * false, checkPartial() is vacuously true and incremental callers
     * should skip straight to leaf evaluation.
     */
    bool partialCapable() const;

    /** The axiom the last check() run violated ("" when it passed). */
    const std::string &failedAxiom() const { return _failedAxiom; }

    /**
     * The value a definition or builtin evaluated to in the last
     * check() run (introspection for tests and diagnostics; the run
     * must have evaluated it, i.e. not failed on an earlier axiom).
     */
    Value valueOf(const std::string &name) const;

  private:
    bool checkImpl(const ExecView &view, bool reuse_stable,
                   bool partial_only);
    /** Thin wrapper over the shared evalCatExpr() core. */
    Value evalExpr(const Expr &e, const ExecView &view) const;

    const CatModel &model;
    std::vector<Value> slots;
    const ExecView *lastView = nullptr;
    std::optional<uint64_t> lastEpoch;
    /**
     * Every co/fr-Independent axiom passed for the current epoch: its
     * verdict cannot change across the epoch's candidates, so later
     * checks of the same epoch skip it.
     */
    bool stableAxiomsOk = false;
    std::string _failedAxiom;
};

} // namespace gam::cat

#endif // GAM_CAT_EVAL_HH
