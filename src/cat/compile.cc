#include "cat/compile.hh"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "base/logging.hh"
#include "cat/exec.hh"
#include "cat/rel.hh"

namespace gam::cat
{

using axiomatic::CandidateExecution;

// ----------------------------------------------------- pretty printer

namespace
{

bool
isBinary(const Expr &e)
{
    switch (e.kind) {
      case Expr::Kind::Union:
      case Expr::Kind::Seq:
      case Expr::Kind::Inter:
      case Expr::Kind::Diff:
      case Expr::Kind::Product:
        return true;
      default:
        return false;
    }
}

/** Render @p e, parenthesized when nested under @p parent's kind. */
std::string
renderExpr(const Expr &e, const Expr *parent)
{
    const auto paren = [&](const std::string &s) {
        if (parent != nullptr && isBinary(e) && parent->kind != e.kind)
            return "(" + s + ")";
        return s;
    };
    switch (e.kind) {
      case Expr::Kind::Name:
        return e.name;
      case Expr::Kind::EmptyRel:
        return "0";
      case Expr::Kind::Union:
        return paren(renderExpr(*e.a, &e) + " | " + renderExpr(*e.b, &e));
      case Expr::Kind::Seq:
        return paren(renderExpr(*e.a, &e) + "; " + renderExpr(*e.b, &e));
      case Expr::Kind::Inter:
        return paren(renderExpr(*e.a, &e) + " & " + renderExpr(*e.b, &e));
      case Expr::Kind::Diff:
        return paren(renderExpr(*e.a, &e) + " \\ " + renderExpr(*e.b, &e));
      case Expr::Kind::Product:
        return paren(renderExpr(*e.a, &e) + " * " + renderExpr(*e.b, &e));
      case Expr::Kind::Compl:
        return "~" + renderExpr(*e.a, &e);
      case Expr::Kind::Plus:
        return renderExpr(*e.a, &e) + "+";
      case Expr::Kind::Star:
        return renderExpr(*e.a, &e) + "*";
      case Expr::Kind::Inverse:
        return renderExpr(*e.a, &e) + "^-1";
      case Expr::Kind::Diag:
        return "[" + renderExpr(*e.a, nullptr) + "]";
    }
    panic("cat compile: bad expression kind");
}

const char *
polarityName(Polarity p)
{
    switch (p) {
      case Polarity::Independent: return "independent";
      case Polarity::Monotone: return "monotone";
      case Polarity::NonMonotone: return "non-monotone";
    }
    panic("cat compile: bad polarity");
}

} // anonymous namespace

std::string
exprToString(const Expr &e)
{
    // A unary operand that is itself binary still needs parentheses;
    // renderExpr handles that via the parent pointer, so the top level
    // passes none.
    return renderExpr(e, nullptr);
}

// ------------------------------------------------------- compilation

namespace
{

/** Builds one CompiledPlan; all state dies with the builder. */
struct PlanBuilder
{
    const CatModel &model;
    CompiledPlan plan;
    std::vector<const Binding *> bindingOfSlot;
    /** Does the slot belong to a real recursive SCC? */
    std::vector<bool> slotFixpoint;

    explicit PlanBuilder(const CatModel &m) : model(m)
    {
        plan.model = &m;
        bindingOfSlot.assign(size_t(m.slotCount), nullptr);
        slotFixpoint.assign(size_t(m.slotCount), false);
        for (const Stmt &stmt : m.statements)
            for (const Binding &b : stmt.bindings)
                bindingOfSlot[size_t(b.slot)] = &b;
    }

    void
    run()
    {
        computeLiveness();
        stratify();
        classifyAxioms();
        collectFolds();
        plan.totalSlots =
            model.slotCount + int(plan.foldExprs.size());
        plan.fullyIncremental = std::all_of(
            plan.axioms.begin(), plan.axioms.end(),
            [](const CompiledAxiom &ax) {
                return ax.pass == CompiledAxiom::Pass::Stable
                    || ax.pass == CompiledAxiom::Pass::FusedAcyclic
                    || ax.pass == CompiledAxiom::Pass::EdgeGuard;
            });
    }

    // ---- liveness: slots an axiom transitively references ----

    void
    markLive(const Expr &e)
    {
        if (e.kind == Expr::Kind::Name && e.slot >= 0
            && !plan.slotLive[size_t(e.slot)]) {
            plan.slotLive[size_t(e.slot)] = true;
            markLive(*bindingOfSlot[size_t(e.slot)]->body);
            // A recursive group is evaluated as a whole: one live
            // member drags its SCC (refined later) -- conservatively,
            // its statement group -- in.
            for (const Stmt &stmt : model.statements) {
                if (stmt.kind != Stmt::Kind::LetRec)
                    continue;
                const bool hit = std::any_of(
                    stmt.bindings.begin(), stmt.bindings.end(),
                    [&](const Binding &b) { return b.slot == e.slot; });
                if (!hit)
                    continue;
                for (const Binding &b : stmt.bindings)
                    if (!plan.slotLive[size_t(b.slot)]) {
                        plan.slotLive[size_t(b.slot)] = true;
                        markLive(*b.body);
                    }
            }
        }
        if (e.a)
            markLive(*e.a);
        if (e.b)
            markLive(*e.b);
    }

    void
    computeLiveness()
    {
        plan.slotLive.assign(size_t(model.slotCount), false);
        for (const Stmt &stmt : model.statements)
            if (stmt.check)
                markLive(*stmt.check);
    }

    // ---- stratification + SCC-refined polarity ----

    /** Tarjan SCC over one `let rec` group; SCCs in dependency order. */
    std::vector<std::vector<const Binding *>>
    groupSccs(const std::vector<Binding> &group)
    {
        const size_t m = group.size();
        std::map<int, size_t> memberOfSlot;
        for (size_t i = 0; i < m; ++i)
            memberOfSlot[group[i].slot] = i;

        std::vector<std::vector<size_t>> adj(m);
        for (size_t i = 0; i < m; ++i) {
            std::vector<int> refs;
            collectSlots(*group[i].body, refs);
            for (int s : refs)
                if (auto it = memberOfSlot.find(s);
                    it != memberOfSlot.end())
                    adj[i].push_back(it->second);
        }

        std::vector<int> index(m, -1), low(m, 0);
        std::vector<bool> onStack(m, false);
        std::vector<size_t> stack;
        int next = 0;
        std::vector<std::vector<const Binding *>> sccs;

        // Tarjan pops each SCC only after all SCCs it depends on, so
        // the emission order is the evaluation order.
        auto strongconnect = [&](auto &&self, size_t u) -> void {
            index[u] = low[u] = next++;
            stack.push_back(u);
            onStack[u] = true;
            for (size_t w : adj[u]) {
                if (index[w] < 0) {
                    self(self, w);
                    low[u] = std::min(low[u], low[w]);
                } else if (onStack[w]) {
                    low[u] = std::min(low[u], index[w]);
                }
            }
            if (low[u] == index[u]) {
                std::vector<const Binding *> scc;
                size_t w;
                do {
                    w = stack.back();
                    stack.pop_back();
                    onStack[w] = false;
                    scc.push_back(&group[w]);
                } while (w != u);
                // Definition order within the SCC (stable iteration).
                std::sort(scc.begin(), scc.end(),
                          [](const Binding *a, const Binding *b) {
                              return a->slot < b->slot;
                          });
                sccs.push_back(std::move(scc));
            }
        };
        for (size_t u = 0; u < m; ++u)
            if (index[u] < 0)
                strongconnect(strongconnect, u);
        return sccs;
    }

    static void
    collectSlots(const Expr &e, std::vector<int> &out)
    {
        if (e.kind == Expr::Kind::Name && e.slot >= 0)
            out.push_back(e.slot);
        if (e.a)
            collectSlots(*e.a, out);
        if (e.b)
            collectSlots(*e.b, out);
    }

    static bool
    referencesSlot(const Expr &e, int slot)
    {
        if (e.kind == Expr::Kind::Name && e.slot == slot)
            return true;
        return (e.a && referencesSlot(*e.a, slot))
            || (e.b && referencesSlot(*e.b, slot));
    }

    void
    addStratum(std::vector<const Binding *> bindings, bool fixpoint)
    {
        // Polarity first (dead bindings too: cheap, and keeps every
        // slot lookup well-defined), stratum only when live.
        if (!fixpoint) {
            for (const Binding *b : bindings)
                plan.slotPolarity[size_t(b->slot)] =
                    exprPolarity(*b->body, plan.slotPolarity);
        } else {
            // Members start Independent; exprPolarity is monotone in
            // the slot polarities, so iterating to a fixpoint refines
            // the parser's group-coarse taint to this SCC only.
            bool changed = true;
            while (changed) {
                changed = false;
                for (const Binding *b : bindings) {
                    const Polarity p =
                        exprPolarity(*b->body, plan.slotPolarity);
                    if (p > plan.slotPolarity[size_t(b->slot)]) {
                        plan.slotPolarity[size_t(b->slot)] = p;
                        changed = true;
                    }
                }
            }
        }
        for (const Binding *b : bindings)
            slotFixpoint[size_t(b->slot)] = fixpoint;

        const bool live = std::any_of(
            bindings.begin(), bindings.end(),
            [&](const Binding *b) {
                return plan.slotLive[size_t(b->slot)];
            });
        if (!live)
            return;
        Stratum s;
        s.bindings = std::move(bindings);
        s.fixpoint = fixpoint;
        s.polarity = Polarity::Independent;
        for (const Binding *b : s.bindings)
            s.polarity = std::max(
                s.polarity, plan.slotPolarity[size_t(b->slot)]);
        plan.strata.push_back(std::move(s));
    }

    void
    stratify()
    {
        plan.slotPolarity.assign(size_t(model.slotCount),
                                 Polarity::Independent);
        for (const Stmt &stmt : model.statements) {
            switch (stmt.kind) {
              case Stmt::Kind::Let:
                for (const Binding &b : stmt.bindings)
                    addStratum({&b}, /*fixpoint=*/false);
                break;
              case Stmt::Kind::LetRec:
                for (auto &scc : groupSccs(stmt.bindings)) {
                    const bool fixpoint = scc.size() > 1
                        || referencesSlot(*scc.front()->body,
                                          scc.front()->slot);
                    addStratum(std::move(scc), fixpoint);
                }
                break;
              default:
                break;
            }
        }
    }

    // ---- axiom classification ----

    /** The builtin @p e denotes, following non-recursive aliases. */
    std::optional<Builtin>
    bareBuiltin(const Expr &e) const
    {
        const Expr *cur = &e;
        for (int depth = 0; depth < 32; ++depth) {
            if (cur->kind != Expr::Kind::Name)
                return std::nullopt;
            if (cur->builtin.has_value())
                return cur->builtin;
            if (cur->slot < 0 || slotFixpoint[size_t(cur->slot)])
                return std::nullopt;
            cur = bindingOfSlot[size_t(cur->slot)]->body.get();
        }
        return std::nullopt;
    }

    /**
     * Resolve @p e through non-recursive let aliases so shape
     * matching sees the defining expression (`let lv = fr; po`
     * followed by `irreflexive lv` still guards).
     */
    const Expr *
    resolveShape(const Expr *e) const
    {
        for (int depth = 0; depth < 32; ++depth) {
            if (e->kind != Expr::Kind::Name || e->slot < 0
                || slotFixpoint[size_t(e->slot)])
                return e;
            e = bindingOfSlot[size_t(e->slot)]->body.get();
        }
        return e;
    }

    /**
     * Flatten @p e's union into parts, inlining co/fr-dependent
     * non-recursive names so a `let com = co | fr` style wrapper
     * still fuses.
     */
    void
    unionParts(const Expr &e, std::vector<const Expr *> &out) const
    {
        if (e.kind == Expr::Kind::Union) {
            unionParts(*e.a, out);
            unionParts(*e.b, out);
            return;
        }
        if (e.kind == Expr::Kind::Name && e.slot >= 0
            && plan.slotPolarity[size_t(e.slot)]
                   != Polarity::Independent
            && !slotFixpoint[size_t(e.slot)]) {
            unionParts(*bindingOfSlot[size_t(e.slot)]->body, out);
            return;
        }
        out.push_back(&e);
    }

    std::optional<CompiledAxiom::Operand>
    classifyOperand(const Expr &e) const
    {
        using Operand = CompiledAxiom::Operand;
        if (exprPolarity(e, plan.slotPolarity) == Polarity::Independent)
            return Operand{Operand::Kind::Const, &e};
        if (const auto b = bareBuiltin(e)) {
            if (*b == Builtin::Co)
                return Operand{Operand::Kind::Co, nullptr};
            if (*b == Builtin::Fr)
                return Operand{Operand::Kind::Fr, nullptr};
        }
        return std::nullopt;
    }

    CompiledAxiom
    classifyAxiom(const Stmt &stmt)
    {
        CompiledAxiom ax;
        ax.stmt = &stmt;
        ax.polarity = exprPolarity(*stmt.check, plan.slotPolarity);

        if (ax.polarity == Polarity::Independent) {
            ax.pass = CompiledAxiom::Pass::Stable;
            return ax;
        }

        const Expr *shape = resolveShape(stmt.check.get());

        if (stmt.kind == Stmt::Kind::Acyclic
            && ax.polarity == Polarity::Monotone) {
            std::vector<const Expr *> parts;
            unionParts(*shape, parts);
            bool fusible = true;
            for (const Expr *part : parts) {
                if (exprPolarity(*part, plan.slotPolarity)
                    == Polarity::Independent) {
                    ax.constParts.push_back(part);
                } else if (bareBuiltin(*part) == Builtin::Co) {
                    ax.usesCo = true;
                } else if (bareBuiltin(*part) == Builtin::Fr) {
                    ax.usesFr = true;
                } else {
                    fusible = false;
                    break;
                }
            }
            if (fusible) {
                ax.pass = CompiledAxiom::Pass::FusedAcyclic;
                return ax;
            }
            ax.constParts.clear();
            ax.usesCo = ax.usesFr = false;
        }

        // irreflexive (A; B) <=> empty (A & B^-1): the O(n^3)
        // composition becomes a per-edge O(1) transposed lookup.
        if (stmt.kind == Stmt::Kind::Irreflexive
            && shape->kind == Expr::Kind::Seq) {
            const auto x = classifyOperand(*shape->a);
            const auto y = classifyOperand(*shape->b);
            if (x && y) {
                ax.pass = CompiledAxiom::Pass::EdgeGuard;
                ax.guardX = *x;
                ax.guardY = *y;
                ax.guardYTransposed = true;
                return ax;
            }
        }
        if (stmt.kind == Stmt::Kind::Empty
            && shape->kind == Expr::Kind::Inter
            && shape->type == Type::Rel) {
            const Expr *b = shape->b.get();
            bool transposed = false;
            if (b->kind == Expr::Kind::Inverse) {
                b = b->a.get();
                transposed = true;
            }
            const auto x = classifyOperand(*shape->a);
            const auto y = classifyOperand(*b);
            if (x && y) {
                ax.pass = CompiledAxiom::Pass::EdgeGuard;
                ax.guardX = *x;
                ax.guardY = *y;
                ax.guardYTransposed = transposed;
                return ax;
            }
        }

        ax.pass = ax.polarity == Polarity::Monotone
            ? CompiledAxiom::Pass::Partial
            : CompiledAxiom::Pass::Residual;
        return ax;
    }

    void
    classifyAxioms()
    {
        for (const Stmt &stmt : model.statements)
            if (stmt.check)
                plan.axioms.push_back(classifyAxiom(stmt));
    }

    // ---- constant folding ----

    void
    foldWalk(const Expr &e)
    {
        if (exprPolarity(e, plan.slotPolarity)
            == Polarity::Independent) {
            // Maximal Independent subtree: fold it unless it is a
            // bare name or 0 (already a slot lookup / free).
            if (e.kind != Expr::Kind::Name
                && e.kind != Expr::Kind::EmptyRel
                && plan.folds.find(&e) == plan.folds.end()) {
                plan.folds.emplace(
                    &e, model.slotCount + int(plan.foldExprs.size()));
                plan.foldExprs.push_back(&e);
            }
            return;
        }
        if (e.a)
            foldWalk(*e.a);
        if (e.b)
            foldWalk(*e.b);
    }

    void
    collectFolds()
    {
        // Fold inside everything re-evaluated per candidate: co/fr-
        // dependent live definitions, and axioms the filter evaluates
        // through evalCatExpr() at push/accept time.  Fused and
        // guarded axioms evaluate their constant parts once per epoch
        // already, so folding them would only add storage.
        for (const Stratum &s : plan.strata) {
            if (s.polarity == Polarity::Independent)
                continue;
            for (const Binding *b : s.bindings)
                foldWalk(*b->body);
        }
        for (const CompiledAxiom &ax : plan.axioms)
            if (ax.pass == CompiledAxiom::Pass::Partial
                || ax.pass == CompiledAxiom::Pass::Residual)
                foldWalk(*ax.stmt->check);
    }
};

} // anonymous namespace

std::shared_ptr<const CompiledPlan>
compileCatModel(const CatModel &model)
{
    auto builder = std::make_shared<PlanBuilder>(model);
    builder->run();
    // Alias the plan into the builder's lifetime (the plan only
    // borrows from the model, but this keeps the copy trivial).
    return std::shared_ptr<const CompiledPlan>(builder,
                                               &builder->plan);
}

// ------------------------------------------------------ plan dumping

std::string
CompiledPlan::describe() const
{
    std::ostringstream out;
    size_t live = 0;
    for (const bool l : slotLive)
        live += l ? 1 : 0;
    out << "plan for model \"" << model->name << "\": "
        << model->slotCount << " definition"
        << (model->slotCount == 1 ? "" : "s") << " (" << live
        << " live), " << axioms.size() << " axiom"
        << (axioms.size() == 1 ? "" : "s") << "\n";

    out << "strata (dependency evaluation order):\n";
    if (strata.empty())
        out << "  (none)\n";
    for (size_t i = 0; i < strata.size(); ++i) {
        const Stratum &s = strata[i];
        out << "  [" << i << "]";
        for (const Binding *b : s.bindings)
            out << " " << b->name;
        out << "  " << (s.fixpoint ? "fixpoint" : "direct") << ", "
            << polarityName(s.polarity) << "\n";
    }

    out << "constants (evaluated once per rf epoch):\n";
    bool anyConst = false;
    for (size_t i = 0; i < foldExprs.size(); ++i) {
        out << "  fold slot " << (model->slotCount + int(i)) << ": "
            << exprToString(*foldExprs[i]) << "\n";
        anyConst = true;
    }
    const auto operandStr = [](const CompiledAxiom::Operand &op) {
        switch (op.kind) {
          case CompiledAxiom::Operand::Kind::Const:
            return exprToString(*op.expr);
          case CompiledAxiom::Operand::Kind::Co:
            return std::string("co");
          case CompiledAxiom::Operand::Kind::Fr:
            return std::string("fr");
        }
        panic("cat compile: bad operand kind");
    };
    for (const CompiledAxiom &ax : axioms) {
        if (ax.pass == CompiledAxiom::Pass::FusedAcyclic) {
            for (const Expr *part : ax.constParts) {
                out << "  axiom " << ax.stmt->axiomName
                    << " const part: " << exprToString(*part) << "\n";
                anyConst = true;
            }
        } else if (ax.pass == CompiledAxiom::Pass::EdgeGuard) {
            for (const auto *op : {&ax.guardX, &ax.guardY})
                if (op->kind == CompiledAxiom::Operand::Kind::Const) {
                    out << "  axiom " << ax.stmt->axiomName
                        << " guard operand: " << operandStr(*op)
                        << "\n";
                    anyConst = true;
                }
        }
    }
    if (!anyConst)
        out << "  (none)\n";

    out << "axiom passes:\n";
    for (const CompiledAxiom &ax : axioms) {
        out << "  " << ax.stmt->axiomName << ": "
            << polarityName(ax.polarity) << ", ";
        switch (ax.pass) {
          case CompiledAxiom::Pass::Stable:
            out << "stable (decided once per rf epoch)";
            break;
          case CompiledAxiom::Pass::FusedAcyclic:
            out << "fused-acyclic (incrementally closed reachability: "
                << ax.constParts.size() << " const part"
                << (ax.constParts.size() == 1 ? "" : "s")
                << (ax.usesCo ? " + co" : "")
                << (ax.usesFr ? " + fr" : "") << ")";
            break;
          case CompiledAxiom::Pass::EdgeGuard:
            out << "edge-guard (empty(" << operandStr(ax.guardX)
                << " & " << operandStr(ax.guardY)
                << (ax.guardYTransposed ? "^-1" : "") << "))";
            break;
          case CompiledAxiom::Pass::Partial:
            out << "partial (monotone evaluation on partial views)";
            break;
          case CompiledAxiom::Pass::Residual:
            out << "residual (complete candidates only)";
            break;
        }
        out << "\n";
    }

    out << "filter: "
        << (fullyIncremental
                ? "fully incremental (pure bitset maintenance after "
                  "beginRf; accept is O(1))"
                : "hybrid (falls back to expression evaluation on "
                  "views)")
        << "\n";
    return out.str();
}

// --------------------------------------------------- compiled filter

namespace
{

Value
relValueOf(Rel r)
{
    Value v;
    v.type = Type::Rel;
    v.rel = std::move(r);
    return v;
}

const Rel &
relOf(const Value &v)
{
    GAM_ASSERT(v.type == Type::Rel,
               "cat compile: expected a relation");
    return v.rel;
}

/**
 * The generated filter: fixed relation slots, per-epoch constants,
 * incrementally-closed fused axioms and per-edge guards.  One
 * instance per search worker; the plan is shared and immutable.
 */
class CompiledFilter final : public axiomatic::IncrementalFilter
{
    using Pass = CompiledAxiom::Pass;
    using OpKind = CompiledAxiom::Operand::Kind;

  public:
    explicit CompiledFilter(std::shared_ptr<const CompiledPlan> p)
        : plan(std::move(p)), slots(size_t(plan->totalSlots)),
          axState(plan->axioms.size())
    {
        for (const CompiledAxiom &ax : plan->axioms) {
            if (ax.pass == Pass::EdgeGuard) {
                for (const auto *op : {&ax.guardX, &ax.guardY}) {
                    needCoRel |= op->kind == OpKind::Co;
                    needFrRel |= op->kind == OpKind::Fr;
                }
            }
            anyPartial |= ax.pass == Pass::Partial;
            anyResidual |= ax.pass == Pass::Residual;
        }
    }

    bool
    beginRf(const CandidateExecution &cand) override
    {
        const ExecView &view = builder.view(cand);
        n = view.n;

        // Relation slots: live definitions in stratified order, then
        // the folded constants (all of them epoch-level values; the
        // co/fr-dependent strata get re-derived per view on the
        // fallback paths).
        evalStrata(view, /*withFolds=*/false,
                   /*coDependentOnly=*/false);
        for (size_t k = 0; k < plan->foldExprs.size(); ++k)
            slots[size_t(plan->model->slotCount) + k] = evalCatExpr(
                *plan->foldExprs[k], view, slots, nullptr);

        // Candidate-to-view event translation and per-address tables.
        viewOfCand.assign(cand.events.size(), -1);
        std::map<model::StoreId, int> candOfSid;
        loadsByAddr.clear();
        storesByAddr.clear();
        for (size_t c = 0; c < cand.events.size(); ++c) {
            viewOfCand[c] = builder.viewEventOfCand(c);
            if (cand.events[c].isStore)
                candOfSid[cand.events[c].sid] = int(c);
        }
        for (size_t c = 0; c < cand.events.size(); ++c) {
            const auto &ev = cand.events[c];
            if (ev.isStore)
                storesByAddr[ev.addr].push_back(viewOfCand[c]);
            if (ev.isLoad) {
                const int src = ev.rf == model::InitStore
                    ? -1 : candOfSid.at(ev.rf);
                loadsByAddr[ev.addr].push_back(
                    {viewOfCand[c], src});
            }
        }

        if (needCoRel) {
            coRel = Rel(n);
            coAdded.clear();
        }
        if (needFrRel) {
            frRel = Rel(n);
            frAdded.clear();
        }
        frames.clear();

        for (size_t i = 0; i < plan->axioms.size(); ++i) {
            const CompiledAxiom &ax = plan->axioms[i];
            AxiomState &st = axState[i];
            switch (ax.pass) {
              case Pass::Stable:
                // Independent: one verdict for the whole epoch.
                if (!testAxiom(ax, view))
                    return false;
                break;
              case Pass::FusedAcyclic: {
                Rel c(n);
                for (const Expr *part : ax.constParts)
                    c = c | relOf(evalCatExpr(*part, view, slots,
                                              &plan->folds));
                st.reach = c.transitiveClosure();
                if (!st.reach.irreflexive())
                    return false;
                st.snapshots.clear();
                break;
              }
              case Pass::EdgeGuard:
                if (ax.guardX.kind == OpKind::Const)
                    st.constX = relOf(evalCatExpr(
                        *ax.guardX.expr, view, slots, &plan->folds));
                if (ax.guardY.kind == OpKind::Const)
                    st.constY = relOf(evalCatExpr(
                        *ax.guardY.expr, view, slots, &plan->folds));
                break;
              default:
                break;
            }
        }

        // Epoch-constant fr edges: a load reading the initial memory
        // precedes every same-address store in *every* completion
        // (the store set per address is fixed, only its order varies),
        // so these edges are installed -- and checked -- up front.
        for (const auto &[addr, loads] : loadsByAddr) {
            const auto sit = storesByAddr.find(addr);
            if (sit == storesByAddr.end())
                continue;
            for (const LoadInfo &li : loads) {
                if (li.srcCand >= 0)
                    continue;
                for (const int s : sit->second) {
                    if (s == li.viewIdx)
                        continue; // an RMW never fr-precedes itself
                    if (!addFrEdge(size_t(li.viewIdx), size_t(s)))
                        return false;
                }
            }
        }
        return true;
    }

    bool
    pushStore(const CandidateExecution &cand, isa::Addr addr,
              int eventIdx) override
    {
        // Open the frame before any mutation: popStore() arrives even
        // when this push fails, and restores wholesale.
        for (size_t i = 0; i < plan->axioms.size(); ++i)
            if (plan->axioms[i].pass == Pass::FusedAcyclic)
                axState[i].snapshots.push_back(axState[i].reach);
        frames.push_back({coAdded.size(), frAdded.size()});
        return pushStoreImpl(cand, addr, eventIdx);
    }

    void
    popStore(const CandidateExecution &, isa::Addr, int) override
    {
        for (size_t i = 0; i < plan->axioms.size(); ++i) {
            if (plan->axioms[i].pass != Pass::FusedAcyclic)
                continue;
            axState[i].reach = std::move(axState[i].snapshots.back());
            axState[i].snapshots.pop_back();
        }
        const Frame f = frames.back();
        frames.pop_back();
        while (coAdded.size() > f.coMark) {
            coRel.set(coAdded.back().first, coAdded.back().second,
                      false);
            coAdded.pop_back();
        }
        while (frAdded.size() > f.frMark) {
            frRel.set(frAdded.back().first, frAdded.back().second,
                      false);
            frAdded.pop_back();
        }
    }

    bool
    accept(const CandidateExecution &cand) override
    {
        // Stable axioms were decided at beginRf(); fused and guarded
        // axioms checked every edge as it appeared, so a surviving
        // complete candidate already satisfies them exactly.
        if (plan->fullyIncremental)
            return true;
        const ExecView &view = builder.view(cand);
        evalStrata(view, /*withFolds=*/true, /*coDependentOnly=*/true);
        for (const CompiledAxiom &ax : plan->axioms)
            if ((ax.pass == Pass::Partial
                 || ax.pass == Pass::Residual)
                && !testAxiom(ax, view))
                return false;
        return true;
    }

  private:
    struct AxiomState
    {
        Rel reach;                  ///< FusedAcyclic: closed union
        std::vector<Rel> snapshots; ///< one per open push frame
        Rel constX, constY;         ///< EdgeGuard constant operands
    };

    struct LoadInfo
    {
        int viewIdx;
        int srcCand; ///< candidate index of the rf source; -1 = init
    };

    struct Frame
    {
        size_t coMark, frMark;
    };

    bool
    pushStoreImpl(const CandidateExecution &cand, isa::Addr addr,
                  int eventIdx)
    {
        const auto &p = cand.coOrder.at(addr);
        const size_t vv = size_t(viewOfCand[size_t(eventIdx)]);

        // The coherence adjacency edge closes the whole new-pair set
        // for the reachability relations; the guards' materialized co
        // needs every pair.
        if (p.size() >= 2) {
            const size_t prev =
                size_t(viewOfCand[size_t(p[p.size() - 2])]);
            for (size_t i = 0; i < plan->axioms.size(); ++i) {
                const CompiledAxiom &ax = plan->axioms[i];
                if (ax.pass == Pass::FusedAcyclic && ax.usesCo
                    && !addEdge(axState[i].reach, prev, vv))
                    return false;
            }
        }
        if (needCoRel) {
            for (size_t i = 0; i + 1 < p.size(); ++i) {
                const size_t u = size_t(viewOfCand[size_t(p[i])]);
                if (!guardsPass(OpKind::Co, u, vv))
                    return false;
                coRel.set(u, vv);
                coAdded.emplace_back(u, vv);
            }
        }

        // New from-read edges: loads of this address whose source is
        // already placed strictly before the new store.
        if (const auto lit = loadsByAddr.find(addr);
            lit != loadsByAddr.end()) {
            for (const LoadInfo &li : lit->second) {
                if (li.srcCand < 0 || li.srcCand == eventIdx
                    || size_t(li.viewIdx) == vv)
                    continue;
                const bool placed =
                    std::find(p.begin(), p.end() - 1, li.srcCand)
                    != p.end() - 1;
                if (!placed)
                    continue;
                if (!addFrEdge(size_t(li.viewIdx), vv))
                    return false;
            }
        }

        // Monotone fallback axioms: a failure on the partial view can
        // never un-fail as co and fr grow.
        if (anyPartial) {
            const ExecView &view = builder.view(cand);
            evalStrata(view, /*withFolds=*/true,
                       /*coDependentOnly=*/true);
            for (const CompiledAxiom &ax : plan->axioms)
                if (ax.pass == Pass::Partial && !testAxiom(ax, view))
                    return false;
        }
        return true;
    }

    /**
     * u -> v into the closed reachability @p reach; false when it
     * closes a cycle.  Identical to the hand-written filter's edge
     * insertion (checker.cc): OR the successor row into every
     * predecessor of u.
     */
    bool
    addEdge(Rel &reach, size_t u, size_t v) const
    {
        if (u == v || reach.test(v, u))
            return false;
        if (reach.test(u, v))
            return true; // already implied
        for (size_t x = 0; x < n; ++x) {
            if (x != u && !reach.test(x, u))
                continue;
            reach.orRowInto(v, x);
            reach.set(x, v);
        }
        return true;
    }

    bool
    addFrEdge(size_t l, size_t s)
    {
        for (size_t i = 0; i < plan->axioms.size(); ++i) {
            const CompiledAxiom &ax = plan->axioms[i];
            if (ax.pass == Pass::FusedAcyclic && ax.usesFr
                && !addEdge(axState[i].reach, l, s))
                return false;
        }
        if (needFrRel) {
            if (!guardsPass(OpKind::Fr, l, s))
                return false;
            frRel.set(l, s);
            frAdded.emplace_back(l, s);
        }
        return true;
    }

    bool
    testOperand(const CompiledAxiom::Operand &op, const Rel &constRel,
                size_t a, size_t b) const
    {
        switch (op.kind) {
          case OpKind::Const: return constRel.test(a, b);
          case OpKind::Co: return coRel.test(a, b);
          case OpKind::Fr: return frRel.test(a, b);
        }
        panic("cat compile: bad operand kind");
    }

    /**
     * May edge (u, v) join relation @p rel?  A guard empty(X & Y^-1)
     * fails iff some pair sits in X with its transpose in Y; checking
     * each new edge against the other operand as it lands is exact
     * because both sides only grow.
     */
    bool
    guardsPass(OpKind rel, size_t u, size_t v) const
    {
        for (size_t i = 0; i < plan->axioms.size(); ++i) {
            const CompiledAxiom &ax = plan->axioms[i];
            if (ax.pass != Pass::EdgeGuard)
                continue;
            const AxiomState &st = axState[i];
            if (ax.guardX.kind == rel) {
                // New X(u, v): violated when Y(v, u) (transposed
                // guard) resp. Y(u, v).
                const bool hit = ax.guardYTransposed
                    ? testOperand(ax.guardY, st.constY, v, u)
                    : testOperand(ax.guardY, st.constY, u, v);
                if (hit)
                    return false;
            }
            if (ax.guardY.kind == rel) {
                const bool hit = ax.guardYTransposed
                    ? testOperand(ax.guardX, st.constX, v, u)
                    : testOperand(ax.guardX, st.constX, u, v);
                if (hit)
                    return false;
            }
        }
        return true;
    }

    bool
    testAxiom(const CompiledAxiom &ax, const ExecView &view)
    {
        const Value v =
            evalCatExpr(*ax.stmt->check, view, slots, &plan->folds);
        switch (ax.stmt->kind) {
          case Stmt::Kind::Acyclic:
            return relOf(v).acyclic();
          case Stmt::Kind::Irreflexive:
            return relOf(v).irreflexive();
          case Stmt::Kind::Empty:
            return v.type == Type::Set ? v.set.empty()
                                       : v.rel.empty();
          default:
            panic("cat compile: statement is not an axiom");
        }
    }

    void
    evalStrata(const ExecView &view, bool withFolds,
               bool coDependentOnly)
    {
        const FoldMap *f = withFolds ? &plan->folds : nullptr;
        for (const Stratum &s : plan->strata) {
            if (coDependentOnly
                && s.polarity == Polarity::Independent)
                continue;
            if (!s.fixpoint) {
                for (const Binding *b : s.bindings)
                    slots[size_t(b->slot)] =
                        evalCatExpr(*b->body, view, slots, f);
                continue;
            }
            // Least fixpoint confined to this SCC (the static checker
            // enforces monotone recursion, so it converges).
            for (const Binding *b : s.bindings)
                slots[size_t(b->slot)] = relValueOf(Rel(view.n));
            const size_t cap =
                view.n * view.n * s.bindings.size() + 2;
            bool changed = true;
            for (size_t round = 0; changed && round < cap; ++round) {
                changed = false;
                for (const Binding *b : s.bindings) {
                    Value next =
                        evalCatExpr(*b->body, view, slots, f);
                    if (!(relOf(next)
                          == relOf(slots[size_t(b->slot)]))) {
                        slots[size_t(b->slot)] = std::move(next);
                        changed = true;
                    }
                }
            }
            GAM_ASSERT(!changed,
                       "cat compile: let rec did not converge");
        }
    }

    std::shared_ptr<const CompiledPlan> plan;
    ExecBuilder builder;
    std::vector<Value> slots;
    size_t n = 0;

    std::vector<AxiomState> axState;
    bool needCoRel = false;
    bool needFrRel = false;
    bool anyPartial = false;
    bool anyResidual = false;

    std::vector<int> viewOfCand;
    std::map<isa::Addr, std::vector<LoadInfo>> loadsByAddr;
    std::map<isa::Addr, std::vector<int>> storesByAddr;

    Rel coRel, frRel;
    std::vector<std::pair<size_t, size_t>> coAdded, frAdded;
    std::vector<Frame> frames;
};

} // anonymous namespace

std::unique_ptr<axiomatic::IncrementalFilter>
makeCompiledFilter(std::shared_ptr<const CompiledPlan> plan)
{
    return std::make_unique<CompiledFilter>(std::move(plan));
}

} // namespace gam::cat
