/**
 * @file
 * The static model compiler: from a checked cat model to an
 * incremental filter that matches the hand-written axioms.
 *
 * compileCatModel() analyzes a CatModel once and produces an immutable
 * CompiledPlan:
 *
 *  1. *Stratification.*  Live definitions (those an axiom transitively
 *     depends on) are split into dependency SCCs with a topological
 *     evaluation order.  A `let rec` group is refined by Tarjan's
 *     algorithm: members that never actually recurse evaluate directly
 *     (no fixpoint), real cycles iterate a least fixpoint confined to
 *     their own SCC.
 *
 *  2. *Per-node polarity.*  Every subexpression is classified by its
 *     co/fr dependence (exprPolarity() under SCC-refined slot
 *     polarities, sharper than the parser's group-coarse taint): only
 *     co and fr change between the coherence candidates of one
 *     read-from epoch, so anything Independent is a *constant* of the
 *     epoch.
 *
 *  3. *Constant folding.*  Maximal Independent subtrees inside
 *     co/fr-dependent definitions and axioms become fold slots,
 *     evaluated once per rf epoch and shared across every coherence
 *     candidate of the epoch (cat::FoldMap consulted by the shared
 *     evalCatExpr() core).
 *
 *  4. *Axiom fusion.*  Each axiom becomes one of five passes:
 *       Stable        co/fr-Independent: decided once per epoch.
 *       FusedAcyclic  acyclic over (constants | co | fr): maintained
 *                     as one incrementally-closed reachability
 *                     relation via cat::Rel::orRowInto -- the exact
 *                     shape of the hand-written BuiltinAxiomFilter.
 *       EdgeGuard     irreflexive (A; B) rewritten to
 *                     empty (A & B^-1): each new co/fr edge is checked
 *                     against the transposed other operand in O(1).
 *       Partial       Monotone but not fusible: partial evaluation on
 *                     the view (sound pruning), exact at leaves.
 *       Residual      NonMonotone: decided at complete leaves only.
 *
 * makeCompiledFilter() emits the plan as an
 * axiomatic::IncrementalFilter with fixed relation slots.  When every
 * axiom fuses (all shipped models do), the filter never rebuilds an
 * ExecView after beginRf(): pushStore() is pure bitset work and
 * accept() is O(1), which is what closes the interpreter gap to the
 * hand-coded checker.
 *
 * The plan is shared: one compile per model, one filter per search
 * worker (filters own all mutable state, the plan is const).
 * CompiledPlan::describe() renders the whole analysis for
 * `gam-litmus model show --plan`.
 */

#ifndef GAM_CAT_COMPILE_HH
#define GAM_CAT_COMPILE_HH

#include <memory>
#include <string>
#include <vector>

#include "axiomatic/enumerate.hh"
#include "cat/eval.hh"
#include "cat/parser.hh"

namespace gam::cat
{

/** One evaluation step of the stratified definition order. */
struct Stratum
{
    /** The bindings of one dependency SCC, in definition order. */
    std::vector<const Binding *> bindings;
    /**
     * True for a real recursive SCC (least fixpoint from the empty
     * relation); false for a lone non-self-referencing binding, which
     * evaluates in one pass even when declared under `let rec`.
     */
    bool fixpoint = false;
    /** SCC-refined co/fr dependence (max over members). */
    Polarity polarity = Polarity::Independent;
};

/** One axiom lowered to its incremental evaluation strategy. */
struct CompiledAxiom
{
    enum class Pass {
        Stable,       ///< Independent: one verdict per rf epoch
        FusedAcyclic, ///< closed reachability over consts | co | fr
        EdgeGuard,    ///< empty (A & B^-1): per-edge O(1) checks
        Partial,      ///< Monotone fallback: partial eval on views
        Residual,     ///< NonMonotone: complete leaves only
    };

    /** Operand of an EdgeGuard: a per-epoch constant, or bare co/fr. */
    struct Operand
    {
        enum class Kind { Const, Co, Fr };
        Kind kind = Kind::Const;
        const Expr *expr = nullptr; ///< Const only
    };

    const Stmt *stmt = nullptr;
    Pass pass = Pass::Residual;
    /** Refined co/fr dependence of the checked expression. */
    Polarity polarity = Polarity::NonMonotone;

    // FusedAcyclic: the union, partitioned.
    std::vector<const Expr *> constParts;
    bool usesCo = false;
    bool usesFr = false;

    // EdgeGuard: fails iff exists (x, y) with X(x, y) and Y(y, x)
    // (or Y(x, y) when the guard came from a plain intersection).
    Operand guardX, guardY;
    bool guardYTransposed = false;
};

/** The immutable result of compiling one model. */
struct CompiledPlan
{
    const CatModel *model = nullptr;

    /** Live definitions in dependency-topological evaluation order. */
    std::vector<Stratum> strata;
    /** SCC-refined co/fr dependence per binding slot. */
    std::vector<Polarity> slotPolarity;
    /** Is the binding slot (transitively) reachable from an axiom? */
    std::vector<bool> slotLive;

    /**
     * Folded constant subtrees: fold k lives in unified slot
     * model->slotCount + k.  folds maps each subtree to its slot for
     * evalCatExpr().
     */
    std::vector<const Expr *> foldExprs;
    FoldMap folds;
    /** model->slotCount + foldExprs.size(). */
    int totalSlots = 0;

    std::vector<CompiledAxiom> axioms;
    /**
     * Every axiom is Stable, FusedAcyclic or EdgeGuard: after
     * beginRf() the filter never touches an ExecView again --
     * pushStore() is pure bitset maintenance and accept() is O(1).
     */
    bool fullyIncremental = false;

    /**
     * Human-readable plan: strata, polarity classification, constant
     * slots and fused axiom passes (`gam-litmus model show --plan`).
     */
    std::string describe() const;
};

/** Compile @p model (which must outlive the plan). */
std::shared_ptr<const CompiledPlan>
compileCatModel(const CatModel &model);

/**
 * An incremental filter executing @p plan; one per search worker (the
 * filter owns all mutable state, the plan is shared and const).
 */
std::unique_ptr<axiomatic::IncrementalFilter>
makeCompiledFilter(std::shared_ptr<const CompiledPlan> plan);

/** Render @p e as cat source (parenthesized; plan dumps and lint). */
std::string exprToString(const Expr &e);

} // namespace gam::cat

#endif // GAM_CAT_COMPILE_HH
