/**
 * @file
 * The cat model engine: deciding litmus tests from a memory model
 * written as data.
 *
 * A CatEngine pairs one litmus test with one parsed CatModel and
 * enumerates the outcomes the model's axioms accept.  Candidate
 * executions come from the axiomatic checker's enumeration
 * (axiomatic::Checker::enumerateFiltered), so the cat engine and the
 * hand-coded checker see byte-identical candidate streams -- any
 * verdict difference is a difference between the model file and the
 * hand-coded axioms, which is exactly what differential validation
 * wants to measure.
 *
 * The models shipped in .cat files under models/ are also embedded into the
 * library at build time (the registry below), so Engine::Cat works
 * without any runtime file lookup; custom model files are loaded and
 * parsed by the frontends.
 */

#ifndef GAM_CAT_ENGINE_HH
#define GAM_CAT_ENGINE_HH

#include <optional>
#include <string>
#include <vector>

#include <memory>

#include "axiomatic/checker.hh"
#include "cat/parser.hh"
#include "litmus/outcome.hh"
#include "litmus/test.hh"
#include "model/kind.hh"

namespace gam::cat
{

struct CompiledPlan;

/** Cat-model enumeration for one litmus test. */
class CatEngine
{
  public:
    /**
     * How the model's axioms run against the candidate stream.
     *
     * Compiled (the default) runs the model through the static
     * compiler (cat/compile.hh): per-epoch constants, fused
     * incremental axioms, generic evaluation only where the analysis
     * could not specialize.  Interpreted is the pre-compiler pipeline
     * -- the generic Evaluator invoked through checkPartial() -- kept
     * as the differential reference.  Both decide identical outcome
     * sets by construction; cat_compile_test enforces it.
     */
    enum class Mode { Compiled, Interpreted };

    /**
     * @p options carries the shared candidate-builder knobs (OOTA
     * seed values); enforceInstOrder is meaningless here -- the model
     * file is the axioms.  @p test and @p model must outlive the
     * engine.
     */
    CatEngine(const litmus::LitmusTest &test, const CatModel &model,
              axiomatic::Options options = {},
              Mode mode = Mode::Compiled);

    /**
     * All outcomes the model's axioms accept, via the shared
     * incremental pruned search: axioms whose expressions are
     * Independent/Monotone in co and fr (cat::Polarity) veto partial
     * candidates early, the rest fall back to full evaluation at
     * complete leaves.  In Mode::Compiled the veto runs the compiled
     * plan's fused filters instead of generic expression evaluation.
     */
    litmus::OutcomeSet enumerate();

    /** The compiled plan (Mode::Compiled; compiles lazily). */
    const CompiledPlan &plan();

    /**
     * Adopt an already-compiled plan for this engine's model instead
     * of compiling lazily.  The batched decide pipeline
     * (harness::decideBatch) compiles each distinct model once per
     * batch and shares the plan across every query in the (model,
     * engine) group; compiling is by far the largest per-query fixed
     * cost on small campaign tests.  @p plan must have been produced
     * by compileCatModel() on this engine's model (the caller keys by
     * CatModel::sourceHash).  No-op in Mode::Interpreted.
     */
    void usePlan(std::shared_ptr<const CompiledPlan> plan);

    /**
     * The pre-incremental pipeline: full evaluation of every complete
     * candidate, no pruning.  The reference side of differential
     * tests and the pruning benchmarks; identical outcome set to
     * enumerate() by construction.
     */
    litmus::OutcomeSet enumerateLegacy();

    /**
     * Is the test's asked-about condition reachable?  Seeds
     * undetermined-value candidates from the condition's constants,
     * mirroring axiomatic::Checker::isAllowed().
     */
    bool isAllowed();

    /** Counters of the last enumeration (shared Checker stats). */
    const axiomatic::CheckerStats &stats() const { return _stats; }

  private:
    const litmus::LitmusTest &test;
    const CatModel &model;
    axiomatic::Options options;
    Mode mode;
    /** Compiled once on first use, shared by every worker's filter. */
    std::shared_ptr<const CompiledPlan> _plan;
    axiomatic::CheckerStats _stats;
};

/**
 * The models shipped with the library (.cat files under models/, embedded at
 * build time), parsed once, in name order.
 */
const std::vector<const CatModel *> &builtinCatModels();

/**
 * The builtin model named @p name (case-insensitive); nullptr when
 * unknown.  The recoverable lookup used by text frontends.
 */
const CatModel *findBuiltinCatModel(const std::string &name);

/**
 * The builtin cat model expressing @p kind.  Asserts
 * model::supportsEngine(kind, model::Engine::Cat): the registry and
 * the shipped model files must agree.
 */
const CatModel &builtinCatModel(model::ModelKind kind);

/**
 * The ModelKind @p model claims to express, matched by name against
 * the library's models (case-insensitive); nullopt for custom models.
 * Used by differential validation to pick the reference checker.
 */
std::optional<model::ModelKind> catModelKind(const CatModel &model);

} // namespace gam::cat

#endif // GAM_CAT_ENGINE_HH
