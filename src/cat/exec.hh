/**
 * @file
 * Building the cat DSL's primitive sets and relations from one
 * enumerated candidate execution.
 *
 * Events are the committed memory accesses plus fences, thread-major
 * in committed trace order (branches and reg-to-reg computation are
 * not events: following herd, their effect is abstracted into the
 * addr/data/ctrl dependency relations, which are computed here by
 * register dataflow through the non-event instructions).
 *
 * Primitives:
 *   po    same-thread trace order (memory and fence events)
 *   rf    store -> load it supplies (reads of the initial memory have
 *         no rf edge; their semantics surface through fr)
 *   co    per-address total coherence order over stores
 *   fr    from-read: load -> every store coherence-after its source;
 *         a load reading the initial value precedes every same-address
 *         store.  Identity pairs (an RMW coherence-after its own
 *         source) are excluded.
 *   loc   distinct same-address memory events (symmetric)
 *   ext / int  distinct events of different / the same thread
 *   addr / data  register dataflow from a load into the address /
 *         data of a later memory event (through reg-to-reg ops only)
 *   ctrl  register dataflow from a load into a conditional branch,
 *         related to every event after that branch
 *   id    identity
 * Base sets: R W M F RMW and the per-kind fence sets FLL/FLS/FSL/FSS
 * (RMWs are in both R and W, matching the paper's classification).
 *
 * The trace-derived parts (everything but co and fr) are reused across
 * the coherence permutations of one read-from candidate, keyed on
 * CandidateExecution::rfEpoch.
 */

#ifndef GAM_CAT_EXEC_HH
#define GAM_CAT_EXEC_HH

#include <map>
#include <vector>

#include "axiomatic/checker.hh"
#include "cat/rel.hh"
#include "model/trace.hh"

namespace gam::cat
{

/** The evaluator's view of one candidate execution. */
struct ExecView
{
    size_t n = 0; ///< number of events (memory + fence)

    EventSet R, W, M, F, RMW, FLL, FLS, FSL, FSS;
    Rel po, rf, co, fr, loc, ext, int_, addr, data, ctrl, id;
};

/**
 * Builds ExecViews from the axiomatic checker's candidate stream,
 * caching the trace-derived relations per read-from epoch.
 */
class ExecBuilder
{
  public:
    /**
     * The view for @p candidate.  Valid until the next call; the
     * returned reference is into builder-owned storage.
     */
    const ExecView &view(const axiomatic::CandidateExecution &candidate);

    /**
     * View event index of candidate (memory) event @p candIdx, or -1
     * when it has none.  Valid for the candidate stream of the epoch
     * the last view() call belonged to; compiled filters
     * (cat/compile.hh) translate enumerator indices into the view's
     * event numbering through this.
     */
    int viewEventOfCand(size_t candIdx) const
    {
        return candIdx < eventOfCand.size()
            ? eventOfCand[candIdx] : -1;
    }

    /** View event index of the store @p sid, or -1 if unknown. */
    int viewEventOfStore(model::StoreId sid) const
    {
        auto it = eventOfStore.find(sid);
        return it != eventOfStore.end() ? it->second : -1;
    }

  private:
    void rebuildTraceLevel(const axiomatic::CandidateExecution &cand);
    void rebuildCoherence(const axiomatic::CandidateExecution &cand);

    ExecView v;
    uint64_t epoch = ~uint64_t(0);
    bool any = false;
    /** Candidate (memory) event index -> our event index. */
    std::vector<int> eventOfCand;
    /** Store id -> our event index (rf/fr source lookup). */
    std::map<model::StoreId, int> eventOfStore;
};

} // namespace gam::cat

#endif // GAM_CAT_EXEC_HH
