#include "cat/rel.hh"

#include "base/logging.hh"

namespace gam::cat
{

namespace
{

uint64_t
tailMask(size_t n)
{
    const size_t used = n & 63;
    return used == 0 ? ~uint64_t(0) : (uint64_t(1) << used) - 1;
}

} // anonymous namespace

// --------------------------------------------------------- EventSet

bool
EventSet::empty() const
{
    for (uint64_t w : w_)
        if (w)
            return false;
    return true;
}

size_t
EventSet::count() const
{
    size_t c = 0;
    for (uint64_t w : w_)
        c += size_t(__builtin_popcountll(w));
    return c;
}

EventSet
EventSet::operator|(const EventSet &o) const
{
    GAM_ASSERT(n_ == o.n_, "EventSet universe mismatch");
    EventSet r(n_);
    for (size_t i = 0; i < w_.size(); ++i)
        r.w_[i] = w_[i] | o.w_[i];
    return r;
}

EventSet
EventSet::operator&(const EventSet &o) const
{
    GAM_ASSERT(n_ == o.n_, "EventSet universe mismatch");
    EventSet r(n_);
    for (size_t i = 0; i < w_.size(); ++i)
        r.w_[i] = w_[i] & o.w_[i];
    return r;
}

EventSet
EventSet::minus(const EventSet &o) const
{
    GAM_ASSERT(n_ == o.n_, "EventSet universe mismatch");
    EventSet r(n_);
    for (size_t i = 0; i < w_.size(); ++i)
        r.w_[i] = w_[i] & ~o.w_[i];
    return r;
}

EventSet
EventSet::complement() const
{
    EventSet r(n_);
    for (size_t i = 0; i < w_.size(); ++i)
        r.w_[i] = ~w_[i];
    if (!r.w_.empty())
        r.w_.back() &= tailMask(n_);
    return r;
}

// -------------------------------------------------------------- Rel

Rel
Rel::identity(size_t n)
{
    Rel r(n);
    for (size_t i = 0; i < n; ++i)
        r.set(i, i);
    return r;
}

Rel
Rel::diag(const EventSet &s)
{
    Rel r(s.universe());
    s.forEach([&](size_t i) { r.set(i, i); });
    return r;
}

Rel
Rel::product(const EventSet &a, const EventSet &b)
{
    GAM_ASSERT(a.universe() == b.universe(),
               "product universe mismatch");
    Rel r(a.universe());
    a.forEach([&](size_t i) {
        for (size_t w = 0; w < r.wpr_; ++w)
            r.row(i)[w] = b.w_[w];
    });
    return r;
}

bool
Rel::empty() const
{
    for (uint64_t w : w_)
        if (w)
            return false;
    return true;
}

size_t
Rel::count() const
{
    size_t c = 0;
    for (uint64_t w : w_)
        c += size_t(__builtin_popcountll(w));
    return c;
}

Rel
Rel::operator|(const Rel &o) const
{
    GAM_ASSERT(n_ == o.n_, "Rel universe mismatch");
    Rel r(n_);
    for (size_t i = 0; i < w_.size(); ++i)
        r.w_[i] = w_[i] | o.w_[i];
    return r;
}

Rel
Rel::operator&(const Rel &o) const
{
    GAM_ASSERT(n_ == o.n_, "Rel universe mismatch");
    Rel r(n_);
    for (size_t i = 0; i < w_.size(); ++i)
        r.w_[i] = w_[i] & o.w_[i];
    return r;
}

Rel
Rel::minus(const Rel &o) const
{
    GAM_ASSERT(n_ == o.n_, "Rel universe mismatch");
    Rel r(n_);
    for (size_t i = 0; i < w_.size(); ++i)
        r.w_[i] = w_[i] & ~o.w_[i];
    return r;
}

Rel
Rel::complement() const
{
    Rel r(n_);
    for (size_t i = 0; i < w_.size(); ++i)
        r.w_[i] = ~w_[i];
    r.maskTail();
    return r;
}

Rel
Rel::compose(const Rel &o) const
{
    GAM_ASSERT(n_ == o.n_, "Rel universe mismatch");
    Rel r(n_);
    for (size_t i = 0; i < n_; ++i) {
        uint64_t *out = r.row(i);
        const uint64_t *mid = row(i);
        for (size_t w = 0; w < wpr_; ++w) {
            uint64_t bits = mid[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                const uint64_t *jrow = o.row(w * 64 + size_t(b));
                for (size_t k = 0; k < wpr_; ++k)
                    out[k] |= jrow[k];
                bits &= bits - 1;
            }
        }
    }
    return r;
}

Rel
Rel::inverse() const
{
    Rel r(n_);
    for (size_t i = 0; i < n_; ++i) {
        const uint64_t *ri = row(i);
        for (size_t w = 0; w < wpr_; ++w) {
            uint64_t bits = ri[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                r.set(w * 64 + size_t(b), i);
                bits &= bits - 1;
            }
        }
    }
    return r;
}

Rel
Rel::transitiveClosure() const
{
    Rel r = *this;
    for (size_t k = 0; k < n_; ++k) {
        const uint64_t *rk = r.row(k);
        // Copy row k so a row ORing into itself (k reaching k) is safe.
        std::vector<uint64_t> krow(rk, rk + wpr_);
        for (size_t i = 0; i < n_; ++i) {
            if (!r.test(i, k))
                continue;
            uint64_t *ri = r.row(i);
            for (size_t w = 0; w < wpr_; ++w)
                ri[w] |= krow[w];
        }
    }
    return r;
}

Rel
Rel::reflexiveTransitiveClosure() const
{
    return transitiveClosure() | identity(n_);
}

bool
Rel::irreflexive() const
{
    for (size_t i = 0; i < n_; ++i)
        if (test(i, i))
            return false;
    return true;
}

bool
Rel::acyclic() const
{
    return transitiveClosure().irreflexive();
}

void
Rel::addColumn(const EventSet &from, size_t j)
{
    GAM_ASSERT(from.universe() == n_, "addColumn universe mismatch");
    from.forEach([&](size_t i) { set(i, j); });
}

void
Rel::orRowInto(size_t src, size_t dst)
{
    uint64_t *d = row(dst);
    const uint64_t *s = row(src);
    for (size_t w = 0; w < wpr_; ++w)
        d[w] |= s[w];
}

void
Rel::maskTail()
{
    if (wpr_ == 0)
        return;
    const uint64_t mask = tailMask(n_);
    for (size_t i = 0; i < n_; ++i)
        row(i)[wpr_ - 1] &= mask;
}

} // namespace gam::cat
