/**
 * @file
 * A write-back, write-allocate set-associative cache with LRU
 * replacement and a finite MSHR file, plus the DRAM endpoint.
 *
 * Timing uses a latency-forwarding model: access() returns the cycle at
 * which the requested data is available, advancing internal state (line
 * fills, MSHR occupancy, DRAM bus serialisation).  This captures the
 * properties the paper's evaluation depends on -- hit/miss latency,
 * limited miss-level parallelism, line-granularity locality and memory
 * bandwidth -- without a full event queue.
 */

#ifndef GAM_MEM_CACHE_HH
#define GAM_MEM_CACHE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/mem_image.hh"

namespace gam::mem
{

using Cycle = uint64_t;

/** Kind of access, for statistics. */
enum class AccessKind : uint8_t {
    DemandLoad,
    DemandStore,
    InstFetch,
    Writeback,
};

/** One cache level's geometry and timing. */
struct CacheParams
{
    std::string name = "cache";
    uint32_t sizeBytes = 32 * 1024;
    uint32_t assoc = 8;
    uint32_t lineBytes = 64;
    uint32_t hitLatency = 4;
    uint32_t mshrs = 8;
};

/** Per-level counters. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t demandLoadAccesses = 0;
    uint64_t demandLoadMisses = 0;
    uint64_t writebacks = 0;
    uint64_t evictions = 0;
    uint64_t mshrMerges = 0;
    uint64_t mshrFullStalls = 0;
};

/** Anything that can service line requests (a cache or DRAM). */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Request the line containing @p addr.
     * @param is_write  store/writeback (marks lines dirty)
     * @param now       request cycle
     * @param kind      accounting category
     * @return cycle at which the data is available
     */
    virtual Cycle access(isa::Addr addr, bool is_write, Cycle now,
                         AccessKind kind) = 0;

    /** Is the line currently present (no state change)? */
    virtual bool probe(isa::Addr addr) const = 0;
};

/** One set-associative write-back cache level. */
class Cache : public MemLevel
{
  public:
    /** @param parent the next level (not owned). */
    Cache(const CacheParams &params, MemLevel *parent);

    Cycle access(isa::Addr addr, bool is_write, Cycle now,
                 AccessKind kind) override;
    bool probe(isa::Addr addr) const override;

    const CacheStats &stats() const { return _stats; }
    const CacheParams &params() const { return _params; }
    void resetStats() { _stats = CacheStats{}; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint64_t tag = 0;
        uint64_t lastUse = 0;  ///< LRU timestamp
        Cycle fillReady = 0;   ///< when an in-flight fill completes
    };

    uint64_t lineAddr(isa::Addr addr) const
    {
        return uint64_t(addr) / _params.lineBytes;
    }
    uint64_t setIndex(uint64_t line) const { return line % numSets; }
    uint64_t tagOf(uint64_t line) const { return line / numSets; }

    /** Reclaim MSHR entries that completed by @p now. */
    void retireMshrs(Cycle now);

    CacheParams _params;
    MemLevel *parent;
    uint64_t numSets;
    std::vector<Line> lines; ///< numSets x assoc
    uint64_t useCounter = 0;
    /** Outstanding line fills: line address -> completion cycle. */
    std::map<uint64_t, Cycle> mshr;
    CacheStats _stats;
};

/** DRAM endpoint: fixed latency plus a serialised data bus. */
class MainMemory : public MemLevel
{
  public:
    /**
     * @param latency          access latency in cycles
     * @param bytes_per_cycle  bus bandwidth (12.8 GB/s at 2.5 GHz =
     *                         5.12 B/cycle)
     * @param line_bytes       transfer granularity
     */
    MainMemory(Cycle latency = 200, double bytes_per_cycle = 5.12,
               uint32_t line_bytes = 64);

    Cycle access(isa::Addr addr, bool is_write, Cycle now,
                 AccessKind kind) override;
    bool probe(isa::Addr /* addr */) const override { return true; }

    uint64_t reads() const { return _reads; }
    uint64_t writes() const { return _writes; }

  private:
    Cycle latency;
    Cycle transferCycles;
    Cycle busFree = 0;
    uint64_t _reads = 0;
    uint64_t _writes = 0;
};

} // namespace gam::mem

#endif // GAM_MEM_CACHE_HH
