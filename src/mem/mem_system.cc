#include "mem/mem_system.hh"

namespace gam::mem
{

MemSystem::MemSystem(const MemSystemParams &params)
{
    _dram = std::make_unique<MainMemory>(params.dramLatency,
                                         params.dramBytesPerCycle,
                                         params.l3.lineBytes);
    _l3 = std::make_unique<Cache>(params.l3, _dram.get());
    _l2 = std::make_unique<Cache>(params.l2, _l3.get());
    _l1i = std::make_unique<Cache>(params.l1i, _l2.get());
    _l1d = std::make_unique<Cache>(params.l1d, _l2.get());
}

Cycle
MemSystem::load(isa::Addr addr, Cycle now)
{
    return _l1d->access(addr, false, now, AccessKind::DemandLoad);
}

Cycle
MemSystem::store(isa::Addr addr, Cycle now)
{
    return _l1d->access(addr, true, now, AccessKind::DemandStore);
}

Cycle
MemSystem::fetch(isa::Addr addr, Cycle now)
{
    return _l1i->access(addr, false, now, AccessKind::InstFetch);
}

void
MemSystem::resetStats()
{
    _l1i->resetStats();
    _l1d->resetStats();
    _l2->resetStats();
    _l3->resetStats();
}

} // namespace gam::mem
