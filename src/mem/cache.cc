#include "mem/cache.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace gam::mem
{

Cache::Cache(const CacheParams &params, MemLevel *parent)
    : _params(params), parent(parent)
{
    GAM_ASSERT(parent != nullptr, "cache '%s' has no parent level",
               params.name.c_str());
    GAM_ASSERT(params.sizeBytes % (params.lineBytes * params.assoc) == 0,
               "cache '%s': size not divisible by way size",
               params.name.c_str());
    numSets = params.sizeBytes / (params.lineBytes * params.assoc);
    lines.resize(numSets * params.assoc);
}

void
Cache::retireMshrs(Cycle now)
{
    for (auto it = mshr.begin(); it != mshr.end();) {
        if (it->second <= now)
            it = mshr.erase(it);
        else
            ++it;
    }
}

Cycle
Cache::access(isa::Addr addr, bool is_write, Cycle now, AccessKind kind)
{
    ++_stats.accesses;
    const bool demand_load = kind == AccessKind::DemandLoad;
    if (demand_load)
        ++_stats.demandLoadAccesses;

    const uint64_t line = lineAddr(addr);
    const uint64_t set = setIndex(line);
    const uint64_t tag = tagOf(line);
    Line *way = nullptr;
    for (uint64_t w = 0; w < _params.assoc; ++w) {
        Line &cand = lines[set * _params.assoc + w];
        if (cand.valid && cand.tag == tag) {
            way = &cand;
            break;
        }
    }

    if (way != nullptr) {
        ++_stats.hits;
        way->lastUse = ++useCounter;
        if (is_write)
            way->dirty = true;
        // A line still being filled supplies data when the fill lands.
        return std::max(now + _params.hitLatency, way->fillReady);
    }

    // Miss path.
    ++_stats.misses;
    if (demand_load)
        ++_stats.demandLoadMisses;
    retireMshrs(now);

    // Merge with an outstanding fill of the same line.
    if (auto it = mshr.find(line); it != mshr.end()) {
        ++_stats.mshrMerges;
        // The line was (or will be) installed by the primary miss.
        return std::max(it->second, now + _params.hitLatency);
    }

    // All MSHRs busy: wait for the earliest one to retire.
    Cycle start = now;
    while (mshr.size() >= _params.mshrs) {
        ++_stats.mshrFullStalls;
        Cycle earliest = UINT64_MAX;
        uint64_t victim_line = 0;
        for (const auto &[l, ready] : mshr) {
            if (ready < earliest) {
                earliest = ready;
                victim_line = l;
            }
        }
        mshr.erase(victim_line);
        start = std::max(start, earliest);
    }

    // Choose an LRU victim way.
    Line *victim = nullptr;
    for (uint64_t w = 0; w < _params.assoc; ++w) {
        Line &cand = lines[set * _params.assoc + w];
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        if (victim == nullptr || cand.lastUse < victim->lastUse)
            victim = &cand;
    }
    if (victim->valid) {
        ++_stats.evictions;
        if (victim->dirty) {
            ++_stats.writebacks;
            const uint64_t victim_line =
                victim->tag * numSets + set;
            parent->access(isa::Addr(victim_line * _params.lineBytes),
                           true, start + _params.hitLatency,
                           AccessKind::Writeback);
        }
    }

    const Cycle fill = parent->access(addr, false,
                                      start + _params.hitLatency, kind);
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lastUse = ++useCounter;
    victim->fillReady = fill;
    mshr[line] = fill;
    return fill;
}

bool
Cache::probe(isa::Addr addr) const
{
    const uint64_t line = lineAddr(addr);
    const uint64_t set = setIndex(line);
    const uint64_t tag = tagOf(line);
    for (uint64_t w = 0; w < _params.assoc; ++w) {
        const Line &cand = lines[set * _params.assoc + w];
        if (cand.valid && cand.tag == tag)
            return true;
    }
    return false;
}

MainMemory::MainMemory(Cycle latency, double bytes_per_cycle,
                       uint32_t line_bytes)
    : latency(latency)
{
    GAM_ASSERT(bytes_per_cycle > 0, "bad DRAM bandwidth");
    transferCycles =
        Cycle(std::ceil(double(line_bytes) / bytes_per_cycle));
}

Cycle
MainMemory::access(isa::Addr /* addr */, bool is_write, Cycle now,
                   AccessKind /* kind */)
{
    const Cycle start = std::max(now, busFree);
    busFree = start + transferCycles;
    if (is_write) {
        ++_writes;
        return start; // posted write: the requester does not wait
    }
    ++_reads;
    return start + latency;
}

} // namespace gam::mem
