/**
 * @file
 * The full memory hierarchy of the paper's Table I: split 32KB L1I/L1D,
 * unified 256KB L2, 1MB L3, and DRAM at 200 cycles / 12.8 GB/s.
 */

#ifndef GAM_MEM_MEM_SYSTEM_HH
#define GAM_MEM_MEM_SYSTEM_HH

#include <memory>

#include "mem/cache.hh"

namespace gam::mem
{

/** Hierarchy-wide configuration (defaults mirror Table I). */
struct MemSystemParams
{
    CacheParams l1i{"l1i", 32 * 1024, 8, 64, 4, 4};
    CacheParams l1d{"l1d", 32 * 1024, 8, 64, 4, 8};
    CacheParams l2{"l2", 256 * 1024, 8, 64, 12, 20};
    CacheParams l3{"l3", 1024 * 1024, 16, 64, 35, 30};
    Cycle dramLatency = 200;
    double dramBytesPerCycle = 5.12; // 12.8 GB/s at 2.5 GHz
};

/** The assembled three-level hierarchy plus DRAM. */
class MemSystem
{
  public:
    explicit MemSystem(const MemSystemParams &params = {});

    /** Data-side load: returns the data-ready cycle. */
    Cycle load(isa::Addr addr, Cycle now);
    /** Data-side store (write-allocate): returns the write-done cycle. */
    Cycle store(isa::Addr addr, Cycle now);
    /** Instruction fetch of the line containing @p addr. */
    Cycle fetch(isa::Addr addr, Cycle now);

    /** Would a data-side access to @p addr hit in the L1D right now? */
    bool probeL1D(isa::Addr addr) const { return _l1d->probe(addr); }

    const Cache &l1i() const { return *_l1i; }
    const Cache &l1d() const { return *_l1d; }
    const Cache &l2() const { return *_l2; }
    const Cache &l3() const { return *_l3; }
    const MainMemory &dram() const { return *_dram; }
    void resetStats();

  private:
    std::unique_ptr<MainMemory> _dram;
    std::unique_ptr<Cache> _l3;
    std::unique_ptr<Cache> _l2;
    std::unique_ptr<Cache> _l1i;
    std::unique_ptr<Cache> _l1d;
};

} // namespace gam::mem

#endif // GAM_MEM_MEM_SYSTEM_HH
