#include "model/engine.hh"

namespace gam::model
{

std::string
engineName(Engine engine)
{
    switch (engine) {
      case Engine::Axiomatic: return "axiomatic";
      case Engine::Operational: return "operational";
      case Engine::Cat: return "cat";
    }
    return "?";
}

std::optional<Engine>
engineFromName(const std::string &name)
{
    for (Engine engine : allEngines) {
        if (engineName(engine) == name)
            return engine;
    }
    return std::nullopt;
}

std::vector<Engine>
engines(ModelKind model)
{
    std::vector<Engine> out;
    for (Engine engine : allEngines) {
        if (supportsEngine(model, engine))
            out.push_back(engine);
    }
    return out;
}

} // namespace gam::model
