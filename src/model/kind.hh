/**
 * @file
 * The memory models this library implements.
 */

#ifndef GAM_MODEL_KIND_HH
#define GAM_MODEL_KIND_HH

#include <optional>
#include <string>

namespace gam::model
{

/**
 * Memory-model identifiers.
 *
 * The GAM-family models differ only in how they order two loads for the
 * same address (Section III-E) and, in the simulator, whether load-load
 * forwarding is allowed:
 *
 *  - GAM0:      no same-address load-load ordering at all (corrected RMO).
 *  - GAM:       constraint SALdLd (consecutive same-address loads without
 *               an intervening same-address store are ordered).
 *  - ARM:       constraint SALdLdARM (same-address loads are ordered only
 *               when they do not read from the same store).
 *  - AlphaStar: GAM0 ordering; additionally the implementation may
 *               forward data between loads (simulator only; the paper's
 *               Alpha* has no axiomatic definition).
 *
 * SC, TSO and PerLocSC are reference points: SC/TSO for familiarity and
 * PerLocSC for the per-location SC property of Section III-E.
 */
enum class ModelKind {
    SC,
    TSO,
    GAM0,
    GAM,
    ARM,
    AlphaStar,
    PerLocSC,
};

/** Display name ("GAM0", "Alpha*", ...). */
std::string modelName(ModelKind kind);

/**
 * Inverse of modelName(); nullopt for unrecognised names.  The
 * recoverable lookup used by text frontends (litmus parser, CLIs).
 */
std::optional<ModelKind> modelFromName(const std::string &name);

/** True for models defined through the Definition 6 ppo construction. */
constexpr bool
isGamFamily(ModelKind kind)
{
    return kind == ModelKind::GAM0 || kind == ModelKind::GAM
        || kind == ModelKind::ARM || kind == ModelKind::AlphaStar;
}

/** Every ModelKind, in declaration order (frontend listings). */
constexpr ModelKind allModelKinds[] = {
    ModelKind::SC,  ModelKind::TSO,       ModelKind::GAM0,
    ModelKind::GAM, ModelKind::ARM,       ModelKind::AlphaStar,
    ModelKind::PerLocSC,
};

/** All models with an axiomatic definition in this library. */
constexpr ModelKind axiomaticModels[] = {
    ModelKind::SC,   ModelKind::TSO, ModelKind::GAM0,
    ModelKind::GAM,  ModelKind::ARM, ModelKind::PerLocSC,
};

/** The four models compared in the paper's evaluation (Section V). */
constexpr ModelKind simulatedModels[] = {
    ModelKind::GAM, ModelKind::ARM, ModelKind::GAM0, ModelKind::AlphaStar,
};

} // namespace gam::model

#endif // GAM_MODEL_KIND_HH
