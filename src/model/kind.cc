#include "model/kind.hh"

namespace gam::model
{

std::string
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::SC: return "SC";
      case ModelKind::TSO: return "TSO";
      case ModelKind::GAM0: return "GAM0";
      case ModelKind::GAM: return "GAM";
      case ModelKind::ARM: return "ARM";
      case ModelKind::AlphaStar: return "Alpha*";
      case ModelKind::PerLocSC: return "PerLocSC";
    }
    return "?";
}

std::optional<ModelKind>
modelFromName(const std::string &name)
{
    for (ModelKind kind : {ModelKind::SC, ModelKind::TSO,
                           ModelKind::GAM0, ModelKind::GAM,
                           ModelKind::ARM, ModelKind::AlphaStar,
                           ModelKind::PerLocSC}) {
        if (modelName(kind) == name)
            return kind;
    }
    return std::nullopt;
}

} // namespace gam::model
