/**
 * @file
 * Preserved program order <ppo (paper Definition 6) for every model.
 *
 * ppo relates two instructions of the same thread when their execution
 * order must match the commit order.  For the GAM family it is the union
 * of the constraints SAMemSt, SAStLd, SALdLd (or SALdLdARM), RegRAW,
 * BrSt, AddrSt and FenceOrd, closed under transitivity.  Non-memory
 * instructions (fences, branches, reg-to-reg ops) participate as
 * intermediate nodes; only memory-to-memory ppo edges constrain the
 * global memory order.
 */

#ifndef GAM_MODEL_PPO_HH
#define GAM_MODEL_PPO_HH

#include "model/deps.hh"
#include "model/kind.hh"
#include "model/trace.hh"

namespace gam::model
{

/**
 * Compute <ppo over one thread's committed trace.
 *
 * @param trace  the thread's commit-order instruction sequence with
 *               resolved memory addresses
 * @param kind   which model's ppo to compute
 * @param rf     read-from choice per trace index; required for
 *               ModelKind::ARM (constraint SALdLdARM compares the
 *               stores two loads read from), ignored otherwise
 * @return       the transitively closed relation over trace indices
 */
Relation preservedProgramOrder(const Trace &trace, ModelKind kind,
                               const RfMap *rf = nullptr);

/**
 * Individual Definition 6 cases, exposed for unit testing.  Each returns
 * the *direct* (non-closed) edges contributed by that constraint.
 */
namespace ppo_case
{

Relation saMemSt(const Trace &trace);
Relation saStLd(const Trace &trace);
Relation saLdLd(const Trace &trace);
Relation saLdLdArm(const Trace &trace, const RfMap &rf);
Relation regRaw(const Trace &trace);
Relation brSt(const Trace &trace);
Relation addrSt(const Trace &trace);
Relation fenceOrd(const Trace &trace);

} // namespace ppo_case

} // namespace gam::model

#endif // GAM_MODEL_PPO_HH
