/**
 * @file
 * Syntactic dependency relations over a committed trace: data dependency
 * <ddep (Definition 4) and address dependency <adep (Definition 5).
 *
 * Both are last-writer relations: I1 <ddep I2 when I2 reads a register
 * that I1 is the most recent program-order writer of.  They ignore the
 * PC and the hard-wired zero register, per the paper.
 */

#ifndef GAM_MODEL_DEPS_HH
#define GAM_MODEL_DEPS_HH

#include <vector>

#include "model/trace.hh"

namespace gam::model
{

/** Dense boolean relation over trace indices. */
class Relation
{
  public:
    explicit Relation(size_t n) : n(n), bits(n * n, false) {}

    bool operator()(size_t i, size_t j) const { return bits[i * n + j]; }
    void set(size_t i, size_t j, bool v = true) { bits[i * n + j] = v; }
    size_t size() const { return n; }

    /** In-place transitive closure (Floyd-Warshall). */
    void transitiveClose();

    /** True if the relation (viewed as a digraph) has a cycle. */
    bool hasCycle() const;

    /** All (i, j) pairs with i related to j. */
    std::vector<std::pair<size_t, size_t>> pairs() const;

  private:
    size_t n;
    std::vector<bool> bits;
};

/**
 * Data dependency <ddep (Definition 4): ddep(i, j) iff i <po j, some
 * register in WS(i) ∩ RS(j) is not overwritten between them.
 */
Relation dataDeps(const Trace &trace);

/**
 * Address dependency <adep (Definition 5): like <ddep but with RS
 * replaced by ARS (registers used for address computation).
 */
Relation addrDeps(const Trace &trace);

} // namespace gam::model

#endif // GAM_MODEL_DEPS_HH
