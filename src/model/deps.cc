#include "model/deps.hh"

#include <algorithm>

namespace gam::model
{

void
Relation::transitiveClose()
{
    for (size_t k = 0; k < n; ++k) {
        for (size_t i = 0; i < n; ++i) {
            if (!bits[i * n + k])
                continue;
            for (size_t j = 0; j < n; ++j) {
                if (bits[k * n + j])
                    bits[i * n + j] = true;
            }
        }
    }
}

bool
Relation::hasCycle() const
{
    // After closure a cycle shows as a self-edge; without closure do a
    // small DFS.  We accept either closed or raw relations here.
    std::vector<int> state(n, 0); // 0 = unvisited, 1 = on stack, 2 = done
    std::vector<size_t> stack;
    for (size_t root = 0; root < n; ++root) {
        if (state[root])
            continue;
        stack.push_back(root);
        while (!stack.empty()) {
            size_t v = stack.back();
            if (state[v] == 0) {
                state[v] = 1;
                for (size_t w = 0; w < n; ++w) {
                    if (!(*this)(v, w))
                        continue;
                    if (state[w] == 1)
                        return true;
                    if (state[w] == 0)
                        stack.push_back(w);
                }
            } else {
                if (state[v] == 1)
                    state[v] = 2;
                stack.pop_back();
            }
        }
    }
    return false;
}

std::vector<std::pair<size_t, size_t>>
Relation::pairs() const
{
    std::vector<std::pair<size_t, size_t>> out;
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            if ((*this)(i, j))
                out.emplace_back(i, j);
    return out;
}

namespace
{

/**
 * Shared last-writer dependency scan: dep(i, j) iff i < j, WS(i)
 * intersects reads(j), and some such register has no intervening writer.
 */
Relation
lastWriterDeps(const Trace &trace,
               std::vector<isa::Reg> (isa::Instruction::*reads)() const)
{
    const size_t n = trace.size();
    Relation rel(n);
    for (size_t j = 0; j < n; ++j) {
        for (isa::Reg r : (trace[j].instr.*reads)()) {
            // Walk backwards to the most recent writer of r.
            for (size_t i = j; i-- > 0;) {
                auto ws = trace[i].instr.writeSet();
                if (std::find(ws.begin(), ws.end(), r) != ws.end()) {
                    rel.set(i, j);
                    break;
                }
            }
        }
    }
    return rel;
}

} // anonymous namespace

Relation
dataDeps(const Trace &trace)
{
    return lastWriterDeps(trace, &isa::Instruction::readSet);
}

Relation
addrDeps(const Trace &trace)
{
    return lastWriterDeps(trace, &isa::Instruction::addrReadSet);
}

} // namespace gam::model
