/**
 * @file
 * Verification engines and their per-model capabilities.
 *
 * The library decides "is this outcome allowed?" with three engines:
 * the axiomatic checker (axiomatic/checker.hh), the operational
 * explorer over the abstract machines (operational/), and the cat
 * model-DSL evaluator (cat/) over the model files.  Which engine
 * can decide which model -- and how faithfully -- is a property of the
 * *model*, so it lives here, next to ModelKind, as the single source
 * of truth.  Frontends (litmus runner, fuzzer, CLI, fence synthesis)
 * must consult supportsEngine()/engines() instead of hand-rolling
 * their own switches.
 */

#ifndef GAM_MODEL_ENGINE_HH
#define GAM_MODEL_ENGINE_HH

#include <optional>
#include <string>
#include <vector>

#include "model/kind.hh"

namespace gam::model
{

/** The three ways this library can decide a model query. */
enum class Engine {
    /** Enumerate legal executions from the Figure 15 axioms. */
    Axiomatic,
    /** Exhaustively explore an abstract machine's state space. */
    Operational,
    /**
     * Evaluate a cat-DSL model file (src/cat/) over the same
     * candidate executions the axiomatic checker enumerates.  The
     * model is data: the builtin .cat files under models/ by default,
     * or any user-supplied file.  By default the model is *compiled*
     * (cat/compile.hh) into the same incremental filter shape as the
     * hand-coded checker -- stratified constants, fused acyclicity,
     * per-edge guards -- rather than interpreted per candidate; the
     * two modes decide identically (RunOptions::catCompile is the
     * differential-testing escape hatch).
     */
    Cat,
};

/** Engines in registry order. */
constexpr Engine allEngines[] = {Engine::Axiomatic, Engine::Operational,
                                 Engine::Cat};

/** Display name ("axiomatic" / "operational" / "cat"). */
std::string engineName(Engine engine);

/**
 * Inverse of engineName(); nullopt for unrecognised names.  The
 * recoverable lookup used by text frontends (CLI flags).
 */
std::optional<Engine> engineFromName(const std::string &name);

/**
 * Can @p engine decide @p model?
 *
 *  - Axiomatic: every model except Alpha*, which the paper defines
 *    only through its implementation (no axioms to check).
 *  - Operational: every model except PerLocSC, which exists as an
 *    axiomatic reference property only (no abstract machine).
 *  - Cat: the models shipped as cat files (.cat files under models/): SC, TSO,
 *    GAM0 and GAM.  ARM's SALdLdARM constraint compares the stores
 *    two loads read from, which the DSL's primitives do not express,
 *    and Alpha* and PerLocSC ship no file.  (Custom cat files can still
 *    be run against any test through cat::CatEngine directly.)
 */
constexpr bool
supportsEngine(ModelKind model, Engine engine)
{
    switch (engine) {
      case Engine::Axiomatic:
        return model != ModelKind::AlphaStar;
      case Engine::Operational:
        return model != ModelKind::PerLocSC;
      case Engine::Cat:
        return model == ModelKind::SC || model == ModelKind::TSO
            || model == ModelKind::GAM0 || model == ModelKind::GAM;
    }
    return false;
}

/** The engines that can decide @p model, in registry order. */
std::vector<Engine> engines(ModelKind model);

/**
 * Does @p engine decide by enumerating (rf, co) candidate executions
 * through the shared incremental pruned search
 * (axiomatic/enumerate.hh)?  True for the axiomatic checker and the
 * cat evaluator -- their Decisions carry meaningful enumeration
 * counters (Decision::enumStats: partial candidates pruned, subtrees
 * skipped, backtrack depth) and their statesVisited counts complete
 * candidates reached.  False for the operational explorer, whose
 * statesVisited counts machine states and whose enumStats stay zero.
 * Frontends use this to decide which rows of a verdict matrix can be
 * aggregated into pruning statistics.
 */
constexpr bool
engineUsesCandidateEnumeration(Engine engine)
{
    return engine == Engine::Axiomatic || engine == Engine::Cat;
}

/**
 * Do *both* engines support @p model -- i.e. is there an
 * operational/axiomatic pair to cross-check?  False for Alpha* (no
 * axioms) and PerLocSC (no machine), which only one engine decides.
 */
constexpr bool
hasEnginePair(ModelKind model)
{
    return supportsEngine(model, Engine::Axiomatic)
        && supportsEngine(model, Engine::Operational);
}

/**
 * Is the operational engine's outcome set *equal* to the axiomatic
 * definition for @p model, rather than merely included in it?  The
 * paper proves equivalence for GAM (and our SC/TSO/GAM0 machines are
 * exact too), but defines no ARM abstract machine: ours is
 * deliberately conservative, so for ARM the operational set is a
 * subset of the axiomatic one (see operational/gam_machine.hh).
 * Differential checks must compare by inclusion, and only *forbidden*
 * operational verdicts may be recorded as ground truth.
 */
constexpr bool
operationalOutcomesExact(ModelKind model)
{
    return model != ModelKind::ARM;
}

} // namespace gam::model

#endif // GAM_MODEL_ENGINE_HH
