/**
 * @file
 * Committed execution traces: the domain over which program order,
 * dependencies and preserved program order are defined.
 *
 * The axiomatic definition of GAM (Section IV-A) is stated over the
 * instructions a processor *commits*, with memory addresses already
 * resolved (same-address constraints need concrete addresses).  A Trace
 * is one thread's commit-order instruction sequence annotated with those
 * resolved addresses.
 */

#ifndef GAM_MODEL_TRACE_HH
#define GAM_MODEL_TRACE_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"
#include "isa/mem_image.hh"

namespace gam::model
{

/**
 * Identifier of the store a load read from: the global uid of a store
 * instruction, or InitStore for the initial memory value.  Used by the
 * LoadValue axiom and by the ARM SALdLdARM ppo case ("do not read from
 * the same store").
 */
using StoreId = int32_t;
constexpr StoreId InitStore = -1;

/** One committed instruction with resolved memory address. */
struct TraceInstr
{
    isa::Instruction instr;
    /** Effective address; valid iff instr.isMem(). */
    isa::Addr addr = 0;
    /** Value loaded or stored; valid iff instr.isMem().  For an RMW
     *  this is the *loaded* value; the written value is rmwStored. */
    isa::Value value = 0;
    /** Value an RMW wrote; valid iff instr.isRmw(). */
    isa::Value rmwStored = 0;

    bool isLoad() const { return instr.isLoad(); }
    bool isStore() const { return instr.isStore(); }
    bool isMem() const { return instr.isMem(); }
};

/** One thread's committed instructions in commit (program) order. */
using Trace = std::vector<TraceInstr>;

/**
 * Read-from choice for every load in a trace: rf[i] is meaningful only
 * when trace[i] is a load and names the store whose value it reads.
 */
using RfMap = std::vector<StoreId>;

} // namespace gam::model

#endif // GAM_MODEL_TRACE_HH
