#include "model/ppo.hh"

#include "base/logging.hh"

namespace gam::model
{

namespace ppo_case
{

Relation
saMemSt(const Trace &trace)
{
    // A store must be ordered after older memory instructions for the
    // same address.
    const size_t n = trace.size();
    Relation rel(n);
    for (size_t j = 0; j < n; ++j) {
        if (!trace[j].isStore())
            continue;
        for (size_t i = 0; i < j; ++i) {
            if (trace[i].isMem() && trace[i].addr == trace[j].addr)
                rel.set(i, j);
        }
    }
    return rel;
}

Relation
saStLd(const Trace &trace)
{
    // A load must be ordered after every instruction producing the
    // address or data of the immediately preceding same-address store.
    const size_t n = trace.size();
    Relation rel(n);
    Relation ddep = dataDeps(trace);
    for (size_t j = 0; j < n; ++j) {
        if (!trace[j].isLoad())
            continue;
        // Find the closest older store S for the same address.
        for (size_t s = j; s-- > 0;) {
            if (trace[s].isStore() && trace[s].addr == trace[j].addr) {
                for (size_t i = 0; i < s; ++i) {
                    if (ddep(i, s))
                        rel.set(i, j);
                }
                break;
            }
        }
    }
    return rel;
}

Relation
saLdLd(const Trace &trace)
{
    // Constraint SALdLd: two same-address loads with no intervening
    // same-address store execute in commit order.
    const size_t n = trace.size();
    Relation rel(n);
    for (size_t j = 0; j < n; ++j) {
        if (!trace[j].isLoad())
            continue;
        for (size_t i = j; i-- > 0;) {
            if (!trace[i].isMem() || trace[i].addr != trace[j].addr)
                continue;
            if (trace[i].isLoad())
                rel.set(i, j);  // same-address load (or RMW) pair
            if (trace[i].isStore())
                break;          // intervening store shields older pairs
        }
    }
    return rel;
}

Relation
saLdLdArm(const Trace &trace, const RfMap &rf)
{
    // Constraint SALdLdARM: two same-address loads that do not read from
    // the same store (not just the same value) execute in commit order.
    const size_t n = trace.size();
    GAM_ASSERT(rf.size() == n, "rf map size mismatch");
    Relation rel(n);
    for (size_t j = 0; j < n; ++j) {
        if (!trace[j].isLoad())
            continue;
        for (size_t i = 0; i < j; ++i) {
            if (trace[i].isLoad() && trace[i].addr == trace[j].addr
                && rf[i] != rf[j]) {
                rel.set(i, j);
            }
        }
    }
    return rel;
}

Relation
regRaw(const Trace &trace)
{
    return dataDeps(trace);
}

Relation
brSt(const Trace &trace)
{
    // A store must be ordered after an older branch.
    const size_t n = trace.size();
    Relation rel(n);
    for (size_t j = 0; j < n; ++j) {
        if (!trace[j].isStore())
            continue;
        for (size_t i = 0; i < j; ++i) {
            if (trace[i].instr.isBranch())
                rel.set(i, j);
        }
    }
    return rel;
}

Relation
addrSt(const Trace &trace)
{
    // A store must be ordered after any instruction that produces the
    // address of an older memory instruction.
    const size_t n = trace.size();
    Relation rel(n);
    Relation adep = addrDeps(trace);
    for (size_t j = 0; j < n; ++j) {
        if (!trace[j].isStore())
            continue;
        for (size_t k = 0; k < j; ++k) {
            if (!trace[k].isMem())
                continue;
            for (size_t i = 0; i < k; ++i) {
                if (adep(i, k))
                    rel.set(i, j);
            }
        }
    }
    return rel;
}

Relation
fenceOrd(const Trace &trace)
{
    // FenceXY is after older type-X memory instructions and before
    // younger type-Y memory instructions.
    const size_t n = trace.size();
    Relation rel(n);
    for (size_t f = 0; f < n; ++f) {
        if (!trace[f].instr.isFence())
            continue;
        const isa::FenceKind k = trace[f].instr.fence;
        for (size_t i = 0; i < f; ++i) {
            if (trace[i].isMem()
                && trace[i].instr.isMemType(isa::fencePre(k))) {
                rel.set(i, f);
            }
        }
        for (size_t j = f + 1; j < n; ++j) {
            if (trace[j].isMem()
                && trace[j].instr.isMemType(isa::fencePost(k))) {
                rel.set(f, j);
            }
        }
    }
    return rel;
}

} // namespace ppo_case

namespace
{

void
merge(Relation &into, const Relation &from)
{
    for (size_t i = 0; i < into.size(); ++i)
        for (size_t j = 0; j < into.size(); ++j)
            if (from(i, j))
                into.set(i, j);
}

/** SC: every pair of memory instructions is ordered. */
Relation
ppoSc(const Trace &trace)
{
    const size_t n = trace.size();
    Relation rel(n);
    for (size_t j = 0; j < n; ++j) {
        if (!trace[j].isMem())
            continue;
        for (size_t i = 0; i < j; ++i) {
            if (trace[i].isMem())
                rel.set(i, j);
        }
    }
    return rel;
}

/**
 * TSO: every memory pair is ordered except store-to-load; a FenceSL (or
 * a fence sequence containing one) restores the store-to-load order via
 * transitivity.
 */
Relation
ppoTso(const Trace &trace)
{
    const size_t n = trace.size();
    Relation rel(n);
    for (size_t j = 0; j < n; ++j) {
        if (!trace[j].isMem())
            continue;
        for (size_t i = 0; i < j; ++i) {
            if (!trace[i].isMem())
                continue;
            if (trace[i].isStore() && !trace[i].isLoad()
                && trace[j].isLoad() && !trace[j].isStore()) {
                continue; // the one TSO relaxation: pure St -> pure Ld
            }
            rel.set(i, j);
        }
    }
    merge(rel, ppo_case::fenceOrd(trace));
    rel.transitiveClose();
    return rel;
}

/**
 * Per-location SC pseudo-model: all same-address pairs are ordered,
 * nothing else (fences included) constrains the order.
 */
Relation
ppoPerLocSc(const Trace &trace)
{
    const size_t n = trace.size();
    Relation rel(n);
    for (size_t j = 0; j < n; ++j) {
        if (!trace[j].isMem())
            continue;
        for (size_t i = 0; i < j; ++i) {
            if (trace[i].isMem() && trace[i].addr == trace[j].addr)
                rel.set(i, j);
        }
    }
    return rel;
}

} // anonymous namespace

Relation
preservedProgramOrder(const Trace &trace, ModelKind kind, const RfMap *rf)
{
    switch (kind) {
      case ModelKind::SC:
        return ppoSc(trace);
      case ModelKind::TSO:
        return ppoTso(trace);
      case ModelKind::PerLocSC:
        return ppoPerLocSc(trace);
      default:
        break;
    }

    // GAM family (Definition 6).
    Relation rel(trace.size());
    merge(rel, ppo_case::saMemSt(trace));
    merge(rel, ppo_case::saStLd(trace));
    merge(rel, ppo_case::regRaw(trace));
    merge(rel, ppo_case::brSt(trace));
    merge(rel, ppo_case::addrSt(trace));
    merge(rel, ppo_case::fenceOrd(trace));

    if (kind == ModelKind::GAM) {
        merge(rel, ppo_case::saLdLd(trace));
    } else if (kind == ModelKind::ARM) {
        GAM_ASSERT(rf != nullptr,
                   "ARM ppo needs the read-from map (SALdLdARM)");
        merge(rel, ppo_case::saLdLdArm(trace, *rf));
    }
    // GAM0 and AlphaStar: no same-address load-load constraint.

    rel.transitiveClose();
    return rel;
}

} // namespace gam::model
