/**
 * @file
 * Low-overhead pipeline tracing: TraceSpan RAII scopes record named
 * begin/end intervals into lock-free per-thread ring buffers, which
 * export as Chrome trace_event JSON (load the file at chrome://tracing
 * or ui.perfetto.dev).
 *
 * Cost model: when tracing is disabled (the default) a span costs one
 * relaxed atomic load and a branch, so spans can sit on hot paths like
 * the per-rf-epoch loop of the candidate enumerator.  When enabled, a
 * span costs two monotonic clock reads and one ring-buffer slot write,
 * still lock-free: the writer is always the owning thread and the ring
 * simply overwrites its oldest events when full (droppedEvents()
 * reports how many).
 *
 * Defining GAM_NO_TRACING compiles spans out entirely (empty class,
 * id() == 0); bench_obs_overhead builds the library both ways and
 * gates the instrumented-but-disabled build at <= 3% over the
 * compiled-out one.
 *
 * Export is only safe after the traced threads have been joined (the
 * join gives the exporter a happens-before over their ring writes);
 * both CLI frontends export after their worker pools have drained.
 */

#ifndef GAM_OBS_TRACE_HH
#define GAM_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gam::obs
{

/**
 * One completed span.  @c name must point at storage that outlives the
 * collector (string literals in practice): the ring stores the
 * pointer, not a copy.
 */
struct TraceEvent
{
    const char *name = nullptr;
    uint64_t startNs = 0;
    uint64_t durNs = 0;
    uint64_t id = 0;
};

class TraceBuffer;

/**
 * The process-wide collector: owns one ring buffer per traced thread
 * (registered on the thread's first span, never deallocated) and the
 * global enabled flag.
 */
class TraceCollector
{
  public:
    static TraceCollector &instance();

    void enable() { _enabled.store(true, std::memory_order_relaxed); }
    void disable() { _enabled.store(false, std::memory_order_relaxed); }

    bool
    enabled() const
    {
        return _enabled.load(std::memory_order_relaxed);
    }

    /** Allocate a span id (> 0; 0 means "no span"). */
    uint64_t
    nextSpanId()
    {
        return _nextId.fetch_add(1, std::memory_order_relaxed);
    }

    /** Append a completed span to the calling thread's ring. */
    void record(const char *name, uint64_t startNs, uint64_t durNs,
                uint64_t id);

    /**
     * Render every retained event as a Chrome trace_event JSON
     * document ("ph":"X" complete events; ts/dur in microseconds).
     * Call only after traced threads have been joined.
     */
    std::string exportChromeJson() const;

    /** exportChromeJson() to @p path; false on I/O failure. */
    bool writeChromeJson(const std::string &path) const;

    /** Events overwritten because a thread's ring filled up. */
    uint64_t droppedEvents() const;

    /** Number of retained (exportable) events across all threads. */
    uint64_t retainedEvents() const;

    /** Drop all recorded events (rings stay registered). */
    void clear();

  private:
    TraceCollector() = default;

    TraceBuffer &localBuffer();

    std::atomic<bool> _enabled{false};
    std::atomic<uint64_t> _nextId{1};

    mutable std::mutex mu;
    std::vector<std::unique_ptr<TraceBuffer>> buffers;
};

#ifndef GAM_NO_TRACING

/**
 * An RAII traced interval.  Construction snapshots the clock and
 * allocates an id if tracing is enabled; destruction records the
 * completed event.  Spans opened while tracing is disabled stay
 * no-ops for their whole lifetime.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name)
    {
        if (TraceCollector::instance().enabled())
            open(name);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan()
    {
        if (_name)
            close();
    }

    /** This span's id, or 0 if tracing was disabled at construction. */
    uint64_t id() const { return _id; }

  private:
    void open(const char *name);
    void close();

    const char *_name = nullptr;
    uint64_t _startNs = 0;
    uint64_t _id = 0;
};

#else

/** Compiled-out spans: no state, no clock reads, id() always 0. */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *) {}
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;
    uint64_t id() const { return 0; }
};

#endif // GAM_NO_TRACING

#define GAM_TRACE_CONCAT2(a, b) a##b
#define GAM_TRACE_CONCAT(a, b) GAM_TRACE_CONCAT2(a, b)

/** Open a TraceSpan covering the rest of the enclosing block. */
#define GAM_TRACE_SCOPE(name)                                               \
    ::gam::obs::TraceSpan GAM_TRACE_CONCAT(gamTraceSpan_, __LINE__)(name)

} // namespace gam::obs

#endif // GAM_OBS_TRACE_HH
