/**
 * @file
 * The unified metrics layer: a thread-safe registry of named counters,
 * gauges and log-scale histograms, with text, JSON and
 * Prometheus-style exposition.
 *
 * Every layer of the decide() stack (cache, store backend, pre-screen,
 * engines, campaign driver, fuzzer, fence synthesis) reports through
 * one process-wide registry instead of hand-formatted --stats text and
 * scattered per-component stats structs.  Metric names are
 * hierarchical, dot-separated, lowercase_with_underscores per segment:
 *
 *   decide.cache.hit          counter   DecisionCache hits in decide()
 *   decide.engine.axiomatic   counter   fresh axiomatic engine runs
 *   decide.wall_us            histogram per-decision wall microseconds
 *   campaign.shard.wall_us    histogram per-shard wall microseconds
 *   bench.campaign.speedup    gauge     a bench's measured gate value
 *
 * Hot paths cache the returned Metric reference (registration takes a
 * lock; increments are relaxed atomics).  Registered metrics are never
 * deallocated, so cached references stay valid for the process
 * lifetime; reset() zeroes values without invalidating them.
 *
 * A MetricSnapshot is a point-in-time copy, subtractable (delta) so
 * frontends can report exactly the traffic of one run against the
 * accumulating global registry, and parseable back from its own JSON
 * (fromJson) so artifact files like campaign_metrics.json and
 * BENCH_*.json are a stable machine-readable schema, not just output.
 */

#ifndef GAM_OBS_REGISTRY_HH
#define GAM_OBS_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace gam::obs
{

/** A monotonically increasing atomic counter. */
class Counter
{
  public:
    void
    inc(uint64_t delta = 1)
    {
        _value.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { _value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> _value{0};
};

/** A last-writer-wins scalar (doubles, so rates and seconds fit). */
class Gauge
{
  public:
    void
    set(double value)
    {
        _value.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { _value.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> _value{0.0};
};

/**
 * A histogram over non-negative integers with fixed log2-scale
 * buckets: bucket 0 holds the value 0, bucket i >= 1 holds
 * [2^(i-1), 2^i).  64 buckets cover the whole uint64_t range, so
 * sample() never clips and two histograms always have congruent
 * buckets (mergeable, delta-able).  Tracks count, sum and max besides
 * the buckets.
 */
class Histogram
{
  public:
    static constexpr unsigned BucketCount = 65;

    /** Bucket index of @p value: 0 for 0, else 1 + floor(log2(v)). */
    static unsigned bucketOf(uint64_t value);

    /** Inclusive upper bound of @p bucket (2^bucket - 1; 0 for 0). */
    static uint64_t bucketUpperBound(unsigned bucket);

    void sample(uint64_t value);

    uint64_t count() const;
    uint64_t sum() const;
    uint64_t max() const;
    uint64_t bucketCount(unsigned bucket) const;

    void reset();

  private:
    std::atomic<uint64_t> _buckets[BucketCount] = {};
    std::atomic<uint64_t> _count{0};
    std::atomic<uint64_t> _sum{0};
    std::atomic<uint64_t> _max{0};
};

/** A point-in-time copy of one registry (or a delta of two copies). */
struct MetricSnapshot
{
    struct Hist
    {
        uint64_t count = 0;
        uint64_t sum = 0;
        uint64_t max = 0;
        /** (bucket index, count) for every non-empty bucket, sorted. */
        std::vector<std::pair<unsigned, uint64_t>> buckets;

        double mean() const { return count ? double(sum) / double(count) : 0.0; }
    };

    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Hist> histograms;

    uint64_t counter(const std::string &name) const;
    double gauge(const std::string &name) const;

    /**
     * This snapshot minus @p before: counters and histogram
     * counts/sums subtract (saturating at 0 -- a reset() in between
     * would otherwise wrap); gauges and histogram max keep this
     * snapshot's value (neither is a running total).  Names absent
     * from @p before pass through unchanged.
     */
    MetricSnapshot delta(const MetricSnapshot &before) const;

    /** Aligned "name value" lines; histograms as count/mean/max. */
    std::string toText() const;

    /**
     * The stable machine-readable schema ("gam-metrics-v1"):
     *
     *   {
     *     "schema": "gam-metrics-v1",
     *     "counters": {"decide.cache.hit": 12, ...},
     *     "gauges": {"campaign.wall_seconds": 1.25, ...},
     *     "histograms": {
     *       "decide.wall_us": {"count": 3, "sum": 90, "max": 41,
     *                           "buckets": [[5, 1], [6, 2]]}, ...}
     *   }
     *
     * Keys are sorted; numbers are plain JSON numbers.  Parse it back
     * with fromJson().
     */
    std::string toJson() const;

    /**
     * Prometheus text exposition: dots become underscores, every name
     * is prefixed "gam_", histograms expand to cumulative _bucket
     * series with le labels plus _sum and _count.
     */
    std::string toPrometheus() const;

    /**
     * Parse a toJson() document (the v1 schema only); nullopt on any
     * syntax or schema mismatch.  Exact round-trip:
     * fromJson(s.toJson()) == s.
     */
    static std::optional<MetricSnapshot> fromJson(const std::string &json);

    bool operator==(const MetricSnapshot &) const;
};

/**
 * A named collection of metrics.  Thread-safe: registration is
 * mutex-guarded, metric updates are atomic.  A name permanently
 * identifies one metric of one kind; asking for it again returns the
 * same object, asking for it as a different kind panics (that is a
 * bug, not an input error).
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    MetricSnapshot snapshot() const;

    /** Zero every metric (references stay valid). */
    void reset();

  private:
    enum class Kind { Counter, Gauge, Histogram };
    struct Entry
    {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &entry(const std::string &name, Kind kind);

    mutable std::mutex mu;
    std::map<std::string, Entry> entries;
};

/**
 * The process-wide registry every instrumented layer reports to.
 * Frontends snapshot it before and after a run and report the delta.
 */
MetricRegistry &metrics();

/**
 * Fold a name segment to metric-name form: lowercase, every character
 * outside [a-z0-9.] replaced by '_' ("Alpha*" -> "alpha_").  Used when
 * a name segment comes from data (model names, file stems).
 */
std::string metricSegment(const std::string &raw);

} // namespace gam::obs

#endif // GAM_OBS_REGISTRY_HH
