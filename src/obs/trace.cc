#include "obs/trace.hh"

#include <cstdio>
#include <sstream>

#include "base/logging.hh"

namespace gam::obs
{

/**
 * A per-thread event ring.  Only the owning thread writes (slot write
 * then a relaxed head bump); the exporter reads after that thread has
 * been joined, so no synchronization beyond the join is needed.
 */
class TraceBuffer
{
  public:
    static constexpr uint64_t Capacity = 1 << 14;

    void
    push(const TraceEvent &e)
    {
        const uint64_t h = head.load(std::memory_order_relaxed);
        slots[h % Capacity] = e;
        head.store(h + 1, std::memory_order_relaxed);
    }

    uint64_t
    written() const
    {
        return head.load(std::memory_order_relaxed);
    }

    uint64_t
    retained() const
    {
        const uint64_t h = written();
        return h < Capacity ? h : Capacity;
    }

    uint64_t
    dropped() const
    {
        const uint64_t h = written();
        return h < Capacity ? 0 : h - Capacity;
    }

    const TraceEvent &
    at(uint64_t i) const
    {
        return slots[i % Capacity];
    }

    void reset() { head.store(0, std::memory_order_relaxed); }

    uint32_t tid = 0;

  private:
    TraceEvent slots[Capacity];
    std::atomic<uint64_t> head{0};
};

TraceCollector &
TraceCollector::instance()
{
    static TraceCollector collector;
    return collector;
}

TraceBuffer &
TraceCollector::localBuffer()
{
    thread_local TraceBuffer *cached = nullptr;
    if (!cached) {
        std::lock_guard<std::mutex> lock(mu);
        auto buf = std::make_unique<TraceBuffer>();
        buf->tid = uint32_t(buffers.size());
        cached = buf.get();
        buffers.push_back(std::move(buf));
    }
    return *cached;
}

void
TraceCollector::record(const char *name, uint64_t startNs, uint64_t durNs,
                       uint64_t id)
{
    localBuffer().push(TraceEvent{name, startNs, durNs, id});
}

uint64_t
TraceCollector::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mu);
    uint64_t n = 0;
    for (const auto &b : buffers)
        n += b->dropped();
    return n;
}

uint64_t
TraceCollector::retainedEvents() const
{
    std::lock_guard<std::mutex> lock(mu);
    uint64_t n = 0;
    for (const auto &b : buffers)
        n += b->retained();
    return n;
}

void
TraceCollector::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &b : buffers)
        b->reset();
}

namespace
{

std::string
traceEscape(const char *s)
{
    std::string out;
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            out.push_back('\\');
        out.push_back(*s);
    }
    return out;
}

} // namespace

std::string
TraceCollector::exportChromeJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::ostringstream os;
    os << "{\"traceEvents\": [";
    bool first = true;
    char buf[64];
    for (const auto &b : buffers) {
        const uint64_t h = b->written();
        const uint64_t begin = h < TraceBuffer::Capacity
            ? 0 : h - TraceBuffer::Capacity;
        for (uint64_t i = begin; i < h; ++i) {
            const TraceEvent &e = b->at(i);
            os << (first ? "\n" : ",\n");
            first = false;
            os << "{\"name\": \"" << traceEscape(e.name)
               << "\", \"cat\": \"gam\", \"ph\": \"X\", \"pid\": 1"
               << ", \"tid\": " << b->tid;
            std::snprintf(buf, sizeof(buf), "%.3f",
                          double(e.startNs) / 1e3);
            os << ", \"ts\": " << buf;
            std::snprintf(buf, sizeof(buf), "%.3f",
                          double(e.durNs) / 1e3);
            os << ", \"dur\": " << buf
               << ", \"args\": {\"id\": " << e.id << "}}";
        }
    }
    os << (first ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
    return os.str();
}

bool
TraceCollector::writeChromeJson(const std::string &path) const
{
    const std::string json = exportChromeJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = wrote == json.size() && std::fclose(f) == 0;
    if (!ok && wrote == json.size())
        return false;
    return ok;
}

#ifndef GAM_NO_TRACING

void
TraceSpan::open(const char *name)
{
    _name = name;
    _id = TraceCollector::instance().nextSpanId();
    _startNs = monotonicNanos();
}

void
TraceSpan::close()
{
    TraceCollector::instance().record(
        _name, _startNs, monotonicNanos() - _startNs, _id);
}

#endif // GAM_NO_TRACING

} // namespace gam::obs
