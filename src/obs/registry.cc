#include "obs/registry.hh"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "base/logging.hh"

namespace gam::obs
{

// --------------------------------------------------------- histogram

unsigned
Histogram::bucketOf(uint64_t value)
{
    return value == 0 ? 0u : unsigned(64 - std::countl_zero(value));
}

uint64_t
Histogram::bucketUpperBound(unsigned bucket)
{
    if (bucket == 0)
        return 0;
    if (bucket >= 64)
        return ~uint64_t(0);
    return (uint64_t(1) << bucket) - 1;
}

void
Histogram::sample(uint64_t value)
{
    _buckets[bucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    _sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = _max.load(std::memory_order_relaxed);
    while (value > seen
           && !_max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
    }
}

uint64_t
Histogram::count() const
{
    return _count.load(std::memory_order_relaxed);
}

uint64_t
Histogram::sum() const
{
    return _sum.load(std::memory_order_relaxed);
}

uint64_t
Histogram::max() const
{
    return _max.load(std::memory_order_relaxed);
}

uint64_t
Histogram::bucketCount(unsigned bucket) const
{
    GAM_ASSERT(bucket < BucketCount, "histogram bucket %u out of range",
               bucket);
    return _buckets[bucket].load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (auto &b : _buckets)
        b.store(0, std::memory_order_relaxed);
    _count.store(0, std::memory_order_relaxed);
    _sum.store(0, std::memory_order_relaxed);
    _max.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------- registry

MetricRegistry::Entry &
MetricRegistry::entry(const std::string &name, Kind kind)
{
    GAM_ASSERT(!name.empty(), "metric with an empty name");
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(name);
    if (it == entries.end()) {
        Entry e;
        e.kind = kind;
        switch (kind) {
          case Kind::Counter:
            e.counter = std::make_unique<Counter>();
            break;
          case Kind::Gauge:
            e.gauge = std::make_unique<Gauge>();
            break;
          case Kind::Histogram:
            e.histogram = std::make_unique<Histogram>();
            break;
        }
        it = entries.emplace(name, std::move(e)).first;
    }
    GAM_ASSERT(it->second.kind == kind,
               "metric '%s' registered twice with different kinds",
               name.c_str());
    return it->second;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    return *entry(name, Kind::Counter).counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    return *entry(name, Kind::Gauge).gauge;
}

Histogram &
MetricRegistry::histogram(const std::string &name)
{
    return *entry(name, Kind::Histogram).histogram;
}

MetricSnapshot
MetricRegistry::snapshot() const
{
    MetricSnapshot s;
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &[name, e] : entries) {
        switch (e.kind) {
          case Kind::Counter:
            s.counters[name] = e.counter->value();
            break;
          case Kind::Gauge:
            s.gauges[name] = e.gauge->value();
            break;
          case Kind::Histogram: {
            MetricSnapshot::Hist h;
            h.count = e.histogram->count();
            h.sum = e.histogram->sum();
            h.max = e.histogram->max();
            for (unsigned b = 0; b < Histogram::BucketCount; ++b) {
                const uint64_t n = e.histogram->bucketCount(b);
                if (n)
                    h.buckets.emplace_back(b, n);
            }
            s.histograms[name] = std::move(h);
            break;
          }
        }
    }
    return s;
}

void
MetricRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &[name, e] : entries) {
        (void)name;
        switch (e.kind) {
          case Kind::Counter: e.counter->reset(); break;
          case Kind::Gauge: e.gauge->reset(); break;
          case Kind::Histogram: e.histogram->reset(); break;
        }
    }
}

MetricRegistry &
metrics()
{
    static MetricRegistry registry;
    return registry;
}

std::string
metricSegment(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        const auto u = static_cast<unsigned char>(c);
        if (std::isalnum(u) || c == '.')
            out.push_back(char(std::tolower(u)));
        else
            out.push_back('_');
    }
    return out;
}

// ---------------------------------------------------------- snapshot

uint64_t
MetricSnapshot::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

double
MetricSnapshot::gauge(const std::string &name) const
{
    auto it = gauges.find(name);
    return it == gauges.end() ? 0.0 : it->second;
}

MetricSnapshot
MetricSnapshot::delta(const MetricSnapshot &before) const
{
    auto sub = [](uint64_t after, uint64_t prior) {
        return after > prior ? after - prior : 0;
    };
    MetricSnapshot d;
    for (const auto &[name, v] : counters) {
        auto it = before.counters.find(name);
        d.counters[name] =
            sub(v, it == before.counters.end() ? 0 : it->second);
    }
    d.gauges = gauges;
    for (const auto &[name, h] : histograms) {
        Hist out;
        auto it = before.histograms.find(name);
        const Hist *prior =
            it == before.histograms.end() ? nullptr : &it->second;
        out.count = sub(h.count, prior ? prior->count : 0);
        out.sum = sub(h.sum, prior ? prior->sum : 0);
        out.max = h.max; // a max is not a running total; keep "after"
        for (const auto &[bucket, n] : h.buckets) {
            uint64_t prev = 0;
            if (prior) {
                for (const auto &[pb, pn] : prior->buckets)
                    if (pb == bucket)
                        prev = pn;
            }
            if (const uint64_t dn = sub(n, prev))
                out.buckets.emplace_back(bucket, dn);
        }
        d.histograms[name] = std::move(out);
    }
    return d;
}

bool
MetricSnapshot::operator==(const MetricSnapshot &other) const
{
    auto histEq = [](const Hist &a, const Hist &b) {
        return a.count == b.count && a.sum == b.sum && a.max == b.max
            && a.buckets == b.buckets;
    };
    if (counters != other.counters || gauges != other.gauges
        || histograms.size() != other.histograms.size())
        return false;
    auto it = other.histograms.begin();
    for (const auto &[name, h] : histograms) {
        if (it->first != name || !histEq(h, it->second))
            return false;
        ++it;
    }
    return true;
}

namespace
{

/** Shortest round-tripping rendering of a double (JSON-safe). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0"; // JSON has no inf/nan; clamp rather than corrupt
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", v);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) {
        // Try shorter forms first for readability.
        for (int prec = 6; prec < 17; ++prec) {
            char shorter[64];
            std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
            std::sscanf(shorter, "%lf", &parsed);
            if (parsed == v)
                return shorter;
        }
    }
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

std::string
MetricSnapshot::toText() const
{
    size_t width = 0;
    for (const auto &[name, v] : counters)
        width = std::max(width, name.size());
    for (const auto &[name, v] : gauges)
        width = std::max(width, name.size());
    for (const auto &[name, v] : histograms)
        width = std::max(width, name.size());

    std::ostringstream os;
    for (const auto &[name, v] : counters) {
        os << name << std::string(width - name.size() + 2, ' ') << v
           << "\n";
    }
    for (const auto &[name, v] : gauges) {
        os << name << std::string(width - name.size() + 2, ' ')
           << jsonNumber(v) << "\n";
    }
    for (const auto &[name, h] : histograms) {
        os << name << std::string(width - name.size() + 2, ' ')
           << "count " << h.count << ", mean " << jsonNumber(h.mean())
           << ", max " << h.max << "\n";
    }
    return os.str();
}

std::string
MetricSnapshot::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"gam-metrics-v1\",\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, v] : counters) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << v;
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, v] : gauges) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << jsonNumber(v);
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
           << ", \"max\": " << h.max << ", \"buckets\": [";
        bool fb = true;
        for (const auto &[bucket, n] : h.buckets) {
            os << (fb ? "" : ", ") << "[" << bucket << ", " << n << "]";
            fb = false;
        }
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
    return os.str();
}

std::string
MetricSnapshot::toPrometheus() const
{
    auto promName = [](const std::string &name) {
        std::string out = "gam_";
        for (char c : name)
            out.push_back(c == '.' ? '_' : c);
        return out;
    };
    std::ostringstream os;
    for (const auto &[name, v] : counters) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " counter\n" << p << " " << v << "\n";
    }
    for (const auto &[name, v] : gauges) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " gauge\n"
           << p << " " << jsonNumber(v) << "\n";
    }
    for (const auto &[name, h] : histograms) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " histogram\n";
        uint64_t cumulative = 0;
        for (const auto &[bucket, n] : h.buckets) {
            cumulative += n;
            os << p << "_bucket{le=\""
               << Histogram::bucketUpperBound(bucket) << "\"} "
               << cumulative << "\n";
        }
        os << p << "_bucket{le=\"+Inf\"} " << h.count << "\n"
           << p << "_sum " << h.sum << "\n"
           << p << "_count " << h.count << "\n";
    }
    return os.str();
}

// ------------------------------------------------------- JSON parser
//
// A minimal recursive-descent parser for exactly the v1 schema (flat
// string-keyed objects of numbers, plus the histogram sub-objects).
// Not a general JSON library: unknown top-level keys and structural
// surprises make fromJson() return nullopt.

namespace
{

struct JsonCursor
{
    const char *p;
    const char *end;

    void
    skipWs()
    {
        while (p < end
               && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r'))
            ++p;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    bool
    peek(char c)
    {
        skipWs();
        return p < end && *p == c;
    }

    std::optional<std::string>
    string()
    {
        if (!eat('"'))
            return std::nullopt;
        std::string out;
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return std::nullopt;
                if (*p == 'u') {
                    if (end - p < 5)
                        return std::nullopt;
                    unsigned code = 0;
                    std::sscanf(p + 1, "%4x", &code);
                    out.push_back(char(code));
                    p += 5;
                    continue;
                }
            }
            out.push_back(*p++);
        }
        if (!eat('"'))
            return std::nullopt;
        return out;
    }

    std::optional<double>
    number()
    {
        skipWs();
        char *parse_end = nullptr;
        const double v = std::strtod(p, &parse_end);
        if (parse_end == p || parse_end > end)
            return std::nullopt;
        p = parse_end;
        return v;
    }
};

/** Parse {"name": number, ...} into @p fn(name, value). */
template <typename Fn>
bool
parseNumberObject(JsonCursor &c, Fn fn)
{
    if (!c.eat('{'))
        return false;
    if (c.eat('}'))
        return true;
    do {
        auto key = c.string();
        if (!key || !c.eat(':'))
            return false;
        auto v = c.number();
        if (!v)
            return false;
        fn(*key, *v);
    } while (c.eat(','));
    return c.eat('}');
}

bool
parseHistObject(JsonCursor &c, MetricSnapshot::Hist &h)
{
    if (!c.eat('{'))
        return false;
    if (c.eat('}'))
        return true;
    do {
        auto key = c.string();
        if (!key || !c.eat(':'))
            return false;
        if (*key == "buckets") {
            if (!c.eat('['))
                return false;
            if (!c.eat(']')) {
                do {
                    if (!c.eat('['))
                        return false;
                    auto bucket = c.number();
                    if (!bucket || !c.eat(','))
                        return false;
                    auto n = c.number();
                    if (!n || !c.eat(']'))
                        return false;
                    h.buckets.emplace_back(unsigned(*bucket),
                                           uint64_t(*n));
                } while (c.eat(','));
                if (!c.eat(']'))
                    return false;
            }
        } else {
            auto v = c.number();
            if (!v)
                return false;
            if (*key == "count")
                h.count = uint64_t(*v);
            else if (*key == "sum")
                h.sum = uint64_t(*v);
            else if (*key == "max")
                h.max = uint64_t(*v);
            else
                return false;
        }
    } while (c.eat(','));
    return c.eat('}');
}

} // namespace

std::optional<MetricSnapshot>
MetricSnapshot::fromJson(const std::string &json)
{
    JsonCursor c{json.data(), json.data() + json.size()};
    MetricSnapshot s;
    bool sawSchema = false;
    if (!c.eat('{'))
        return std::nullopt;
    if (c.eat('}'))
        return std::nullopt; // schema key is mandatory
    do {
        auto key = c.string();
        if (!key || !c.eat(':'))
            return std::nullopt;
        if (*key == "schema") {
            auto v = c.string();
            if (!v || *v != "gam-metrics-v1")
                return std::nullopt;
            sawSchema = true;
        } else if (*key == "counters") {
            if (!parseNumberObject(c, [&](const std::string &n,
                                          double v) {
                    s.counters[n] = uint64_t(v);
                }))
                return std::nullopt;
        } else if (*key == "gauges") {
            if (!parseNumberObject(
                    c,
                    [&](const std::string &n, double v) {
                        s.gauges[n] = v;
                    }))
                return std::nullopt;
        } else if (*key == "histograms") {
            if (!c.eat('{'))
                return std::nullopt;
            if (!c.eat('}')) {
                do {
                    auto name = c.string();
                    if (!name || !c.eat(':'))
                        return std::nullopt;
                    Hist h;
                    if (!parseHistObject(c, h))
                        return std::nullopt;
                    s.histograms[*name] = std::move(h);
                } while (c.eat(','));
                if (!c.eat('}'))
                    return std::nullopt;
            }
        } else {
            return std::nullopt;
        }
    } while (c.eat(','));
    if (!c.eat('}') || !sawSchema)
        return std::nullopt;
    c.skipWs();
    if (c.p != c.end)
        return std::nullopt;
    return s;
}

} // namespace gam::obs
