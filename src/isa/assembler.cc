#include "isa/assembler.hh"

#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "base/logging.hh"

namespace gam::isa
{

namespace
{

/**
 * Internal control-flow for recoverable assembly: parsing bails out with
 * this and assembleOrError() turns it into an AsmDiag.  Never escapes
 * this translation unit.
 */
struct AsmFailure
{
    int line;
    std::string message;
    std::string text;
};

/** Tokenizer state for one source line. */
struct LineParser
{
    LineParser(const std::string &text, int line_no)
        : text(text), lineNo(line_no)
    {}

    [[noreturn]] void
    error(const std::string &msg) const
    {
        throw AsmFailure{lineNo, msg, text};
    }

    void
    skipSpace()
    {
        while (pos < text.size()
               && std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos >= text.size();
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        if (!consume(c))
            error(std::string("expected '") + c + "'");
    }

    /** Read an identifier-like token ([A-Za-z0-9_.]+). */
    std::string
    ident()
    {
        skipSpace();
        size_t start = pos;
        while (pos < text.size()
               && (std::isalnum(static_cast<unsigned char>(text[pos]))
                   || text[pos] == '_' || text[pos] == '.')) {
            ++pos;
        }
        if (pos == start)
            error("expected identifier");
        return text.substr(start, pos - start);
    }

    int64_t
    number()
    {
        skipSpace();
        size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        if (pos + 1 < text.size() && text[pos] == '0'
            && (text[pos + 1] == 'x' || text[pos + 1] == 'X')) {
            pos += 2;
            while (pos < text.size()
                   && std::isxdigit(static_cast<unsigned char>(text[pos]))) {
                ++pos;
            }
        } else {
            while (pos < text.size()
                   && std::isdigit(static_cast<unsigned char>(text[pos]))) {
                ++pos;
            }
        }
        if (pos == start)
            error("expected number");
        try {
            return std::stoll(text.substr(start, pos - start), nullptr, 0);
        } catch (const std::out_of_range &) {
            error("number out of range");
        } catch (const std::invalid_argument &) {
            error("expected number");
        }
    }

    Reg
    reg()
    {
        std::string name = ident();
        if (name.size() < 2 || (name[0] != 'r' && name[0] != 'f'))
            error("expected register, got '" + name + "'");
        int n = 0;
        for (size_t i = 1; i < name.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(name[i])))
                error("expected register, got '" + name + "'");
            n = n * 10 + (name[i] - '0');
            if (n > NUM_REGS)
                error("register out of range: " + name);
        }
        if (name[0] == 'r') {
            if (n >= NUM_INT_REGS)
                error("integer register out of range: " + name);
            return R(n);
        }
        if (n >= NUM_FP_REGS)
            error("fp register out of range: " + name);
        return F(n);
    }

    /** Parse "[rN]" or "[rN+off]" or "[rN-off]". */
    std::pair<Reg, int64_t>
    memOperand()
    {
        expect('[');
        Reg base = reg();
        int64_t offset = 0;
        skipSpace();
        if (pos < text.size() && (text[pos] == '+' || text[pos] == '-'))
            offset = number();
        expect(']');
        return {base, offset};
    }

    const std::string &text;
    int lineNo;
    size_t pos = 0;
};

const std::map<std::string, Opcode> threeRegOps = {
    {"add", Opcode::ADD},   {"sub", Opcode::SUB},   {"mul", Opcode::MUL},
    {"div", Opcode::DIV},   {"divu", Opcode::DIVU}, {"rem", Opcode::REM},
    {"remu", Opcode::REMU}, {"and", Opcode::AND},   {"or", Opcode::OR},
    {"xor", Opcode::XOR},   {"sll", Opcode::SLL},   {"srl", Opcode::SRL},
    {"sra", Opcode::SRA},   {"slt", Opcode::SLT},   {"sltu", Opcode::SLTU},
    {"fadd", Opcode::FADD}, {"fsub", Opcode::FSUB}, {"fmul", Opcode::FMUL},
    {"fdiv", Opcode::FDIV}, {"fmin", Opcode::FMIN}, {"fmax", Opcode::FMAX},
};

const std::map<std::string, Opcode> immOps = {
    {"addi", Opcode::ADDI}, {"andi", Opcode::ANDI}, {"ori", Opcode::ORI},
    {"xori", Opcode::XORI}, {"slli", Opcode::SLLI}, {"srli", Opcode::SRLI},
    {"srai", Opcode::SRAI}, {"slti", Opcode::SLTI},
};

const std::map<std::string, Opcode> unaryOps = {
    {"fsqrt", Opcode::FSQRT},       {"fmov", Opcode::FMOV},
    {"fcvt.i2f", Opcode::FCVT_I2F}, {"fcvt.f2i", Opcode::FCVT_F2I},
};

const std::map<std::string, Opcode> branchOps = {
    {"beq", Opcode::BEQ}, {"bne", Opcode::BNE},
    {"blt", Opcode::BLT}, {"bge", Opcode::BGE},
};

} // anonymous namespace

std::string
AsmDiag::toString() const
{
    if (line == 0)
        return "asm: " + message;
    return formatString("asm line %d: %s (in '%s')", line,
                        message.c_str(), text.c_str());
}

AsmResult
assembleOrError(const std::string &source)
{
    ProgramBuilder builder;
    std::istringstream stream(source);
    std::string line;
    int line_no = 0;

    try {
        while (std::getline(stream, line)) {
            ++line_no;
            // Strip comments.
            for (char marker : {'#', ';'}) {
                size_t at = line.find(marker);
                if (at != std::string::npos)
                    line = line.substr(0, at);
            }
            LineParser p(line, line_no);
            if (p.atEnd())
                continue;

            std::string word = p.ident();

            // Label definition?
            if (p.consume(':')) {
                if (!builder.tryLabel(word))
                    p.error("duplicate label '" + word + "'");
                if (p.atEnd())
                    continue;
                word = p.ident();
            }

            if (word == "nop") {
                builder.nop();
            } else if (word == "halt") {
                builder.halt();
            } else if (word == "li") {
                Reg d = p.reg();
                p.expect(',');
                builder.li(d, p.number());
            } else if (word == "ld") {
                Reg d = p.reg();
                p.expect(',');
                auto [base, off] = p.memOperand();
                builder.ld(d, base, off);
            } else if (word == "st") {
                auto [base, off] = p.memOperand();
                p.expect(',');
                builder.st(base, p.reg(), off);
            } else if (word == "amoswap" || word == "amoadd") {
                Opcode op = word == "amoswap" ? Opcode::AMOSWAP
                                              : Opcode::AMOADD;
                Reg d = p.reg();
                p.expect(',');
                auto [base, off] = p.memOperand();
                p.expect(',');
                builder.raw(makeRmw(op, d, base, p.reg(), off));
            } else if (word == "jmp") {
                builder.jmp(p.ident());
            } else if (word == "fence.ll") {
                builder.fenceLL();
            } else if (word == "fence.ls") {
                builder.fenceLS();
            } else if (word == "fence.sl") {
                builder.fenceSL();
            } else if (word == "fence.ss") {
                builder.fenceSS();
            } else if (word == "fence.acq") {
                builder.fenceAcquire();
            } else if (word == "fence.rel") {
                builder.fenceRelease();
            } else if (word == "fence.full") {
                builder.fenceFull();
            } else if (auto it = branchOps.find(word);
                       it != branchOps.end()) {
                Reg a = p.reg();
                p.expect(',');
                Reg b = p.reg();
                p.expect(',');
                std::string target = p.ident();
                switch (it->second) {
                  case Opcode::BEQ: builder.beq(a, b, target); break;
                  case Opcode::BNE: builder.bne(a, b, target); break;
                  case Opcode::BLT: builder.blt(a, b, target); break;
                  default: builder.bge(a, b, target); break;
                }
            } else if (auto it3 = threeRegOps.find(word);
                       it3 != threeRegOps.end()) {
                Reg d = p.reg();
                p.expect(',');
                Reg a = p.reg();
                p.expect(',');
                Reg b = p.reg();
                builder.alu(it3->second, d, a, b);
            } else if (auto iti = immOps.find(word); iti != immOps.end()) {
                Reg d = p.reg();
                p.expect(',');
                Reg a = p.reg();
                p.expect(',');
                builder.aluImm(iti->second, d, a, p.number());
            } else if (auto itu = unaryOps.find(word);
                       itu != unaryOps.end()) {
                Reg d = p.reg();
                p.expect(',');
                builder.aluImm(itu->second, d, p.reg(), 0);
            } else {
                p.error("unknown mnemonic '" + word + "'");
            }

            if (!p.atEnd())
                p.error("trailing characters");
        }
    } catch (const AsmFailure &f) {
        return {std::nullopt, {f.line, f.message, f.text}};
    }

    std::string build_error;
    auto program = builder.tryBuild(&build_error);
    if (!program)
        return {std::nullopt, {0, build_error, ""}};
    return {std::move(program), {}};
}

Program
assemble(const std::string &source)
{
    AsmResult result = assembleOrError(source);
    if (!result)
        fatal("%s", result.diag.toString().c_str());
    return *std::move(result.program);
}

std::string
disassemble(const Program &program)
{
    // Branch targets that need a synthesized label.
    std::set<int64_t> targets;
    for (const Instruction &instr : program.code)
        if (instr.isBranch())
            targets.insert(instr.imm);

    auto label = [](int64_t target) {
        return "L" + std::to_string(target);
    };
    auto offset = [](int64_t imm) {
        if (imm == 0)
            return std::string();
        return (imm > 0 ? "+" : "") + std::to_string(imm);
    };

    std::ostringstream os;
    for (size_t i = 0; i < program.code.size(); ++i) {
        if (targets.count(static_cast<int64_t>(i)))
            os << label(static_cast<int64_t>(i)) << ":\n";
        const Instruction &in = program.code[i];
        os << "    ";
        switch (in.op) {
          case Opcode::FENCE:
            switch (in.fence) {
              case FenceKind::LL: os << "fence.ll"; break;
              case FenceKind::LS: os << "fence.ls"; break;
              case FenceKind::SL: os << "fence.sl"; break;
              case FenceKind::SS: os << "fence.ss"; break;
            }
            break;
          case Opcode::LD:
            os << "ld " << regName(in.dst) << ", [" << regName(in.src1)
               << offset(in.imm) << "]";
            break;
          case Opcode::ST:
            os << "st [" << regName(in.src1) << offset(in.imm) << "], "
               << regName(in.src2);
            break;
          case Opcode::AMOSWAP:
          case Opcode::AMOADD:
            os << opcodeName(in.op) << " " << regName(in.dst) << ", ["
               << regName(in.src1) << offset(in.imm) << "], "
               << regName(in.src2);
            break;
          case Opcode::JMP:
            os << "jmp " << label(in.imm);
            break;
          case Opcode::BEQ: case Opcode::BNE:
          case Opcode::BLT: case Opcode::BGE:
            os << opcodeName(in.op) << " " << regName(in.src1) << ", "
               << regName(in.src2) << ", " << label(in.imm);
            break;
          default:
            // nop/halt/li/ALU forms: Instruction::toString() already
            // matches the assembler grammar.
            os << in.toString();
            break;
        }
        os << "\n";
    }
    if (!targets.empty()
        && *targets.rbegin() == static_cast<int64_t>(program.size()))
        os << label(static_cast<int64_t>(program.size())) << ":\n";
    return os.str();
}

} // namespace gam::isa
