#include "isa/instruction.hh"

#include <array>

#include "base/logging.hh"

namespace gam::isa
{

std::string
regName(Reg r)
{
    if (r < NUM_INT_REGS)
        return "r" + std::to_string(r);
    return "f" + std::to_string(r - NUM_INT_REGS);
}

std::string
fenceName(FenceKind k)
{
    switch (k) {
      case FenceKind::LL: return "FenceLL";
      case FenceKind::LS: return "FenceLS";
      case FenceKind::SL: return "FenceSL";
      case FenceKind::SS: return "FenceSS";
    }
    return "Fence??";
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::NOP: return "nop";
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::MUL: return "mul";
      case Opcode::DIV: return "div";
      case Opcode::DIVU: return "divu";
      case Opcode::REM: return "rem";
      case Opcode::REMU: return "remu";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::SLL: return "sll";
      case Opcode::SRL: return "srl";
      case Opcode::SRA: return "sra";
      case Opcode::SLT: return "slt";
      case Opcode::SLTU: return "sltu";
      case Opcode::ADDI: return "addi";
      case Opcode::ANDI: return "andi";
      case Opcode::ORI: return "ori";
      case Opcode::XORI: return "xori";
      case Opcode::SLLI: return "slli";
      case Opcode::SRLI: return "srli";
      case Opcode::SRAI: return "srai";
      case Opcode::SLTI: return "slti";
      case Opcode::LI: return "li";
      case Opcode::FADD: return "fadd";
      case Opcode::FSUB: return "fsub";
      case Opcode::FMUL: return "fmul";
      case Opcode::FDIV: return "fdiv";
      case Opcode::FSQRT: return "fsqrt";
      case Opcode::FMIN: return "fmin";
      case Opcode::FMAX: return "fmax";
      case Opcode::FMOV: return "fmov";
      case Opcode::FCVT_I2F: return "fcvt.i2f";
      case Opcode::FCVT_F2I: return "fcvt.f2i";
      case Opcode::LD: return "ld";
      case Opcode::ST: return "st";
      case Opcode::AMOSWAP: return "amoswap";
      case Opcode::AMOADD: return "amoadd";
      case Opcode::BEQ: return "beq";
      case Opcode::BNE: return "bne";
      case Opcode::BLT: return "blt";
      case Opcode::BGE: return "bge";
      case Opcode::JMP: return "jmp";
      case Opcode::FENCE: return "fence";
      case Opcode::HALT: return "halt";
      default: return "???";
    }
}

namespace
{

/** Append r to the set unless it is the hard-wired zero register. */
void
addReg(std::vector<Reg> &set, Reg r)
{
    if (r == REG_ZERO)
        return;
    for (Reg x : set)
        if (x == r)
            return;
    set.push_back(r);
}

/** True for opcodes of the form op dst, src1, src2. */
bool
isThreeReg(Opcode op)
{
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::DIVU: case Opcode::REM:
      case Opcode::REMU: case Opcode::AND: case Opcode::OR:
      case Opcode::XOR: case Opcode::SLL: case Opcode::SRL:
      case Opcode::SRA: case Opcode::SLT: case Opcode::SLTU:
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV: case Opcode::FMIN: case Opcode::FMAX:
        return true;
      default:
        return false;
    }
}

/** True for opcodes of the form op dst, src1, imm. */
bool
isImmOp(Opcode op)
{
    switch (op) {
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
      case Opcode::SRAI: case Opcode::SLTI:
        return true;
      default:
        return false;
    }
}

/** True for single-source unary register ops. */
bool
isUnaryOp(Opcode op)
{
    switch (op) {
      case Opcode::FSQRT: case Opcode::FMOV:
      case Opcode::FCVT_I2F: case Opcode::FCVT_F2I:
        return true;
      default:
        return false;
    }
}

} // anonymous namespace

std::vector<Reg>
Instruction::readSet() const
{
    std::vector<Reg> rs;
    if (isThreeReg(op)) {
        addReg(rs, src1);
        addReg(rs, src2);
    } else if (isImmOp(op) || isUnaryOp(op)) {
        addReg(rs, src1);
    } else if (op == Opcode::LD) {
        addReg(rs, src1);
    } else if (op == Opcode::ST || isRmw()) {
        addReg(rs, src1);
        addReg(rs, src2);
    } else if (isCondBranch()) {
        addReg(rs, src1);
        addReg(rs, src2);
    }
    return rs;
}

std::vector<Reg>
Instruction::writeSet() const
{
    std::vector<Reg> ws;
    if (isThreeReg(op) || isImmOp(op) || isUnaryOp(op)
        || op == Opcode::LI || op == Opcode::LD || isRmw()) {
        addReg(ws, dst);
    }
    return ws;
}

std::vector<Reg>
Instruction::addrReadSet() const
{
    std::vector<Reg> ars;
    if (isMem())
        addReg(ars, src1);
    return ars;
}

std::vector<Reg>
Instruction::dataReadSet() const
{
    std::vector<Reg> drs;
    if (isStore()) // includes RMWs: src2 is the operand they store with
        addReg(drs, src2);
    return drs;
}

std::string
Instruction::toString() const
{
    const std::string name = opcodeName(op);
    switch (op) {
      case Opcode::NOP:
      case Opcode::HALT:
        return name;
      case Opcode::FENCE:
        return fenceName(fence);
      case Opcode::LI:
        return name + " " + regName(dst) + ", " + std::to_string(imm);
      case Opcode::LD:
        return name + " " + regName(dst) + ", [" + regName(src1)
            + (imm ? ("+" + std::to_string(imm)) : "") + "]";
      case Opcode::ST:
        return name + " [" + regName(src1)
            + (imm ? ("+" + std::to_string(imm)) : "") + "], "
            + regName(src2);
      case Opcode::AMOSWAP: case Opcode::AMOADD:
        return name + " " + regName(dst) + ", [" + regName(src1)
            + (imm ? ("+" + std::to_string(imm)) : "") + "], "
            + regName(src2);
      case Opcode::JMP:
        return name + " @" + std::to_string(imm);
      case Opcode::BEQ: case Opcode::BNE:
      case Opcode::BLT: case Opcode::BGE:
        return name + " " + regName(src1) + ", " + regName(src2) + ", @"
            + std::to_string(imm);
      default:
        if (isThreeReg(op)) {
            return name + " " + regName(dst) + ", " + regName(src1) + ", "
                + regName(src2);
        }
        if (isImmOp(op)) {
            return name + " " + regName(dst) + ", " + regName(src1) + ", "
                + std::to_string(imm);
        }
        if (isUnaryOp(op))
            return name + " " + regName(dst) + ", " + regName(src1);
        return name;
    }
}

Instruction
makeNop()
{
    return Instruction{};
}

Instruction
makeAlu(Opcode op, Reg dst, Reg src1, Reg src2)
{
    GAM_ASSERT(isThreeReg(op), "makeAlu: %s is not a 3-register op",
               opcodeName(op).c_str());
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.src1 = src1;
    i.src2 = src2;
    return i;
}

Instruction
makeAluImm(Opcode op, Reg dst, Reg src1, int64_t imm)
{
    GAM_ASSERT(isImmOp(op) || isUnaryOp(op),
               "makeAluImm: %s is not an immediate/unary op",
               opcodeName(op).c_str());
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.src1 = src1;
    i.imm = imm;
    return i;
}

Instruction
makeLi(Reg dst, int64_t imm)
{
    Instruction i;
    i.op = Opcode::LI;
    i.dst = dst;
    i.imm = imm;
    return i;
}

Instruction
makeLoad(Reg dst, Reg addr, int64_t offset)
{
    Instruction i;
    i.op = Opcode::LD;
    i.dst = dst;
    i.src1 = addr;
    i.imm = offset;
    return i;
}

Instruction
makeStore(Reg addr, Reg data, int64_t offset)
{
    Instruction i;
    i.op = Opcode::ST;
    i.src1 = addr;
    i.src2 = data;
    i.imm = offset;
    return i;
}

Instruction
makeRmw(Opcode op, Reg dst, Reg addr, Reg data, int64_t offset)
{
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.src1 = addr;
    i.src2 = data;
    i.imm = offset;
    GAM_ASSERT(i.isRmw(), "makeRmw: %s is not an RMW",
               opcodeName(op).c_str());
    return i;
}

Instruction
makeBranch(Opcode op, Reg src1, Reg src2, int64_t target)
{
    Instruction i;
    i.op = op;
    i.src1 = src1;
    i.src2 = src2;
    i.imm = target;
    GAM_ASSERT(i.isCondBranch(), "makeBranch: %s is not a branch",
               opcodeName(op).c_str());
    return i;
}

Instruction
makeJmp(int64_t target)
{
    Instruction i;
    i.op = Opcode::JMP;
    i.imm = target;
    return i;
}

Instruction
makeFence(FenceKind k)
{
    Instruction i;
    i.op = Opcode::FENCE;
    i.fence = k;
    return i;
}

Instruction
makeHalt()
{
    Instruction i;
    i.op = Opcode::HALT;
    return i;
}

} // namespace gam::isa
