/**
 * @file
 * A small text assembler for the mini-ISA.
 *
 * Syntax (one instruction per line, '#' or ';' to end of line comments):
 *
 *     start:                      # label
 *         li   r1, 42
 *         add  r2, r1, r1
 *         addi r3, r2, -8
 *         ld   r4, [r3+16]
 *         st   [r3], r4
 *         beq  r1, r2, start
 *         fence.ss                # basic fence
 *         fence.acq               # expands to fence.ll; fence.ls
 *         fence.rel               # expands to fence.ls; fence.ss
 *         fence.full              # expands to all four basic fences
 *         halt
 */

#ifndef GAM_ISA_ASSEMBLER_HH
#define GAM_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace gam::isa
{

/**
 * Assemble @p source into a Program.
 * Calls fatal() with a line-numbered message on syntax errors.
 */
Program assemble(const std::string &source);

} // namespace gam::isa

#endif // GAM_ISA_ASSEMBLER_HH
