/**
 * @file
 * A small text assembler for the mini-ISA.
 *
 * Syntax (one instruction per line, '#' or ';' to end of line comments):
 *
 *     start:                      # label
 *         li   r1, 42
 *         add  r2, r1, r1
 *         addi r3, r2, -8
 *         ld   r4, [r3+16]
 *         st   [r3], r4
 *         beq  r1, r2, start
 *         fence.ss                # basic fence
 *         fence.acq               # expands to fence.ll; fence.ls
 *         fence.rel               # expands to fence.ls; fence.ss
 *         fence.full              # expands to all four basic fences
 *         halt
 *
 * assembleOrError() is the recoverable entry point: syntax errors come
 * back as a line-numbered diagnostic instead of killing the process, so
 * batch frontends (the litmus parser, the fuzzer) survive malformed
 * input.  assemble() is the fatal() convenience wrapper.
 */

#ifndef GAM_ISA_ASSEMBLER_HH
#define GAM_ISA_ASSEMBLER_HH

#include <optional>
#include <string>

#include "isa/program.hh"

namespace gam::isa
{

/** One assembler diagnostic, pointing at the offending source line. */
struct AsmDiag
{
    /** 1-based source line; 0 when the error is not tied to a line. */
    int line = 0;
    std::string message;
    /** The offending source line's text (empty when line == 0). */
    std::string text;

    /** e.g. "asm line 3: expected ',' (in 'li r1 5')". */
    std::string toString() const;
};

/** Result of a recoverable assembly: a Program or a diagnostic. */
struct AsmResult
{
    std::optional<Program> program;
    /** Valid only when !program. */
    AsmDiag diag;

    explicit operator bool() const { return program.has_value(); }
    Program &operator*() { return *program; }
    const Program &operator*() const { return *program; }
    Program *operator->() { return &*program; }
    const Program *operator->() const { return &*program; }
};

/**
 * Assemble @p source into a Program.  Never aborts: syntax errors,
 * out-of-range registers/numbers and label problems are reported in the
 * returned diagnostic.
 */
AsmResult assembleOrError(const std::string &source);

/**
 * Assemble @p source into a Program.
 * Calls fatal() with a line-numbered message on syntax errors.
 */
Program assemble(const std::string &source);

/**
 * Render @p program as assembler source text that assembles back to an
 * exactly equal program: branch targets become synthesized labels
 * ("L<index>"), fences use their "fence.xy" spellings, and instruction
 * lines are indented with four spaces.  The rendering is canonical, so
 * disassemble(assemble(disassemble(p))) == disassemble(p).
 */
std::string disassemble(const Program &program);

} // namespace gam::isa

#endif // GAM_ISA_ASSEMBLER_HH
