#include "isa/emulator.hh"

#include "base/logging.hh"
#include "isa/semantics.hh"

namespace gam::isa
{

Emulator::Emulator(const Program &program, MemImage initial_mem)
    : program(program)
{
    state.mem = std::move(initial_mem);
}

void
Emulator::setReg(Reg r, Value v)
{
    if (r != REG_ZERO)
        state.regs[static_cast<size_t>(r)] = v;
}

bool
Emulator::step()
{
    if (_halted || _pc >= program.size()) {
        _halted = true;
        return false;
    }

    const Instruction &instr = program[_pc];
    uint64_t next_pc = _pc + 1;

    if (instr.isRegToReg()) {
        setReg(instr.dst,
               evalRegToReg(instr, reg(instr.src1), reg(instr.src2)));
    } else if (instr.isRmw()) {
        const Addr a = effectiveAddr(instr, reg(instr.src1));
        const Value old_value = state.mem.load(a);
        state.mem.store(a,
                        evalRmwStored(instr, old_value, reg(instr.src2)));
        setReg(instr.dst, old_value);
    } else if (instr.isLoad()) {
        setReg(instr.dst,
               state.mem.load(effectiveAddr(instr, reg(instr.src1))));
    } else if (instr.isStore()) {
        state.mem.store(effectiveAddr(instr, reg(instr.src1)),
                        reg(instr.src2));
    } else if (instr.isBranch()) {
        if (evalBranchTaken(instr, reg(instr.src1), reg(instr.src2)))
            next_pc = static_cast<uint64_t>(instr.imm);
    } else if (instr.op == Opcode::HALT) {
        _halted = true;
        ++retired;
        return false;
    }
    // NOP and FENCE have no architectural effect in a uniprocessor.

    _pc = next_pc;
    ++retired;
    return true;
}

uint64_t
Emulator::run(uint64_t max_steps)
{
    const uint64_t start = retired;
    while (retired - start < max_steps && !_halted && _pc < program.size())
        step();
    if (_pc >= program.size())
        _halted = true;
    return retired - start;
}

} // namespace gam::isa
