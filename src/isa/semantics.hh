/**
 * @file
 * Value semantics of the mini-ISA, shared by the functional emulator,
 * the abstract machines and the cycle simulator so that all execution
 * engines agree on every instruction's result.
 */

#ifndef GAM_ISA_SEMANTICS_HH
#define GAM_ISA_SEMANTICS_HH

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "base/logging.hh"
#include "isa/instruction.hh"
#include "isa/mem_image.hh"

namespace gam::isa
{

namespace detail
{

inline double toF(Value v) { return std::bit_cast<double>(v); }
inline Value fromF(double d) { return std::bit_cast<Value>(d); }

} // namespace detail

/**
 * Result of a reg-to-reg computation (including LI).
 * Division by zero yields 0 and INT64_MIN / -1 yields INT64_MIN, so all
 * programs have defined semantics.
 */
inline Value
evalRegToReg(const Instruction &instr, Value v1, Value v2)
{
    using detail::toF;
    using detail::fromF;
    const uint64_t u1 = static_cast<uint64_t>(v1);
    const uint64_t u2 = static_cast<uint64_t>(v2);
    const int64_t sh = v2 & 63;
    switch (instr.op) {
      case Opcode::ADD: return v1 + v2;
      case Opcode::SUB: return v1 - v2;
      case Opcode::MUL: return static_cast<Value>(u1 * u2);
      case Opcode::DIV:
        if (v2 == 0)
            return 0;
        if (v1 == std::numeric_limits<Value>::min() && v2 == -1)
            return v1;
        return v1 / v2;
      case Opcode::DIVU: return u2 ? static_cast<Value>(u1 / u2) : 0;
      case Opcode::REM:
        if (v2 == 0)
            return 0;
        if (v1 == std::numeric_limits<Value>::min() && v2 == -1)
            return 0;
        return v1 % v2;
      case Opcode::REMU: return u2 ? static_cast<Value>(u1 % u2) : 0;
      case Opcode::AND: return v1 & v2;
      case Opcode::OR: return v1 | v2;
      case Opcode::XOR: return v1 ^ v2;
      case Opcode::SLL: return static_cast<Value>(u1 << sh);
      case Opcode::SRL: return static_cast<Value>(u1 >> sh);
      case Opcode::SRA: return v1 >> sh;
      case Opcode::SLT: return v1 < v2 ? 1 : 0;
      case Opcode::SLTU: return u1 < u2 ? 1 : 0;
      case Opcode::ADDI: return v1 + instr.imm;
      case Opcode::ANDI: return v1 & instr.imm;
      case Opcode::ORI: return v1 | instr.imm;
      case Opcode::XORI: return v1 ^ instr.imm;
      case Opcode::SLLI: return static_cast<Value>(u1 << (instr.imm & 63));
      case Opcode::SRLI: return static_cast<Value>(u1 >> (instr.imm & 63));
      case Opcode::SRAI: return v1 >> (instr.imm & 63);
      case Opcode::SLTI: return v1 < instr.imm ? 1 : 0;
      case Opcode::LI: return instr.imm;
      case Opcode::FADD: return fromF(toF(v1) + toF(v2));
      case Opcode::FSUB: return fromF(toF(v1) - toF(v2));
      case Opcode::FMUL: return fromF(toF(v1) * toF(v2));
      case Opcode::FDIV: return fromF(toF(v1) / toF(v2));
      case Opcode::FSQRT:
        return fromF(std::sqrt(std::fabs(toF(v1))));
      case Opcode::FMIN: return fromF(std::fmin(toF(v1), toF(v2)));
      case Opcode::FMAX: return fromF(std::fmax(toF(v1), toF(v2)));
      case Opcode::FMOV: return v1;
      case Opcode::FCVT_I2F: return fromF(static_cast<double>(v1));
      case Opcode::FCVT_F2I: {
        double d = toF(v1);
        if (!std::isfinite(d))
            return 0;
        if (d >= 9.2233720368547758e18)
            return std::numeric_limits<Value>::max();
        if (d <= -9.2233720368547758e18)
            return std::numeric_limits<Value>::min();
        return static_cast<Value>(d);
      }
      default:
        panic("evalRegToReg: %s is not a reg-to-reg op",
              instr.toString().c_str());
    }
}

/** Branch direction for conditional branches. */
inline bool
evalBranchTaken(const Instruction &instr, Value v1, Value v2)
{
    switch (instr.op) {
      case Opcode::BEQ: return v1 == v2;
      case Opcode::BNE: return v1 != v2;
      case Opcode::BLT: return v1 < v2;
      case Opcode::BGE: return v1 >= v2;
      case Opcode::JMP: return true;
      default:
        panic("evalBranchTaken: %s is not a branch",
              instr.toString().c_str());
    }
}

/**
 * The value an RMW leaves in memory, given the value it loaded
 * (@p old_value) and its register operand (@p src2).
 */
inline Value
evalRmwStored(const Instruction &instr, Value old_value, Value src2)
{
    switch (instr.op) {
      case Opcode::AMOSWAP: return src2;
      case Opcode::AMOADD: return old_value + src2;
      default:
        panic("evalRmwStored: %s is not an RMW",
              instr.toString().c_str());
    }
}

/** Effective address of a memory instruction. */
inline Addr
effectiveAddr(const Instruction &instr, Value base)
{
    GAM_ASSERT(instr.isMem(), "effectiveAddr on non-memory instruction");
    return base + instr.imm;
}

} // namespace gam::isa

#endif // GAM_ISA_SEMANTICS_HH
