/**
 * @file
 * Program container and a fluent builder with label resolution.
 */

#ifndef GAM_ISA_PROGRAM_HH
#define GAM_ISA_PROGRAM_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace gam::isa
{

/** A single hardware thread's instruction sequence. */
struct Program
{
    std::vector<Instruction> code;

    size_t size() const { return code.size(); }
    bool empty() const { return code.empty(); }
    const Instruction &operator[](size_t i) const { return code[i]; }

    /** Multi-line disassembly with instruction indices. */
    std::string toString() const;

    /**
     * Check static well-formedness: branch targets in range [0, size]
     * and register names in range.  Returns a diagnostic on the first
     * violation, nullopt when the program is well-formed.
     */
    std::optional<std::string> check() const;

    /** check(), but calls fatal() with the diagnostic on error. */
    void validate() const;
};

/**
 * Fluent program builder.
 *
 * Branch targets may be given as label strings; build() resolves them to
 * absolute instruction indices.  Combined fences are expanded into the
 * paper's basic-fence sequences.
 *
 *     Program p = ProgramBuilder()
 *         .li(R(1), 1)
 *         .st(R(2), R(1))
 *         .fenceSS()
 *         .st(R(3), R(1))
 *         .build();
 */
class ProgramBuilder
{
  public:
    ProgramBuilder &nop();
    ProgramBuilder &alu(Opcode op, Reg dst, Reg src1, Reg src2);
    ProgramBuilder &aluImm(Opcode op, Reg dst, Reg src1, int64_t imm);
    ProgramBuilder &add(Reg dst, Reg src1, Reg src2);
    ProgramBuilder &sub(Reg dst, Reg src1, Reg src2);
    ProgramBuilder &mul(Reg dst, Reg src1, Reg src2);
    ProgramBuilder &xorr(Reg dst, Reg src1, Reg src2);
    ProgramBuilder &addi(Reg dst, Reg src1, int64_t imm);
    ProgramBuilder &li(Reg dst, int64_t imm);
    ProgramBuilder &mov(Reg dst, Reg src);
    ProgramBuilder &ld(Reg dst, Reg addrReg, int64_t offset = 0);
    ProgramBuilder &st(Reg addrReg, Reg dataReg, int64_t offset = 0);
    /** dst = mem[addr]; mem[addr] = dst-op-data (AMOSWAP / AMOADD). */
    ProgramBuilder &rmw(Opcode op, Reg dst, Reg addrReg, Reg dataReg,
                        int64_t offset = 0);
    ProgramBuilder &beq(Reg a, Reg b, const std::string &label);
    ProgramBuilder &bne(Reg a, Reg b, const std::string &label);
    ProgramBuilder &blt(Reg a, Reg b, const std::string &label);
    ProgramBuilder &bge(Reg a, Reg b, const std::string &label);
    ProgramBuilder &jmp(const std::string &label);
    ProgramBuilder &fence(FenceKind k);
    ProgramBuilder &fenceLL() { return fence(FenceKind::LL); }
    ProgramBuilder &fenceLS() { return fence(FenceKind::LS); }
    ProgramBuilder &fenceSL() { return fence(FenceKind::SL); }
    ProgramBuilder &fenceSS() { return fence(FenceKind::SS); }
    /** Acquire fence: FenceLL; FenceLS (Section III-D1). */
    ProgramBuilder &fenceAcquire();
    /** Release fence: FenceLS; FenceSS. */
    ProgramBuilder &fenceRelease();
    /** Full fence: FenceLL; FenceLS; FenceSL; FenceSS. */
    ProgramBuilder &fenceFull();
    ProgramBuilder &halt();
    /** Append an arbitrary pre-built instruction. */
    ProgramBuilder &raw(const Instruction &instr);

    /** Bind @p name to the next instruction index. */
    ProgramBuilder &label(const std::string &name);

    /**
     * label(), but recoverable: returns false (and binds nothing) when
     * @p name is already bound.
     */
    bool tryLabel(const std::string &name);

    /** Current instruction count (next index to be appended). */
    size_t here() const { return code.size(); }

    /** Resolve labels and return the finished program. */
    Program build();

    /**
     * build(), but recoverable: returns nullopt (with a diagnostic in
     * @p error when given) on an undefined label or an ill-formed
     * program instead of aborting.
     */
    std::optional<Program> tryBuild(std::string *error = nullptr);

  private:
    ProgramBuilder &branchTo(Opcode op, Reg a, Reg b,
                             const std::string &label);

    std::vector<Instruction> code;
    std::map<std::string, size_t> labels;
    /** (instruction index, label) pairs awaiting resolution. */
    std::vector<std::pair<size_t, std::string>> fixups;
};

} // namespace gam::isa

#endif // GAM_ISA_PROGRAM_HH
