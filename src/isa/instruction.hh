/**
 * @file
 * The mini-ISA used throughout this library.
 *
 * The paper's constructions (Sections III and IV) are phrased over an
 * abstract RISC instruction set with reg-to-reg computation, loads,
 * stores, branches and the four basic fences (FenceLL/LS/SL/SS).  This
 * header defines exactly that instruction set: one instruction is one
 * micro-op (the paper reports uPC; our uOP == instruction), all memory
 * accesses are 8-byte words, and branch targets are absolute instruction
 * indices resolved by the program builder or assembler.
 *
 * Combined fences (Acquire = FenceLL;FenceLS, Release = FenceLS;FenceSS,
 * Full = all four) are deliberately *not* single opcodes: the paper
 * defines them as sequences of basic fences, and the distinction is
 * semantically visible (two fences are never ordered directly with each
 * other), so the builder/assembler expand them into sequences.
 */

#ifndef GAM_ISA_INSTRUCTION_HH
#define GAM_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gam::isa
{

/**
 * Architectural register name.  r0..r31 are integer registers with r0
 * hard-wired to zero; f0..f15 are floating-point registers holding IEEE
 * double bit patterns.
 */
using Reg = int16_t;

constexpr Reg REG_ZERO = 0;
constexpr int NUM_INT_REGS = 32;
constexpr int NUM_FP_REGS = 16;
constexpr int NUM_REGS = NUM_INT_REGS + NUM_FP_REGS;

/** Integer register rN. */
constexpr Reg R(int n) { return static_cast<Reg>(n); }
/** Floating-point register fN. */
constexpr Reg F(int n) { return static_cast<Reg>(NUM_INT_REGS + n); }

/** True for f0..f15. */
constexpr bool isFpReg(Reg r) { return r >= NUM_INT_REGS; }

/** Human-readable register name ("r3", "f2"). */
std::string regName(Reg r);

/**
 * The four basic fences of Section III-D1.  FenceXY orders all older
 * memory instructions of type X before all younger memory instructions
 * of type Y in the execution order.
 */
enum class FenceKind : uint8_t { LL, LS, SL, SS };

/** Memory-instruction type used by fence ordering rules. */
enum class MemType : uint8_t { Load, Store };

/** The X (older side) type of a FenceXY. */
constexpr MemType
fencePre(FenceKind k)
{
    return (k == FenceKind::LL || k == FenceKind::LS) ? MemType::Load
                                                      : MemType::Store;
}

/** The Y (younger side) type of a FenceXY. */
constexpr MemType
fencePost(FenceKind k)
{
    return (k == FenceKind::LL || k == FenceKind::SL) ? MemType::Load
                                                      : MemType::Store;
}

/** Fence mnemonic ("FenceLS"). */
std::string fenceName(FenceKind k);

/** Operations of the mini-ISA. */
enum class Opcode : uint8_t {
    NOP,
    // Reg-to-reg integer computation.
    ADD, SUB, MUL, DIV, DIVU, REM, REMU,
    AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    // Integer computation with an immediate operand.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI,
    // Load immediate: dst = imm.
    LI,
    // Reg-to-reg floating point (IEEE double).
    FADD, FSUB, FMUL, FDIV, FSQRT, FMIN, FMAX, FMOV,
    FCVT_I2F,  // dst(fp) = (double)src1(int)
    FCVT_F2I,  // dst(int) = (int64)src1(fp)
    // Memory: 8-byte word accesses, address = src1 + imm.
    LD,        // dst = mem[src1 + imm]
    ST,        // mem[src1 + imm] = src2
    // Atomic read-modify-write (paper Section III-C): obeys every
    // constraint that applies to a load *and* a store at its address,
    // and always executes by accessing the memory system.
    AMOSWAP,   // dst = mem[a]; mem[a] = src2
    AMOADD,    // dst = mem[a]; mem[a] = dst + src2
    // Control: branch to absolute instruction index imm.
    BEQ, BNE, BLT, BGE,
    JMP,
    // Ordering.
    FENCE,
    // Stop this hardware thread.
    HALT,

    NUM_OPCODES,
};

/** Opcode mnemonic ("add", "fence.ls", ...). */
std::string opcodeName(Opcode op);

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    Reg dst = REG_ZERO;
    Reg src1 = REG_ZERO;
    Reg src2 = REG_ZERO;
    /** Immediate operand / address offset / branch target index. */
    int64_t imm = 0;
    /** Which FenceXY this is; valid only when op == FENCE. */
    FenceKind fence = FenceKind::LL;

    bool operator==(const Instruction &other) const = default;

    /** @name Classification (Section III terminology) */
    /// @{
    /** Atomic read-modify-write: classified as both load and store. */
    bool
    isRmw() const
    {
        return op == Opcode::AMOSWAP || op == Opcode::AMOADD;
    }
    bool isLoad() const { return op == Opcode::LD || isRmw(); }
    bool isStore() const { return op == Opcode::ST || isRmw(); }
    bool isMem() const { return isLoad() || isStore(); }
    bool
    isBranch() const
    {
        return op == Opcode::BEQ || op == Opcode::BNE || op == Opcode::BLT
            || op == Opcode::BGE || op == Opcode::JMP;
    }
    bool isCondBranch() const { return isBranch() && op != Opcode::JMP; }
    bool isFence() const { return op == Opcode::FENCE; }
    bool
    isRegToReg() const
    {
        return !isMem() && !isBranch() && !isFence() && op != Opcode::NOP
            && op != Opcode::HALT;
    }
    /**
     * Does this memory instruction act as type @p t when matching
     * FenceXY constraints?  An RMW matches both types.
     */
    bool
    isMemType(MemType t) const
    {
        return t == MemType::Load ? isLoad() : isStore();
    }
    /// @}

    /**
     * @name Register sets (paper Definitions 1-3)
     * All sets exclude the hard-wired zero register and, per the paper,
     * ignore the PC.
     */
    /// @{
    /** RS(I): registers this instruction reads. */
    std::vector<Reg> readSet() const;
    /** WS(I): registers this instruction can write. */
    std::vector<Reg> writeSet() const;
    /** ARS(I): registers read to compute the memory address. */
    std::vector<Reg> addrReadSet() const;
    /** Registers read to produce the store data (subset of RS). */
    std::vector<Reg> dataReadSet() const;
    /// @}

    /** Disassemble to text. */
    std::string toString() const;
};

/**
 * @name Instruction factories
 * Convenience constructors used by tests and programmatic workloads.
 */
/// @{
Instruction makeNop();
Instruction makeAlu(Opcode op, Reg dst, Reg src1, Reg src2);
Instruction makeAluImm(Opcode op, Reg dst, Reg src1, int64_t imm);
Instruction makeLi(Reg dst, int64_t imm);
Instruction makeLoad(Reg dst, Reg addr, int64_t offset = 0);
Instruction makeStore(Reg addr, Reg data, int64_t offset = 0);
Instruction makeRmw(Opcode op, Reg dst, Reg addr, Reg data,
                    int64_t offset = 0);
Instruction makeBranch(Opcode op, Reg src1, Reg src2, int64_t target);
Instruction makeJmp(int64_t target);
Instruction makeFence(FenceKind k);
Instruction makeHalt();
/// @}

} // namespace gam::isa

#endif // GAM_ISA_INSTRUCTION_HH
