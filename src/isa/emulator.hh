/**
 * @file
 * In-order functional emulator.
 *
 * Executes a single thread's program against a memory image with simple
 * sequential semantics.  It is the golden reference for single-thread
 * correctness: every workload run on the cycle-level simulator must
 * produce exactly this emulator's final register file and memory.
 */

#ifndef GAM_ISA_EMULATOR_HH
#define GAM_ISA_EMULATOR_HH

#include <array>
#include <cstdint>

#include "isa/mem_image.hh"
#include "isa/program.hh"

namespace gam::isa
{

/** Architectural state snapshot. */
struct ArchState
{
    std::array<Value, NUM_REGS> regs{};
    MemImage mem;

    Value reg(Reg r) const { return regs[static_cast<size_t>(r)]; }

    bool operator==(const ArchState &other) const = default;
};

/** Single-thread in-order functional emulator. */
class Emulator
{
  public:
    /** @param program the code; @param initial_mem starting memory. */
    Emulator(const Program &program, MemImage initial_mem = {});

    /** Execute one instruction. Returns false once halted. */
    bool step();

    /**
     * Run until HALT / end of code or @p max_steps instructions.
     * @return number of instructions retired by this call.
     */
    uint64_t run(uint64_t max_steps = UINT64_MAX);

    bool halted() const { return _halted; }
    uint64_t pc() const { return _pc; }
    uint64_t instRetired() const { return retired; }

    Value reg(Reg r) const { return state.regs[static_cast<size_t>(r)]; }
    void setReg(Reg r, Value v);
    const MemImage &mem() const { return state.mem; }
    MemImage &mem() { return state.mem; }
    const ArchState &archState() const { return state; }

  private:
    const Program &program;
    ArchState state;
    uint64_t _pc = 0;
    bool _halted = false;
    uint64_t retired = 0;
};

} // namespace gam::isa

#endif // GAM_ISA_EMULATOR_HH
