/**
 * @file
 * A sparse 64-bit word-addressable memory image.
 *
 * This is the "monolithic memory" of the paper's abstract machines and
 * the backing store of the cycle simulator.  Addresses are byte
 * addresses; all accesses are 8-byte aligned words; unwritten locations
 * read as zero.
 */

#ifndef GAM_ISA_MEM_IMAGE_HH
#define GAM_ISA_MEM_IMAGE_HH

#include <cstdint>
#include <unordered_map>

#include "base/logging.hh"

namespace gam::isa
{

/** Byte address of an 8-byte aligned word. */
using Addr = int64_t;
/** Architectural value (int registers and memory words). */
using Value = int64_t;

/** Sparse word-addressable memory, zero initialised. */
class MemImage
{
  public:
    /** Read the aligned word at @p addr (0 when never written). */
    Value
    load(Addr addr) const
    {
        checkAligned(addr);
        auto it = words.find(addr);
        return it == words.end() ? 0 : it->second;
    }

    /** Write the aligned word at @p addr. */
    void
    store(Addr addr, Value value)
    {
        checkAligned(addr);
        words[addr] = value;
    }

    /** Number of distinct words ever written. */
    size_t footprint() const { return words.size(); }

    bool operator==(const MemImage &other) const = default;

    const std::unordered_map<Addr, Value> &raw() const { return words; }

  private:
    static void
    checkAligned(Addr addr)
    {
        GAM_ASSERT((addr & 7) == 0, "misaligned 8-byte access at %lld",
                   static_cast<long long>(addr));
    }

    std::unordered_map<Addr, Value> words;
};

} // namespace gam::isa

#endif // GAM_ISA_MEM_IMAGE_HH
