#include "isa/program.hh"

#include <sstream>

#include "base/logging.hh"

namespace gam::isa
{

std::string
Program::toString() const
{
    std::ostringstream os;
    for (size_t i = 0; i < code.size(); ++i)
        os << i << ": " << code[i].toString() << "\n";
    return os.str();
}

std::optional<std::string>
Program::check() const
{
    for (size_t i = 0; i < code.size(); ++i) {
        const Instruction &instr = code[i];
        if (instr.isBranch()) {
            if (instr.imm < 0
                || instr.imm > static_cast<int64_t>(code.size())) {
                return formatString(
                    "instruction %zu: branch target %lld out of range",
                    i, static_cast<long long>(instr.imm));
            }
        }
        for (Reg r : {instr.dst, instr.src1, instr.src2}) {
            if (r < 0 || r >= NUM_REGS) {
                return formatString("instruction %zu: bad register %d",
                                    i, int(r));
            }
        }
    }
    return std::nullopt;
}

void
Program::validate() const
{
    if (auto err = check())
        fatal("%s", err->c_str());
}

ProgramBuilder &
ProgramBuilder::nop()
{
    code.push_back(makeNop());
    return *this;
}

ProgramBuilder &
ProgramBuilder::alu(Opcode op, Reg dst, Reg src1, Reg src2)
{
    code.push_back(makeAlu(op, dst, src1, src2));
    return *this;
}

ProgramBuilder &
ProgramBuilder::aluImm(Opcode op, Reg dst, Reg src1, int64_t imm)
{
    code.push_back(makeAluImm(op, dst, src1, imm));
    return *this;
}

ProgramBuilder &
ProgramBuilder::add(Reg dst, Reg src1, Reg src2)
{
    return alu(Opcode::ADD, dst, src1, src2);
}

ProgramBuilder &
ProgramBuilder::sub(Reg dst, Reg src1, Reg src2)
{
    return alu(Opcode::SUB, dst, src1, src2);
}

ProgramBuilder &
ProgramBuilder::mul(Reg dst, Reg src1, Reg src2)
{
    return alu(Opcode::MUL, dst, src1, src2);
}

ProgramBuilder &
ProgramBuilder::xorr(Reg dst, Reg src1, Reg src2)
{
    return alu(Opcode::XOR, dst, src1, src2);
}

ProgramBuilder &
ProgramBuilder::addi(Reg dst, Reg src1, int64_t imm)
{
    return aluImm(Opcode::ADDI, dst, src1, imm);
}

ProgramBuilder &
ProgramBuilder::li(Reg dst, int64_t imm)
{
    code.push_back(makeLi(dst, imm));
    return *this;
}

ProgramBuilder &
ProgramBuilder::mov(Reg dst, Reg src)
{
    return aluImm(Opcode::ADDI, dst, src, 0);
}

ProgramBuilder &
ProgramBuilder::ld(Reg dst, Reg addrReg, int64_t offset)
{
    code.push_back(makeLoad(dst, addrReg, offset));
    return *this;
}

ProgramBuilder &
ProgramBuilder::st(Reg addrReg, Reg dataReg, int64_t offset)
{
    code.push_back(makeStore(addrReg, dataReg, offset));
    return *this;
}

ProgramBuilder &
ProgramBuilder::rmw(Opcode op, Reg dst, Reg addrReg, Reg dataReg,
                    int64_t offset)
{
    code.push_back(makeRmw(op, dst, addrReg, dataReg, offset));
    return *this;
}

ProgramBuilder &
ProgramBuilder::branchTo(Opcode op, Reg a, Reg b, const std::string &label)
{
    fixups.emplace_back(code.size(), label);
    if (op == Opcode::JMP)
        code.push_back(makeJmp(0));
    else
        code.push_back(makeBranch(op, a, b, 0));
    return *this;
}

ProgramBuilder &
ProgramBuilder::beq(Reg a, Reg b, const std::string &label)
{
    return branchTo(Opcode::BEQ, a, b, label);
}

ProgramBuilder &
ProgramBuilder::bne(Reg a, Reg b, const std::string &label)
{
    return branchTo(Opcode::BNE, a, b, label);
}

ProgramBuilder &
ProgramBuilder::blt(Reg a, Reg b, const std::string &label)
{
    return branchTo(Opcode::BLT, a, b, label);
}

ProgramBuilder &
ProgramBuilder::bge(Reg a, Reg b, const std::string &label)
{
    return branchTo(Opcode::BGE, a, b, label);
}

ProgramBuilder &
ProgramBuilder::jmp(const std::string &label)
{
    return branchTo(Opcode::JMP, REG_ZERO, REG_ZERO, label);
}

ProgramBuilder &
ProgramBuilder::fence(FenceKind k)
{
    code.push_back(makeFence(k));
    return *this;
}

ProgramBuilder &
ProgramBuilder::fenceAcquire()
{
    return fence(FenceKind::LL).fence(FenceKind::LS);
}

ProgramBuilder &
ProgramBuilder::fenceRelease()
{
    return fence(FenceKind::LS).fence(FenceKind::SS);
}

ProgramBuilder &
ProgramBuilder::fenceFull()
{
    return fence(FenceKind::LL).fence(FenceKind::LS)
          .fence(FenceKind::SL).fence(FenceKind::SS);
}

ProgramBuilder &
ProgramBuilder::halt()
{
    code.push_back(makeHalt());
    return *this;
}

ProgramBuilder &
ProgramBuilder::raw(const Instruction &instr)
{
    code.push_back(instr);
    return *this;
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    if (!tryLabel(name))
        fatal("duplicate label '%s'", name.c_str());
    return *this;
}

bool
ProgramBuilder::tryLabel(const std::string &name)
{
    return labels.emplace(name, code.size()).second;
}

Program
ProgramBuilder::build()
{
    std::string error;
    auto p = tryBuild(&error);
    if (!p)
        fatal("%s", error.c_str());
    return *std::move(p);
}

std::optional<Program>
ProgramBuilder::tryBuild(std::string *error)
{
    for (const auto &[index, name] : fixups) {
        auto it = labels.find(name);
        if (it == labels.end()) {
            if (error)
                *error = "undefined label '" + name + "'";
            return std::nullopt;
        }
        code[index].imm = static_cast<int64_t>(it->second);
    }
    Program p;
    p.code = code;
    if (auto err = p.check()) {
        if (error)
            *error = *err;
        return std::nullopt;
    }
    return p;
}

} // namespace gam::isa
