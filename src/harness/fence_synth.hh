/**
 * @file
 * Fence synthesis: find a smallest set of basic-fence insertions that
 * makes a weak behavior impossible under a target model.
 *
 * This automates the reasoning of paper Section III-D ("Fences to
 * Control Orderings"): given a litmus test whose asked-about condition
 * is allowed under, say, GAM, the synthesizer searches the space of
 * FenceLL/LS/SL/SS insertions (one candidate gap between every
 * adjacent pair of memory instructions) for a minimal set whose
 * insertion makes the condition forbidden, using the axiomatic checker
 * as the oracle.
 */

#ifndef GAM_HARNESS_FENCE_SYNTH_HH
#define GAM_HARNESS_FENCE_SYNTH_HH

#include <optional>
#include <string>
#include <vector>

#include "litmus/test.hh"
#include "model/kind.hh"

namespace gam::harness
{

/** One synthesized insertion: a fence before threads[tid].code[index]. */
struct FenceInsertion
{
    int tid;
    /** Static instruction index the fence is inserted before. */
    int index;
    isa::FenceKind kind;

    std::string toString() const;
};

/** Result of a synthesis run. */
struct SynthResult
{
    /** Empty when the condition was already forbidden. */
    std::vector<FenceInsertion> fences;
    /** False when no solution exists within the size bound. */
    bool solved = false;
    /** Candidates evaluated (decide() queries issued). */
    uint64_t queriesIssued = 0;
    /** Queries served from the decision cache (repeated runs warm). */
    uint64_t cacheHits = 0;
};

/** Return @p test with the given fences inserted. */
litmus::LitmusTest applyFences(const litmus::LitmusTest &test,
                               const std::vector<FenceInsertion> &fences);

/**
 * Search for a minimum-cardinality fence insertion (up to
 * @p max_fences) that forbids @p test's condition under @p model.
 * Candidate positions are the gaps between consecutive memory
 * instructions of each thread (where fences can order anything).
 * Every oracle probe goes through decide() with the axiomatic engine,
 * so repeated syntheses over the same base test (or re-runs after a
 * shrink) are served from the DecisionCache.
 */
SynthResult synthesizeFences(const litmus::LitmusTest &test,
                             model::ModelKind model, int max_fences = 2);

} // namespace gam::harness

#endif // GAM_HARNESS_FENCE_SYNTH_HH
