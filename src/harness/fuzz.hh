/**
 * @file
 * Differential fuzzing of the paper's equivalence theorem.
 *
 * The fuzzer pushes streams of generated litmus tests (see
 * litmus/generator.hh) through both verification engines and
 * cross-checks their outcome sets: under SC, TSO, GAM0 and GAM the
 * operational explorer and the axiomatic checker must enumerate
 * exactly the same set; under ARM the operational machine is
 * deliberately conservative (see the note in operational/
 * gam_machine.hh), so the property is outcome-set inclusion instead of
 * equality.  Any divergence is shrunk to a minimal reproducer (threads
 * and instructions removed while the divergence persists) and pretty
 * printed in the litmus text format, ready to be pinned as a corpus
 * regression.
 *
 * Tests are checked concurrently on the shared ThreadPool with one
 * result slot per test, so reports are deterministic for a given
 * (seed, tests, models) triple regardless of scheduling.
 */

#ifndef GAM_HARNESS_FUZZ_HH
#define GAM_HARNESS_FUZZ_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/decision.hh"
#include "litmus/generator.hh"
#include "litmus/test.hh"
#include "model/engine.hh"
#include "model/kind.hh"

namespace gam::harness
{

/** Fuzzing-run configuration. */
struct FuzzOptions
{
    /** Number of generated tests to cross-check. */
    uint64_t tests = 1000;
    /** Generator stream seed; test i is generateTest(seed, i). */
    uint64_t seed = 1;
    /** Worker count; 0 means hardware concurrency. */
    unsigned threads = 0;
    /**
     * Explorer visited-state budget per (test, model).  A pair that
     * exceeds it is counted in FuzzReport::skippedBudget rather than
     * compared (the axiomatic side has no budget).  Sized so the
     * 4-thread cycles the generator now emits still explore to
     * completion.
     */
    uint64_t maxStates = 8'000'000;
    /** Models to cross-check (must have both engines; ARM: inclusion). */
    std::vector<model::ModelKind> models = {
        model::ModelKind::SC, model::ModelKind::TSO,
        model::ModelKind::GAM0, model::ModelKind::GAM,
        model::ModelKind::ARM,
    };
    litmus::GeneratorOptions generator;
    /** Minimise divergent tests before reporting. */
    bool shrink = true;
    /**
     * The specification-side engine the operational explorer is
     * cross-checked against: the axiomatic checker (default) or the
     * cat engine over the builtin model files.  (model, engine)
     * pairs the spec engine cannot decide are skipped, so the cat
     * spec checks SC/TSO/GAM0/GAM and skips ARM.
     */
    model::Engine spec = model::Engine::Axiomatic;
};

/** One operational/axiomatic disagreement, minimised. */
struct FuzzDivergence
{
    uint64_t seed = 0;
    uint64_t index = 0;
    model::ModelKind model = model::ModelKind::GAM;
    /** The (shrunk) reproducer. */
    litmus::LitmusTest test;
    /** Outcome-set difference, one outcome per line. */
    std::string detail;
};

/** Aggregate result of one fuzzing run. */
struct FuzzReport
{
    uint64_t testsRun = 0;
    uint64_t checksRun = 0;
    uint64_t skippedBudget = 0;
    /** The spec engine the run compared the explorer against. */
    model::Engine spec = model::Engine::Axiomatic;
    /**
     * Aggregated enumeration counters of every spec-side decision
     * (cache hits replay the producing run's counters): how much
     * candidate space the incremental pruning saved the campaign.
     */
    axiomatic::CheckerStats specEnumStats;
    std::vector<FuzzDivergence> divergences;

    bool ok() const { return divergences.empty(); }

    /** Human-readable summary plus a reproducer per divergence. */
    std::string toString() const;
};

/**
 * Cross-check the operational explorer against @p spec (the axiomatic
 * checker or the cat engine) on one test under one model: nullopt when
 * the engines agree, otherwise a rendering of the outcome-set
 * difference.  Sets @p budget_exceeded (when given) instead of
 * comparing if exhaustive exploration did not fit in @p max_states.
 * Both the operational engine and @p spec must support @p model
 * (model::supportsEngine); whether the comparison is equality or
 * inclusion comes from model::operationalOutcomesExact().  The test
 * must have passed LitmusTest::check().  Outcome sets are obtained
 * through decide(), so repeated checks of the same test (shrinking,
 * re-rendering a divergence) hit the global DecisionCache -- and a
 * check whose budget is too small may still succeed when a complete
 * decision is already cached (cache keys ignore the budget).  When
 * @p spec_stats is given, the spec decision's enumeration counters
 * are merged into it.
 */
std::optional<std::string>
crossCheck(const litmus::LitmusTest &test, model::ModelKind model,
           uint64_t max_states, bool *budget_exceeded = nullptr,
           model::Engine spec = model::Engine::Axiomatic,
           axiomatic::CheckerStats *spec_stats = nullptr);

/** Run a differential fuzzing campaign. */
FuzzReport fuzzDifferential(const FuzzOptions &options = {});

} // namespace gam::harness

#endif // GAM_HARNESS_FUZZ_HH
