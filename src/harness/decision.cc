#include "harness/decision.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <unordered_map>

#include "analysis/prescreen.hh"
#include "base/hashing.hh"
#include "base/logging.hh"
#include "cat/engine.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "operational/explorer.hh"
#include "operational/gam_machine.hh"
#include "operational/sc_machine.hh"
#include "operational/tso_machine.hh"

namespace gam::harness
{

using model::Engine;
using model::ModelKind;

std::string
prescreenKindName(PrescreenKind kind)
{
    switch (kind) {
      case PrescreenKind::ValueCover: return "value-cover";
      case PrescreenKind::ScDelegate: return "sc-delegate";
      case PrescreenKind::None: break;
    }
    return "";
}

uint64_t
RunOptions::fingerprint() const
{
    StateHasher h;
    h.add(stateBudget);
    h.add(axiomatic.enforceInstOrder ? 1 : 0);
    h.separator();
    for (isa::Value v : axiomatic.seedValues)
        h.add(uint64_t(v));
    return h.digest();
}

// ------------------------------------------------------------- cache

struct DecisionCache::Shard
{
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Decision> map;
};

DecisionCache::DecisionCache(size_t max_entries)
    : shards(new Shard[ShardCount]),
      shardCapacity(max_entries / ShardCount + 1)
{
}

DecisionCache::~DecisionCache() = default;

DecisionCache::Shard &
DecisionCache::shardFor(uint64_t key)
{
    // The low bits index the shard map's buckets; route on high bits.
    static_assert(DecisionCache::ShardCount == 1u << 5,
                  "the 59-bit shift below routes onto 32 shards");
    return shards[key >> 59];
}

std::optional<Decision>
DecisionCache::lookup(uint64_t key)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        misses.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
DecisionCache::insert(uint64_t key, const Decision &decision)
{
    if (!decision.complete) {
        // A truncated outcome set depends on scheduling and budget;
        // serving it later would silently weaken other queries.
        uncached.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.size() >= shardCapacity
        && !shard.map.count(key)) {
        // Full: evict an arbitrary resident (hash order is as good a
        // victim policy as any here) so campaigns stay bounded.
        shard.map.erase(shard.map.begin());
        evictions.fetch_add(1, std::memory_order_relaxed);
    }
    shard.map.insert_or_assign(key, decision);
}

size_t
DecisionCache::size() const
{
    size_t n = 0;
    for (unsigned i = 0; i < ShardCount; ++i) {
        std::lock_guard<std::mutex> lock(shards[i].mu);
        n += shards[i].map.size();
    }
    return n;
}

size_t
DecisionCache::capacity() const
{
    return shardCapacity * ShardCount;
}

DecisionCacheStats
DecisionCache::stats() const
{
    DecisionCacheStats s;
    s.hits = hits.load();
    s.misses = misses.load();
    s.uncached = uncached.load();
    s.evictions = evictions.load();
    s.shardCount = ShardCount;
    for (unsigned i = 0; i < ShardCount; ++i) {
        std::lock_guard<std::mutex> lock(shards[i].mu);
        const uint64_t n = shards[i].map.size();
        s.residents += n;
        s.shardMax = std::max(s.shardMax, n);
    }
    s.shardMean = double(s.residents) / double(ShardCount);
    return s;
}

void
DecisionCache::clear()
{
    for (unsigned i = 0; i < ShardCount; ++i) {
        std::lock_guard<std::mutex> lock(shards[i].mu);
        shards[i].map.clear();
    }
    hits.store(0);
    misses.store(0);
    uncached.store(0);
    evictions.store(0);
}

DecisionCache &
globalDecisionCache()
{
    static DecisionCache cache;
    return cache;
}

// ------------------------------------------------------------ decide

uint64_t
queryKey(const Query &query, Engine engine)
{
    // Canonicalize result-irrelevant knobs away before hashing.  Only
    // complete decisions are ever cached, and a complete outcome set
    // is independent of the budget that produced it, so *no* key
    // includes the budget: frontends running with different budgets
    // (fuzzer vs. runner vs. synthesis) share entries, and a query
    // whose own budget would have truncated simply gets the better,
    // exhaustive answer.  Checker knobs cannot affect the explorer,
    // so operational keys drop those too; the cat engine shares the
    // checker's candidate builder (seed values matter) but not its
    // axioms (enforceInstOrder does not).
    RunOptions canonical = query.options;
    canonical.stateBudget = 0;
    // Compiled and interpreted cat pipelines decide identically, so
    // the mode never reaches the key (fingerprint() skips it too): a
    // differential run warms the cache for the default pipeline.
    canonical.catCompile = true;
    if (engine == Engine::Operational)
        canonical.axiomatic = {};
    if (engine == Engine::Cat)
        canonical.axiomatic.enforceInstOrder = true;

    StateHasher h;
    h.add(litmus::fingerprint(*query.test));
    h.add(uint64_t(query.model));
    h.add(uint64_t(engine));
    h.add(canonical.fingerprint());
    if (engine == Engine::Cat) {
        // The model is data: fold its content hash into the key so a
        // cached decision can never outlive an edit to the file.
        const cat::CatModel &m = query.catModel
            ? *query.catModel : cat::builtinCatModel(query.model);
        h.add(m.sourceHash);
    }
    return h.digest();
}

Engine
resolveEngine(const Query &query)
{
    switch (query.engine) {
      case EngineSelect::Axiomatic:
        return Engine::Axiomatic;
      case EngineSelect::Operational:
        return Engine::Operational;
      case EngineSelect::Cat:
        return Engine::Cat;
      case EngineSelect::Auto:
        break;
    }
    return model::supportsEngine(query.model, Engine::Axiomatic)
        ? Engine::Axiomatic
        : Engine::Operational;
}

namespace
{

bool
anyConditionMatch(const litmus::LitmusTest &test,
                  const litmus::OutcomeSet &outcomes)
{
    for (const auto &o : outcomes)
        if (test.conditionMatches(o))
            return true;
    return false;
}

void
runAxiomatic(const Query &query, Decision &d)
{
    // Seed undetermined-value (OOTA) candidates exactly as
    // Checker::isAllowed() does, so OOTA-style queries are decided by
    // the axioms rather than by omission.  Under every shipped model
    // such candidates are rejected either way, so this does not
    // change the outcome set.
    axiomatic::Options opts = axiomatic::withConditionSeeds(
        *query.test, query.options.axiomatic);
    opts.searchThreads = query.options.threads;
    axiomatic::Checker checker(*query.test, query.model, opts);
    d.outcomes = checker.enumerate();
    d.allowed = anyConditionMatch(*query.test, d.outcomes);
    d.statesVisited = checker.stats().coCandidates;
    d.enumStats = checker.stats();
    d.complete = true;
}

void
runCat(const Query &query, Decision &d)
{
    const cat::CatModel &m = query.catModel
        ? *query.catModel : cat::builtinCatModel(query.model);
    // Seed OOTA candidates exactly as runAxiomatic() does: the two
    // engines share the candidate builder, so this keeps them
    // verdict-comparable query-for-query.
    axiomatic::Options opts = axiomatic::withConditionSeeds(
        *query.test, query.options.axiomatic);
    opts.searchThreads = query.options.threads;
    cat::CatEngine engine(*query.test, m, opts,
                          query.options.catCompile
                              ? cat::CatEngine::Mode::Compiled
                              : cat::CatEngine::Mode::Interpreted);
    d.outcomes = engine.enumerate();
    d.allowed = anyConditionMatch(*query.test, d.outcomes);
    d.statesVisited = engine.stats().coCandidates;
    d.enumStats = engine.stats();
    d.catCompiled = query.options.catCompile;
    d.complete = true;
}

void
runOperational(const Query &query, Decision &d)
{
    operational::ExploreResult r;
    const unsigned threads = query.options.threads;
    const uint64_t budget = query.options.stateBudget;
    switch (query.model) {
      case ModelKind::SC:
        r = operational::exploreAllParallel(
            operational::ScMachine(*query.test), threads, budget);
        break;
      case ModelKind::TSO:
        r = operational::exploreAllParallel(
            operational::TsoMachine(*query.test), threads, budget);
        break;
      default: {
        operational::GamOptions opts;
        opts.kind = query.model;
        r = operational::exploreAllParallel(
            operational::GamMachine(*query.test, opts), threads, budget);
        break;
      }
    }
    d.outcomes = std::move(r.outcomes);
    d.allowed = anyConditionMatch(*query.test, d.outcomes);
    d.statesVisited = r.statesVisited;
    d.complete = r.complete;
}

/**
 * May the static pre-screen speak for this query?  Only with the
 * builtin model files and the InstOrder axiom intact: the analyses are
 * proved sound against executions those reject (in particular,
 * out-of-thin-air candidates), not against arbitrary user models or
 * ablated axiom sets.  Caller-supplied seed values signal an ablation
 * experiment, so they turn it off too.
 */
bool
prescreenApplies(const Query &query)
{
    return query.options.prescreen && query.catModel == nullptr
        && query.options.axiomatic.enforceInstOrder
        && query.options.axiomatic.seedValues.empty();
}

/**
 * The decide() pipeline's registry metrics, resolved once (metric
 * registration takes a lock; these references are process-lifetime).
 * Every request ends at exactly one terminal counter, so
 *
 *   decide.requests == decide.cache.hit + decide.store.hit
 *                    + decide.prescreen.value_cover
 *                    + decide.prescreen.sc_delegate
 *                    + decide.engine.{axiomatic,operational,cat}
 *
 * (an ScDelegate's inner SC decision is its own request with its own
 * terminal).  decide.store.write counts backend->store() offers.
 */
struct DecideMetrics
{
    obs::Counter &requests = obs::metrics().counter("decide.requests");
    obs::Counter &cacheHit = obs::metrics().counter("decide.cache.hit");
    obs::Counter &cacheMiss =
        obs::metrics().counter("decide.cache.miss");
    obs::Counter &storeHit = obs::metrics().counter("decide.store.hit");
    obs::Counter &storeWrite =
        obs::metrics().counter("decide.store.write");
    obs::Counter &valueCover =
        obs::metrics().counter("decide.prescreen.value_cover");
    obs::Counter &scDelegate =
        obs::metrics().counter("decide.prescreen.sc_delegate");
    obs::Counter &engineAxiomatic =
        obs::metrics().counter("decide.engine.axiomatic");
    obs::Counter &engineOperational =
        obs::metrics().counter("decide.engine.operational");
    obs::Counter &engineCat =
        obs::metrics().counter("decide.engine.cat");
    obs::Counter &incomplete =
        obs::metrics().counter("decide.incomplete");
    obs::Histogram &wallUs =
        obs::metrics().histogram("decide.wall_us");

    obs::Counter &
    engineCounter(Engine engine)
    {
        switch (engine) {
          case Engine::Axiomatic: return engineAxiomatic;
          case Engine::Operational: return engineOperational;
          case Engine::Cat: return engineCat;
        }
        return engineAxiomatic;
    }
};

DecideMetrics &
decideMetrics()
{
    static DecideMetrics m;
    return m;
}

} // namespace

Decision
decide(const Query &query, DecisionCache *cache, DecisionBackend *backend)
{
    GAM_ASSERT(query.test != nullptr, "decide: null test");
    const Engine engine = resolveEngine(query);
    // A custom cat model brings its own axioms: the (model, engine)
    // capability gate only applies when the builtin file is implied.
    GAM_ASSERT((engine == Engine::Cat && query.catModel != nullptr)
                   || model::supportsEngine(query.model, engine),
               "decide: the %s engine cannot decide %s",
               model::engineName(engine).c_str(),
               model::modelName(query.model).c_str());

    DecideMetrics &m = decideMetrics();
    m.requests.inc();
    obs::TraceSpan span("decide");

    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&start] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    // Every return path stamps the decision with its span and reports
    // its wall time; exactly one terminal counter fires per request.
    auto stamp = [&](Decision &d) {
        d.wallSeconds = elapsed();
        d.traceSpanId = span.id();
        m.wallUs.sample(uint64_t(d.wallSeconds * 1e6));
    };

    const uint64_t key =
        (cache || backend) ? queryKey(query, engine) : 0;
    if (cache) {
        std::optional<Decision> hit;
        {
            obs::TraceSpan lookupSpan("decide.cache");
            hit = cache->lookup(key);
        }
        if (hit) {
            m.cacheHit.inc();
            hit->cacheHit = true;
            stamp(*hit);
            return *std::move(hit);
        }
        m.cacheMiss.inc();
    }
    if (backend) {
        // Second level: the persistent store.  A hit is verdict-only
        // (Decision::storeHit), so it must never be inserted into the
        // in-memory cache -- outcome-set consumers sharing the cache
        // would silently receive an empty enumeration.
        std::optional<Decision> hit;
        {
            obs::TraceSpan loadSpan("decide.store");
            hit = backend->load(key);
        }
        if (hit) {
            m.storeHit.inc();
            hit->storeHit = true;
            stamp(*hit);
            return *std::move(hit);
        }
    }

    if (prescreenApplies(query)) {
        obs::TraceSpan prescreenSpan("decide.prescreen");
        const analysis::PrescreenResult pre =
            analysis::prescreen(*query.test, query.model);
        if (pre.verdict == analysis::PrescreenVerdict::Forbidden) {
            // Sound for the verdict only: no outcomes are enumerated,
            // so the decision is never cached (a prescreen-off query
            // sharing the key must still get an exact outcome set).
            Decision d;
            d.engine = engine;
            d.allowed = false;
            d.complete = true;
            d.prescreened = PrescreenKind::ValueCover;
            m.valueCover.inc();
            stamp(d);
            // Persistable even though no outcomes exist: the analysis
            // is deterministic, so a fresh re-decide under the same
            // options reproduces this exact (verdict, empty-set) shape
            // -- the store round-trip check still holds.
            if (backend) {
                backend->store(key, query, d);
                m.storeWrite.inc();
            }
            return d;
        }
        if (pre.verdict == analysis::PrescreenVerdict::ScEquivalent
            && query.model != ModelKind::SC
            && model::supportsEngine(ModelKind::SC, engine)) {
            // The model's outcome set provably equals SC's: decide the
            // SC query (usually already cached) with the same engine.
            // The inner call skips re-screening; the result is exact,
            // but is not re-inserted under this query's key so that
            // prescreen-off consumers always exercise the real engine.
            Query sub = query;
            sub.model = ModelKind::SC;
            sub.options.prescreen = false;
            sub.engine = engine == Engine::Axiomatic
                ? EngineSelect::Axiomatic
                : engine == Engine::Operational
                ? EngineSelect::Operational
                : EngineSelect::Cat;
            Decision d = decide(sub, cache, backend);
            d.engine = engine;
            d.cacheHit = false;
            d.prescreened = PrescreenKind::ScDelegate;
            m.scDelegate.inc();
            stamp(d);
            // Persist under *this* query's key too (the delegated set
            // is exact), so a later run is one store hit instead of a
            // re-screen plus delegation -- but only when the inner
            // decision carries real outcomes: if it was itself a store
            // hit it is verdict-only, and persisting its empty set here
            // would corrupt the round-trip witness.
            if (backend && !d.storeHit) {
                backend->store(key, query, d);
                m.storeWrite.inc();
            }
            return d;
        }
    }

    Decision d;
    d.engine = engine;
    {
        obs::TraceSpan engineSpan("decide.engine");
        switch (engine) {
          case Engine::Axiomatic:
            runAxiomatic(query, d);
            break;
          case Engine::Operational:
            runOperational(query, d);
            break;
          case Engine::Cat:
            runCat(query, d);
            break;
        }
    }
    m.engineCounter(engine).inc();
    if (!d.complete)
        m.incomplete.inc();
    stamp(d);

    if (cache)
        cache->insert(key, d);
    if (backend && d.complete) {
        backend->store(key, query, d);
        m.storeWrite.inc();
    }
    return d;
}

} // namespace gam::harness
