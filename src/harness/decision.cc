#include "harness/decision.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "analysis/prescreen.hh"
#include "base/hashing.hh"
#include "base/logging.hh"
#include "cat/compile.hh"
#include "cat/engine.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "operational/explorer.hh"
#include "operational/gam_machine.hh"
#include "operational/sc_machine.hh"
#include "operational/tso_machine.hh"

namespace gam::harness
{

using model::Engine;
using model::ModelKind;

std::string
prescreenKindName(PrescreenKind kind)
{
    switch (kind) {
      case PrescreenKind::ValueCover: return "value-cover";
      case PrescreenKind::ScDelegate: return "sc-delegate";
      case PrescreenKind::None: break;
    }
    return "";
}

uint64_t
RunOptions::fingerprint() const
{
    StateHasher h;
    h.add(stateBudget);
    h.add(axiomatic.enforceInstOrder ? 1 : 0);
    h.separator();
    for (isa::Value v : axiomatic.seedValues)
        h.add(uint64_t(v));
    return h.digest();
}

// ------------------------------------------------------------- cache

struct DecisionCache::Shard
{
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Decision> map;
};

DecisionCache::DecisionCache(size_t max_entries)
    : shards(new Shard[ShardCount]),
      shardCapacity(max_entries / ShardCount + 1)
{
}

DecisionCache::~DecisionCache() = default;

DecisionCache::Shard &
DecisionCache::shardFor(uint64_t key)
{
    // The low bits index the shard map's buckets; route on high bits.
    static_assert(DecisionCache::ShardCount == 1u << 5,
                  "the 59-bit shift below routes onto 32 shards");
    return shards[key >> 59];
}

std::optional<Decision>
DecisionCache::lookup(uint64_t key)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        misses.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
DecisionCache::insert(uint64_t key, const Decision &decision)
{
    if (!decision.complete) {
        // A truncated outcome set depends on scheduling and budget;
        // serving it later would silently weaken other queries.
        uncached.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.size() >= shardCapacity
        && !shard.map.count(key)) {
        // Full: evict an arbitrary resident (hash order is as good a
        // victim policy as any here) so campaigns stay bounded.
        shard.map.erase(shard.map.begin());
        evictions.fetch_add(1, std::memory_order_relaxed);
    }
    shard.map.insert_or_assign(key, decision);
}

size_t
DecisionCache::size() const
{
    size_t n = 0;
    for (unsigned i = 0; i < ShardCount; ++i) {
        std::lock_guard<std::mutex> lock(shards[i].mu);
        n += shards[i].map.size();
    }
    return n;
}

size_t
DecisionCache::capacity() const
{
    return shardCapacity * ShardCount;
}

DecisionCacheStats
DecisionCache::stats() const
{
    DecisionCacheStats s;
    s.hits = hits.load();
    s.misses = misses.load();
    s.uncached = uncached.load();
    s.evictions = evictions.load();
    s.shardCount = ShardCount;
    for (unsigned i = 0; i < ShardCount; ++i) {
        std::lock_guard<std::mutex> lock(shards[i].mu);
        const uint64_t n = shards[i].map.size();
        s.residents += n;
        s.shardMax = std::max(s.shardMax, n);
    }
    s.shardMean = double(s.residents) / double(ShardCount);
    return s;
}

void
DecisionCache::clear()
{
    for (unsigned i = 0; i < ShardCount; ++i) {
        std::lock_guard<std::mutex> lock(shards[i].mu);
        shards[i].map.clear();
    }
    hits.store(0);
    misses.store(0);
    uncached.store(0);
    evictions.store(0);
}

DecisionCache &
globalDecisionCache()
{
    static DecisionCache cache;
    return cache;
}

// ------------------------------------------------------------ decide

namespace
{

/** queryKey() with the test fingerprint precomputed: the batched
 *  pipeline hashes each distinct test once per batch, not once per
 *  (model, engine) key derivation. */
uint64_t
queryKeyHashed(uint64_t testFingerprint, const Query &query,
               Engine engine)
{
    // Canonicalize result-irrelevant knobs away before hashing.  Only
    // complete decisions are ever cached, and a complete outcome set
    // is independent of the budget that produced it, so *no* key
    // includes the budget: frontends running with different budgets
    // (fuzzer vs. runner vs. synthesis) share entries, and a query
    // whose own budget would have truncated simply gets the better,
    // exhaustive answer.  Checker knobs cannot affect the explorer,
    // so operational keys drop those too; the cat engine shares the
    // checker's candidate builder (seed values matter) but not its
    // axioms (enforceInstOrder does not).
    RunOptions canonical = query.options;
    canonical.stateBudget = 0;
    // Compiled and interpreted cat pipelines decide identically, so
    // the mode never reaches the key (fingerprint() skips it too): a
    // differential run warms the cache for the default pipeline.
    canonical.catCompile = true;
    if (engine == Engine::Operational)
        canonical.axiomatic = {};
    if (engine == Engine::Cat)
        canonical.axiomatic.enforceInstOrder = true;

    StateHasher h;
    h.add(testFingerprint);
    h.add(uint64_t(query.model));
    h.add(uint64_t(engine));
    h.add(canonical.fingerprint());
    if (engine == Engine::Cat) {
        // The model is data: fold its content hash into the key so a
        // cached decision can never outlive an edit to the file.
        const cat::CatModel &m = query.catModel
            ? *query.catModel : cat::builtinCatModel(query.model);
        h.add(m.sourceHash);
    }
    return h.digest();
}

} // anonymous namespace

uint64_t
queryKey(const Query &query, Engine engine)
{
    return queryKeyHashed(litmus::fingerprint(*query.test), query,
                          engine);
}

Engine
resolveEngine(const Query &query)
{
    switch (query.engine) {
      case EngineSelect::Axiomatic:
        return Engine::Axiomatic;
      case EngineSelect::Operational:
        return Engine::Operational;
      case EngineSelect::Cat:
        return Engine::Cat;
      case EngineSelect::Auto:
        break;
    }
    return model::supportsEngine(query.model, Engine::Axiomatic)
        ? Engine::Axiomatic
        : Engine::Operational;
}

namespace
{

bool
anyConditionMatch(const litmus::LitmusTest &test,
                  const litmus::OutcomeSet &outcomes)
{
    for (const auto &o : outcomes)
        if (test.conditionMatches(o))
            return true;
    return false;
}

/** The arena / fused-group signature of a set of checker options:
 *  everything a CandidateBuilder's static tables depend on. */
uint64_t
axOptionsKey(const axiomatic::Options &opts)
{
    StateHasher h;
    h.add(opts.enforceInstOrder ? 1 : 0);
    h.add(uint64_t(opts.searchThreads));
    h.separator();
    for (isa::Value v : opts.seedValues)
        h.add(uint64_t(v));
    return h.digest();
}

/**
 * Per-batch shared state (one per decideBatch() call, single worker,
 * no locking): the amortizable fixed costs of the decide pipeline.
 * Every entry is keyed so that sharing can never change a result --
 * test fingerprints by test identity, compiled plans by model content
 * hash, candidate arenas by (test, seeded-options) identity, ppo
 * results by everything preservedProgramOrder() reads.
 */
struct BatchContext
{
    /** litmus::fingerprint() per distinct test, hashed once. */
    std::unordered_map<const litmus::LitmusTest *, uint64_t> testFps;
    /** Compiled cat plan per CatModel::sourceHash. */
    std::unordered_map<uint64_t,
                       std::shared_ptr<const cat::CompiledPlan>>
        plans;
    /** CandidateBuilder arena per (test, options signature). */
    std::map<std::pair<const litmus::LitmusTest *, uint64_t>,
             std::unique_ptr<axiomatic::CandidateEnumerator>>
        arenas;
    /**
     * Memoized ppo closures shared by every built-in filter lane of
     * every fused enumeration in the batch (axiomatic::PpoCache): the
     * same few (model, thread shape, rf) triples recur across rf
     * candidates and across the batch's tests.
     */
    axiomatic::PpoCache ppoShapes;
    /**
     * One prescreen value fixpoint per test, shared across the
     * batch's models (the fixpoint is model-independent; only the
     * cheap ppo walk of screen() is per-model).
     */
    std::unordered_map<const litmus::LitmusTest *,
                       std::unique_ptr<analysis::PrescreenAnalysis>>
        prescreens;
    /** Plans / arenas served from the batch instead of rebuilt. */
    uint64_t planReuse = 0;
    uint64_t arenaReuse = 0;

    uint64_t
    testFp(const litmus::LitmusTest &test)
    {
        auto [it, fresh] = testFps.try_emplace(&test, 0);
        if (fresh)
            it->second = litmus::fingerprint(test);
        return it->second;
    }

    std::shared_ptr<const cat::CompiledPlan>
    planFor(const cat::CatModel &model)
    {
        auto [it, fresh] = plans.try_emplace(model.sourceHash);
        if (fresh)
            it->second = cat::compileCatModel(model);
        else
            ++planReuse;
        return it->second;
    }

    const analysis::PrescreenAnalysis &
    prescreenFor(const litmus::LitmusTest &test)
    {
        auto [it, fresh] = prescreens.try_emplace(&test);
        if (fresh) {
            it->second =
                std::make_unique<analysis::PrescreenAnalysis>(test);
        }
        return *it->second;
    }

    axiomatic::CandidateEnumerator &
    arenaFor(const litmus::LitmusTest &test,
             const axiomatic::Options &opts)
    {
        auto [it, fresh] =
            arenas.try_emplace({&test, axOptionsKey(opts)}, nullptr);
        if (fresh) {
            it->second = std::make_unique<
                axiomatic::CandidateEnumerator>(test, opts);
        } else {
            ++arenaReuse;
        }
        return *it->second;
    }
};

/** The per-query seeded checker options runAxiomatic()/runCat()
 *  share: OOTA candidates are seeded exactly as Checker::isAllowed()
 *  does, so OOTA-style queries are decided by the axioms rather than
 *  by omission.  Under every shipped model such candidates are
 *  rejected either way, so this does not change the outcome set. */
axiomatic::Options
seededOptions(const Query &query)
{
    axiomatic::Options opts = axiomatic::withConditionSeeds(
        *query.test, query.options.axiomatic);
    opts.searchThreads = query.options.threads;
    return opts;
}

void
runAxiomatic(const Query &query, Decision &d, BatchContext *batch)
{
    const axiomatic::Options opts = seededOptions(query);
    axiomatic::Checker checker(*query.test, query.model, opts);
    if (batch) {
        // One CandidateBuilder arena per test, shared across every
        // model in the batch: static rf feasibility and the site
        // tables depend only on (test, options).
        d.outcomes =
            checker.enumerateOn(batch->arenaFor(*query.test, opts));
    } else {
        d.outcomes = checker.enumerate();
    }
    d.allowed = anyConditionMatch(*query.test, d.outcomes);
    d.statesVisited = checker.stats().coCandidates;
    d.enumStats = checker.stats();
    d.complete = true;
}

void
runCat(const Query &query, Decision &d, BatchContext *batch)
{
    const cat::CatModel &m = query.catModel
        ? *query.catModel : cat::builtinCatModel(query.model);
    // Seed OOTA candidates exactly as runAxiomatic() does: the two
    // engines share the candidate builder, so this keeps them
    // verdict-comparable query-for-query.
    cat::CatEngine engine(*query.test, m, seededOptions(query),
                          query.options.catCompile
                              ? cat::CatEngine::Mode::Compiled
                              : cat::CatEngine::Mode::Interpreted);
    if (batch && query.options.catCompile)
        engine.usePlan(batch->planFor(m));
    d.outcomes = engine.enumerate();
    d.allowed = anyConditionMatch(*query.test, d.outcomes);
    d.statesVisited = engine.stats().coCandidates;
    d.enumStats = engine.stats();
    d.catCompiled = query.options.catCompile;
    d.complete = true;
}

void
runOperational(const Query &query, Decision &d)
{
    operational::ExploreResult r;
    const unsigned threads = query.options.threads;
    const uint64_t budget = query.options.stateBudget;
    switch (query.model) {
      case ModelKind::SC:
        r = operational::exploreAllParallel(
            operational::ScMachine(*query.test), threads, budget);
        break;
      case ModelKind::TSO:
        r = operational::exploreAllParallel(
            operational::TsoMachine(*query.test), threads, budget);
        break;
      default: {
        operational::GamOptions opts;
        opts.kind = query.model;
        r = operational::exploreAllParallel(
            operational::GamMachine(*query.test, opts), threads, budget);
        break;
      }
    }
    d.outcomes = std::move(r.outcomes);
    d.allowed = anyConditionMatch(*query.test, d.outcomes);
    d.statesVisited = r.statesVisited;
    d.complete = r.complete;
}

/**
 * May the static pre-screen speak for this query?  Only with the
 * builtin model files and the InstOrder axiom intact: the analyses are
 * proved sound against executions those reject (in particular,
 * out-of-thin-air candidates), not against arbitrary user models or
 * ablated axiom sets.  Caller-supplied seed values signal an ablation
 * experiment, so they turn it off too.
 */
bool
prescreenApplies(const Query &query)
{
    return query.options.prescreen && query.catModel == nullptr
        && query.options.axiomatic.enforceInstOrder
        && query.options.axiomatic.seedValues.empty();
}

/**
 * The decide() pipeline's registry metrics, resolved once (metric
 * registration takes a lock; these references are process-lifetime).
 * Every request ends at exactly one terminal counter, so
 *
 *   decide.requests == decide.cache.hit + decide.store.hit
 *                    + decide.prescreen.value_cover
 *                    + decide.prescreen.sc_delegate
 *                    + decide.engine.{axiomatic,operational,cat}
 *
 * (an ScDelegate's inner SC decision is its own request with its own
 * terminal).  decide.store.write counts backend->store() offers.
 */
struct DecideMetrics
{
    obs::Counter &requests = obs::metrics().counter("decide.requests");
    obs::Counter &cacheHit = obs::metrics().counter("decide.cache.hit");
    obs::Counter &cacheMiss =
        obs::metrics().counter("decide.cache.miss");
    obs::Counter &storeHit = obs::metrics().counter("decide.store.hit");
    obs::Counter &storeWrite =
        obs::metrics().counter("decide.store.write");
    obs::Counter &valueCover =
        obs::metrics().counter("decide.prescreen.value_cover");
    obs::Counter &scDelegate =
        obs::metrics().counter("decide.prescreen.sc_delegate");
    obs::Counter &engineAxiomatic =
        obs::metrics().counter("decide.engine.axiomatic");
    obs::Counter &engineOperational =
        obs::metrics().counter("decide.engine.operational");
    obs::Counter &engineCat =
        obs::metrics().counter("decide.engine.cat");
    obs::Counter &incomplete =
        obs::metrics().counter("decide.incomplete");
    obs::Histogram &wallUs =
        obs::metrics().histogram("decide.wall_us");

    obs::Counter &
    engineCounter(Engine engine)
    {
        switch (engine) {
          case Engine::Axiomatic: return engineAxiomatic;
          case Engine::Operational: return engineOperational;
          case Engine::Cat: return engineCat;
        }
        return engineAxiomatic;
    }
};

DecideMetrics &
decideMetrics()
{
    static DecideMetrics m;
    return m;
}

/**
 * decideBatch()'s own registry metrics.  batch.queries counts queries
 * routed through a batch; plan_reuse / arena_reuse count how often a
 * compiled cat plan or a CandidateBuilder arena was served from the
 * batch context instead of rebuilt; fused_groups / fused_queries
 * count the fused enumeration passes and the axiomatic engine runs
 * they absorbed (fused_queries / fused_groups is the fan-in the
 * multi-filter walk buys -- the dominant batch amortization, which is
 * also why arena_reuse is normally 0 now: one fused pass per arena).
 */
struct BatchMetrics
{
    obs::Counter &calls = obs::metrics().counter("decide.batch.calls");
    obs::Counter &queries =
        obs::metrics().counter("decide.batch.queries");
    obs::Counter &groups =
        obs::metrics().counter("decide.batch.groups");
    obs::Counter &planReuse =
        obs::metrics().counter("decide.batch.plan_reuse");
    obs::Counter &arenaReuse =
        obs::metrics().counter("decide.batch.arena_reuse");
    obs::Counter &fusedGroups =
        obs::metrics().counter("decide.batch.fused_groups");
    obs::Counter &fusedQueries =
        obs::metrics().counter("decide.batch.fused_queries");
};

BatchMetrics &
batchMetrics()
{
    static BatchMetrics m;
    return m;
}

/**
 * An axiomatic engine run decideQuery() deferred onto a fused
 * enumeration pass: everything the finish phase needs to complete the
 * request exactly as the inline pipeline would have.
 */
struct PendingEngine
{
    /** Input-order slot of the query (indexes the result vector). */
    size_t slot = 0;
    /** Filter lane inside the fused group (SC lane for delegators). */
    size_t lane = 0;
    /** The query's own cache/store key. */
    uint64_t key = 0;
    /** Key of the delegated-to SC query (delegateSc only). */
    uint64_t innerKey = 0;
    /** Pended at the ScDelegate prescreen, not at the engine switch. */
    bool delegateSc = false;
    /** Request arrival, so wall time covers the queueing too. */
    std::chrono::steady_clock::time_point start;
};

/**
 * The shared tail of every engine-produced decision -- inline or
 * fused: terminal + completeness counters, wall time, span stamp,
 * cache insert, store offer.  Exactly one terminal counter and one
 * wall sample per request, whichever phase finishes it.
 */
void
finishEngineDecision(const Query &query, Decision &d, uint64_t key,
                     DecisionCache *cache, DecisionBackend *backend,
                     std::chrono::steady_clock::time_point start,
                     uint64_t spanId)
{
    DecideMetrics &m = decideMetrics();
    m.engineCounter(d.engine).inc();
    if (!d.complete)
        m.incomplete.inc();
    d.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    d.traceSpanId = spanId;
    m.wallUs.sample(uint64_t(d.wallSeconds * 1e6));
    if (cache)
        cache->insert(key, d);
    if (backend && d.complete) {
        backend->store(key, query, d);
        m.storeWrite.inc();
    }
}

/**
 * The decide() pipeline front: cache, store, prescreen, engine.  With
 * @p pending non-null (the batched pipeline; @p batch must be set
 * too), an axiomatic engine run is not executed but *pended*: the
 * request and non-terminal counters have fired, @p pending describes
 * the deferred run, and the caller owes the finish phase (a fused
 * enumeration + finishEngineDecision()).  Returns the decision
 * otherwise.
 */
std::optional<Decision>
decideQuery(const Query &query, DecisionCache *cache,
            DecisionBackend *backend, BatchContext *batch,
            PendingEngine *pending)
{
    GAM_ASSERT(query.test != nullptr, "decide: null test");
    const Engine engine = resolveEngine(query);
    // A custom cat model brings its own axioms: the (model, engine)
    // capability gate only applies when the builtin file is implied.
    GAM_ASSERT((engine == Engine::Cat && query.catModel != nullptr)
                   || model::supportsEngine(query.model, engine),
               "decide: the %s engine cannot decide %s",
               model::engineName(engine).c_str(),
               model::modelName(query.model).c_str());

    DecideMetrics &m = decideMetrics();
    m.requests.inc();
    obs::TraceSpan span("decide");

    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&start] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    // Every return path stamps the decision with its span and reports
    // its wall time; exactly one terminal counter fires per request.
    auto stamp = [&](Decision &d) {
        d.wallSeconds = elapsed();
        d.traceSpanId = span.id();
        m.wallUs.sample(uint64_t(d.wallSeconds * 1e6));
    };

    const uint64_t key = (cache || backend)
        ? queryKeyHashed(batch ? batch->testFp(*query.test)
                               : litmus::fingerprint(*query.test),
                         query, engine)
        : 0;
    if (cache) {
        std::optional<Decision> hit;
        {
            obs::TraceSpan lookupSpan("decide.cache");
            hit = cache->lookup(key);
        }
        if (hit) {
            m.cacheHit.inc();
            hit->cacheHit = true;
            stamp(*hit);
            return *std::move(hit);
        }
        m.cacheMiss.inc();
    }
    if (backend) {
        // Second level: the persistent store.  A hit is verdict-only
        // (Decision::storeHit), so it must never be inserted into the
        // in-memory cache -- outcome-set consumers sharing the cache
        // would silently receive an empty enumeration.
        std::optional<Decision> hit;
        {
            obs::TraceSpan loadSpan("decide.store");
            hit = backend->load(key);
        }
        if (hit) {
            m.storeHit.inc();
            hit->storeHit = true;
            stamp(*hit);
            return *std::move(hit);
        }
    }

    if (prescreenApplies(query)) {
        obs::TraceSpan prescreenSpan("decide.prescreen");
        const analysis::PrescreenResult pre = batch
            ? batch->prescreenFor(*query.test).screen(query.model)
            : analysis::prescreen(*query.test, query.model);
        if (pre.verdict == analysis::PrescreenVerdict::Forbidden) {
            // Sound for the verdict only: no outcomes are enumerated,
            // so the decision is never cached (a prescreen-off query
            // sharing the key must still get an exact outcome set).
            Decision d;
            d.engine = engine;
            d.allowed = false;
            d.complete = true;
            d.prescreened = PrescreenKind::ValueCover;
            m.valueCover.inc();
            stamp(d);
            // Persistable even though no outcomes exist: the analysis
            // is deterministic, so a fresh re-decide under the same
            // options reproduces this exact (verdict, empty-set) shape
            // -- the store round-trip check still holds.
            if (backend) {
                backend->store(key, query, d);
                m.storeWrite.inc();
            }
            return d;
        }
        if (pre.verdict == analysis::PrescreenVerdict::ScEquivalent
            && query.model != ModelKind::SC
            && model::supportsEngine(ModelKind::SC, engine)) {
            // The model's outcome set provably equals SC's: decide the
            // SC query (usually already cached) with the same engine.
            // The inner call skips re-screening; the result is exact,
            // but is not re-inserted under this query's key so that
            // prescreen-off consumers always exercise the real engine.
            Query sub = query;
            sub.model = ModelKind::SC;
            sub.options.prescreen = false;
            sub.engine = engine == Engine::Axiomatic
                ? EngineSelect::Axiomatic
                : engine == Engine::Operational
                ? EngineSelect::Operational
                : EngineSelect::Cat;
            if (pending && engine == Engine::Axiomatic) {
                // Defer the delegation onto the fused pass's SC lane.
                // The inner SC decision is its own request (terminal
                // at finish time: the cache once an SC group member
                // or earlier delegator published it, the store, or
                // the lane itself), so count its arrival now.
                m.requests.inc();
                pending->key = key;
                pending->innerKey = queryKeyHashed(
                    batch->testFp(*query.test), sub, engine);
                pending->delegateSc = true;
                pending->start = start;
                return std::nullopt;
            }
            Decision d =
                *decideQuery(sub, cache, backend, batch, nullptr);
            d.engine = engine;
            d.cacheHit = false;
            d.prescreened = PrescreenKind::ScDelegate;
            m.scDelegate.inc();
            stamp(d);
            // Persist under *this* query's key too (the delegated set
            // is exact), so a later run is one store hit instead of a
            // re-screen plus delegation -- but only when the inner
            // decision carries real outcomes: if it was itself a store
            // hit it is verdict-only, and persisting its empty set here
            // would corrupt the round-trip witness.
            if (backend && !d.storeHit) {
                backend->store(key, query, d);
                m.storeWrite.inc();
            }
            return d;
        }
    }

    if (pending && engine == Engine::Axiomatic) {
        // Defer the enumeration onto the fused pass: the finish phase
        // reads this model's filter lane and runs
        // finishEngineDecision() with this request's key and start.
        pending->key = key;
        pending->delegateSc = false;
        pending->start = start;
        return std::nullopt;
    }

    Decision d;
    d.engine = engine;
    {
        obs::TraceSpan engineSpan("decide.engine");
        switch (engine) {
          case Engine::Axiomatic:
            runAxiomatic(query, d, batch);
            break;
          case Engine::Operational:
            runOperational(query, d);
            break;
          case Engine::Cat:
            runCat(query, d, batch);
            break;
        }
    }
    finishEngineDecision(query, d, key, cache, backend, start,
                         span.id());
    return d;
}

Decision
decideImpl(const Query &query, DecisionCache *cache,
           DecisionBackend *backend, BatchContext *batch)
{
    return *decideQuery(query, cache, backend, batch, nullptr);
}

} // anonymous namespace

Decision
decide(const Query &query, DecisionCache *cache, DecisionBackend *backend)
{
    return decideImpl(query, cache, backend, nullptr);
}

std::vector<Decision>
decideBatch(const std::vector<Query> &queries, DecisionCache *cache,
            DecisionBackend *backend)
{
    BatchMetrics &bm = batchMetrics();
    bm.calls.inc();
    bm.queries.inc(queries.size());

    // Process grouped by (model, engine) -- stable, so queries inside
    // a group keep their input order -- and write each decision back
    // to its input slot.  Grouping keeps engine state hot; the batch
    // context guarantees sharing is keyed by content, so the grouped
    // order never changes a result.
    std::vector<size_t> order(queries.size());
    std::iota(order.begin(), order.end(), size_t(0));
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         const auto ka = std::make_pair(
                             uint64_t(queries[a].model),
                             uint64_t(resolveEngine(queries[a])));
                         const auto kb = std::make_pair(
                             uint64_t(queries[b].model),
                             uint64_t(resolveEngine(queries[b])));
                         return ka < kb;
                     });

    uint64_t groups = 0;
    std::optional<std::pair<uint64_t, uint64_t>> lastGroup;
    for (size_t idx : order) {
        const auto group =
            std::make_pair(uint64_t(queries[idx].model),
                           uint64_t(resolveEngine(queries[idx])));
        if (!lastGroup || *lastGroup != group) {
            ++groups;
            lastGroup = group;
        }
    }

    /** One fused enumeration: every pended axiomatic run against one
     *  (test, checker options) pair, one filter lane per model. */
    struct FusedGroup
    {
        const litmus::LitmusTest *test = nullptr;
        axiomatic::Options opts;
        std::vector<model::ModelKind> lanes;
        std::vector<PendingEngine> members;

        size_t
        laneFor(model::ModelKind mdl)
        {
            for (size_t i = 0; i < lanes.size(); ++i)
                if (lanes[i] == mdl)
                    return i;
            lanes.push_back(mdl);
            return lanes.size() - 1;
        }
    };

    BatchContext batch;
    std::vector<Decision> out(queries.size());
    std::vector<FusedGroup> fused;
    std::map<std::pair<const litmus::LitmusTest *, uint64_t>, size_t>
        fusedIndex;

    // Front pass, in grouped order: resolve everything the cache, the
    // store, the prescreen or a non-enumerating engine can answer;
    // pend each axiomatic engine run onto its fused group.  SC==0
    // sorts first, so a group's SC member always precedes the
    // delegators that will want its decision.
    for (size_t idx : order) {
        const Query &q = queries[idx];
        PendingEngine pend;
        pend.slot = idx;
        std::optional<Decision> d =
            decideQuery(q, cache, backend, &batch, &pend);
        if (d) {
            out[idx] = *std::move(d);
            continue;
        }
        const axiomatic::Options opts = seededOptions(q);
        auto [it, fresh] = fusedIndex.try_emplace(
            {q.test, axOptionsKey(opts)}, fused.size());
        if (fresh) {
            fused.emplace_back();
            fused.back().test = q.test;
            fused.back().opts = opts;
        }
        FusedGroup &g = fused[it->second];
        pend.lane =
            g.laneFor(pend.delegateSc ? ModelKind::SC : q.model);
        g.members.push_back(pend);
    }

    // Fused pass: one shared enumeration per group -- the rf stream,
    // value fixpoint and coherence walk run once, with one built-in
    // filter lane per model -- then each pended request finishes from
    // its lane exactly as its inline run would have.
    DecideMetrics &m = decideMetrics();
    for (FusedGroup &g : fused) {
        bm.fusedGroups.inc();
        bm.fusedQueries.inc(g.members.size());
        axiomatic::CandidateEnumerator &arena =
            batch.arenaFor(*g.test, g.opts);
        std::vector<axiomatic::CheckerStats> laneStats;
        std::vector<litmus::OutcomeSet> sets;
        {
            obs::TraceSpan engineSpan("decide.engine");
            sets = axiomatic::enumerateModels(
                arena, g.lanes, g.opts.enforceInstOrder, &laneStats,
                &batch.ppoShapes);
        }
        auto laneDecision = [&](const FusedGroup &grp, size_t lane) {
            Decision d;
            d.engine = Engine::Axiomatic;
            d.outcomes = sets[lane];
            d.allowed = anyConditionMatch(*grp.test, d.outcomes);
            d.statesVisited = laneStats[lane].coCandidates;
            d.enumStats = laneStats[lane];
            d.complete = true;
            return d;
        };
        for (const PendingEngine &p : g.members) {
            const Query &q = queries[p.slot];
            if (!p.delegateSc) {
                Decision d = laneDecision(g, p.lane);
                obs::TraceSpan span("decide");
                finishEngineDecision(q, d, p.key, cache, backend,
                                     p.start, span.id());
                out[p.slot] = std::move(d);
                continue;
            }
            // A deferred ScDelegate: terminate the inner SC request
            // first -- at the cache (the group's SC member or an
            // earlier delegator published it), at the store, or from
            // the SC lane -- then complete the delegation exactly as
            // the inline prescreen path does.
            std::optional<Decision> inner;
            if (cache) {
                obs::TraceSpan lookupSpan("decide.cache");
                inner = cache->lookup(p.innerKey);
                if (inner) {
                    m.cacheHit.inc();
                    inner->cacheHit = true;
                } else {
                    m.cacheMiss.inc();
                }
            }
            if (!inner && backend) {
                obs::TraceSpan loadSpan("decide.store");
                inner = backend->load(p.innerKey);
                if (inner) {
                    m.storeHit.inc();
                    inner->storeHit = true;
                }
            }
            if (inner) {
                m.wallUs.sample(uint64_t(
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - p.start)
                        .count()
                    * 1e6));
            } else {
                Decision d = laneDecision(g, p.lane);
                Query sub = q;
                sub.model = ModelKind::SC;
                sub.options.prescreen = false;
                sub.engine = EngineSelect::Axiomatic;
                obs::TraceSpan innerSpan("decide");
                finishEngineDecision(sub, d, p.innerKey, cache,
                                     backend, p.start, innerSpan.id());
                inner = std::move(d);
            }
            Decision d = *std::move(inner);
            d.engine = Engine::Axiomatic;
            d.cacheHit = false;
            d.prescreened = PrescreenKind::ScDelegate;
            m.scDelegate.inc();
            obs::TraceSpan span("decide");
            d.wallSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - p.start)
                    .count();
            d.traceSpanId = span.id();
            m.wallUs.sample(uint64_t(d.wallSeconds * 1e6));
            // Persist under the delegator's own key too, exactly as
            // the inline path: only when the inner decision carries
            // real outcomes (a store-served inner is verdict-only).
            if (backend && !d.storeHit) {
                backend->store(p.key, q, d);
                m.storeWrite.inc();
            }
            out[p.slot] = std::move(d);
        }
    }

    bm.groups.inc(groups);
    bm.planReuse.inc(batch.planReuse);
    bm.arenaReuse.inc(batch.arenaReuse);
    return out;
}

} // namespace gam::harness
