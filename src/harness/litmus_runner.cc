#include "harness/litmus_runner.hh"

#include "axiomatic/checker.hh"
#include "base/table.hh"
#include "operational/explorer.hh"
#include "operational/gam_machine.hh"
#include "operational/sc_machine.hh"
#include "operational/tso_machine.hh"

namespace gam::harness
{

using model::ModelKind;

bool
axiomaticAllowed(const litmus::LitmusTest &test, ModelKind model)
{
    axiomatic::Checker checker(test, model);
    return checker.isAllowed();
}

bool
operationalAllowed(const litmus::LitmusTest &test, ModelKind model)
{
    litmus::OutcomeSet outcomes;
    if (model == ModelKind::SC) {
        outcomes = operational::exploreAll(
            operational::ScMachine(test)).outcomes;
    } else if (model == ModelKind::TSO) {
        outcomes = operational::exploreAll(
            operational::TsoMachine(test)).outcomes;
    } else {
        operational::GamOptions opts;
        opts.kind = model;
        outcomes = operational::exploreAll(
            operational::GamMachine(test, opts)).outcomes;
    }
    for (const auto &o : outcomes)
        if (test.conditionMatches(o))
            return true;
    return false;
}

std::vector<LitmusVerdict>
runLitmusMatrix(const std::vector<litmus::LitmusTest> &tests)
{
    std::vector<LitmusVerdict> verdicts;
    for (const auto &test : tests) {
        for (const auto &[model, expected] : test.expected) {
            if (model != ModelKind::AlphaStar) {
                verdicts.push_back({test.name, model, Engine::Axiomatic,
                                    axiomaticAllowed(test, model),
                                    expected});
            }
            if (model != ModelKind::PerLocSC) {
                verdicts.push_back({test.name, model, Engine::Operational,
                                    operationalAllowed(test, model),
                                    expected});
            }
        }
    }
    return verdicts;
}

std::string
formatLitmusMatrix(const std::vector<LitmusVerdict> &verdicts)
{
    Table t;
    t.header({"test", "model", "engine", "verdict", "paper", "match"});
    int mismatches = 0;
    for (const auto &v : verdicts) {
        const bool ok = v.matchesPaper();
        if (!ok)
            ++mismatches;
        t.row({v.test, model::modelName(v.model),
               v.engine == Engine::Axiomatic ? "axiomatic" : "operational",
               v.allowed ? "allowed" : "forbidden",
               v.expected ? (*v.expected ? "allowed" : "forbidden") : "-",
               ok ? "yes" : "MISMATCH"});
    }
    std::string out = t.render();
    out += formatString("\n%d verdicts, %d mismatches with the paper\n",
                        int(verdicts.size()), mismatches);
    return out;
}

} // namespace gam::harness
