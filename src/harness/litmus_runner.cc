#include "harness/litmus_runner.hh"

#include "axiomatic/checker.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"
#include "operational/explorer.hh"
#include "operational/gam_machine.hh"
#include "operational/sc_machine.hh"
#include "operational/tso_machine.hh"

namespace gam::harness
{

using model::ModelKind;

bool
axiomaticAllowed(const litmus::LitmusTest &test, ModelKind model)
{
    axiomatic::Checker checker(test, model);
    return checker.isAllowed();
}

namespace
{

bool
anyConditionMatch(const litmus::LitmusTest &test,
                  const litmus::OutcomeSet &outcomes)
{
    for (const auto &o : outcomes)
        if (test.conditionMatches(o))
            return true;
    return false;
}

litmus::OutcomeSet
exploreOutcomes(const litmus::LitmusTest &test, ModelKind model,
                unsigned threads)
{
    // threads == 1 runs the serial engine; anything else the parallel
    // one (0 = hardware concurrency).
    if (model == ModelKind::SC) {
        return operational::exploreAllParallel(
            operational::ScMachine(test), threads).outcomes;
    }
    if (model == ModelKind::TSO) {
        return operational::exploreAllParallel(
            operational::TsoMachine(test), threads).outcomes;
    }
    operational::GamOptions opts;
    opts.kind = model;
    return operational::exploreAllParallel(
        operational::GamMachine(test, opts), threads).outcomes;
}

/** One (test, model, engine) job of the verdict matrix. */
struct MatrixJob
{
    const litmus::LitmusTest *test;
    ModelKind model;
    Engine engine;
    std::optional<bool> expected;
};

std::vector<MatrixJob>
matrixJobs(const std::vector<litmus::LitmusTest> &tests)
{
    std::vector<MatrixJob> jobs;
    for (const auto &test : tests) {
        for (const auto &[model, expected] : test.expected) {
            if (model != ModelKind::AlphaStar)
                jobs.push_back({&test, model, Engine::Axiomatic,
                                expected});
            if (model != ModelKind::PerLocSC)
                jobs.push_back({&test, model, Engine::Operational,
                                expected});
        }
    }
    return jobs;
}

LitmusVerdict
runJob(const MatrixJob &job, unsigned explorer_threads)
{
    const bool allowed = job.engine == Engine::Axiomatic
        ? axiomaticAllowed(*job.test, job.model)
        : anyConditionMatch(*job.test,
                            exploreOutcomes(*job.test, job.model,
                                            explorer_threads));
    return {job.test->name, job.model, job.engine, allowed,
            job.expected};
}

} // namespace

bool
operationalAllowed(const litmus::LitmusTest &test, ModelKind model)
{
    return anyConditionMatch(test, exploreOutcomes(test, model, 1));
}

bool
operationalAllowedParallel(const litmus::LitmusTest &test,
                           ModelKind model, unsigned threads)
{
    return anyConditionMatch(test, exploreOutcomes(test, model, threads));
}

std::vector<LitmusVerdict>
runLitmusMatrix(const std::vector<litmus::LitmusTest> &tests)
{
    std::vector<LitmusVerdict> verdicts;
    for (const auto &job : matrixJobs(tests))
        verdicts.push_back(runJob(job, 1));
    return verdicts;
}

namespace
{

std::vector<LitmusVerdict>
runJobsParallel(const std::vector<MatrixJob> &jobs, unsigned threads)
{
    std::vector<LitmusVerdict> verdicts(jobs.size());
    ThreadPool pool(threads);
    // One slot per job: completion order cannot affect the output.
    pool.parallelFor(jobs.size(), [&](size_t i) {
        // Jobs already saturate the pool; keep each explorer serial.
        verdicts[i] = runJob(jobs[i], 1);
    });
    return verdicts;
}

} // namespace

std::vector<LitmusVerdict>
runLitmusMatrixParallel(const std::vector<litmus::LitmusTest> &tests,
                        unsigned threads)
{
    return runJobsParallel(matrixJobs(tests), threads);
}

std::vector<LitmusVerdict>
runLitmusMatrixParallel(const std::vector<litmus::LitmusTest> &tests,
                        const std::vector<model::ModelKind> &models,
                        unsigned threads)
{
    std::vector<MatrixJob> jobs;
    for (const auto &test : tests) {
        for (ModelKind model : models) {
            std::optional<bool> expected;
            if (auto it = test.expected.find(model);
                it != test.expected.end()) {
                expected = it->second;
            }
            if (model != ModelKind::AlphaStar)
                jobs.push_back({&test, model, Engine::Axiomatic,
                                expected});
            if (model != ModelKind::PerLocSC)
                jobs.push_back({&test, model, Engine::Operational,
                                expected});
        }
    }
    return runJobsParallel(jobs, threads);
}

void
annotateExpected(litmus::LitmusTest &test,
                 const std::vector<model::ModelKind> &models)
{
    for (ModelKind model : models) {
        if (model == ModelKind::AlphaStar)
            continue; // no axiomatic definition to derive from
        const bool allowed = axiomaticAllowed(test, model);
        // The operational ARM machine is conservative (inclusion, not
        // equality): an axiomatically-allowed condition it cannot
        // reach would read as a spurious mismatch when the file is
        // re-run.  A 'forbidden' ARM verdict is always sound (the
        // machine reaches only axiomatically-legal outcomes).
        if (model == ModelKind::ARM && allowed)
            continue;
        test.expected[model] = allowed;
    }
}

std::string
formatLitmusMatrix(const std::vector<LitmusVerdict> &verdicts)
{
    Table t;
    t.header({"test", "model", "engine", "verdict", "paper", "match"});
    int mismatches = 0;
    for (const auto &v : verdicts) {
        const bool ok = v.matchesPaper();
        if (!ok)
            ++mismatches;
        t.row({v.test, model::modelName(v.model),
               v.engine == Engine::Axiomatic ? "axiomatic" : "operational",
               v.allowed ? "allowed" : "forbidden",
               v.expected ? (*v.expected ? "allowed" : "forbidden") : "-",
               ok ? "yes" : "MISMATCH"});
    }
    std::string out = t.render();
    out += formatString("\n%d verdicts, %d mismatches with the paper\n",
                        int(verdicts.size()), mismatches);
    return out;
}

} // namespace gam::harness
