#include "harness/litmus_runner.hh"

#include "base/logging.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"

namespace gam::harness
{

using model::ModelKind;

namespace
{

/** One (test, model, engine) job of the verdict matrix. */
struct MatrixJob
{
    const litmus::LitmusTest *test;
    ModelKind model;
    Engine engine;
    std::optional<bool> expected;
};

/**
 * Expand one (test, model) pair into jobs per the engine selection:
 * all supported engines (nullopt), the registry's pick (Auto), or a
 * specific engine when the model supports it.
 */
void
appendJobs(std::vector<MatrixJob> &jobs, const litmus::LitmusTest &test,
           ModelKind model, std::optional<bool> expected,
           const std::optional<EngineSelect> &selection)
{
    if (!selection) {
        for (Engine engine : model::allEngines) {
            if (model::supportsEngine(model, engine))
                jobs.push_back({&test, model, engine, expected});
        }
        return;
    }
    Query probe;
    probe.model = model;
    probe.engine = *selection;
    const Engine engine = resolveEngine(probe);
    if (model::supportsEngine(model, engine))
        jobs.push_back({&test, model, engine, expected});
}

LitmusVerdict
runJob(const MatrixJob &job, const MatrixOptions &options)
{
    Query query;
    query.test = job.test;
    query.model = job.model;
    query.engine = engineSelectOf(job.engine);
    query.options = options.run;
    const Decision decision = decide(query, options.cache);
    return {job.test->name, job.model, job.engine, decision.allowed,
            decision.complete, job.expected, decision.enumStats,
            decision.prescreened};
}

std::vector<LitmusVerdict>
runJobs(const std::vector<MatrixJob> &jobs, const MatrixOptions &options)
{
    std::vector<LitmusVerdict> verdicts(jobs.size());
    ThreadPool pool(options.poolThreads);
    // One slot per job: completion order cannot affect the output.
    pool.parallelFor(jobs.size(), [&](size_t i) {
        verdicts[i] = runJob(jobs[i], options);
    });
    return verdicts;
}

} // namespace

EngineSelect
engineSelectOf(model::Engine engine)
{
    switch (engine) {
      case Engine::Axiomatic: return EngineSelect::Axiomatic;
      case Engine::Operational: return EngineSelect::Operational;
      case Engine::Cat: return EngineSelect::Cat;
    }
    panic("engineSelectOf: bad engine");
}

std::vector<LitmusVerdict>
runLitmusMatrix(const std::vector<litmus::LitmusTest> &tests,
                const std::vector<model::ModelKind> &models,
                const MatrixOptions &options)
{
    std::vector<MatrixJob> jobs;
    for (const auto &test : tests) {
        for (ModelKind model : models) {
            std::optional<bool> expected;
            if (auto it = test.expected.find(model);
                it != test.expected.end()) {
                expected = it->second;
            }
            appendJobs(jobs, test, model, expected, options.engine);
        }
    }
    return runJobs(jobs, options);
}

std::vector<LitmusVerdict>
runPaperMatrix(const std::vector<litmus::LitmusTest> &tests,
               const MatrixOptions &options)
{
    std::vector<MatrixJob> jobs;
    for (const auto &test : tests) {
        for (const auto &[model, expected] : test.expected)
            appendJobs(jobs, test, model, expected, options.engine);
    }
    return runJobs(jobs, options);
}

// --------------------------------------------- legacy bool wrappers

bool
axiomaticAllowed(const litmus::LitmusTest &test, ModelKind model)
{
    Query query;
    query.test = &test;
    query.model = model;
    query.engine = EngineSelect::Axiomatic;
    return decide(query).allowed;
}

bool
operationalAllowed(const litmus::LitmusTest &test, ModelKind model)
{
    Query query;
    query.test = &test;
    query.model = model;
    query.engine = EngineSelect::Operational;
    return decide(query).allowed;
}

bool
operationalAllowedParallel(const litmus::LitmusTest &test,
                           ModelKind model, unsigned threads)
{
    Query query;
    query.test = &test;
    query.model = model;
    query.engine = EngineSelect::Operational;
    query.options.threads = threads;
    return decide(query).allowed;
}

std::vector<LitmusVerdict>
runLitmusMatrix(const std::vector<litmus::LitmusTest> &tests)
{
    MatrixOptions options;
    options.poolThreads = 1;
    return runPaperMatrix(tests, options);
}

std::vector<LitmusVerdict>
runLitmusMatrixParallel(const std::vector<litmus::LitmusTest> &tests,
                        unsigned threads)
{
    MatrixOptions options;
    options.poolThreads = threads;
    return runPaperMatrix(tests, options);
}

std::vector<LitmusVerdict>
runLitmusMatrixParallel(const std::vector<litmus::LitmusTest> &tests,
                        const std::vector<model::ModelKind> &models,
                        unsigned threads)
{
    MatrixOptions options;
    options.poolThreads = threads;
    return runLitmusMatrix(tests, models, options);
}

void
annotateExpected(litmus::LitmusTest &test,
                 const std::vector<model::ModelKind> &models)
{
    for (ModelKind model : models) {
        if (!model::supportsEngine(model, Engine::Axiomatic))
            continue; // no axiomatic definition to derive from
        Query query;
        query.test = &test;
        query.model = model;
        query.engine = EngineSelect::Axiomatic;
        const bool allowed = decide(query).allowed;
        // A conservative operational machine (ARM) cannot reach every
        // axiomatically-allowed outcome, so recording 'allowed' would
        // read as a spurious mismatch when the file is re-run; only
        // 'forbidden' is sound for such models.
        if (!model::operationalOutcomesExact(model) && allowed)
            continue;
        test.expected[model] = allowed;
    }
}

std::string
formatLitmusMatrix(const std::vector<LitmusVerdict> &verdicts)
{
    Table t;
    t.header({"test", "model", "engine", "verdict", "paper", "match"});
    int mismatches = 0;
    int truncated = 0;
    for (const auto &v : verdicts) {
        const bool ok = v.matchesPaper();
        if (!ok)
            ++mismatches;
        // An incomplete 'forbidden' is no verdict at all: the budget
        // ran out before the condition was reached *or* ruled out.
        const bool inconclusive = !v.conclusive();
        if (inconclusive)
            ++truncated;
        t.row({v.test, model::modelName(v.model),
               model::engineName(v.engine),
               inconclusive ? "truncated"
                            : v.allowed ? "allowed" : "forbidden",
               v.expected ? (*v.expected ? "allowed" : "forbidden") : "-",
               inconclusive ? "?" : ok ? "yes" : "MISMATCH"});
    }
    std::string out = t.render();
    out += formatString("\n%d verdicts, %d mismatches with the paper\n",
                        int(verdicts.size()), mismatches);
    if (truncated > 0) {
        out += formatString("%d verdicts truncated by the state budget "
                            "(inconclusive)\n", truncated);
    }
    return out;
}

} // namespace gam::harness
